//! Semantic checks straight from the paper's running examples and claims:
//! the Figure 3 scenario, the monotonicity of Definition 3, and the
//! result-shape claims of Section 6.

use fuzzy_knn::core::distance::alpha_distance;
use fuzzy_knn::prelude::*;

/// Build an object whose distance staircase to a point query at the
/// origin is: `near` for α ≤ m, `far` for α > m.
fn staircase(id: u64, near: f64, far: f64, m: f64) -> FuzzyObject2 {
    FuzzyObject2::new(ObjectId(id), vec![Point::xy(far, 0.0), Point::xy(near, 0.0)], vec![1.0, m])
        .unwrap()
}

fn point_query() -> FuzzyObject2 {
    FuzzyObject2::new(ObjectId(999), vec![Point::xy(0.0, 0.0)], vec![1.0]).unwrap()
}

/// Figure 3 of the paper: with the four α-distance curves A, B, C, D,
/// ad-hoc 2NN returns {A, B} at α = 0.4 but {A, C} at α = 0.5, and the
/// RKNN over [0.3, 0.6] returns A everywhere, B on [0.3, 0.45] and C on
/// (0.45, 0.55]... (here B re-enters above 0.55 only in the paper's
/// curves; we model the crossover at 0.45 exactly).
#[test]
fn figure3_aknn_flips_with_alpha() {
    let a = staircase(1, 1.0, 1.0, 0.99); // d ≈ 1 everywhere
    let b = staircase(2, 2.0, 6.0, 0.45); // cheap below 0.45
    let c = staircase(3, 3.0, 3.2, 0.80); // steady ~3
    let d = staircase(4, 5.0, 5.0, 0.99); // far everywhere
    let q = point_query();
    let store = MemStore::from_objects([a, b, c, d]).unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);

    let at_04 = engine.aknn(&q, 2, 0.4, &AknnConfig::lb_lp_ub()).unwrap();
    let mut ids = at_04.ids();
    ids.sort();
    assert_eq!(ids, vec![ObjectId(1), ObjectId(2)], "2NN at 0.4 must be {{A, B}}");

    let at_05 = engine.aknn(&q, 2, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
    let mut ids = at_05.ids();
    ids.sort();
    assert_eq!(ids, vec![ObjectId(1), ObjectId(3)], "2NN at 0.5 must be {{A, C}}");

    // RKNN with k=2 over [0.3, 0.6].
    let rknn =
        engine.rknn(&q, 2, 0.3, 0.6, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub()).unwrap();
    assert_eq!(rknn.items.len(), 3);
    let a_range = rknn.range_of(ObjectId(1)).unwrap();
    assert!(a_range.approx_eq(&IntervalSet::from_interval(Interval::closed(0.3, 0.6)), 1e-9));
    let b_range = rknn.range_of(ObjectId(2)).unwrap();
    assert!(b_range.approx_eq(&IntervalSet::from_interval(Interval::closed(0.3, 0.45)), 1e-9));
    let c_range = rknn.range_of(ObjectId(3)).unwrap();
    assert!(c_range.approx_eq(&IntervalSet::from_interval(Interval::left_open(0.45, 0.6)), 1e-9));
}

/// Definition 3 / Section 2.1: the α-distance is monotonically
/// non-decreasing in α for real generated objects.
#[test]
fn alpha_distance_monotone_on_generated_data() {
    let gen =
        CellConfig { num_objects: 10, points_per_object: 150, seed: 5, ..CellConfig::default() };
    let objs: Vec<_> = gen.generate().collect();
    let q = gen.query_object(1);
    for o in &objs {
        let mut prev = 0.0;
        for step in 1..=20 {
            let alpha = step as f64 / 20.0;
            let d = alpha_distance(o, &q, Threshold::at(alpha)).unwrap();
            assert!(d + 1e-9 >= prev, "α-distance decreased for {}", o.id());
            prev = d;
        }
    }
}

/// Lemma 2: an AKNN result is stable until the next critical probability.
#[test]
fn results_stable_between_critical_probabilities() {
    let gen = SyntheticConfig {
        num_objects: 120,
        points_per_object: 80,
        quantize_levels: Some(10),
        seed: 17,
        ..SyntheticConfig::default()
    };
    let store = MemStore::from_objects(gen.generate()).unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let q = gen.query_object(4);

    let rknn =
        engine.rknn(&q, 5, 0.2, 0.9, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub()).unwrap();
    // Pick probes inside each reported interval and check AKNN agreement.
    for item in &rknn.items {
        for iv in item.range.intervals() {
            let mid = 0.5 * (iv.lo + iv.hi);
            if !iv.contains(mid) {
                continue;
            }
            let res = engine.aknn(&q, 5, mid, &AknnConfig::lb_lp_ub()).unwrap();
            assert!(
                res.ids().contains(&item.id),
                "{} reported qualifying at {} but AKNN disagrees",
                item.id,
                mid
            );
        }
    }
}

/// The query object may come from the dataset itself: its distance to
/// itself is 0 and it must be its own nearest neighbour.
#[test]
fn self_query_returns_self_first() {
    let gen = SyntheticConfig {
        num_objects: 50,
        points_per_object: 60,
        seed: 3,
        ..SyntheticConfig::default()
    };
    let objs: Vec<_> = gen.generate().collect();
    let q = objs[17].clone();
    let store = MemStore::from_objects(objs).unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let res = engine.aknn(&q, 1, 0.8, &AknnConfig::lb_lp_ub()).unwrap();
    assert_eq!(res.neighbors[0].id, ObjectId(17));
    assert!(res.neighbors[0].dist.lo() <= 1e-12);
}
