//! Brute-force oracle for AKNN over the paper's §6.1 synthetic workload:
//! an exhaustive α-distance scan of the whole dataset must agree with
//! `QueryEngine::aknn` for every pruning configuration, k and α.
//!
//! Complements `crates/query/tests/correctness.rs` (which uses ad-hoc blob
//! data) by exercising the actual generator the experiments run on, with
//! continuous Gaussian memberships rather than quantized levels.

use fuzzy_knn::core::distance::alpha_distance_brute;
use fuzzy_knn::prelude::*;

fn small_synthetic() -> SyntheticConfig {
    SyntheticConfig {
        num_objects: 60,
        points_per_object: 60,
        seed: 0xA11CE,
        ..SyntheticConfig::default()
    }
}

/// All exact α-distances, ascending, computed without index or engine.
fn oracle(store: &MemStore<2>, q: &FuzzyObject2, t: Threshold) -> Vec<(f64, ObjectId)> {
    let mut all: Vec<(f64, ObjectId)> = store
        .summaries()
        .iter()
        .map(|s| {
            let obj = store.probe(s.id).unwrap();
            (alpha_distance_brute(&obj, q, t).unwrap(), s.id)
        })
        .collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    all
}

#[test]
fn aknn_matches_exhaustive_scan_on_synthetic_data() {
    let gen = small_synthetic();
    let store = MemStore::from_objects(gen.generate()).unwrap();
    let tree =
        RTree::bulk_load(store.summaries().to_vec(), RTreeConfig { max_entries: 8, min_fill: 0.4 });
    let engine = QueryEngine::new(&tree, &store);

    for query_seed in [1u64, 2] {
        let q = gen.query_object(query_seed);
        for alpha in [0.2, 0.5, 0.8, 1.0] {
            let t = Threshold::at(alpha);
            let exact = oracle(&store, &q, t);
            for k in [1usize, 3, 10] {
                let kth = exact[k - 1].0;
                for cfg in AknnConfig::paper_variants() {
                    let res = engine.aknn(&q, k, alpha, &cfg).unwrap();
                    let label =
                        format!("query {query_seed} α {alpha} k {k} {}", cfg.variant_name());
                    assert_eq!(res.neighbors.len(), k, "{label}: wrong result size");
                    // The returned distance multiset must equal the oracle's
                    // top-k (ties tolerated up to fp noise), and every id
                    // must genuinely sit within the k-th oracle distance.
                    let mut got: Vec<f64> = res
                        .neighbors
                        .iter()
                        .map(|n| {
                            let obj = store.probe(n.id).unwrap();
                            alpha_distance_brute(&obj, &q, t).unwrap()
                        })
                        .collect();
                    got.sort_by(f64::total_cmp);
                    for (g, (w, _)) in got.iter().zip(&exact) {
                        assert!((g - w).abs() <= 1e-9, "{label}: got {g}, oracle {w}");
                    }
                    for n in &res.neighbors {
                        let obj = store.probe(n.id).unwrap();
                        let d = alpha_distance_brute(&obj, &q, t).unwrap();
                        assert!(d <= kth + 1e-9, "{label}: {} beyond k-th", n.id);
                        assert!(
                            n.dist.lo() <= d + 1e-9 && d <= n.dist.hi() + 1e-9,
                            "{label}: bounds [{}, {}] miss exact {d}",
                            n.dist.lo(),
                            n.dist.hi()
                        );
                    }
                    let mut ids = res.ids();
                    ids.sort();
                    ids.dedup();
                    assert_eq!(ids.len(), k, "{label}: duplicate neighbors");
                }
            }
        }
    }
}

#[test]
fn pruned_variants_return_identical_neighbor_sets() {
    // With continuous memberships distance ties have measure zero, so all
    // four configurations must return exactly the same id set, not merely
    // equal distances.
    let gen = small_synthetic();
    let store = MemStore::from_objects(gen.generate()).unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let q = gen.query_object(9);
    for alpha in [0.3, 0.7] {
        for k in [2usize, 8] {
            let mut reference: Option<Vec<ObjectId>> = None;
            for cfg in AknnConfig::paper_variants() {
                let mut ids = engine.aknn(&q, k, alpha, &cfg).unwrap().ids();
                ids.sort();
                match &reference {
                    None => reference = Some(ids),
                    Some(want) => assert_eq!(
                        &ids,
                        want,
                        "α {alpha} k {k}: {} disagrees with basic",
                        cfg.variant_name()
                    ),
                }
            }
        }
    }
}

#[test]
fn file_store_round_trip_preserves_aknn_results() {
    // The same query through a FileStore must see exactly the MemStore
    // results — oracle coverage for the on-disk format as a side effect.
    let gen = small_synthetic();
    let objects: Vec<FuzzyObject2> = gen.generate().collect();
    let mem = MemStore::from_objects(objects.clone()).unwrap();

    let dir = std::env::temp_dir().join(format!("fuzzy-oracle-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("synthetic.fzkn");
    let mut writer = FileStoreWriter::create(&path).unwrap();
    for obj in &objects {
        writer.append(obj).unwrap();
    }
    writer.finish().unwrap();
    let file = FileStore::open(&path).unwrap();

    let q = gen.query_object(3);
    for (alpha, k) in [(0.4, 5usize), (0.9, 2)] {
        let mem_tree = RTree::bulk_load(mem.summaries().to_vec(), RTreeConfig::default());
        let file_tree = RTree::bulk_load(file.summaries().to_vec(), RTreeConfig::default());
        let from_mem =
            QueryEngine::new(&mem_tree, &mem).aknn(&q, k, alpha, &AknnConfig::lb_lp_ub()).unwrap();
        let from_file = QueryEngine::new(&file_tree, &file)
            .aknn(&q, k, alpha, &AknnConfig::lb_lp_ub())
            .unwrap();
        let (mut a, mut b) = (from_mem.ids(), from_file.ids());
        a.sort();
        b.sort();
        assert_eq!(a, b, "α {alpha} k {k}: file store diverges from memory store");
    }
    std::fs::remove_dir_all(&dir).ok();
}
