//! RKNN result semantics against a brute-force oracle (Definition 5):
//! every reported item must genuinely be a k-nearest neighbour at the
//! probabilities inside each of its qualifying sub-ranges — and nowhere
//! outside them — on the §6.1 synthetic workload.

use fuzzy_knn::core::distance::alpha_distance_brute;
use fuzzy_knn::prelude::*;
use fuzzy_knn::query::Interval;

fn small_synthetic() -> SyntheticConfig {
    SyntheticConfig {
        num_objects: 50,
        points_per_object: 50,
        seed: 0xBEE5,
        ..SyntheticConfig::default()
    }
}

/// The k-th smallest exact α-distance over the whole dataset.
fn kth_distance(store: &MemStore<2>, q: &FuzzyObject2, t: Threshold, k: usize) -> f64 {
    let mut all: Vec<f64> = store
        .summaries()
        .iter()
        .map(|s| alpha_distance_brute(&store.probe(s.id).unwrap(), q, t).unwrap())
        .collect();
    all.sort_by(f64::total_cmp);
    all[k - 1]
}

/// Probability samples inside one qualifying interval: both endpoints
/// (nudged inward when the endpoint is open) and the midpoint.
fn samples_inside(iv: &Interval) -> Vec<f64> {
    let nudge = 1e-7 * (iv.hi - iv.lo).max(1e-3);
    let lo = if iv.lo_closed { iv.lo } else { iv.lo + nudge };
    let hi = if iv.hi_closed { iv.hi } else { iv.hi - nudge };
    if lo > hi {
        return vec![(iv.lo + iv.hi) / 2.0];
    }
    vec![lo, (lo + hi) / 2.0, hi]
}

#[test]
fn every_item_is_a_knn_inside_each_reported_subrange() {
    let gen = small_synthetic();
    let store = MemStore::from_objects(gen.generate()).unwrap();
    let tree =
        RTree::bulk_load(store.summaries().to_vec(), RTreeConfig { max_entries: 8, min_fill: 0.4 });
    let engine = QueryEngine::new(&tree, &store);

    for (k, lo, hi) in [(3usize, 0.25, 0.65), (6, 0.1, 0.95), (1, 0.5, 0.5)] {
        let q = gen.query_object(k as u64);
        for algo in RknnAlgorithm::paper_variants() {
            let res = engine.rknn(&q, k, lo, hi, algo, &AknnConfig::lb_lp_ub()).unwrap();
            assert!(!res.items.is_empty(), "k {k} [{lo},{hi}] {}: empty result", algo.name());
            for item in &res.items {
                assert!(
                    !item.range.is_empty(),
                    "{}: item {} with empty range",
                    algo.name(),
                    item.id
                );
                let obj = store.probe(item.id).unwrap();
                for iv in item.range.intervals() {
                    // Qualifying ranges must stay inside the query range.
                    assert!(
                        iv.lo >= lo - 1e-9 && iv.hi <= hi + 1e-9,
                        "k {k} {}: range [{}, {}] of {} leaves [{lo}, {hi}]",
                        algo.name(),
                        iv.lo,
                        iv.hi,
                        item.id
                    );
                    for alpha in samples_inside(iv) {
                        let t = Threshold::at(alpha);
                        let d = alpha_distance_brute(&obj, &q, t).unwrap();
                        let kth = kth_distance(&store, &q, t, k);
                        assert!(
                            d <= kth + 1e-9,
                            "k {k} {}: {} claims kNN at α {alpha} but d {d} > k-th {kth}",
                            algo.name(),
                            item.id
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn items_do_not_qualify_outside_their_ranges() {
    // Converse direction: at a grid of probabilities across the query
    // range, the items whose range covers α must be exactly the brute-force
    // kNN set (continuous memberships make distance ties measure-zero).
    let gen = small_synthetic();
    let store = MemStore::from_objects(gen.generate()).unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let q = gen.query_object(11);
    let (k, lo, hi) = (4usize, 0.2, 0.8);
    let res = engine.rknn(&q, k, lo, hi, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub()).unwrap();

    for step in 0..=12 {
        let alpha = lo + (hi - lo) * step as f64 / 12.0;
        let t = Threshold::at(alpha);
        let mut claimed: Vec<ObjectId> =
            res.items.iter().filter(|i| i.range.contains(alpha)).map(|i| i.id).collect();
        claimed.sort();

        let mut all: Vec<(f64, ObjectId)> = store
            .summaries()
            .iter()
            .map(|s| (alpha_distance_brute(&store.probe(s.id).unwrap(), &q, t).unwrap(), s.id))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut want: Vec<ObjectId> = all[..k].iter().map(|&(_, id)| id).collect();
        want.sort();

        assert_eq!(claimed, want, "α {alpha}: claimed kNN set diverges from oracle");
    }
}

#[test]
fn union_of_ranges_covers_the_query_range() {
    // Definition 5: at every α in [αs, αe] there are exactly k nearest
    // neighbours, so the union of all qualifying ranges must cover the
    // whole query range with total measure k · (αe − αs).
    let gen = small_synthetic();
    let store = MemStore::from_objects(gen.generate()).unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let q = gen.query_object(5);
    let (k, lo, hi) = (3usize, 0.3, 0.9);
    let res = engine.rknn(&q, k, lo, hi, RknnAlgorithm::Rss, &AknnConfig::lb_lp_ub()).unwrap();

    let mut union = IntervalSet::empty();
    let mut total = 0.0;
    for item in &res.items {
        union = union.union(&item.range);
        total += item.range.measure();
    }
    assert!(union.contains(lo) && union.contains(hi));
    assert!((union.measure() - (hi - lo)).abs() < 1e-9, "union measure {}", union.measure());
    assert!(
        (total - k as f64 * (hi - lo)).abs() < 1e-9,
        "total qualifying measure {total} ≠ k·|range| {}",
        k as f64 * (hi - lo)
    );
}
