//! End-to-end pipeline: generate → write to disk → reopen → index → query,
//! exercising every crate through the public umbrella API.

use fuzzy_knn::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fuzzy-knn-pipeline-{}-{name}", std::process::id()))
}

#[test]
fn synthetic_disk_pipeline() {
    let path = tmp("synthetic");
    let gen = SyntheticConfig {
        num_objects: 300,
        points_per_object: 120,
        seed: 99,
        ..SyntheticConfig::default()
    };
    // Write, drop, reopen: queries must work against the reopened file.
    {
        let store = fuzzy_knn::datagen::write_dataset(&path, gen.generate()).unwrap();
        assert_eq!(store.len(), 300);
    }
    let store: FileStore<2> = FileStore::open(&path).unwrap();
    assert_eq!(store.len(), 300);

    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    tree.validate().unwrap();
    let engine = QueryEngine::new(&tree, &store);
    let q = gen.query_object(5);

    let res = engine.aknn(&q, 10, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
    assert_eq!(res.neighbors.len(), 10);
    assert!(res.stats.object_accesses > 0);
    assert!(res.stats.object_accesses <= 300);

    // The same query against a MemStore of the same data gives the same
    // neighbour set (disk layer is transparent).
    let mem = MemStore::from_objects(gen.generate()).unwrap();
    let tree2 = RTree::bulk_load(mem.summaries().to_vec(), RTreeConfig::default());
    let engine2 = QueryEngine::new(&tree2, &mem);
    let res2 = engine2.aknn(&q, 10, 0.5, &AknnConfig::lb_lp_ub()).unwrap();
    let mut a = res.ids();
    let mut b = res2.ids();
    a.sort();
    b.sort();
    assert_eq!(a, b);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn cell_disk_pipeline_rknn() {
    let path = tmp("cell");
    let gen = CellConfig {
        num_objects: 150,
        points_per_object: 100,
        clusters: 4,
        seed: 123,
        ..CellConfig::default()
    };
    let store = fuzzy_knn::datagen::write_dataset(&path, gen.generate()).unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let q = gen.query_object(11);

    let reference =
        engine.rknn(&q, 5, 0.3, 0.7, RknnAlgorithm::Naive, &AknnConfig::lb_lp_ub()).unwrap();
    for algo in RknnAlgorithm::paper_variants() {
        let res = engine.rknn(&q, 5, 0.3, 0.7, algo, &AknnConfig::lb_lp_ub()).unwrap();
        assert!(
            res.approx_eq(&reference, 1e-9),
            "{} disagrees with naive on disk-backed cells",
            algo.name()
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn cached_store_reduces_repeat_probes() {
    let gen = SyntheticConfig {
        num_objects: 200,
        points_per_object: 80,
        quantize_levels: Some(8), // coarse levels force several RKNN steps
        seed: 7,
        ..SyntheticConfig::default()
    };
    let inner = MemStore::from_objects(gen.generate()).unwrap();
    let store = CachedStore::new(inner, 200);
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let q = gen.query_object(1);

    // Basic RKNN repeats AKNN calls; with the cache, repeat probes become
    // hits instead of object reads (the abl-cache ablation).
    let res = engine.rknn(&q, 5, 0.1, 0.95, RknnAlgorithm::Basic, &AknnConfig::basic()).unwrap();
    assert!(res.stats.aknn_calls >= 2, "workload too easy: {:?}", res.stats);
    let snap = store.stats();
    assert!(snap.cache_hits > 0, "expected cache hits, got {snap:?}");
}

#[test]
fn incremental_index_matches_bulk_load_results() {
    let gen = SyntheticConfig {
        num_objects: 250,
        points_per_object: 60,
        seed: 31,
        ..SyntheticConfig::default()
    };
    let store = MemStore::from_objects(gen.generate()).unwrap();

    let bulk = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let mut incr: RTree<2> = RTree::new(RTreeConfig::default());
    for s in store.summaries() {
        incr.insert(*s);
    }
    incr.validate().unwrap();

    let q = gen.query_object(2);
    let e1 = QueryEngine::new(&bulk, &store);
    let e2 = QueryEngine::new(&incr, &store);
    for alpha in [0.3, 0.7] {
        let mut a = e1.aknn(&q, 8, alpha, &AknnConfig::lb_lp_ub()).unwrap().ids();
        let mut b = e2.aknn(&q, 8, alpha, &AknnConfig::lb_lp_ub()).unwrap().ids();
        a.sort();
        b.sort();
        assert_eq!(a, b, "bulk vs incremental disagree at α={alpha}");
    }
}

#[test]
fn stats_are_coherent_across_layers() {
    let gen = SyntheticConfig {
        num_objects: 400,
        points_per_object: 60,
        seed: 63,
        ..SyntheticConfig::default()
    };
    let store = MemStore::from_objects(gen.generate()).unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let q = gen.query_object(8);

    store.reset_stats();
    tree.stats().reset();
    let res = engine.aknn(&q, 15, 0.5, &AknnConfig::lb()).unwrap();
    // The per-query stats must equal the store/tree counter deltas.
    assert_eq!(res.stats.object_accesses, store.stats().object_reads);
    assert_eq!(res.stats.node_accesses, tree.stats().node_accesses());
    // Without lazy probe, every access implies a distance evaluation.
    assert_eq!(res.stats.object_accesses, res.stats.distance_evals);
}
