//! Quickstart: generate a dataset, index it, run AKNN and RKNN queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fuzzy_knn::prelude::*;

fn main() {
    // 1. A small synthetic dataset per the paper's §6.1 (scaled down).
    let gen = SyntheticConfig {
        num_objects: 1_000,
        points_per_object: 200,
        ..SyntheticConfig::default()
    };
    println!("generating {} objects x {} points ...", gen.num_objects, gen.points_per_object);
    let store = MemStore::from_objects(gen.generate()).expect("valid dataset");

    // 2. Bulk-load the R-tree over the in-memory summaries.
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    println!("indexed: {} objects, R-tree height {}", tree.len(), tree.height());
    let engine = QueryEngine::new(&tree, &store);

    // 3. AKNN: the 10 nearest objects at confidence 0.5.
    let query = gen.query_object(42);
    let res = engine.aknn(&query, 10, 0.5, &AknnConfig::lb_lp_ub()).expect("aknn");
    println!("\nAKNN  k=10  α=0.5:");
    for n in &res.neighbors {
        println!("  {n}");
    }
    println!(
        "  cost: {} object accesses, {} node accesses, {:?}",
        res.stats.object_accesses, res.stats.node_accesses, res.stats.wall
    );

    // 4. The same query at a higher confidence can rank differently:
    // only the crisp parts of each object count.
    let strict = engine.aknn(&query, 10, 0.9, &AknnConfig::lb_lp_ub()).expect("aknn");
    let low: Vec<ObjectId> = res.ids();
    let changed = strict.ids().iter().filter(|id| !low.contains(id)).count();
    println!("\nAKNN at α=0.9 differs in {changed} of 10 results");

    // 5. RKNN: every 5NN member across α ∈ [0.3, 0.7] with its range.
    let rknn = engine
        .rknn(&query, 5, 0.3, 0.7, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub())
        .expect("rknn");
    println!("\nRKNN  k=5  I=[0.3, 0.7]  ({} qualifying objects):", rknn.items.len());
    for item in &rknn.items {
        println!("  {item}");
    }
    println!(
        "  cost: {} object accesses ({} candidates after pruning)",
        rknn.stats.object_accesses, rknn.stats.candidates
    );
}
