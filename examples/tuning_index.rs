//! Tuning walkthrough: what each optimization of the paper buys you.
//!
//! Runs the same AKNN workload under all four engine variants (§6.2) and
//! the same RKNN workload under the three algorithms (§6.3), printing the
//! cost table — a miniature of the paper's Figures 11-15 for your own
//! data.
//!
//! ```sh
//! cargo run --release --example tuning_index
//! ```

use fuzzy_knn::prelude::*;
use std::time::Instant;

fn main() {
    let gen = SyntheticConfig {
        num_objects: 4_000,
        points_per_object: 250,
        ..SyntheticConfig::default()
    };
    println!(
        "dataset: {} objects x {} points (synthetic §6.1)",
        gen.num_objects, gen.points_per_object
    );
    let store = MemStore::from_objects(gen.generate()).expect("dataset");
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);
    let queries: Vec<_> = (0..8).map(|i| gen.query_object(i)).collect();
    let (k, alpha) = (20, 0.5);

    println!("\nAKNN variants (k={k}, α={alpha}, mean over {} queries):", queries.len());
    println!(
        "{:<10} {:>14} {:>13} {:>12} {:>10}",
        "variant", "object access", "node access", "dist evals", "time"
    );
    for cfg in AknnConfig::paper_variants() {
        let started = Instant::now();
        let mut stats: Vec<QueryStats> = Vec::new();
        for q in &queries {
            stats.push(engine.aknn(q, k, alpha, &cfg).expect("aknn").stats);
        }
        let mean = QueryStats::mean(&stats);
        println!(
            "{:<10} {:>14} {:>13} {:>12} {:>9.1?}",
            cfg.variant_name(),
            mean.object_accesses,
            mean.node_accesses,
            mean.distance_evals,
            started.elapsed() / queries.len() as u32,
        );
    }

    println!("\nRKNN algorithms (k=10, I=[0.4, 0.6], mean over {} queries):", queries.len());
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>10}",
        "algorithm", "object access", "aknn calls", "candidates", "time"
    );
    for algo in RknnAlgorithm::paper_variants() {
        let started = Instant::now();
        let mut stats: Vec<QueryStats> = Vec::new();
        for q in &queries {
            stats.push(
                engine.rknn(q, 10, 0.4, 0.6, algo, &AknnConfig::lb_lp_ub()).expect("rknn").stats,
            );
        }
        let mean = QueryStats::mean(&stats);
        println!(
            "{:<10} {:>14} {:>12} {:>12} {:>9.1?}",
            algo.name(),
            mean.object_accesses,
            mean.aknn_calls,
            mean.candidates,
            started.elapsed() / queries.len() as u32,
        );
    }

    println!(
        "\nreading the table: LB tightens the lower bound so fewer objects are probed; \
         LP defers probes until forced; UB confirms buffered objects without probing. \
         For RKNN, RSS replaces repeated index traversals with one AKNN + one range \
         search; ICR additionally skips refinement steps (same probes, less CPU)."
    );
}
