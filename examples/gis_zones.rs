//! GIS scenario: fuzzy regions with indeterminate boundaries.
//!
//! Vague spatial phenomena — flood extents, soil classes, pollution
//! plumes — are classic fuzzy regions (Altman 1994; Schneider 1999, both
//! cited by the paper). This example builds fuzzy "risk zones", persists
//! them through the disk store (the realistic deployment: zones on disk,
//! summaries in RAM), and asks: *which k zones are nearest to this
//! facility, and how does the answer depend on how strictly we read the
//! zone boundaries?*
//!
//! ```sh
//! cargo run --release --example gis_zones
//! ```

use fuzzy_knn::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("fuzzy-knn-gis-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("zones.fzkn");

    // Fuzzy zones: irregular blobs, fuzzier than cells (wide rims).
    let gen = CellConfig {
        num_objects: 1_500,
        points_per_object: 300,
        mean_radius: 1.2,
        irregularity: 0.5,
        clusters: 0, // zones scattered uniformly
        quantize_levels: 100,
        seed: 0x6E05,
        ..CellConfig::default()
    };
    println!("writing {} fuzzy zones to {} ...", gen.num_objects, path.display());
    let store = fuzzy_knn::datagen::write_dataset(&path, gen.generate()).expect("write dataset");
    println!(
        "store: {} zones on disk, {} summaries in memory",
        store.len(),
        store.summaries().len()
    );

    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);

    // The "facility" is itself a fuzzy object (e.g. a site with an
    // uncertain perimeter).
    let facility = gen.query_object(3);

    // Strict reading (core zones only) vs loose reading (any plausible
    // extent) of the boundaries.
    for (label, alpha) in [("loose (α=0.25)", 0.25), ("strict (α=0.90)", 0.90)] {
        let res = engine.aknn(&facility, 3, alpha, &AknnConfig::lb_lp_ub()).expect("aknn");
        println!("\n3 nearest zones, {label}:");
        for n in &res.neighbors {
            println!("  zone {:<6} d_α ∈ [{:.4}, {:.4}]", n.id.0, n.dist.lo(), n.dist.hi());
        }
        println!("  ({} zone files read)", res.stats.object_accesses);
    }

    // The full risk picture: RKNN across all confidence readings.
    let rknn = engine
        .rknn(&facility, 3, 0.25, 0.9, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub())
        .expect("rknn");
    println!("\nzones that are ever among the 3 nearest for α ∈ [0.25, 0.9]:");
    for item in &rknn.items {
        println!("  zone {:<6} for α ∈ {}", item.id.0, item.range);
    }

    std::fs::remove_dir_all(&dir).ok();
}
