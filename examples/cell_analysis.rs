//! Biomedical scenario from the paper's introduction: nearest-cell search
//! over probabilistic segmentation masks.
//!
//! Cells in microscopy images have no crisp boundary; probabilistic
//! segmentation assigns each pixel a probability of belonging to the cell.
//! Analysts tune the confidence level: a high threshold searches by the
//! clear kernel only, a low threshold lets the fuzzy rim participate —
//! and the nearest neighbours change accordingly (e.g. for nearest-
//! neighbour distance distributions in brain aging studies).
//!
//! ```sh
//! cargo run --release --example cell_analysis
//! ```

use fuzzy_knn::prelude::*;

fn main() {
    // A "tissue image" of clustered, irregular cells with 8-bit masks.
    let gen = CellConfig {
        num_objects: 2_000,
        points_per_object: 250,
        clusters: 12,
        cluster_spread: 4.0,
        ..CellConfig::default()
    };
    println!("segmenting {} cells ...", gen.num_objects);
    let store = MemStore::from_objects(gen.generate()).expect("valid dataset");
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &store);

    // The cell of interest.
    let query = gen.query_object(7);
    let kernel_area = query.kernel_mbr().area();
    let support_area = query.support_mbr().area();
    println!(
        "query cell: {} mask pixels, kernel MBR {:.4} / support MBR {:.4} area",
        query.len(),
        kernel_area,
        support_area
    );

    // Sweep the confidence threshold the way an analyst would.
    println!("\n α     5 nearest cells (ids)                        d_α of 1st");
    let mut previous: Vec<ObjectId> = Vec::new();
    let mut sweep_accesses = 0;
    for alpha in [0.2, 0.4, 0.6, 0.8, 0.95] {
        let res = engine.aknn(&query, 5, alpha, &AknnConfig::lb_lp_ub()).expect("aknn");
        sweep_accesses += res.stats.object_accesses;
        let ids = res.ids();
        let marker = if !previous.is_empty() && ids != previous { "  <- changed" } else { "" };
        let first = res.neighbors.first().map(|n| n.dist.lo()).unwrap_or(f64::NAN);
        println!(
            " {alpha:<4}  {:<44}  {first:.4}{marker}",
            ids.iter().map(|i| i.0.to_string()).collect::<Vec<_>>().join(", ")
        );
        previous = ids;
    }

    // RKNN answers the sweep in one query, with exact switchover points.
    let rknn = engine
        .rknn(&query, 5, 0.2, 0.95, RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub())
        .expect("rknn");
    println!("\nRKNN over [0.2, 0.95]: {} cells ever enter the 5NN set", rknn.items.len());
    for item in &rknn.items {
        println!("  cell {:<6} qualifies on {}", item.id.0, item.range);
    }
    println!(
        "\none RKNN query probed {} objects — the 5-point α sweep above probed {} \
         and still only sampled the range",
        rknn.stats.object_accesses, sweep_accesses
    );
}
