//! End-to-end tests of the resident server: answers over the socket must
//! be **byte-identical** to one-shot engine runs — at 1, 2 and 8
//! concurrent connections, across a live index SWAP mid-run — deadlines
//! must expire without wedging the connection, and a full admission queue
//! must shed load with BUSY rather than buffer unboundedly.

use fuzzy_core::{FuzzyObject, ObjectId};
use fuzzy_geom::Point;
use fuzzy_query::{execute_one, BatchRequest, DistBound, QueryEngine, QueryScratch};
use fuzzy_server::protocol::read_frame;
use fuzzy_server::{
    serve, Client, ErrorCode, ListenAddr, QuerySource, Request, Response, ServeIndex, ServeOptions,
};
use fuzzy_store::{FileStore, FileStoreWriter, ObjectStore};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// A deterministic pseudo-random fuzzy object (xorshift, no external RNG).
fn blob(id: u64, cx: f64, cy: f64) -> FuzzyObject<2> {
    let mut state = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut pts = vec![Point::xy(cx, cy)];
    let mut mus = vec![1.0];
    for _ in 1..20 {
        let r = rnd();
        let th = rnd() * std::f64::consts::TAU;
        pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
        mus.push((((1.0 - r) * 10.0).round() / 10.0).clamp(0.1, 1.0));
    }
    FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
}

/// Write `n` objects into a fresh store file and open it.
fn store_file(tag: &str, n: u64) -> (PathBuf, FileStore<2>) {
    let path =
        std::env::temp_dir().join(format!("fuzzy-serve-e2e-{tag}-{}.fzkn", std::process::id()));
    let mut writer = FileStoreWriter::<2>::create(&path).unwrap();
    for i in 0..n {
        writer.append(&blob(i, (i % 12) as f64 * 3.0, (i / 12) as f64 * 3.0)).unwrap();
    }
    (path.clone(), writer.finish().unwrap())
}

/// Canonical byte-level rendering of an AKNN answer: ids plus the raw
/// IEEE-754 bits of every distance. Equal strings ⇔ byte-identical.
fn fingerprint(neighbors: &[fuzzy_query::Neighbor]) -> String {
    neighbors
        .iter()
        .map(|n| match n.dist {
            DistBound::Exact(d) => format!("{}={:016x};", n.id, d.to_bits()),
            DistBound::Bounded { lo, hi } => {
                format!("{}=[{:016x},{:016x}];", n.id, lo.to_bits(), hi.to_bits())
            }
        })
        .collect()
}

/// The mixed AKNN workload both sides answer: every object id, cycling
/// through k, α and variant.
fn workload(n: u64) -> Vec<(u64, u32, f64, fuzzy_server::WireVariant)> {
    use fuzzy_server::WireVariant as V;
    (0..n)
        .map(|i| {
            let variant = match i % 4 {
                0 => V::Basic,
                1 => V::Lb,
                2 => V::LbLp,
                _ => V::LbLpUb,
            };
            (i, 3 + (i % 5) as u32, [0.3, 0.5, 0.8][(i % 3) as usize], variant)
        })
        .collect()
}

/// One-shot reference answers through the exact engine path the server
/// workers use (`execute_one` with a reused scratch) over the same
/// bulk-loaded tree a `ServeIndex::mem_from_store` holds.
fn reference_answers(
    store: &FileStore<2>,
    work: &[(u64, u32, f64, fuzzy_server::WireVariant)],
) -> Vec<String> {
    let tree = fuzzy_index::RTree::bulk_load(
        store.summaries().to_vec(),
        fuzzy_index::RTreeConfig::default(),
    );
    let engine = QueryEngine::new(&tree, store);
    let mut scratch = QueryScratch::new();
    work.iter()
        .map(|&(id, k, alpha, variant)| {
            let q = store.probe(ObjectId(id)).unwrap().as_ref().clone();
            let request = BatchRequest::aknn(q, k as usize, alpha, variant.config());
            match execute_one(&engine, &request, &mut scratch).unwrap() {
                fuzzy_query::BatchResponse::Aknn(r) => fingerprint(&r.neighbors),
                other => panic!("expected AKNN, got {other:?}"),
            }
        })
        .collect()
}

fn aknn_request(id: u64, k: u32, alpha: f64, variant: fuzzy_server::WireVariant) -> Request {
    Request::Aknn { query: QuerySource::Stored(ObjectId(id)), k, alpha, variant, deadline_ms: 0 }
}

/// The acceptance bar: served answers are byte-identical to one-shot runs
/// at 1, 2 and 8 connections, with a live SWAP landing mid-run.
#[test]
fn served_answers_are_byte_identical_across_connections_and_a_live_swap() {
    let (path, store) = store_file("determinism", 60);
    let work = workload(60);
    let expected = reference_answers(&store, &work);

    let opts = ServeOptions { workers: 2, ..ServeOptions::default() };
    let index = ServeIndex::mem_from_store(&store);
    let handle = serve(store, index, &ListenAddr::parse("127.0.0.1:0"), &opts).unwrap();
    let addr = handle.addr().to_string();

    let mut control = Client::connect(&addr).unwrap();
    match control.call(&Request::Info).unwrap() {
        Response::Info { objects, epoch, workers } => {
            assert_eq!(objects, 60);
            assert_eq!(epoch, 0);
            assert_eq!(workers, 2);
        }
        other => panic!("INFO: {other:?}"),
    }

    for connections in [1usize, 2, 8] {
        let swap_at = work.len() / 2;
        let answers = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for conn in 0..connections {
                let addr = addr.clone();
                let work = &work;
                handles.push(scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                    let mut out = Vec::new();
                    for (i, &(id, k, alpha, variant)) in work.iter().enumerate() {
                        if i % connections != conn {
                            continue;
                        }
                        match client.call(&aknn_request(id, k, alpha, variant)).unwrap() {
                            Response::Aknn { neighbors, .. } => {
                                out.push((i, fingerprint(&neighbors)));
                            }
                            other => panic!("query {i}: {other:?}"),
                        }
                    }
                    out
                }));
            }
            // A SWAP lands while the query threads are mid-workload. The
            // `:mem:` path bulk-reloads an equivalent tree from the same
            // store, so answers before and after must not differ.
            let mut swapper = Client::connect(&addr).unwrap();
            // Let roughly half the workload drain first.
            std::thread::sleep(Duration::from_millis(20));
            match swapper.call(&Request::Swap { index_path: ":mem:".into() }).unwrap() {
                Response::Swapped { objects, .. } => assert_eq!(objects, 60),
                other => panic!("SWAP at query ~{swap_at}: {other:?}"),
            }

            let mut merged = vec![String::new(); work.len()];
            for h in handles {
                for (i, print) in h.join().unwrap() {
                    merged[i] = print;
                }
            }
            merged
        });
        assert_eq!(
            answers, expected,
            "{connections}-connection run diverged from one-shot answers"
        );
    }

    // The SWAPs published new epochs (one per connection-count round).
    match control.call(&Request::Info).unwrap() {
        Response::Info { epoch, .. } => assert_eq!(epoch, 3),
        other => panic!("INFO after swaps: {other:?}"),
    }
    match control.call(&Request::Stats).unwrap() {
        Response::Stats { served, swaps, errors, .. } => {
            assert_eq!(served, 3 * work.len() as u64);
            assert_eq!(swaps, 3);
            assert_eq!(errors, 0);
        }
        other => panic!("STATS: {other:?}"),
    }

    handle.stop();
    std::fs::remove_file(&path).ok();
}

/// Serving a shard forest: a live SWAP from a 1-shard `.fzsm` to a
/// 4-shard `.fzsm` of the same dataset lands mid-run, and every answer —
/// before, during and after, at 1, 2 and 8 connections — is
/// byte-identical to the one-shot canonical engine. The sharded path
/// resolves every answer exactly (scatter-gather arbitrates candidates
/// globally), so the reference is `QueryEngine::aknn_exact`, not the
/// lazy confirmation-order path the single-tree snapshots serve.
#[test]
fn sharded_swap_mid_run_is_byte_identical() {
    let (path, store) = store_file("shard-swap", 60);
    let work = workload(60);

    // Canonical exact reference over the same store.
    let tree = fuzzy_index::RTree::bulk_load(
        store.summaries().to_vec(),
        fuzzy_index::RTreeConfig { max_entries: 8, min_fill: 0.4 },
    );
    let engine = QueryEngine::new(&tree, &store);
    let expected: Vec<String> = work
        .iter()
        .map(|&(id, k, alpha, variant)| {
            let q = store.probe(ObjectId(id)).unwrap().as_ref().clone();
            let r = engine.aknn_exact(&q, k as usize, alpha, &variant.config()).unwrap();
            fingerprint(&r.neighbors)
        })
        .collect();

    // Two manifests over the same objects, 1 and 4 shards.
    let base = std::env::temp_dir();
    let pid = std::process::id();
    let mut manifests = Vec::new();
    for shards in [1usize, 4] {
        let manifest = base.join(format!("fuzzy-serve-shard-swap-{pid}-s{shards}.fzsm"));
        fuzzy_index::ShardedIndex::<2>::build(
            store.summaries().to_vec(),
            shards,
            &fuzzy_index::StrCenterAssign,
            fuzzy_index::RTreeConfig { max_entries: 8, min_fill: 0.4 },
            &manifest,
            4096,
        )
        .unwrap();
        manifests.push(manifest);
    }

    let opts = ServeOptions { workers: 2, ..ServeOptions::default() };
    let index = ServeIndex::open(manifests[0].to_str().unwrap(), 8).unwrap();
    let handle = serve(store, index, &ListenAddr::parse("127.0.0.1:0"), &opts).unwrap();
    let addr = handle.addr().to_string();

    for (round, connections) in [1usize, 2, 8].into_iter().enumerate() {
        // Odd rounds swap back to the 1-shard forest, even rounds to the
        // 4-shard one — every round crosses a shard-count change mid-run.
        let target = &manifests[(round + 1) % 2];
        let answers = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for conn in 0..connections {
                let addr = addr.clone();
                let work = &work;
                handles.push(scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                    let mut out = Vec::new();
                    for (i, &(id, k, alpha, variant)) in work.iter().enumerate() {
                        if i % connections != conn {
                            continue;
                        }
                        match client.call(&aknn_request(id, k, alpha, variant)).unwrap() {
                            Response::Aknn { neighbors, .. } => {
                                out.push((i, fingerprint(&neighbors)));
                            }
                            other => panic!("query {i}: {other:?}"),
                        }
                    }
                    out
                }));
            }
            let mut swapper = Client::connect(&addr).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            match swapper.call(&Request::Swap { index_path: target.display().to_string() }).unwrap()
            {
                Response::Swapped { objects, .. } => assert_eq!(objects, 60),
                other => panic!("SWAP round {round}: {other:?}"),
            }

            let mut merged = vec![String::new(); work.len()];
            for h in handles {
                for (i, print) in h.join().unwrap() {
                    merged[i] = print;
                }
            }
            merged
        });
        assert_eq!(
            answers, expected,
            "{connections}-connection run diverged across the shard-count swap"
        );
    }

    let mut control = Client::connect(&addr).unwrap();
    match control.call(&Request::Stats).unwrap() {
        Response::Stats { served, swaps, errors, .. } => {
            assert_eq!(served, 3 * work.len() as u64);
            assert_eq!(swaps, 3);
            assert_eq!(errors, 0);
        }
        other => panic!("STATS: {other:?}"),
    }

    handle.stop();
    for manifest in &manifests {
        let meta = fuzzy_index::ShardManifest::<2>::load(manifest).unwrap();
        for row in &meta.shards {
            let p = fuzzy_index::shard::resolve_shard_path(manifest, &row.path);
            std::fs::remove_file(fuzzy_index::delta_path_for(&p)).ok();
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_file(manifest).ok();
    }
    std::fs::remove_file(&path).ok();
}

/// An expired deadline must surface as DEADLINE_EXCEEDED — and the same
/// connection must keep working afterwards.
///
/// The frames are written raw, back-to-back, against a single-worker
/// server: heavy naive-RKNNs occupy the worker, so by the time the
/// 1 ms-deadline query leaves the queue its deadline has long passed.
#[test]
fn expired_deadline_is_typed_and_does_not_stall_the_connection() {
    // Big enough that even a release build spends well over the doomed
    // query's 1 ms deadline on the Θ(N²) heavy frames ahead of it.
    let (path, store) = store_file("deadline", 400);
    let index = ServeIndex::mem_from_store(&store);
    let opts = ServeOptions { workers: 1, queue_depth: 8, ..ServeOptions::default() };
    let handle = serve(store, index, &ListenAddr::parse("127.0.0.1:0"), &opts).unwrap();
    let ListenAddr::Tcp(addr) = handle.addr().clone() else { panic!("tcp") };

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    use std::io::Write as _;

    // Frames 1–3: heavy — naive RKNN is Θ(N²) profile computations.
    let heavies: Vec<Request> = (0..3)
        .map(|i| Request::Rknn {
            query: QuerySource::Stored(ObjectId(i)),
            k: 8,
            alpha_start: 0.2,
            alpha_end: 0.8,
            algo: fuzzy_query::RknnAlgorithm::Naive,
            variant: fuzzy_server::WireVariant::Basic,
            deadline_ms: 0,
        })
        .collect();
    // Frame 4: 1 ms deadline, queued behind the heavy queries (admission
    // stamps the deadline, so queue wait counts against it).
    let doomed = Request::Aknn {
        query: QuerySource::Stored(ObjectId(4)),
        k: 5,
        alpha: 0.5,
        variant: fuzzy_server::WireVariant::LbLpUb,
        deadline_ms: 1,
    };
    // Frame 5: no deadline — must still be answered normally.
    let after = aknn_request(5, 5, 0.5, fuzzy_server::WireVariant::LbLpUb);

    let mut burst = Vec::new();
    for (i, heavy) in heavies.iter().enumerate() {
        burst.extend_from_slice(&heavy.encode(i as u64 + 1));
    }
    burst.extend_from_slice(&doomed.encode(4));
    burst.extend_from_slice(&after.encode(5));
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();

    let mut responses = Vec::new();
    for _ in 0..5 {
        let frame = read_frame(&mut stream).unwrap().expect("response");
        responses
            .push((frame.request_id, Response::decode(frame.frame_type, &frame.payload).unwrap()));
    }
    responses.sort_by_key(|(id, _)| *id);

    for heavy in &responses[..3] {
        assert!(matches!(heavy.1, Response::Rknn { .. }), "heavy: {heavy:?}");
    }
    match &responses[3].1 {
        Response::Error { code, .. } => assert_eq!(*code, ErrorCode::DeadlineExceeded),
        other => panic!("doomed request: {other:?}"),
    }
    assert!(
        matches!(responses[4].1, Response::Aknn { .. }),
        "connection stalled after deadline: {:?}",
        responses[4]
    );

    // The counter ticked, and only once.
    let mut control = Client::connect(&handle.addr().to_string()).unwrap();
    match control.call(&Request::Stats).unwrap() {
        Response::Stats { deadline_exceeded, .. } => assert_eq!(deadline_exceeded, 1),
        other => panic!("STATS: {other:?}"),
    }

    handle.stop();
    std::fs::remove_file(&path).ok();
}

/// With one worker and a queue of one, a burst over a unix socket must be
/// shed with BUSY — never buffered or dropped without an answer.
#[test]
fn full_queue_sheds_busy_over_unix_socket() {
    let (path, store) = store_file("busy", 120);
    let index = ServeIndex::mem_from_store(&store);
    let socket = std::env::temp_dir().join(format!("fuzzy-serve-busy-{}.sock", std::process::id()));
    let opts = ServeOptions { workers: 1, queue_depth: 1, ..ServeOptions::default() };
    let handle =
        serve(store, index, &ListenAddr::parse(&format!("unix:{}", socket.display())), &opts)
            .unwrap();

    let mut stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    use std::io::Write as _;

    // A burst of slow queries: the first occupies the worker, the second
    // fits the queue, the rest must bounce with BUSY immediately.
    let burst_len = 12u64;
    let mut burst = Vec::new();
    for i in 0..burst_len {
        let slow = Request::Rknn {
            query: QuerySource::Stored(ObjectId(i)),
            k: 4,
            alpha_start: 0.2,
            alpha_end: 0.8,
            algo: fuzzy_query::RknnAlgorithm::Naive,
            variant: fuzzy_server::WireVariant::Basic,
            deadline_ms: 0,
        };
        burst.extend_from_slice(&slow.encode(i + 1));
    }
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();

    let (mut answered, mut busy) = (0u64, 0u64);
    for _ in 0..burst_len {
        let frame = read_frame(&mut stream).unwrap().expect("response");
        match Response::decode(frame.frame_type, &frame.payload).unwrap() {
            Response::Rknn { .. } => answered += 1,
            Response::Busy => busy += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(answered >= 1, "at least the first query must run");
    assert!(busy >= burst_len - 2, "a full queue must shed, got only {busy} BUSY");
    assert_eq!(answered + busy, burst_len);

    // The server survived the burst and still answers.
    let mut control = Client::connect(&format!("unix:{}", socket.display())).unwrap();
    match control.call(&Request::Stats).unwrap() {
        Response::Stats { busy: shed, .. } => assert_eq!(shed, busy),
        other => panic!("STATS: {other:?}"),
    }

    handle.stop();
    assert!(!socket.exists(), "stale socket file must be removed on shutdown");
    std::fs::remove_file(&path).ok();
}

/// SHUTDOWN over the wire acknowledges, then the daemon exits and the
/// address stops accepting work.
#[test]
fn shutdown_frame_stops_the_daemon() {
    let (path, store) = store_file("shutdown", 30);
    let index = ServeIndex::mem_from_store(&store);
    let handle =
        serve(store, index, &ListenAddr::parse("127.0.0.1:0"), &ServeOptions::default()).unwrap();
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    assert!(matches!(client.call(&Request::Shutdown).unwrap(), Response::ShutdownAck));
    assert!(handle.is_shutting_down());

    // `fkq serve` parks in join(); the SHUTDOWN frame alone must wake the
    // blocked accept loop, or the daemon never exits. Bound-wait for it.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.join();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("join() must return after a SHUTDOWN frame without an extra connection");
    std::fs::remove_file(&path).ok();
}

/// The metric backend behind the wire: a `.fzmt` file served after a
/// live SWAP answers AKNN byte-identically to direct `metric_aknn` runs,
/// RKNN rides the tree's `NodeAccess` face, and swaps to indexes the
/// serve path cannot back — approximate candidate files, or a metric
/// tree built under a metric the wire does not serve — answer the typed
/// `IndexMismatch` code instead of swapping.
#[test]
fn metric_index_serves_and_mismatched_swaps_are_typed() {
    use fuzzy_core::metric::{GraphMetric, RoadNetwork, L2};
    use fuzzy_core::Threshold;
    use fuzzy_index::{LshConfig, LshIndex, MTree, MTreeConfig};
    use fuzzy_query::metric_aknn;
    use std::sync::Arc;

    let (path, store) = store_file("metric-serve", 48);
    let pid = std::process::id();
    let base = std::env::temp_dir();

    // The exact metric tree the SWAP will load.
    let objects: Vec<FuzzyObject<2>> =
        (0..48).map(|i| store.probe(ObjectId(i)).unwrap().as_ref().clone()).collect();
    let mtree = MTree::build(&L2, &objects, MTreeConfig::default());
    let mtree_path = base.join(format!("fuzzy-serve-metric-{pid}.fzmt"));
    mtree.save(&mtree_path).unwrap();

    // A pristine approximate index: structurally valid, still unservable.
    let lsh_path = base.join(format!("fuzzy-serve-metric-{pid}.fzlh"));
    LshIndex::build(store.summaries(), LshConfig::default()).save(&lsh_path).unwrap();

    // A metric tree under the graph metric: valid file, wrong metric.
    let net = RoadNetwork::new(
        vec![Point::xy(0.0, 0.0), Point::xy(1.0, 0.0), Point::xy(0.0, 1.0)],
        vec![(0, 1, 1.0), (1, 2, 1.0)],
    )
    .unwrap();
    let graph = GraphMetric::new(Arc::new(net));
    let graph_path = base.join(format!("fuzzy-serve-metric-{pid}-graph.fzmt"));
    MTree::build(&graph, &objects, MTreeConfig::default()).save(&graph_path).unwrap();

    // Reference answers straight through `metric_aknn`.
    let work: Vec<(u64, u32, f64)> =
        (0..48).map(|i| (i, 2 + (i % 6) as u32, [0.3, 0.5, 0.8][(i % 3) as usize])).collect();
    let expected: Vec<String> = work
        .iter()
        .map(|&(id, k, alpha)| {
            let q = store.probe(ObjectId(id)).unwrap();
            let r = metric_aknn(&L2, &mtree, &store, &q, k as usize, Threshold::at(alpha)).unwrap();
            fingerprint(&r.neighbors)
        })
        .collect();

    let opts = ServeOptions { workers: 2, ..ServeOptions::default() };
    let index = ServeIndex::mem_from_store(&store);
    let handle = serve(store, index, &ListenAddr::parse("127.0.0.1:0"), &opts).unwrap();
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Mismatched swaps first: typed rejection, the live index is untouched.
    for (target, needle) in [(&lsh_path, "approximate"), (&graph_path, "metric 'graph'")] {
        match client.call(&Request::Swap { index_path: target.display().to_string() }).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::IndexMismatch, "swap to {}", target.display());
                assert!(message.contains(needle), "message {message:?} must name the mismatch");
            }
            other => panic!("swap to {} must be rejected: {other:?}", target.display()),
        }
    }

    // The real swap: the metric tree goes live.
    match client.call(&Request::Swap { index_path: mtree_path.display().to_string() }).unwrap() {
        Response::Swapped { objects, .. } => assert_eq!(objects, 48),
        other => panic!("metric SWAP: {other:?}"),
    }
    match client.call(&Request::Info).unwrap() {
        Response::Info { objects, .. } => assert_eq!(objects, 48),
        other => panic!("INFO: {other:?}"),
    }

    // Served answers are byte-identical to the direct metric runs.
    for (&(id, k, alpha), want) in work.iter().zip(&expected) {
        let req = aknn_request(id, k, alpha, fuzzy_server::WireVariant::LbLpUb);
        match client.call(&req).unwrap() {
            Response::Aknn { neighbors, .. } => {
                assert_eq!(&fingerprint(&neighbors), want, "query {id} diverged on the wire");
            }
            other => panic!("AKNN {id}: {other:?}"),
        }
    }

    // RKNN answers through the tree's NodeAccess face.
    let rknn = Request::Rknn {
        query: QuerySource::Stored(ObjectId(7)),
        k: 3,
        alpha_start: 0.3,
        alpha_end: 0.8,
        algo: fuzzy_query::RknnAlgorithm::Rss,
        variant: fuzzy_server::WireVariant::LbLpUb,
        deadline_ms: 0,
    };
    match client.call(&rknn).unwrap() {
        Response::Rknn { .. } => {}
        other => panic!("RKNN over the metric snapshot: {other:?}"),
    }

    // A bad alpha stays a typed error on this backend too.
    match client.call(&aknn_request(3, 5, 0.0, fuzzy_server::WireVariant::Basic)).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::InvalidArgument),
        other => panic!("alpha=0 must be rejected: {other:?}"),
    }

    handle.stop();
    for p in [&path, &mtree_path, &lsh_path, &graph_path] {
        std::fs::remove_file(p).ok();
    }
}
