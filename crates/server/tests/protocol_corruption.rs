//! Adversarial decode tests for the FZQP codec: every way a frame can be
//! damaged in transit must surface as a typed [`WireError`] — never a
//! panic, a hang, or an over-allocation — and undamaged frames must
//! round-trip bit-exactly (property-tested below).

use fuzzy_core::ObjectId;
use fuzzy_query::{DistBound, Interval, IntervalSet, Neighbor, RknnAlgorithm, RknnItem};
use fuzzy_server::protocol::{
    decode_frame, encode_frame, read_frame, HEADER_LEN, MAX_PAYLOAD, TRAILER_LEN, T_INFO,
};
use fuzzy_server::{QuerySource, Request, Response, WireError, WireStats, WireVariant};
use proptest::prelude::*;
use std::io::Cursor;

fn sample_request() -> Request {
    Request::Aknn {
        query: QuerySource::Inline {
            id: ObjectId(42),
            rows: vec![([1.0, 2.0], 0.5), ([3.0, -4.0], 0.25)],
        },
        k: 10,
        alpha: 0.5,
        variant: WireVariant::LbLpUb,
        deadline_ms: 250,
    }
}

fn sample_frame() -> Vec<u8> {
    sample_request().encode(7)
}

fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    let (frame, consumed) = decode_frame(bytes)?;
    assert_eq!(consumed, bytes.len());
    Request::decode(frame.frame_type, &frame.payload)
}

#[test]
fn roundtrip_of_the_sample_request() {
    assert_eq!(decode_request(&sample_frame()).unwrap(), sample_request());
}

#[test]
fn truncation_at_every_boundary_is_typed() {
    let frame = sample_frame();
    for cut in 0..frame.len() {
        // In-memory decode: any strict prefix is Truncated.
        match decode_frame(&frame[..cut]) {
            Err(WireError::Truncated) => {}
            other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
        }
        // Stream decode: zero bytes is a clean close; a partial frame is
        // Truncated (the reader must not block forever on the difference).
        let mut cursor = Cursor::new(frame[..cut].to_vec());
        match read_frame(&mut cursor) {
            Ok(None) if cut == 0 => {}
            Err(WireError::Truncated) if cut > 0 => {}
            other => panic!("stream prefix of {cut} bytes: got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_in_any_magic_byte() {
    for i in 0..4 {
        let mut frame = sample_frame();
        frame[i] ^= 0xFF;
        assert!(matches!(decode_frame(&frame), Err(WireError::BadMagic)), "corrupt magic byte {i}");
    }
}

#[test]
fn version_mismatch_reports_the_found_version() {
    for found in [0u16, 2, 0x7FFF, 0xFFFF] {
        let mut frame = sample_frame();
        frame[4..6].copy_from_slice(&found.to_le_bytes());
        match decode_frame(&frame) {
            Err(WireError::BadVersion { found: f }) => assert_eq!(f, found),
            other => panic!("version {found}: got {other:?}"),
        }
    }
}

#[test]
fn hostile_length_is_rejected_before_allocation() {
    for len in [MAX_PAYLOAD + 1, u32::MAX] {
        let mut frame = sample_frame();
        frame[16..20].copy_from_slice(&len.to_le_bytes());
        match decode_frame(&frame) {
            Err(WireError::Oversize { len: l }) => assert_eq!(l, len),
            other => panic!("length {len}: got {other:?}"),
        }
        // The streaming reader must also refuse without trying to read
        // (and so allocate) the claimed payload.
        let mut cursor = Cursor::new(frame.clone());
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Oversize { .. })));
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    let frame = sample_frame();
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut damaged = frame.clone();
            damaged[byte] ^= 1 << bit;
            // Whatever the flip hit — magic, version, type, id, length,
            // payload or the checksum itself — decoding must fail with a
            // typed error; a silent wrong answer would be the real bug.
            let result = decode_frame(&damaged);
            assert!(result.is_err(), "bit {bit} of byte {byte}: flip went undetected: {result:?}");
        }
    }
}

#[test]
fn trailing_payload_bytes_are_rejected() {
    // A structurally valid INFO frame whose payload has one stray byte:
    // the frame checksums fine, but the payload decoder must notice.
    let frame = encode_frame(T_INFO, 1, &[0xAB]);
    let (raw, _) = decode_frame(&frame).unwrap();
    match Request::decode(raw.frame_type, &raw.payload) {
        Err(WireError::Malformed { what }) => assert_eq!(what, "trailing bytes in payload"),
        other => panic!("got {other:?}"),
    }
}

#[test]
fn unknown_frame_type_and_tags_are_typed() {
    // Unknown frame type (structurally valid frame).
    let frame = encode_frame(0x42, 1, &[]);
    let (raw, _) = decode_frame(&frame).unwrap();
    assert!(matches!(
        Request::decode(raw.frame_type, &raw.payload),
        Err(WireError::UnknownType { found: 0x42 })
    ));
    assert!(matches!(
        Response::decode(raw.frame_type, &raw.payload),
        Err(WireError::UnknownType { found: 0x42 })
    ));

    // Unknown query-source tag / variant / algorithm inside an otherwise
    // valid AKNN or RKNN payload.
    let reencode = |mutate: fn(&mut Vec<u8>)| {
        let mut payload = sample_request().payload();
        mutate(&mut payload);
        Request::decode(fuzzy_server::protocol::T_AKNN, &payload)
    };
    assert!(matches!(
        reencode(|p| p[0] = 2),
        Err(WireError::Malformed { what: "unknown query-source tag" })
    ));
    let variant_offset = sample_request().payload().len() - 5; // variant, then deadline u32
    assert!(
        matches!(
            {
                let mut p = sample_request().payload();
                p[variant_offset] = 9;
                Request::decode(fuzzy_server::protocol::T_AKNN, &p)
            },
            Err(WireError::Malformed { what: "unknown variant" })
        ),
        "variant byte out of range"
    );

    let rknn = Request::Rknn {
        query: QuerySource::Stored(ObjectId(3)),
        k: 2,
        alpha_start: 0.2,
        alpha_end: 0.8,
        algo: RknnAlgorithm::Rss,
        variant: WireVariant::Basic,
        deadline_ms: 0,
    };
    let mut p = rknn.payload();
    let algo_offset = p.len() - 6; // algo, variant, deadline u32
    p[algo_offset] = 7;
    assert!(matches!(
        Request::decode(fuzzy_server::protocol::T_RKNN, &p),
        Err(WireError::Malformed { what: "unknown algorithm" })
    ));
}

#[test]
fn corrupt_counts_cannot_drive_allocation() {
    // An inline query whose row count claims far more rows than the
    // payload holds: the decoder must refuse before reserving.
    let request = Request::Aknn {
        query: QuerySource::Inline { id: ObjectId(1), rows: vec![([0.0, 0.0], 1.0)] },
        k: 1,
        alpha: 0.5,
        variant: WireVariant::Basic,
        deadline_ms: 0,
    };
    let mut payload = request.payload();
    // Row count sits after tag (1) + id (8).
    payload[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Request::decode(fuzzy_server::protocol::T_AKNN, &payload),
        Err(WireError::Malformed { what: "count exceeds payload" })
    ));
}

#[test]
fn unknown_bound_tag_and_error_code_in_responses() {
    let response = Response::Aknn {
        neighbors: vec![Neighbor { id: ObjectId(1), dist: DistBound::Exact(1.5) }],
        stats: WireStats::default(),
    };
    let mut payload = response.payload();
    payload[12] = 2; // bound tag after count u32 + id u64
    assert!(matches!(
        Response::decode(fuzzy_server::protocol::T_AKNN_R, &payload),
        Err(WireError::Malformed { what: "unknown bound tag" })
    ));

    let error = Response::Error { code: fuzzy_server::ErrorCode::Malformed, message: "x".into() };
    let mut payload = error.payload();
    payload[0..2].copy_from_slice(&999u16.to_le_bytes());
    assert!(matches!(
        Response::decode(fuzzy_server::protocol::T_ERROR, &payload),
        Err(WireError::Malformed { what: "unknown error code" })
    ));
}

#[test]
fn stream_reader_decodes_back_to_back_frames() {
    let mut bytes = sample_request().encode(1);
    bytes.extend_from_slice(&Request::Info.encode(2));
    let mut cursor = Cursor::new(bytes);
    let first = read_frame(&mut cursor).unwrap().unwrap();
    assert_eq!(first.request_id, 1);
    let second = read_frame(&mut cursor).unwrap().unwrap();
    assert_eq!(second.request_id, 2);
    assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF between frames");
}

// ---------------------------------------------------------------------
// Property tests: encode → decode identity for arbitrary messages.
//
// The stub proptest has no enum combinators, so both generators expand a
// single u64 seed through a splitmix64 stream into an arbitrary message —
// every branch and field still varies per case.

struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A finite f64 (NaN would break the `==` identity check).
    fn f64(&mut self) -> f64 {
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2e9
    }

    fn query(&mut self) -> QuerySource {
        if self.below(2) == 0 {
            QuerySource::Stored(ObjectId(self.next()))
        } else {
            let rows = (0..self.below(6)).map(|_| ([self.f64(), self.f64()], self.f64())).collect();
            QuerySource::Inline { id: ObjectId(self.next()), rows }
        }
    }

    fn variant(&mut self) -> WireVariant {
        match self.below(4) {
            0 => WireVariant::Basic,
            1 => WireVariant::Lb,
            2 => WireVariant::LbLp,
            _ => WireVariant::LbLpUb,
        }
    }

    fn stats(&mut self) -> WireStats {
        WireStats {
            object_accesses: self.next(),
            node_accesses: self.next(),
            node_disk_reads: self.next(),
            distance_evals: self.next(),
            profile_computations: self.next(),
            bound_evals: self.next(),
            aknn_calls: self.next(),
            candidates: self.next(),
            wall_nanos: self.next(),
        }
    }

    fn request(&mut self) -> Request {
        match self.below(6) {
            0 => Request::Aknn {
                query: self.query(),
                k: self.next() as u32,
                alpha: self.f64(),
                variant: self.variant(),
                deadline_ms: self.next() as u32,
            },
            1 => Request::Rknn {
                query: self.query(),
                k: self.next() as u32,
                alpha_start: self.f64(),
                alpha_end: self.f64(),
                algo: match self.below(4) {
                    0 => RknnAlgorithm::Naive,
                    1 => RknnAlgorithm::Basic,
                    2 => RknnAlgorithm::Rss,
                    _ => RknnAlgorithm::RssIcr,
                },
                variant: self.variant(),
                deadline_ms: self.next() as u32,
            },
            2 => Request::Info,
            3 => Request::Stats,
            4 => Request::Swap {
                index_path: String::from_utf8(
                    (0..self.below(40)).map(|_| b'a' + (self.below(26) as u8)).collect(),
                )
                .expect("ascii"),
            },
            _ => Request::Shutdown,
        }
    }

    fn response(&mut self) -> Response {
        match self.below(8) {
            0 => Response::Aknn {
                neighbors: (0..self.below(8))
                    .map(|_| Neighbor {
                        id: ObjectId(self.next()),
                        dist: if self.below(2) == 0 {
                            DistBound::Exact(self.f64())
                        } else {
                            let lo = self.f64().abs();
                            DistBound::Bounded { lo, hi: lo + self.f64().abs() }
                        },
                    })
                    .collect(),
                stats: self.stats(),
            },
            1 => Response::Rknn {
                items: (0..self.below(6))
                    .map(|_| {
                        let mut range = IntervalSet::empty();
                        // Disjoint, ascending intervals inside (0, 1]
                        // survive IntervalSet's normalisation untouched.
                        let mut lo = 0.01;
                        for _ in 0..self.below(3) {
                            let hi = lo + 0.05;
                            range.push(Interval::new(lo, self.below(2) == 0, hi, true));
                            lo = hi + 0.05;
                        }
                        RknnItem { id: ObjectId(self.next()), range }
                    })
                    .collect(),
                stats: self.stats(),
            },
            2 => Response::Info {
                objects: self.next(),
                epoch: self.next(),
                workers: self.next() as u16,
            },
            3 => Response::Stats {
                served: self.next(),
                busy: self.next(),
                deadline_exceeded: self.next(),
                errors: self.next(),
                swaps: self.next(),
            },
            4 => Response::Swapped { epoch: self.next(), objects: self.next() },
            5 => Response::ShutdownAck,
            6 => Response::Error {
                code: fuzzy_server::ErrorCode::from_u16((self.below(9) + 1) as u16)
                    .expect("codes 1..=9"),
                message: "injected".into(),
            },
            _ => Response::Busy,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_requests_roundtrip(seed in any::<u64>(), request_id in any::<u64>()) {
        let request = Mix(seed).request();
        let bytes = request.encode(request_id);
        let (frame, consumed) = decode_frame(&bytes).expect("own encoding decodes");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(frame.request_id, request_id);
        prop_assert_eq!(Request::decode(frame.frame_type, &frame.payload).unwrap(), request);
    }

    #[test]
    fn arbitrary_responses_roundtrip(seed in any::<u64>(), request_id in any::<u64>()) {
        let response = Mix(seed).response();
        let bytes = response.encode(request_id);
        let (frame, consumed) = decode_frame(&bytes).expect("own encoding decodes");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(frame.request_id, request_id);
        prop_assert_eq!(Response::decode(frame.frame_type, &frame.payload).unwrap(), response);
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(seed in any::<u64>(), len in 0usize..200) {
        let mut mix = Mix(seed);
        let bytes: Vec<u8> = (0..len).map(|_| mix.next() as u8).collect();
        let _ = decode_frame(&bytes);
        let _ = read_frame(&mut Cursor::new(bytes.clone()));
        // Also through a frame whose envelope is valid but whose payload
        // is noise — exercises every payload decoder branch.
        for frame_type in [0x01, 0x02, 0x05, 0x81, 0x82, 0x83, 0x84, 0xE0] {
            let framed = encode_frame(frame_type, 1, &bytes);
            let (raw, _) = decode_frame(&framed).expect("envelope is valid");
            let _ = Request::decode(raw.frame_type, &raw.payload);
            let _ = Response::decode(raw.frame_type, &raw.payload);
        }
    }
}

#[test]
fn frame_sizes_match_the_spec() {
    // Pin the byte-level constants PROTOCOL.md documents.
    let frame = Request::Info.encode(0);
    assert_eq!(frame.len(), HEADER_LEN + TRAILER_LEN);
    assert_eq!(&frame[..4], b"FZQP");
    assert_eq!(frame[4..6], 1u16.to_le_bytes());
    assert_eq!(frame[6], T_INFO);
}
