//! The resident query daemon.
//!
//! Data flow (see ARCHITECTURE.md for the diagram):
//!
//! * A **listener thread** accepts TCP or unix-socket connections and
//!   spawns one **reader thread** per connection.
//! * Reader threads decode frames. Control-plane requests (INFO, STATS,
//!   SWAP, SHUTDOWN) are answered inline — they never queue behind
//!   queries. Query requests are resolved to [`BatchRequest`]s and pushed
//!   onto a **bounded job queue**; a full queue answers BUSY immediately
//!   (admission control: the pool never builds unbounded backlog, it
//!   sheds load at the door).
//! * A fixed pool of **worker threads** drains the queue. Each worker
//!   owns one [`QueryScratch`] reused across every query it answers, and
//!   pins the published index snapshot *per query*, so a SWAP between two
//!   requests is visible to the second while in-flight queries keep the
//!   tree they started on ([`Versioned`] epoch semantics).
//! * Each request carries a deadline. Workers check it before starting,
//!   and the engine checks it at traversal expansion points, so an
//!   overdue query aborts with DEADLINE_EXCEEDED within one expansion
//!   instead of burning its worker; the connection stays usable.
//!
//! Responses are written frame-at-a-time under a per-connection writer
//! lock, so concurrent workers never interleave bytes of two frames.

use crate::protocol::{
    inline_object, read_frame, ErrorCode, QuerySource, RawFrame, Request, Response, WireError,
    WIRE_DIMS,
};
use fuzzy_core::metric::L2;
use fuzzy_core::Threshold;
use fuzzy_index::{
    delta_path_for, MTree, NodeAccess, OverlayRTree, PagedRTree, RTree, RTreeConfig, ShardedIndex,
};
use fuzzy_query::{
    execute_caught, execute_caught_sharded, metric_aknn, BatchRequest, BatchResponse, QueryEngine,
    QueryError, QueryScratch, ShardScratch, ShardedQueryEngine, Versioned,
};
use fuzzy_store::{FileStore, ObjectStore, StoreError};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::num::NonZeroUsize;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The index backend a server answers from: the in-memory tree, a
/// disk-resident paged tree with its overlay, or a sharded forest opened
/// from a `.fzsm` manifest. All are cheap enough to clone for
/// [`Versioned`] snapshot publishing (arena `Vec` / small deltas plus
/// `Arc` bumps on the base files).
#[derive(Clone, Debug)]
pub enum ServeIndex {
    /// In-memory R-tree (bulk-loaded from the store's summaries).
    Mem(RTree<WIRE_DIMS>),
    /// Disk-resident paged tree, with any sidecar delta replayed.
    Paged(OverlayRTree<WIRE_DIMS>),
    /// A shard forest from a `.fzsm` manifest, each shard with its own
    /// delta replayed. Queries scatter-gather across the shards with a
    /// shared τ bound and answer in canonical (distance, id) order, so a
    /// live SWAP between shardings of the same data is invisible on the
    /// wire.
    Sharded(Vec<OverlayRTree<WIRE_DIMS>>),
    /// A covering-ball M-tree from a `.fzmt` file. The wire serves L2
    /// only, so the loader rejects files built under any other metric
    /// (a SWAP answers [`ErrorCode::IndexMismatch`]). AKNN requests run
    /// through `metric_aknn`; RKNN rides the tree's `NodeAccess` face.
    Metric(MTree<WIRE_DIMS>),
}

impl ServeIndex {
    /// Bulk-load an in-memory tree over a store's summaries.
    pub fn mem_from_store(store: &FileStore<WIRE_DIMS>) -> Self {
        Self::Mem(RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default()))
    }

    /// Open a persisted index (replaying its delta log if one exists).
    pub fn open_paged(path: &str, cache_pages: usize) -> Result<Self, StoreError> {
        if delta_path_for(path).exists() {
            Ok(Self::Paged(OverlayRTree::open_with_cache(path, cache_pages)?))
        } else {
            let base = Arc::new(PagedRTree::open_with_cache(path, cache_pages)?);
            Ok(Self::Paged(OverlayRTree::new(base)?))
        }
    }

    /// Open a shard forest from its `.fzsm` manifest, replaying each
    /// shard's delta log if one exists.
    pub fn open_sharded(path: &str, cache_pages: usize) -> Result<Self, StoreError> {
        let (_, shards) = ShardedIndex::open_overlays(path, cache_pages)?;
        Ok(Self::Sharded(shards))
    }

    /// Open a metric index from a `.fzmt` file. The wire serves L2 only;
    /// a file recording any other metric is rejected with a typed error
    /// naming the mismatch.
    pub fn open_metric(path: &str) -> Result<Self, StoreError> {
        let name = MTree::<WIRE_DIMS>::stored_metric_name(path)?;
        if name != "l2" {
            return Err(StoreError::Corrupt {
                reason: format!("metric mismatch: server serves 'l2', index records '{name}'"),
            });
        }
        Ok(Self::Metric(MTree::load(path, &L2)?))
    }

    /// Open whatever `path` names: a `.fzsm` manifest becomes a sharded
    /// forest, a `.fzmt` file a metric tree, anything else a paged tree.
    pub fn open(path: &str, cache_pages: usize) -> Result<Self, StoreError> {
        if is_sharded_path(path) {
            Self::open_sharded(path, cache_pages)
        } else if is_metric_path(path) {
            Self::open_metric(path)
        } else {
            Self::open_paged(path, cache_pages)
        }
    }

    /// Live objects across the whole index (all shards).
    pub fn object_count(&self) -> u64 {
        match self {
            Self::Mem(t) => NodeAccess::len(t) as u64,
            Self::Paged(t) => NodeAccess::len(t) as u64,
            Self::Sharded(shards) => shards.iter().map(|s| NodeAccess::len(s) as u64).sum(),
            Self::Metric(t) => NodeAccess::len(t) as u64,
        }
    }

    /// Number of shards (1 for the single-tree backends).
    pub fn shard_count(&self) -> usize {
        match self {
            Self::Mem(_) | Self::Paged(_) | Self::Metric(_) => 1,
            Self::Sharded(shards) => shards.len(),
        }
    }
}

/// Does `path` name a shard manifest (by extension)?
pub fn is_sharded_path(path: &str) -> bool {
    std::path::Path::new(path).extension().is_some_and(|e| e.eq_ignore_ascii_case("fzsm"))
}

/// Does `path` name a metric M-tree file (by extension)?
pub fn is_metric_path(path: &str) -> bool {
    std::path::Path::new(path).extension().is_some_and(|e| e.eq_ignore_ascii_case("fzmt"))
}

/// Does `path` name an approximate candidate index (by extension)?
/// These cannot back the serve path — they generate candidates, they do
/// not answer queries — so a SWAP to one is an [`ErrorCode::IndexMismatch`].
pub fn is_approx_path(path: &str) -> bool {
    std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("fzlh") || e.eq_ignore_ascii_case("fzvp"))
}

/// Where the server listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP socket address, e.g. `127.0.0.1:7878` (`:0` for ephemeral).
    Tcp(String),
    /// A unix-domain socket path.
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parse an address string: `unix:<path>` selects a unix socket,
    /// anything else is a TCP `host:port`.
    pub fn parse(s: &str) -> Self {
        match s.strip_prefix("unix:") {
            Some(path) => Self::Unix(PathBuf::from(path)),
            None => Self::Tcp(s.to_string()),
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tcp(a) => write!(f, "{a}"),
            Self::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads; 0 means one per available CPU.
    pub workers: usize,
    /// Admission-control bound: queries queued but not yet running.
    /// A full queue sheds new queries with BUSY.
    pub queue_depth: usize,
    /// Buffer-pool capacity for indexes opened by SWAP.
    pub cache_pages: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self { workers: 0, queue_depth: 64, cache_pages: fuzzy_index::DEFAULT_CACHE_PAGES }
    }
}

/// Monotonic counters, readable via STATS.
#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    busy: AtomicU64,
    deadline_exceeded: AtomicU64,
    errors: AtomicU64,
    swaps: AtomicU64,
}

/// State shared by the listener, readers and workers.
struct Shared {
    index: Versioned<ServeIndex>,
    store: Arc<FileStore<WIRE_DIMS>>,
    counters: Counters,
    shutdown: AtomicBool,
    workers: u16,
    cache_pages: usize,
    /// The bound address, so a SHUTDOWN frame can wake the blocked
    /// `accept` (see [`wake_listener`]).
    addr: ListenAddr,
}

/// One admitted query, en route to a worker.
struct Job {
    request: BatchRequest<WIRE_DIMS>,
    request_id: u64,
    writer: SharedWriter,
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// A running server. Dropping the handle does NOT stop the daemon; call
/// [`ServerHandle::stop`] (or send a SHUTDOWN frame) for orderly exit.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: ListenAddr,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the ephemeral port resolved, for TCP).
    pub fn addr(&self) -> &ListenAddr {
        &self.addr
    }

    /// Current epoch of the published index snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.index.epoch()
    }

    /// True once SHUTDOWN was requested (frame or [`ServerHandle::stop`]).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Request shutdown and join the listener and worker threads.
    /// Connection reader threads exit when their peers disconnect.
    pub fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        wake_listener(&self.addr);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Block until the daemon exits (a SHUTDOWN frame arrived). Used by
    /// `fkq serve` to park the main thread.
    pub fn join(mut self) {
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Connect once to the bound address so a blocking `accept` observes the
/// shutdown flag.
fn wake_listener(addr: &ListenAddr) {
    match addr {
        ListenAddr::Tcp(a) => drop(TcpStream::connect(a)),
        ListenAddr::Unix(p) => drop(UnixStream::connect(p)),
    }
}

/// Start a server over an already-open store and index.
///
/// Binds the listen address, spawns the worker pool and the listener
/// thread, and returns immediately with a [`ServerHandle`].
pub fn serve(
    store: FileStore<WIRE_DIMS>,
    index: ServeIndex,
    listen: &ListenAddr,
    opts: &ServeOptions,
) -> std::io::Result<ServerHandle> {
    let workers = if opts.workers == 0 {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    } else {
        opts.workers
    };

    // Bind before building `Shared`: the bound address (with any
    // ephemeral port resolved) must be visible to connection handlers so
    // a SHUTDOWN frame can wake the blocking `accept`.
    enum Bound {
        Tcp(TcpListener),
        Unix(UnixListener, PathBuf),
    }
    let (bound, listener) = match listen {
        ListenAddr::Tcp(a) => {
            let listener = TcpListener::bind(a)?;
            let bound = ListenAddr::Tcp(listener.local_addr()?.to_string());
            (bound, Bound::Tcp(listener))
        }
        ListenAddr::Unix(path) => {
            // A stale socket file from a dead server blocks rebinding.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            (ListenAddr::Unix(path.clone()), Bound::Unix(listener, path.clone()))
        }
    };

    let shared = Arc::new(Shared {
        index: Versioned::new(index),
        store: Arc::new(store),
        counters: Counters::default(),
        shutdown: AtomicBool::new(false),
        workers: workers.min(u16::MAX as usize) as u16,
        cache_pages: opts.cache_pages,
        addr: bound.clone(),
    });

    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(opts.queue_depth);
    let rx = Arc::new(Mutex::new(rx));
    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || worker_loop(&shared, &rx))
        })
        .collect();

    let listener_handle = match listener {
        Bound::Tcp(listener) => {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    spawn_tcp_reader(&shared, &tx, stream);
                }
            })
        }
        Bound::Unix(listener, socket_path) => {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    spawn_unix_reader(&shared, &tx, stream);
                }
                let _ = std::fs::remove_file(&socket_path);
            })
        }
    };

    Ok(ServerHandle {
        shared,
        addr: bound,
        listener: Some(listener_handle),
        workers: worker_handles,
    })
}

fn spawn_tcp_reader(shared: &Arc<Shared>, tx: &SyncSender<Job>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let shared = Arc::clone(shared);
    let tx = tx.clone();
    std::thread::spawn(move || {
        connection_loop(&shared, &tx, stream, Box::new(write_half));
    });
}

fn spawn_unix_reader(shared: &Arc<Shared>, tx: &SyncSender<Job>, stream: UnixStream) {
    let Ok(write_half) = stream.try_clone() else { return };
    let shared = Arc::clone(shared);
    let tx = tx.clone();
    std::thread::spawn(move || {
        connection_loop(&shared, &tx, stream, Box::new(write_half));
    });
}

/// Per-connection reader: decode frames, answer control requests inline,
/// enqueue queries. Exits on EOF, transport error, or server shutdown.
fn connection_loop<R: std::io::Read>(
    shared: &Arc<Shared>,
    tx: &SyncSender<Job>,
    mut reader: R,
    writer: Box<dyn Write + Send>,
) {
    let writer: SharedWriter = Arc::new(Mutex::new(writer));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean disconnect
            Err(WireError::Io(_)) | Err(WireError::Truncated) => return,
            Err(e) => {
                // Framing is unrecoverable after a malformed envelope —
                // report once and drop the connection.
                let resp = Response::Error { code: ErrorCode::Malformed, message: e.to_string() };
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                write_response(&writer, 0, &resp);
                return;
            }
        };
        if !handle_frame(shared, tx, &writer, frame) {
            return;
        }
    }
}

/// Dispatch one verified frame. Returns false when the connection (or the
/// whole server) should wind down.
fn handle_frame(
    shared: &Arc<Shared>,
    tx: &SyncSender<Job>,
    writer: &SharedWriter,
    frame: RawFrame,
) -> bool {
    let id = frame.request_id;
    let request = match Request::decode(frame.frame_type, &frame.payload) {
        Ok(r) => r,
        Err(WireError::UnknownType { found }) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            let resp = Response::Error {
                code: ErrorCode::Unsupported,
                message: format!("frame type 0x{found:02x}"),
            };
            write_response(writer, id, &resp);
            return true;
        }
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            let resp = Response::Error { code: ErrorCode::Malformed, message: e.to_string() };
            write_response(writer, id, &resp);
            return true;
        }
    };

    match request {
        Request::Info => {
            let snap = shared.index.snapshot();
            let resp = Response::Info {
                objects: snap.object_count(),
                epoch: shared.index.epoch(),
                workers: shared.workers,
            };
            write_response(writer, id, &resp);
            true
        }
        Request::Stats => {
            let c = &shared.counters;
            let resp = Response::Stats {
                served: c.served.load(Ordering::Relaxed),
                busy: c.busy.load(Ordering::Relaxed),
                deadline_exceeded: c.deadline_exceeded.load(Ordering::Relaxed),
                errors: c.errors.load(Ordering::Relaxed),
                swaps: c.swaps.load(Ordering::Relaxed),
            };
            write_response(writer, id, &resp);
            true
        }
        Request::Swap { index_path } => {
            let resp = match open_swap_index(shared, &index_path) {
                Ok(new_index) => {
                    let objects = new_index.object_count();
                    shared.index.write(|ix| *ix = new_index);
                    shared.counters.swaps.fetch_add(1, Ordering::Relaxed);
                    Response::Swapped { epoch: shared.index.epoch(), objects }
                }
                Err((code, message)) => {
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    Response::Error { code, message }
                }
            };
            write_response(writer, id, &resp);
            true
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            // The listener is parked in a blocking `accept`; poke it so
            // it observes the flag and `ServerHandle::join` returns.
            wake_listener(&shared.addr);
            write_response(writer, id, &Response::ShutdownAck);
            false
        }
        Request::Aknn { query, k, alpha, variant, deadline_ms } => {
            let admitted = Instant::now();
            let deadline = deadline_of(admitted, deadline_ms);
            let q = match resolve_query(shared, &query) {
                Ok(q) => q,
                Err(resp) => {
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    write_response(writer, id, &resp);
                    return true;
                }
            };
            let cfg = variant.config().with_deadline(deadline);
            let request = BatchRequest::aknn(q, k as usize, alpha, cfg);
            enqueue(shared, tx, writer, id, request);
            true
        }
        Request::Rknn { query, k, alpha_start, alpha_end, algo, variant, deadline_ms } => {
            let admitted = Instant::now();
            let deadline = deadline_of(admitted, deadline_ms);
            let q = match resolve_query(shared, &query) {
                Ok(q) => q,
                Err(resp) => {
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    write_response(writer, id, &resp);
                    return true;
                }
            };
            let cfg = variant.config().with_deadline(deadline);
            let request = BatchRequest::rknn(q, k as usize, (alpha_start, alpha_end), algo, cfg);
            enqueue(shared, tx, writer, id, request);
            true
        }
    }
}

fn deadline_of(admitted: Instant, deadline_ms: u32) -> Option<Instant> {
    (deadline_ms > 0).then(|| admitted + Duration::from_millis(deadline_ms as u64))
}

/// Materialize the request's query object: probe the store for stored-id
/// sources, validate inline ones.
fn resolve_query(
    shared: &Shared,
    source: &QuerySource,
) -> Result<fuzzy_core::FuzzyObject<WIRE_DIMS>, Response> {
    match source {
        QuerySource::Stored(id) => match shared.store.probe(*id) {
            Ok(obj) => Ok(obj.as_ref().clone()),
            Err(e @ StoreError::UnknownObject(_)) => {
                Err(Response::Error { code: ErrorCode::NotFound, message: e.to_string() })
            }
            Err(e) => Err(Response::Error { code: ErrorCode::Store, message: e.to_string() }),
        },
        QuerySource::Inline { id, rows } => inline_object(*id, rows)
            .map_err(|message| Response::Error { code: ErrorCode::InvalidArgument, message }),
    }
}

/// Admission control: try to hand the job to the pool; a full queue means
/// an immediate BUSY, the request is never buffered.
fn enqueue(
    shared: &Shared,
    tx: &SyncSender<Job>,
    writer: &SharedWriter,
    request_id: u64,
    request: BatchRequest<WIRE_DIMS>,
) {
    let job = Job { request, request_id, writer: Arc::clone(writer) };
    match tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(job)) => {
            shared.counters.busy.fetch_add(1, Ordering::Relaxed);
            write_response(&job.writer, job.request_id, &Response::Busy);
        }
        Err(TrySendError::Disconnected(job)) => {
            write_response(
                &job.writer,
                job.request_id,
                &Response::Error {
                    code: ErrorCode::Unsupported,
                    message: "server is shutting down".to_string(),
                },
            );
        }
    }
}

/// One worker's long-lived scratch: the single-tree lane plus the
/// sharded lanes, so a SWAP between index layouts never costs the worker
/// its warmed allocations for either path.
struct WorkerScratch {
    single: QueryScratch<WIRE_DIMS>,
    sharded: ShardScratch<WIRE_DIMS>,
}

/// Worker: drain the queue with one long-lived scratch; poll the shutdown
/// flag between jobs.
fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Job>>>) {
    let mut scratch = WorkerScratch { single: QueryScratch::new(), sharded: ShardScratch::new() };
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.recv_timeout(Duration::from_millis(50))
        };
        match job {
            Ok(job) => run_job(shared, &mut scratch, job),
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Execute one admitted query against the currently published snapshot
/// and write its response.
fn run_job(shared: &Arc<Shared>, scratch: &mut WorkerScratch, job: Job) {
    // Pin the snapshot per query: a SWAP published while this job queued
    // is picked up here; a SWAP landing mid-query is not (epoch
    // isolation). Single-tree snapshots answer through the classic
    // engine; shard forests scatter-gather with the shared τ bound.
    let snapshot = shared.index.snapshot();
    let store = shared.store.as_ref();
    let executed = match snapshot.as_ref() {
        ServeIndex::Mem(tree) => {
            execute_caught(&QueryEngine::new(tree, store), &job.request, &mut scratch.single)
        }
        ServeIndex::Paged(tree) => {
            execute_caught(&QueryEngine::new(tree, store), &job.request, &mut scratch.single)
        }
        ServeIndex::Sharded(shards) => execute_caught_sharded(
            &ShardedQueryEngine::new(shards, store),
            &job.request,
            &mut scratch.sharded,
        ),
        ServeIndex::Metric(tree) => execute_metric(tree, store, &job.request, &mut scratch.single),
    };
    let resp = match executed {
        Ok(BatchResponse::Aknn(r)) => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            Response::Aknn { stats: (&r.stats).into(), neighbors: r.neighbors }
        }
        Ok(BatchResponse::Rknn(r)) => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            Response::Rknn { stats: (&r.stats).into(), items: r.items }
        }
        Err(e) => {
            let (code, counter) = classify(&e);
            counter_of(shared, counter).fetch_add(1, Ordering::Relaxed);
            Response::Error { code, message: e.to_string() }
        }
    };
    write_response(&job.writer, job.request_id, &resp);
}

/// Execute one request against a metric snapshot. AKNN goes through the
/// covering-ball search (`metric_aknn`); it has no deadline hook, so a
/// request's `deadline_ms` is accepted but not enforced on this backend
/// (documented in PROTOCOL.md). RKNN rides the tree's `NodeAccess` face
/// through the classic engine, deadlines included. Both lanes catch
/// panics at the per-query boundary like the other backends.
fn execute_metric(
    tree: &MTree<WIRE_DIMS>,
    store: &FileStore<WIRE_DIMS>,
    request: &BatchRequest<WIRE_DIMS>,
    scratch: &mut QueryScratch<WIRE_DIMS>,
) -> Result<BatchResponse, QueryError> {
    match request {
        BatchRequest::Aknn { query, k, alpha, cfg: _ } => {
            // `Threshold::at` panics outside [0, 1]; validate like the
            // exact engine does so a bad wire alpha stays a typed error.
            if !(*alpha > 0.0 && *alpha <= 1.0) {
                return Err(QueryError::InvalidProbability { value: *alpha });
            }
            let t = Threshold::at(*alpha);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                metric_aknn(&L2, tree, store, query, *k, t)
            }))
            .unwrap_or_else(|payload| {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(QueryError::Panicked { message })
            })
            .map(BatchResponse::Aknn)
        }
        BatchRequest::Rknn { .. } => {
            execute_caught(&QueryEngine::new(tree, store), request, scratch)
        }
    }
}

enum CounterKind {
    Deadline,
    Error,
}

fn counter_of(shared: &Shared, kind: CounterKind) -> &AtomicU64 {
    match kind {
        CounterKind::Deadline => &shared.counters.deadline_exceeded,
        CounterKind::Error => &shared.counters.errors,
    }
}

fn classify(e: &QueryError) -> (ErrorCode, CounterKind) {
    match e {
        QueryError::DeadlineExceeded => (ErrorCode::DeadlineExceeded, CounterKind::Deadline),
        QueryError::Panicked { .. } => (ErrorCode::Panicked, CounterKind::Error),
        QueryError::Store(StoreError::UnknownObject(_)) => {
            (ErrorCode::NotFound, CounterKind::Error)
        }
        QueryError::Store(_) => (ErrorCode::Store, CounterKind::Error),
        QueryError::EmptyQueryCut
        | QueryError::ZeroK
        | QueryError::InvalidProbability { .. }
        | QueryError::InvalidRange { .. } => (ErrorCode::InvalidArgument, CounterKind::Error),
    }
}

/// Open the index a SWAP names. `:mem:` bulk-reloads from the store; a
/// `.fzsm` path opens a shard forest, a `.fzmt` file a metric tree
/// (l2 only), anything else a paged tree. Mismatches the server can
/// diagnose by *kind* — an approximate candidate index, or a metric tree
/// built under a metric the wire does not serve — answer
/// [`ErrorCode::IndexMismatch`]; every other failure is a plain
/// [`ErrorCode::SwapFailed`].
fn open_swap_index(shared: &Shared, index_path: &str) -> Result<ServeIndex, (ErrorCode, String)> {
    if index_path == ":mem:" {
        return Ok(ServeIndex::mem_from_store(shared.store.as_ref()));
    }
    if is_approx_path(index_path) {
        return Err((
            ErrorCode::IndexMismatch,
            format!(
                "'{index_path}' is an approximate candidate index; the serve path needs an \
                 exact index (.fzpt/.fzsm/.fzmt)"
            ),
        ));
    }
    if is_metric_path(index_path) {
        // Distinguish "wrong metric" (a mismatch by kind) from "broken
        // file" (a plain swap failure) before committing to the load.
        match MTree::<WIRE_DIMS>::stored_metric_name(index_path) {
            Ok(name) if name != "l2" => {
                return Err((
                    ErrorCode::IndexMismatch,
                    format!("server serves 'l2', index records metric '{name}'"),
                ));
            }
            Ok(_) => {}
            Err(e) => return Err((ErrorCode::SwapFailed, e.to_string())),
        }
    }
    ServeIndex::open(index_path, shared.cache_pages)
        .map_err(|e| (ErrorCode::SwapFailed, e.to_string()))
}

/// Serialize and write one whole frame under the connection's writer
/// lock. Write errors are ignored: the reader side notices the dead
/// connection and winds it down.
fn write_response(writer: &SharedWriter, request_id: u64, resp: &Response) {
    let bytes = resp.encode(request_id);
    let mut guard = writer.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let _ = guard.write_all(&bytes);
    let _ = guard.flush();
}
