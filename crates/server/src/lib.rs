//! Resident query serving for fuzzy-object kNN search.
//!
//! One-shot CLI queries pay dataset open, index build/open and cache
//! warm-up on every invocation; the paper's workloads (§6) — and the
//! roadmap's "serve heavy traffic" north star — want those costs paid
//! once. This crate keeps an index/store pair resident behind a compact
//! binary protocol:
//!
//! * [`protocol`] — the FZQP wire format: checksummed, versioned,
//!   length-prefixed frames (normative spec in `docs/PROTOCOL.md`).
//!   Decoding is total: corrupt input yields typed [`WireError`]s, never
//!   panics or unbounded allocation.
//! * [`server`] — the daemon: a listener, per-connection reader threads,
//!   a bounded admission queue that sheds load with BUSY, and a worker
//!   pool reusing one [`fuzzy_query::QueryScratch`] per worker. Requests
//!   carry deadlines enforced inside the traversals; SWAP publishes a new
//!   index epoch through [`fuzzy_query::Versioned`] without blocking
//!   readers.
//! * [`client`] — a small blocking client, used by `fkq` (`--server`,
//!   `loadgen`, `swap`) and the tests.
//!
//! The answers a server returns are byte-identical to one-shot CLI runs
//! on the same index: responses carry bit-exact `f64`s and the same
//! exact/bounded distance knowledge, which the e2e suite verifies at 1, 2
//! and 8 concurrent connections with a live SWAP mid-run.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{
    ErrorCode, QuerySource, RawFrame, Request, Response, WireError, WireStats, WireVariant,
};
pub use server::{is_sharded_path, serve, ListenAddr, ServeIndex, ServeOptions, ServerHandle};
