//! The FZQP binary wire protocol (see `docs/PROTOCOL.md` for the
//! normative byte-level specification).
//!
//! Every message travels in one checksummed **frame**:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "FZQP"
//! 4       2     version (u16 LE) = 1
//! 6       1     frame type
//! 7       1     reserved (writers put 0; readers ignore)
//! 8       8     request id (u64 LE, echoed verbatim in the response)
//! 16      4     payload length n (u32 LE, at most MAX_PAYLOAD)
//! 20      n     payload
//! 20+n    8     FNV-1a checksum of bytes [0, 20+n) (u64 LE)
//! ```
//!
//! The checksum is the same word-folding FNV-1a the store format uses
//! (`fuzzy_store::format::fnv1a`), covering header *and* payload so a
//! corrupted length or type never silently misparses a payload.
//!
//! Decoding is total: any malformed input yields a typed [`WireError`],
//! never a panic, and the payload-length cap means a hostile length field
//! cannot make the reader allocate or block unboundedly.

use fuzzy_core::{FuzzyObject, ObjectId};
use fuzzy_geom::Point;
use fuzzy_query::{
    AknnConfig, DistBound, Interval, IntervalSet, Neighbor, QueryStats, RknnAlgorithm, RknnItem,
};
use fuzzy_store::format::fnv1a;
use std::fmt;
use std::io::Read;
use std::time::Duration;

/// Frame magic: "FZQP" (FuZzy Query Protocol).
pub const MAGIC: [u8; 4] = *b"FZQP";
/// Current protocol version. Bump on any incompatible layout change.
pub const VERSION: u16 = 1;
/// Fixed frame header size (magic through payload length).
pub const HEADER_LEN: usize = 20;
/// Trailing checksum size.
pub const TRAILER_LEN: usize = 8;
/// Upper bound on the payload length field. Anything larger is rejected
/// before allocation — a corrupted or hostile length cannot wedge a peer.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Wire dimensionality of protocol version 1. Inline query objects are
/// always 2-d, matching the dataset format.
pub const WIRE_DIMS: usize = 2;

// Frame type bytes. Requests are < 0x80; responses have the top bit set.
/// AKNN request.
pub const T_AKNN: u8 = 0x01;
/// RKNN request.
pub const T_RKNN: u8 = 0x02;
/// INFO request (index/server description).
pub const T_INFO: u8 = 0x03;
/// STATS request (server counters).
pub const T_STATS: u8 = 0x04;
/// SWAP request (publish a new index epoch).
pub const T_SWAP: u8 = 0x05;
/// SHUTDOWN request (stop the daemon).
pub const T_SHUTDOWN: u8 = 0x07;
/// AKNN response.
pub const T_AKNN_R: u8 = 0x81;
/// RKNN response.
pub const T_RKNN_R: u8 = 0x82;
/// INFO response.
pub const T_INFO_R: u8 = 0x83;
/// STATS response.
pub const T_STATS_R: u8 = 0x84;
/// SWAP response.
pub const T_SWAP_R: u8 = 0x85;
/// SHUTDOWN acknowledgement.
pub const T_SHUTDOWN_R: u8 = 0x87;
/// Typed error response ([`ErrorCode`] + message).
pub const T_ERROR: u8 = 0xE0;
/// Load-shed response: the request was never admitted; retry later.
pub const T_BUSY: u8 = 0xE1;

/// Typed error codes carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request payload did not decode.
    Malformed = 1,
    /// The frame type is not one the server answers.
    Unsupported = 2,
    /// The request decoded but failed validation (bad k, α, range, …).
    InvalidArgument = 3,
    /// A stored-id query source named an object the store does not hold.
    NotFound = 4,
    /// The request's deadline expired before the query finished.
    DeadlineExceeded = 5,
    /// The query panicked inside a worker; the worker survived.
    Panicked = 6,
    /// The object store failed during execution.
    Store = 7,
    /// A SWAP request could not open or publish the new index.
    SwapFailed = 8,
    /// The named index cannot back the serve path: an approximate
    /// (`.fzlh`/`.fzvp`) file where an exact index is required, or a
    /// metric index (`.fzmt`) built under a metric the server does not
    /// serve.
    IndexMismatch = 9,
}

impl ErrorCode {
    /// Decode a wire error code; `None` for values this version doesn't
    /// define.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => Self::Malformed,
            2 => Self::Unsupported,
            3 => Self::InvalidArgument,
            4 => Self::NotFound,
            5 => Self::DeadlineExceeded,
            6 => Self::Panicked,
            7 => Self::Store,
            8 => Self::SwapFailed,
            9 => Self::IndexMismatch,
            _ => return None,
        })
    }
}

/// Decode/transport failures. Every variant is a *typed* outcome of
/// reading untrusted bytes — the codec never panics and never hangs on a
/// bad length.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended inside a frame.
    Truncated,
    /// The first four bytes were not [`MAGIC`].
    BadMagic,
    /// The version field is not [`VERSION`].
    BadVersion {
        /// What the peer sent.
        found: u16,
    },
    /// The frame type byte is unknown.
    UnknownType {
        /// What the peer sent.
        found: u8,
    },
    /// The payload length field exceeds [`MAX_PAYLOAD`].
    Oversize {
        /// The claimed payload length.
        len: u32,
    },
    /// The trailing checksum does not match the received bytes.
    ChecksumMismatch,
    /// The payload of a structurally valid frame did not decode.
    Malformed {
        /// What was wrong.
        what: &'static str,
    },
    /// Transport-level I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame truncated"),
            Self::BadMagic => write!(f, "bad frame magic"),
            Self::BadVersion { found } => write!(f, "unsupported protocol version {found}"),
            Self::UnknownType { found } => write!(f, "unknown frame type 0x{found:02x}"),
            Self::Oversize { len } => {
                write!(f, "payload length {len} exceeds cap {MAX_PAYLOAD}")
            }
            Self::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            Self::Malformed { what } => write!(f, "malformed payload: {what}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// The query object of an AKNN/RKNN request.
#[derive(Clone, Debug, PartialEq)]
pub enum QuerySource {
    /// Query by a stored object's id — the server probes its own store.
    Stored(ObjectId),
    /// The query object shipped inline (id, then `(x, y, membership)`
    /// triples). Validated server-side exactly like dataset objects.
    Inline {
        /// Id the client assigns to the query object (not required to
        /// exist in the store).
        id: ObjectId,
        /// `(coords, membership)` rows; coords are [`WIRE_DIMS`]-d.
        rows: Vec<([f64; WIRE_DIMS], f64)>,
    },
}

impl QuerySource {
    /// An inline source carrying a full fuzzy object.
    pub fn inline(obj: &FuzzyObject<WIRE_DIMS>) -> Self {
        Self::Inline { id: obj.id(), rows: obj.iter().map(|(p, mu)| (*p.coords(), mu)).collect() }
    }
}

/// AKNN pruning variant selector, one byte on the wire.
///
/// The numbering is part of the protocol: 0 = Basic, 1 = LB, 2 = LB-LP,
/// 3 = LB-LP-UB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireVariant {
    /// Algorithm 1 without optimizations.
    Basic = 0,
    /// Improved lower bound.
    Lb = 1,
    /// Improved lower bound + lazy probe.
    LbLp = 2,
    /// All optimizations (the default).
    LbLpUb = 3,
}

impl WireVariant {
    /// The corresponding engine configuration (no deadline set).
    pub fn config(self) -> AknnConfig {
        match self {
            Self::Basic => AknnConfig::basic(),
            Self::Lb => AknnConfig::lb(),
            Self::LbLp => AknnConfig::lb_lp(),
            Self::LbLpUb => AknnConfig::lb_lp_ub(),
        }
    }

    /// Parse a CLI spelling (`basic`/`lb`/`lb-lp`/`lb-lp-ub`).
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "basic" => Self::Basic,
            "lb" => Self::Lb,
            "lb-lp" => Self::LbLp,
            "lb-lp-ub" => Self::LbLpUb,
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Self::Basic,
            1 => Self::Lb,
            2 => Self::LbLp,
            3 => Self::LbLpUb,
            _ => return None,
        })
    }
}

fn algo_to_u8(a: RknnAlgorithm) -> u8 {
    match a {
        RknnAlgorithm::Naive => 0,
        RknnAlgorithm::Basic => 1,
        RknnAlgorithm::Rss => 2,
        RknnAlgorithm::RssIcr => 3,
    }
}

fn algo_from_u8(v: u8) -> Option<RknnAlgorithm> {
    Some(match v {
        0 => RknnAlgorithm::Naive,
        1 => RknnAlgorithm::Basic,
        2 => RknnAlgorithm::Rss,
        3 => RknnAlgorithm::RssIcr,
        _ => return None,
    })
}

/// A request frame payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// AKNN query (Definition 4).
    Aknn {
        /// The query object.
        query: QuerySource,
        /// Number of neighbours.
        k: u32,
        /// Probability threshold in `(0, 1]`.
        alpha: f64,
        /// Pruning variant.
        variant: WireVariant,
        /// Deadline in milliseconds from admission; 0 means none.
        deadline_ms: u32,
    },
    /// RKNN query (Definition 5).
    Rknn {
        /// The query object.
        query: QuerySource,
        /// Number of neighbours.
        k: u32,
        /// Range start in `(0, 1]`.
        alpha_start: f64,
        /// Range end in `(0, 1]`.
        alpha_end: f64,
        /// RKNN algorithm.
        algo: RknnAlgorithm,
        /// Pruning variant for the inner AKNN searches.
        variant: WireVariant,
        /// Deadline in milliseconds from admission; 0 means none.
        deadline_ms: u32,
    },
    /// Describe the served index.
    Info,
    /// Read the server counters.
    Stats,
    /// Publish a new index epoch from `index_path` (`:mem:` bulk-reloads
    /// an in-memory tree from the store's summaries).
    Swap {
        /// Path of the index file to open, or `:mem:`.
        index_path: String,
    },
    /// Stop the daemon.
    Shutdown,
}

/// Per-query execution costs on the wire (a fixed 72-byte block).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WireStats {
    /// Objects retrieved from the store.
    pub object_accesses: u64,
    /// R-tree nodes expanded.
    pub node_accesses: u64,
    /// Node expansions that touched the backing medium.
    pub node_disk_reads: u64,
    /// Exact α-distance evaluations.
    pub distance_evals: u64,
    /// Distance-profile computations.
    pub profile_computations: u64,
    /// Lower/upper bound evaluations.
    pub bound_evals: u64,
    /// Internal AKNN invocations.
    pub aknn_calls: u64,
    /// Candidate set size after pruning.
    pub candidates: u64,
    /// Server-side wall clock of the query, in nanoseconds.
    pub wall_nanos: u64,
}

impl From<&QueryStats> for WireStats {
    fn from(s: &QueryStats) -> Self {
        Self {
            object_accesses: s.object_accesses,
            node_accesses: s.node_accesses,
            node_disk_reads: s.node_disk_reads,
            distance_evals: s.distance_evals,
            profile_computations: s.profile_computations,
            bound_evals: s.bound_evals,
            aknn_calls: s.aknn_calls,
            candidates: s.candidates,
            wall_nanos: s.wall.as_nanos().min(u64::MAX as u128) as u64,
        }
    }
}

impl WireStats {
    /// Back-convert to the engine's stats type (wall truncated to ns).
    pub fn to_query_stats(&self) -> QueryStats {
        QueryStats {
            object_accesses: self.object_accesses,
            node_accesses: self.node_accesses,
            node_disk_reads: self.node_disk_reads,
            distance_evals: self.distance_evals,
            profile_computations: self.profile_computations,
            bound_evals: self.bound_evals,
            aknn_calls: self.aknn_calls,
            candidates: self.candidates,
            wall: Duration::from_nanos(self.wall_nanos),
        }
    }
}

/// A response frame payload.
///
/// `PartialEq` is implemented manually (below) because [`RknnItem`] does
/// not derive it; items compare by id and exact interval endpoints.
#[derive(Clone, Debug)]
pub enum Response {
    /// AKNN answer: neighbours in confirmation order, bit-exact bounds.
    Aknn {
        /// The k neighbours.
        neighbors: Vec<Neighbor>,
        /// Execution costs.
        stats: WireStats,
    },
    /// RKNN answer: items sorted by object id.
    Rknn {
        /// The qualifying objects with their ranges.
        items: Vec<RknnItem>,
        /// Execution costs.
        stats: WireStats,
    },
    /// Index/server description.
    Info {
        /// Live objects in the published snapshot.
        objects: u64,
        /// Epoch of the published snapshot.
        epoch: u64,
        /// Worker threads in the pool.
        workers: u16,
    },
    /// Server counters since start.
    Stats {
        /// Queries answered successfully.
        served: u64,
        /// Requests shed with BUSY.
        busy: u64,
        /// Queries that exceeded their deadline.
        deadline_exceeded: u64,
        /// Queries that returned a typed error.
        errors: u64,
        /// Index swaps published.
        swaps: u64,
    },
    /// SWAP acknowledgement.
    Swapped {
        /// Epoch of the newly published snapshot.
        epoch: u64,
        /// Live objects in the new snapshot.
        objects: u64,
    },
    /// SHUTDOWN acknowledgement.
    ShutdownAck,
    /// Typed failure.
    Error {
        /// What class of failure.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Load shed: the admission queue was full; the request never ran.
    Busy,
}

impl PartialEq for Response {
    fn eq(&self, other: &Self) -> bool {
        fn items_eq(a: &[RknnItem], b: &[RknnItem]) -> bool {
            a.len() == b.len()
                && a.iter()
                    .zip(b)
                    .all(|(x, y)| x.id == y.id && x.range.intervals() == y.range.intervals())
        }
        match (self, other) {
            (Self::Aknn { neighbors: a, stats: sa }, Self::Aknn { neighbors: b, stats: sb }) => {
                a == b && sa == sb
            }
            (Self::Rknn { items: a, stats: sa }, Self::Rknn { items: b, stats: sb }) => {
                items_eq(a, b) && sa == sb
            }
            (
                Self::Info { objects: a, epoch: ea, workers: wa },
                Self::Info { objects: b, epoch: eb, workers: wb },
            ) => a == b && ea == eb && wa == wb,
            (
                Self::Stats { served: a1, busy: a2, deadline_exceeded: a3, errors: a4, swaps: a5 },
                Self::Stats { served: b1, busy: b2, deadline_exceeded: b3, errors: b4, swaps: b5 },
            ) => a1 == b1 && a2 == b2 && a3 == b3 && a4 == b4 && a5 == b5,
            (
                Self::Swapped { epoch: ea, objects: oa },
                Self::Swapped { epoch: eb, objects: ob },
            ) => ea == eb && oa == ob,
            (Self::ShutdownAck, Self::ShutdownAck) | (Self::Busy, Self::Busy) => true,
            (Self::Error { code: ca, message: ma }, Self::Error { code: cb, message: mb }) => {
                ca == cb && ma == mb
            }
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------
// Little-endian payload writer/reader.

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked payload reader: every accessor returns a typed error
/// past the end instead of panicking.
struct Rd<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end =
            self.pos.checked_add(n).ok_or(WireError::Malformed { what: "length overflow" })?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(WireError::Malformed { what: "payload too short" })?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed { what: "string is not UTF-8" })
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed { what: "trailing bytes in payload" })
        }
    }

    /// A count field about to drive a `Vec` reservation: cap it by the
    /// bytes actually remaining so a corrupt count cannot over-allocate.
    fn count(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(elem_size.max(1)) > remaining {
            return Err(WireError::Malformed { what: "count exceeds payload" });
        }
        Ok(n)
    }
}

fn put_query(buf: &mut Vec<u8>, q: &QuerySource) {
    match q {
        QuerySource::Stored(id) => {
            put_u8(buf, 0);
            put_u64(buf, id.0);
        }
        QuerySource::Inline { id, rows } => {
            put_u8(buf, 1);
            put_u64(buf, id.0);
            put_u32(buf, rows.len() as u32);
            for (coords, mu) in rows {
                for c in coords {
                    put_f64(buf, *c);
                }
                put_f64(buf, *mu);
            }
        }
    }
}

fn read_query(rd: &mut Rd<'_>) -> Result<QuerySource, WireError> {
    match rd.u8()? {
        0 => Ok(QuerySource::Stored(ObjectId(rd.u64()?))),
        1 => {
            let id = ObjectId(rd.u64()?);
            let n = rd.count(8 * (WIRE_DIMS + 1))?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let mut coords = [0.0; WIRE_DIMS];
                for c in &mut coords {
                    *c = rd.f64()?;
                }
                rows.push((coords, rd.f64()?));
            }
            Ok(QuerySource::Inline { id, rows })
        }
        _ => Err(WireError::Malformed { what: "unknown query-source tag" }),
    }
}

fn put_stats(buf: &mut Vec<u8>, s: &WireStats) {
    put_u64(buf, s.object_accesses);
    put_u64(buf, s.node_accesses);
    put_u64(buf, s.node_disk_reads);
    put_u64(buf, s.distance_evals);
    put_u64(buf, s.profile_computations);
    put_u64(buf, s.bound_evals);
    put_u64(buf, s.aknn_calls);
    put_u64(buf, s.candidates);
    put_u64(buf, s.wall_nanos);
}

fn read_stats(rd: &mut Rd<'_>) -> Result<WireStats, WireError> {
    Ok(WireStats {
        object_accesses: rd.u64()?,
        node_accesses: rd.u64()?,
        node_disk_reads: rd.u64()?,
        distance_evals: rd.u64()?,
        profile_computations: rd.u64()?,
        bound_evals: rd.u64()?,
        aknn_calls: rd.u64()?,
        candidates: rd.u64()?,
        wall_nanos: rd.u64()?,
    })
}

impl Request {
    /// The frame type byte of this request.
    pub fn frame_type(&self) -> u8 {
        match self {
            Self::Aknn { .. } => T_AKNN,
            Self::Rknn { .. } => T_RKNN,
            Self::Info => T_INFO,
            Self::Stats => T_STATS,
            Self::Swap { .. } => T_SWAP,
            Self::Shutdown => T_SHUTDOWN,
        }
    }

    /// Serialize the payload (without the frame envelope).
    pub fn payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Self::Aknn { query, k, alpha, variant, deadline_ms } => {
                put_query(&mut buf, query);
                put_u32(&mut buf, *k);
                put_f64(&mut buf, *alpha);
                put_u8(&mut buf, *variant as u8);
                put_u32(&mut buf, *deadline_ms);
            }
            Self::Rknn { query, k, alpha_start, alpha_end, algo, variant, deadline_ms } => {
                put_query(&mut buf, query);
                put_u32(&mut buf, *k);
                put_f64(&mut buf, *alpha_start);
                put_f64(&mut buf, *alpha_end);
                put_u8(&mut buf, algo_to_u8(*algo));
                put_u8(&mut buf, *variant as u8);
                put_u32(&mut buf, *deadline_ms);
            }
            Self::Info | Self::Stats | Self::Shutdown => {}
            Self::Swap { index_path } => put_str(&mut buf, index_path),
        }
        buf
    }

    /// Decode a request payload for `frame_type`.
    pub fn decode(frame_type: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut rd = Rd::new(payload);
        let req = match frame_type {
            T_AKNN => Self::Aknn {
                query: read_query(&mut rd)?,
                k: rd.u32()?,
                alpha: rd.f64()?,
                variant: WireVariant::from_u8(rd.u8()?)
                    .ok_or(WireError::Malformed { what: "unknown variant" })?,
                deadline_ms: rd.u32()?,
            },
            T_RKNN => Self::Rknn {
                query: read_query(&mut rd)?,
                k: rd.u32()?,
                alpha_start: rd.f64()?,
                alpha_end: rd.f64()?,
                algo: algo_from_u8(rd.u8()?)
                    .ok_or(WireError::Malformed { what: "unknown algorithm" })?,
                variant: WireVariant::from_u8(rd.u8()?)
                    .ok_or(WireError::Malformed { what: "unknown variant" })?,
                deadline_ms: rd.u32()?,
            },
            T_INFO => Self::Info,
            T_STATS => Self::Stats,
            T_SWAP => Self::Swap { index_path: rd.str()? },
            T_SHUTDOWN => Self::Shutdown,
            other => return Err(WireError::UnknownType { found: other }),
        };
        rd.finish()?;
        Ok(req)
    }

    /// Serialize the full frame (envelope + payload + checksum).
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        encode_frame(self.frame_type(), request_id, &self.payload())
    }
}

impl Response {
    /// The frame type byte of this response.
    pub fn frame_type(&self) -> u8 {
        match self {
            Self::Aknn { .. } => T_AKNN_R,
            Self::Rknn { .. } => T_RKNN_R,
            Self::Info { .. } => T_INFO_R,
            Self::Stats { .. } => T_STATS_R,
            Self::Swapped { .. } => T_SWAP_R,
            Self::ShutdownAck => T_SHUTDOWN_R,
            Self::Error { .. } => T_ERROR,
            Self::Busy => T_BUSY,
        }
    }

    /// Serialize the payload (without the frame envelope).
    pub fn payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Self::Aknn { neighbors, stats } => {
                put_u32(&mut buf, neighbors.len() as u32);
                for n in neighbors {
                    put_u64(&mut buf, n.id.0);
                    match n.dist {
                        DistBound::Exact(d) => {
                            put_u8(&mut buf, 0);
                            put_f64(&mut buf, d);
                        }
                        DistBound::Bounded { lo, hi } => {
                            put_u8(&mut buf, 1);
                            put_f64(&mut buf, lo);
                            put_f64(&mut buf, hi);
                        }
                    }
                }
                put_stats(&mut buf, stats);
            }
            Self::Rknn { items, stats } => {
                put_u32(&mut buf, items.len() as u32);
                for item in items {
                    put_u64(&mut buf, item.id.0);
                    let ivs = item.range.intervals();
                    put_u32(&mut buf, ivs.len() as u32);
                    for iv in ivs {
                        put_f64(&mut buf, iv.lo);
                        put_u8(&mut buf, iv.lo_closed as u8);
                        put_f64(&mut buf, iv.hi);
                        put_u8(&mut buf, iv.hi_closed as u8);
                    }
                }
                put_stats(&mut buf, stats);
            }
            Self::Info { objects, epoch, workers } => {
                put_u64(&mut buf, *objects);
                put_u64(&mut buf, *epoch);
                put_u16(&mut buf, *workers);
            }
            Self::Stats { served, busy, deadline_exceeded, errors, swaps } => {
                put_u64(&mut buf, *served);
                put_u64(&mut buf, *busy);
                put_u64(&mut buf, *deadline_exceeded);
                put_u64(&mut buf, *errors);
                put_u64(&mut buf, *swaps);
            }
            Self::Swapped { epoch, objects } => {
                put_u64(&mut buf, *epoch);
                put_u64(&mut buf, *objects);
            }
            Self::ShutdownAck | Self::Busy => {}
            Self::Error { code, message } => {
                put_u16(&mut buf, *code as u16);
                put_str(&mut buf, message);
            }
        }
        buf
    }

    /// Decode a response payload for `frame_type`.
    pub fn decode(frame_type: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut rd = Rd::new(payload);
        let resp = match frame_type {
            T_AKNN_R => {
                let n = rd.count(9)?;
                let mut neighbors = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = ObjectId(rd.u64()?);
                    let dist = match rd.u8()? {
                        0 => DistBound::Exact(rd.f64()?),
                        1 => DistBound::Bounded { lo: rd.f64()?, hi: rd.f64()? },
                        _ => return Err(WireError::Malformed { what: "unknown bound tag" }),
                    };
                    neighbors.push(Neighbor { id, dist });
                }
                Self::Aknn { neighbors, stats: read_stats(&mut rd)? }
            }
            T_RKNN_R => {
                let n = rd.count(12)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = ObjectId(rd.u64()?);
                    let m = rd.count(18)?;
                    let mut range = IntervalSet::empty();
                    for _ in 0..m {
                        let lo = rd.f64()?;
                        let lo_closed = rd.u8()? != 0;
                        let hi = rd.f64()?;
                        let hi_closed = rd.u8()? != 0;
                        range.push(Interval::new(lo, lo_closed, hi, hi_closed));
                    }
                    items.push(RknnItem { id, range });
                }
                Self::Rknn { items, stats: read_stats(&mut rd)? }
            }
            T_INFO_R => Self::Info { objects: rd.u64()?, epoch: rd.u64()?, workers: rd.u16()? },
            T_STATS_R => Self::Stats {
                served: rd.u64()?,
                busy: rd.u64()?,
                deadline_exceeded: rd.u64()?,
                errors: rd.u64()?,
                swaps: rd.u64()?,
            },
            T_SWAP_R => Self::Swapped { epoch: rd.u64()?, objects: rd.u64()? },
            T_SHUTDOWN_R => Self::ShutdownAck,
            T_ERROR => Self::Error {
                code: ErrorCode::from_u16(rd.u16()?)
                    .ok_or(WireError::Malformed { what: "unknown error code" })?,
                message: rd.str()?,
            },
            T_BUSY => Self::Busy,
            other => return Err(WireError::UnknownType { found: other }),
        };
        rd.finish()?;
        Ok(resp)
    }

    /// Serialize the full frame (envelope + payload + checksum).
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        encode_frame(self.frame_type(), request_id, &self.payload())
    }
}

/// Resolve a [`QuerySource`] carried inline into an engine query object.
pub fn inline_object(
    id: ObjectId,
    rows: &[([f64; WIRE_DIMS], f64)],
) -> Result<FuzzyObject<WIRE_DIMS>, String> {
    let points = rows.iter().map(|(c, _)| Point::new(*c)).collect();
    let memberships = rows.iter().map(|(_, mu)| *mu).collect();
    FuzzyObject::new(id, points, memberships).map_err(|e| e.to_string())
}

/// A checksum-verified frame, not yet payload-decoded.
#[derive(Clone, Debug, PartialEq)]
pub struct RawFrame {
    /// The frame type byte.
    pub frame_type: u8,
    /// The request id (responses echo their request's id).
    pub request_id: u64,
    /// The verified payload bytes.
    pub payload: Vec<u8>,
}

/// Assemble a frame: envelope + payload + trailing checksum.
pub fn encode_frame(frame_type: u8, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    buf.extend_from_slice(&MAGIC);
    put_u16(&mut buf, VERSION);
    put_u8(&mut buf, frame_type);
    put_u8(&mut buf, 0); // reserved
    put_u64(&mut buf, request_id);
    put_u32(&mut buf, payload.len() as u32);
    buf.extend_from_slice(payload);
    let sum = fnv1a(&buf);
    put_u64(&mut buf, sum);
    buf
}

/// Decode one frame from a complete in-memory buffer. Returns the frame
/// and the number of bytes it consumed.
pub fn decode_frame(bytes: &[u8]) -> Result<(RawFrame, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let header = &bytes[..HEADER_LEN];
    let (frame_type, request_id, len) = parse_header(header)?;
    let total = HEADER_LEN + len + TRAILER_LEN;
    if bytes.len() < total {
        return Err(WireError::Truncated);
    }
    let body = &bytes[..HEADER_LEN + len];
    let expect =
        u64::from_le_bytes(bytes[HEADER_LEN + len..total].try_into().expect("trailer len 8"));
    if fnv1a(body) != expect {
        return Err(WireError::ChecksumMismatch);
    }
    Ok((
        RawFrame { frame_type, request_id, payload: bytes[HEADER_LEN..HEADER_LEN + len].to_vec() },
        total,
    ))
}

/// Validate a frame header, returning `(type, request_id, payload_len)`.
fn parse_header(header: &[u8]) -> Result<(u8, u64, usize), WireError> {
    if header[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("len 2"));
    if version != VERSION {
        return Err(WireError::BadVersion { found: version });
    }
    let frame_type = header[6];
    let request_id = u64::from_le_bytes(header[8..16].try_into().expect("len 8"));
    let len = u32::from_le_bytes(header[16..20].try_into().expect("len 4"));
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize { len });
    }
    Ok((frame_type, request_id, len as usize))
}

/// Read one frame from a blocking stream. `Ok(None)` means the peer
/// closed the connection cleanly *between* frames; EOF inside a frame is
/// [`WireError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<RawFrame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    match read_full(r, &mut header)? {
        0 => return Ok(None),
        n if n < HEADER_LEN => return Err(WireError::Truncated),
        _ => {}
    }
    let (frame_type, request_id, len) = parse_header(&header)?;
    let mut rest = vec![0u8; len + TRAILER_LEN];
    if read_full(r, &mut rest)? < rest.len() {
        return Err(WireError::Truncated);
    }
    let mut body = Vec::with_capacity(HEADER_LEN + len);
    body.extend_from_slice(&header);
    body.extend_from_slice(&rest[..len]);
    let expect = u64::from_le_bytes(rest[len..].try_into().expect("trailer len 8"));
    if fnv1a(&body) != expect {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(Some(RawFrame { frame_type, request_id, payload: body.split_off(HEADER_LEN) }))
}

/// Fill `buf` from `r`, tolerating short reads; returns the bytes read
/// (less than `buf.len()` only at EOF).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(filled)
}
