//! A minimal blocking client for the FZQP protocol.

use crate::protocol::{read_frame, Request, Response, WireError};
use crate::server::ListenAddr;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// The client's transport: either socket family behind one type.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

/// A blocking FZQP client over one connection.
///
/// `call` writes a frame and reads until the response with the matching
/// request id arrives, so it stays correct even if earlier fire-and-forget
/// responses are still in flight on the connection.
pub struct Client {
    stream: Stream,
    next_id: u64,
}

impl Client {
    /// Connect to `addr` (`unix:<path>` or TCP `host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Self::connect_to(&ListenAddr::parse(addr))
    }

    /// Connect to a parsed listen address.
    pub fn connect_to(addr: &ListenAddr) -> std::io::Result<Self> {
        let stream = match addr {
            ListenAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }
            ListenAddr::Unix(p) => Stream::Unix(UnixStream::connect(p)?),
        };
        Ok(Self { stream, next_id: 1 })
    }

    /// Set a read timeout, so a dead server cannot hang the caller.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        match &self.stream {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Send `request` and block for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&request.encode(id))?;
        self.stream.flush()?;
        loop {
            let frame = read_frame(&mut self.stream)?.ok_or(WireError::Truncated)?;
            let response = Response::decode(frame.frame_type, &frame.payload)?;
            if frame.request_id == id {
                return Ok(response);
            }
            // A response to an older request (e.g. a delayed worker write
            // after a BUSY) — skip it and keep waiting for ours.
        }
    }
}
