//! The paper's synthetic dataset (§6.1).

use fuzzy_core::{FuzzyObject, FuzzyObjectBuilder, ObjectId};
use fuzzy_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic generator. Defaults reproduce §6.1.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Number of objects `N` (Table 2 default: 50 000).
    pub num_objects: usize,
    /// Points per object (paper: 1 000).
    pub points_per_object: usize,
    /// Object radius (paper: 0.5).
    pub radius: f64,
    /// Gaussian membership spread `σ_x = σ_y` (paper: 0.5).
    pub sigma: f64,
    /// Side length of the square space (paper: 100).
    pub space: f64,
    /// Optional membership quantization level count (`None` keeps the raw
    /// continuous Gaussian values; the paper does not quantize).
    pub quantize_levels: Option<u32>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_objects: 50_000,
            points_per_object: 1_000,
            radius: 0.5,
            sigma: 0.5,
            space: 100.0,
            quantize_levels: None,
            seed: 0xF022_2010,
        }
    }
}

impl SyntheticConfig {
    /// Generate the dataset as an iterator (objects are independent, so
    /// the iterator is cheap to consume streaming into a store).
    pub fn generate(&self) -> impl Iterator<Item = FuzzyObject<2>> + '_ {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cfg = *self;
        (0..self.num_objects).map(move |i| {
            let cx = rng.gen::<f64>() * cfg.space;
            let cy = rng.gen::<f64>() * cfg.space;
            cfg.one_object(ObjectId(i as u64), cx, cy, &mut rng)
        })
    }

    /// Generate a single query object at a random location (not part of
    /// the dataset; uses an id in the reserved upper range).
    pub fn query_object(&self, query_seed: u64) -> FuzzyObject<2> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ query_seed.rotate_left(17));
        let cx = rng.gen::<f64>() * self.space;
        let cy = rng.gen::<f64>() * self.space;
        self.one_object(ObjectId(u64::MAX - query_seed), cx, cy, &mut rng)
    }

    fn one_object(&self, id: ObjectId, cx: f64, cy: f64, rng: &mut StdRng) -> FuzzyObject<2> {
        let mut b = FuzzyObjectBuilder::with_capacity(self.points_per_object);
        let inv_2s2 = 1.0 / (2.0 * self.sigma * self.sigma);
        for _ in 0..self.points_per_object {
            // Uniform point in the disk (area-uniform via sqrt).
            let r = self.radius * rng.gen::<f64>().sqrt();
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            let (dx, dy) = (r * theta.cos(), r * theta.sin());
            // Membership ∝ the 2-d Gaussian density at the offset; the
            // builder's max-normalization implements the paper's "normalize
            // the probability values across 0 to 1" step (and guarantees a
            // non-empty kernel).
            let mut mu = (-(dx * dx + dy * dy) * inv_2s2).exp();
            if let Some(levels) = self.quantize_levels {
                let l = levels.max(2) as f64;
                mu = (mu * l).ceil().max(1.0) / l;
            }
            b.push(Point::xy(cx + dx, cy + dy), mu);
        }
        b.normalize_max(true).build(id).expect("generator produces valid objects")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::Threshold;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            num_objects: 20,
            points_per_object: 200,
            seed: 42,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn generates_requested_shape() {
        let cfg = small();
        let objs: Vec<_> = cfg.generate().collect();
        assert_eq!(objs.len(), 20);
        for o in &objs {
            assert_eq!(o.len(), 200);
            // Support fits in a disk of the configured radius (diameter 1).
            let mbr = o.support_mbr();
            assert!(mbr.extent(0) <= 2.0 * cfg.radius + 1e-9);
            assert!(mbr.extent(1) <= 2.0 * cfg.radius + 1e-9);
            // Kernel non-empty, memberships in (0,1].
            assert!(o.memberships().iter().all(|&m| m > 0.0 && m <= 1.0));
            assert!(o.memberships().contains(&1.0));
        }
    }

    #[test]
    fn determinism() {
        let a: Vec<_> = small().generate().collect();
        let b: Vec<_> = small().generate().collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.points(), y.points());
            assert_eq!(x.memberships(), y.memberships());
        }
        // Different seed differs.
        let c: Vec<_> = SyntheticConfig { seed: 43, ..small() }.generate().collect();
        assert_ne!(a[0].points(), c[0].points());
    }

    #[test]
    fn membership_decays_from_center() {
        let cfg = small();
        let o = cfg.generate().next().unwrap();
        let center = o.rep_point();
        // Kernel point should be the closest point to the object centre:
        // check the empirical trend with a rank correlation style test.
        let mut close_mu = 0.0;
        let mut close_n = 0;
        let mut far_mu = 0.0;
        let mut far_n = 0;
        for (p, mu) in o.iter() {
            if p.dist(&center) < cfg.radius * 0.4 {
                close_mu += mu;
                close_n += 1;
            } else if p.dist(&center) > cfg.radius * 0.8 {
                far_mu += mu;
                far_n += 1;
            }
        }
        assert!(close_mu / close_n as f64 > far_mu / far_n as f64);
    }

    #[test]
    fn quantization_limits_distinct_levels() {
        let cfg = SyntheticConfig { quantize_levels: Some(16), ..small() };
        let o = cfg.generate().next().unwrap();
        assert!(o.distinct_levels().len() <= 17);
        // Cuts still shrink monotonically.
        let mut prev = usize::MAX;
        for v in [0.1, 0.4, 0.7, 1.0] {
            let n = o.cut_len(Threshold::at(v));
            assert!(n <= prev);
            prev = n;
        }
    }

    #[test]
    fn query_object_is_reproducible_and_distinct() {
        let cfg = small();
        let q1 = cfg.query_object(7);
        let q2 = cfg.query_object(7);
        assert_eq!(q1.points(), q2.points());
        let q3 = cfg.query_object(8);
        assert_ne!(q1.points(), q3.points());
    }
}
