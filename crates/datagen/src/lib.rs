//! Dataset generators reproducing Section 6.1 of the paper.
//!
//! * [`synthetic`] — the paper's synthetic workload: each object is a
//!   circle of radius 0.5 containing 1 000 uniformly distributed points
//!   whose membership values follow a 2-d Gaussian (σ = 0.5) centred at the
//!   circle centre, normalized into `(0, 1]`; object centres are uniform in
//!   a 100 × 100 space.
//! * [`cell`] — a stand-in for the paper's real dataset (horizontal-cell
//!   microscopy masks from probabilistic segmentation, which are not
//!   publicly available): star-convex blobs with a fuzzy rim, 8-bit
//!   quantized memberships and spatially clustered placement. See
//!   DESIGN.md §4 for why this substitution preserves the evaluation's
//!   behaviour.
//! * [`roadnet`] — the graph-metric workload: a connected random road
//!   network (spanning tree + chords, L2 edge weights) with fuzzy objects
//!   resident on its vertices, evaluated under shortest-path distance
//!   through the `Metric` seam.
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]

pub mod cell;
pub mod roadnet;
pub mod synthetic;

pub use cell::CellConfig;
pub use roadnet::RoadConfig;
pub use synthetic::SyntheticConfig;

use fuzzy_core::FuzzyObject;
use fuzzy_store::{FileStore, FileStoreWriter, MemStore, StoreError};
use std::path::Path;

/// Which generator produced a dataset (used by the experiment harness).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Paper §6.1 synthetic circles.
    Synthetic,
    /// Cell-like substitute for the paper's real dataset.
    Cell,
}

impl DatasetKind {
    /// Table label used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Synthetic => "synthetic",
            DatasetKind::Cell => "real(cell-like)",
        }
    }
}

/// Stream a generated dataset into a file-backed store.
pub fn write_dataset<I, const D: usize>(
    path: impl AsRef<Path>,
    objects: I,
) -> Result<FileStore<D>, StoreError>
where
    I: IntoIterator<Item = FuzzyObject<D>>,
{
    let mut w = FileStoreWriter::create(path)?;
    for obj in objects {
        w.append(&obj)?;
    }
    w.finish()
}

/// Materialize a generated dataset in memory.
pub fn mem_dataset<I, const D: usize>(objects: I) -> Result<MemStore<D>, StoreError>
where
    I: IntoIterator<Item = FuzzyObject<D>>,
{
    MemStore::from_objects(objects)
}
