//! Cell-like dataset: the substitute for the paper's real microscopy data.
//!
//! The paper's "real" dataset consists of horizontal cells identified by
//! probabilistic segmentation of retinal microscopy images (Ljosa & Singh).
//! Those masks are not publicly available, so we synthesize objects with
//! the same salient statistics (see DESIGN.md §4):
//!
//! * **irregular, star-convex supports** — radius modulated by a random
//!   low-order Fourier series, instead of perfect circles;
//! * **fuzzy rim around a firm core** — membership is a logistic function
//!   of normalized depth inside the blob, with multiplicative speckle
//!   noise (segmentation confidence is high inside, decays at the rim);
//! * **8-bit quantization** — real probabilistic masks store one byte per
//!   pixel, giving at most 256 distinct membership levels;
//! * **spatial clustering** — cells cluster in tissue; centres are drawn
//!   from a Gaussian mixture rather than uniformly.

use fuzzy_core::{FuzzyObject, FuzzyObjectBuilder, ObjectId};
use fuzzy_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the cell-like generator.
#[derive(Clone, Copy, Debug)]
pub struct CellConfig {
    /// Number of objects.
    pub num_objects: usize,
    /// Points per object (paper: 1 000 sampled mask pixels).
    pub points_per_object: usize,
    /// Mean blob radius before shape perturbation.
    pub mean_radius: f64,
    /// Relative amplitude of the shape perturbation (0 = circle).
    pub irregularity: f64,
    /// Number of Gaussian placement clusters (0 = uniform placement).
    pub clusters: usize,
    /// Standard deviation of each placement cluster.
    pub cluster_spread: f64,
    /// Side length of the square space.
    pub space: f64,
    /// Membership quantization levels (8-bit masks: 256).
    pub quantize_levels: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CellConfig {
    fn default() -> Self {
        Self {
            num_objects: 50_000,
            points_per_object: 1_000,
            mean_radius: 0.5,
            irregularity: 0.35,
            clusters: 64,
            cluster_spread: 6.0,
            space: 100.0,
            quantize_levels: 256,
            seed: 0xCE11_2010,
        }
    }
}

/// A star-convex blob shape: `r(θ) = r0 · (1 + Σ a_j cos(jθ + φ_j))`.
struct BlobShape {
    r0: f64,
    harmonics: [(f64, f64); 4], // (amplitude, phase) for j = 2..=5
}

impl BlobShape {
    fn sample(rng: &mut StdRng, mean_radius: f64, irregularity: f64) -> Self {
        let r0 = mean_radius * (0.7 + 0.6 * rng.gen::<f64>());
        let mut harmonics = [(0.0, 0.0); 4];
        for (j, h) in harmonics.iter_mut().enumerate() {
            // Higher harmonics get smaller amplitudes (smooth outlines).
            let amp = irregularity * rng.gen::<f64>() / (j + 2) as f64;
            let phase = rng.gen::<f64>() * std::f64::consts::TAU;
            *h = (amp, phase);
        }
        Self { r0, harmonics }
    }

    fn radius(&self, theta: f64) -> f64 {
        let mut r = 1.0;
        for (j, &(amp, phase)) in self.harmonics.iter().enumerate() {
            r += amp * ((j as f64 + 2.0) * theta + phase).cos();
        }
        // The perturbation is < 1 in total, but clamp defensively.
        self.r0 * r.max(0.2)
    }
}

impl CellConfig {
    /// Generate the dataset.
    pub fn generate(&self) -> impl Iterator<Item = FuzzyObject<2>> + '_ {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let centers = self.cluster_centers(&mut rng);
        let cfg = *self;
        (0..self.num_objects).map(move |i| {
            let (cx, cy) = cfg.place(&centers, &mut rng);
            cfg.one_object(ObjectId(i as u64), cx, cy, &mut rng)
        })
    }

    /// A query object drawn from the same distribution.
    pub fn query_object(&self, query_seed: u64) -> FuzzyObject<2> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ query_seed.rotate_left(23));
        let centers = self.cluster_centers(&mut rng);
        let (cx, cy) = self.place(&centers, &mut rng);
        self.one_object(ObjectId(u64::MAX - query_seed), cx, cy, &mut rng)
    }

    fn cluster_centers(&self, rng: &mut StdRng) -> Vec<(f64, f64)> {
        (0..self.clusters)
            .map(|_| (rng.gen::<f64>() * self.space, rng.gen::<f64>() * self.space))
            .collect()
    }

    fn place(&self, centers: &[(f64, f64)], rng: &mut StdRng) -> (f64, f64) {
        if centers.is_empty() {
            return (rng.gen::<f64>() * self.space, rng.gen::<f64>() * self.space);
        }
        let (cx, cy) = centers[rng.gen_range(0..centers.len())];
        // Box–Muller for the cluster offset (keeps the dependency set to
        // `rand` alone; `rand_distr` would be overkill for one Gaussian).
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen::<f64>();
        let mag = (-2.0 * u1.ln()).sqrt() * self.cluster_spread;
        let x = (cx + mag * (std::f64::consts::TAU * u2).cos()).rem_euclid(self.space);
        let y = (cy + mag * (std::f64::consts::TAU * u2).sin()).rem_euclid(self.space);
        (x, y)
    }

    fn one_object(&self, id: ObjectId, cx: f64, cy: f64, rng: &mut StdRng) -> FuzzyObject<2> {
        let shape = BlobShape::sample(rng, self.mean_radius, self.irregularity);
        let mut b = FuzzyObjectBuilder::with_capacity(self.points_per_object);
        let levels = self.quantize_levels.max(2) as f64;
        for _ in 0..self.points_per_object {
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            let edge = shape.radius(theta);
            // Area-uniform radial position within the blob.
            let u = rng.gen::<f64>().sqrt();
            let (dx, dy) = (u * edge * theta.cos(), u * edge * theta.sin());
            // Depth 1 at the centre, 0 at the rim; logistic confidence with
            // multiplicative speckle, quantized like an 8-bit mask.
            let depth = 1.0 - u;
            let core = 1.0 / (1.0 + (-(depth - 0.35) / 0.12).exp());
            let speckle = 1.0 - 0.15 * rng.gen::<f64>();
            let mu = ((core * speckle * levels).ceil().max(1.0)) / levels;
            b.push(Point::xy(cx + dx, cy + dy), mu);
        }
        b.normalize_max(true).build(id).expect("generator produces valid objects")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CellConfig {
        CellConfig {
            num_objects: 15,
            points_per_object: 300,
            clusters: 3,
            seed: 7,
            ..CellConfig::default()
        }
    }

    #[test]
    fn valid_objects_with_quantized_memberships() {
        let cfg = small();
        let objs: Vec<_> = cfg.generate().collect();
        assert_eq!(objs.len(), 15);
        for o in &objs {
            assert_eq!(o.len(), 300);
            assert!(o.memberships().contains(&1.0));
            // 8-bit quantization bounds the number of distinct levels.
            assert!(o.distinct_levels().len() <= 257);
            // Supports stay within the space (toroidal placement).
            for p in o.points() {
                assert!(p.x() > -2.0 && p.x() < cfg.space + 2.0);
                assert!(p.y() > -2.0 && p.y() < cfg.space + 2.0);
            }
        }
    }

    #[test]
    fn blobs_are_irregular() {
        // A strongly perturbed blob should have an aspect-ratio or offset
        // distinguishable from a circle: compare support MBR extents.
        let cfg = CellConfig { irregularity: 0.5, ..small() };
        let any_noncircular = cfg.generate().any(|o| {
            let m = o.support_mbr();
            (m.extent(0) - m.extent(1)).abs() / m.extent(0).max(m.extent(1)) > 0.05
        });
        assert!(any_noncircular);
    }

    #[test]
    fn clustering_concentrates_centers() {
        let clustered =
            CellConfig { num_objects: 200, clusters: 2, cluster_spread: 1.0, ..small() };
        let uniform = CellConfig { num_objects: 200, clusters: 0, ..small() };
        let spread = |cfg: &CellConfig| {
            let centers: Vec<(f64, f64)> = cfg
                .generate()
                .map(|o| {
                    let c = o.support_mbr().center();
                    (c.x(), c.y())
                })
                .collect();
            let mx = centers.iter().map(|c| c.0).sum::<f64>() / centers.len() as f64;
            let my = centers.iter().map(|c| c.1).sum::<f64>() / centers.len() as f64;
            centers.iter().map(|c| ((c.0 - mx).powi(2) + (c.1 - my).powi(2)).sqrt()).sum::<f64>()
                / centers.len() as f64
        };
        assert!(spread(&clustered) < spread(&uniform));
    }

    #[test]
    fn determinism() {
        let a: Vec<_> = small().generate().collect();
        let b: Vec<_> = small().generate().collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.points(), y.points());
        }
    }

    #[test]
    fn membership_rim_is_fuzzier_than_core() {
        let o = small().generate().next().unwrap();
        // Points below full membership exist (a fuzzy rim)…
        assert!(o.memberships().iter().any(|&m| m < 0.5));
        // …and the kernel is a meaningful fraction but not everything.
        let kernel = o.memberships().iter().filter(|&&m| m == 1.0).count();
        assert!(kernel >= 1);
        assert!(kernel < o.len());
    }
}
