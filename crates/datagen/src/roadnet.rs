//! Road-network workload generator for the graph-metric evaluation.
//!
//! Produces two coupled artifacts from one seed:
//!
//! 1. **The network** — `vertices` random locations in a `span × span`
//!    square, wired into a connected graph: a random spanning tree (each
//!    vertex after the first attaches to a random earlier vertex) plus
//!    `extra_edges` random chords. Every edge weight is the L2 length of
//!    its coordinate segment, so graph distance ≥ straight-line distance
//!    and the two metrics disagree in the way the experiment needs.
//! 2. **Vertex-resident fuzzy objects** — each object lives on a home
//!    vertex and spreads over its BFS neighbourhood: the home vertex
//!    carries membership 1 (a guaranteed kernel), each further point sits
//!    *exactly* on a vertex coordinate (bit-for-bit, so
//!    [`fuzzy_core::GraphMetric`]'s exact coordinate→vertex snap always
//!    hits) with membership decaying by hop count. An object is thus a
//!    fuzzy location *on the network* — "the delivery van is at this
//!    junction, probably, or one of the nearby ones".
//!
//! Everything is deterministic given [`RoadConfig::seed`].

use fuzzy_core::{FuzzyObject, FuzzyObjectBuilder, ObjectId, RoadNetwork};
use fuzzy_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Parameters of the road-network workload.
#[derive(Clone, Copy, Debug)]
pub struct RoadConfig {
    /// Number of network vertices.
    pub vertices: usize,
    /// Chord edges added on top of the spanning tree.
    pub extra_edges: usize,
    /// Number of fuzzy objects placed on the network.
    pub objects: usize,
    /// Points per object (home vertex + BFS neighbourhood, capped by how
    /// many vertices are reachable).
    pub points_per_object: usize,
    /// Side length of the coordinate square.
    pub span: f64,
    /// RNG seed; everything derives from it.
    pub seed: u64,
}

impl Default for RoadConfig {
    fn default() -> Self {
        Self {
            vertices: 400,
            extra_edges: 200,
            objects: 200,
            points_per_object: 12,
            span: 100.0,
            seed: 0x0AD_CAFE,
        }
    }
}

impl RoadConfig {
    /// Generate the network: spanning tree + chords, L2 edge weights.
    pub fn network(&self) -> RoadNetwork<2> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.vertices.max(1);
        let coords: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([rng.gen::<f64>() * self.span, rng.gen::<f64>() * self.span]))
            .collect();
        let weight = |u: usize, v: usize| coords[u].dist(&coords[v]);
        let mut edges: Vec<(u32, u32, f64)> = Vec::with_capacity(n - 1 + self.extra_edges);
        for v in 1..n {
            let u = rng.gen_range(0..v);
            edges.push((u as u32, v as u32, weight(u, v)));
        }
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < self.extra_edges && attempts < self.extra_edges * 20 {
            attempts += 1;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let (a, b) = (u.min(v), u.max(v));
            if edges.iter().any(|&(x, y, _)| (x, y) == (a as u32, b as u32)) {
                continue;
            }
            edges.push((a as u32, b as u32, weight(a, b)));
            added += 1;
        }
        RoadNetwork::new(coords, edges).expect("generated graph is valid by construction")
    }

    /// Generate the objects living on `net` (which must come from
    /// [`RoadConfig::network`] with the same config for the coordinates to
    /// line up). Objects are independent of each other; the iterator
    /// streams.
    pub fn objects<'a>(
        &self,
        net: &'a RoadNetwork<2>,
    ) -> impl Iterator<Item = FuzzyObject<2>> + 'a {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_0B1E_C750_1234);
        let cfg = *self;
        let n = net.vertex_count();
        (0..self.objects).map(move |i| {
            let home = rng.gen_range(0..n) as u32;
            cfg.one_object(net, ObjectId(i as u64), home)
        })
    }

    /// A query object on a deterministic pseudo-random vertex (id in the
    /// reserved upper range; not part of the dataset).
    pub fn query_object(&self, net: &RoadNetwork<2>, query_seed: u64) -> FuzzyObject<2> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ query_seed.rotate_left(17));
        let home = rng.gen_range(0..net.vertex_count()) as u32;
        self.one_object(net, ObjectId(u64::MAX - query_seed), home)
    }

    /// Build one vertex-resident object: BFS from `home`, membership
    /// `1 / (1 + hops)`, points bit-exactly on vertex coordinates.
    fn one_object(&self, net: &RoadNetwork<2>, id: ObjectId, home: u32) -> FuzzyObject<2> {
        let budget = self.points_per_object.max(1);
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); net.vertex_count()];
        for &(u, v, _) in net.edges() {
            adjacency[u as usize].push(v);
            adjacency[v as usize].push(u);
        }
        for nbrs in &mut adjacency {
            nbrs.sort_unstable();
        }
        let mut hops = vec![u32::MAX; net.vertex_count()];
        hops[home as usize] = 0;
        let mut queue = VecDeque::from([home]);
        let mut b = FuzzyObjectBuilder::with_capacity(budget);
        while let Some(v) = queue.pop_front() {
            let h = hops[v as usize];
            b.push(net.coords()[v as usize], 1.0 / (1.0 + h as f64));
            if b.len() == budget {
                break;
            }
            for &w in &adjacency[v as usize] {
                if hops[w as usize] == u32::MAX {
                    hops[w as usize] = h + 1;
                    queue.push_back(w);
                }
            }
        }
        b.build(id).expect("home vertex carries membership 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::metric::Metric;
    use fuzzy_core::GraphMetric;
    use std::sync::Arc;

    #[test]
    fn network_is_connected_and_deterministic() {
        let cfg = RoadConfig { vertices: 50, extra_edges: 20, ..Default::default() };
        let a = cfg.network();
        let b = cfg.network();
        assert!(a.is_connected());
        assert_eq!(a.edges(), b.edges());
        for (p, q) in a.coords().iter().zip(b.coords()) {
            assert_eq!(p, q);
        }
    }

    #[test]
    fn objects_sit_exactly_on_vertices() {
        let cfg = RoadConfig { vertices: 60, extra_edges: 30, objects: 20, ..Default::default() };
        let net = cfg.network();
        for obj in cfg.objects(&net) {
            assert!(obj.len() > 1);
            for p in obj.points() {
                assert!(net.vertex_at(p).is_some(), "object point off-vertex");
            }
            // Home vertex has µ = 1 → non-empty kernel.
            assert!(obj.memberships().contains(&1.0));
        }
    }

    #[test]
    fn graph_metric_evaluates_generated_objects() {
        let cfg = RoadConfig {
            vertices: 40,
            extra_edges: 15,
            objects: 6,
            points_per_object: 8,
            ..Default::default()
        };
        let net = Arc::new(cfg.network());
        let metric = GraphMetric::new(net.clone());
        let objs: Vec<_> = cfg.objects(&net).collect();
        let q = cfg.query_object(&net, 1);
        for o in &objs {
            let d = metric.alpha_distance_sq_bounded(
                &q,
                o,
                fuzzy_core::Threshold::at(0.5),
                f64::INFINITY,
            );
            if let Some(d_sq) = d {
                assert!(d_sq.is_finite() && d_sq >= 0.0);
            }
        }
    }
}
