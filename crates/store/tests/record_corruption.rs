//! The format-v3 corruption matrix for columnar object records and the
//! store file around them: a record damaged in **any** way — truncated at
//! every byte boundary, any single bit flipped, layout contracts forged
//! behind a valid checksum, stale format versions — must surface as a
//! typed [`StoreError`], never a panic and never a silently wrong object.
//! Mirrors the `.fzsm` manifest matrix in
//! `crates/index/tests/shard_manifest_corruption.rs`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use fuzzy_core::{FuzzyObject, ObjectId};
use fuzzy_geom::Point;
use fuzzy_store::format::{decode_object, encode_object, fnv1a, record_len, Encoder, VERSION};
use fuzzy_store::{FileStore, FileStoreWriter, ObjectStore, StoreError};

fn sample() -> FuzzyObject<2> {
    let pts = vec![
        Point::xy(1.5, -2.25),
        Point::xy(0.0, 0.125),
        Point::xy(-3.5, 7.0),
        Point::xy(2.0, 2.0),
        Point::xy(-1.0, -1.0),
    ];
    FuzzyObject::new(ObjectId(42), pts, vec![1.0, 0.5, 0.5, 0.25, 0.125]).unwrap()
}

/// Decode a mutated record; a panic is converted into a test failure
/// carrying the mutation's coordinates.
fn decode_must_error(bytes: &[u8], what: &str) -> StoreError {
    let out = catch_unwind(AssertUnwindSafe(|| decode_object::<2>(bytes)));
    match out {
        Err(_) => panic!("decode panicked on {what}"),
        Ok(Ok(_)) => panic!("decode accepted {what}"),
        Ok(Err(e)) => e,
    }
}

#[test]
fn truncation_at_every_byte_boundary_is_a_typed_error() {
    let bytes = encode_object(&sample());
    assert_eq!(bytes.len(), record_len(2, 5));
    assert!(decode_object::<2>(&bytes).is_ok(), "fixture must decode clean");
    for len in 0..bytes.len() {
        let e = decode_must_error(&bytes[..len], &format!("truncation to {len} bytes"));
        assert!(!e.to_string().is_empty());
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    // The checksum covers the whole payload (and the checksum field
    // itself is compared), so no flipped bit anywhere may decode.
    let bytes = encode_object(&sample());
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut evil = bytes.clone();
            evil[byte] ^= 1 << bit;
            decode_must_error(&evil, &format!("bit {bit} of byte {byte} flipped"));
        }
    }
}

/// Forge records whose checksum is valid but whose **columnar layout**
/// lies — the second line of defense behind the checksum. Each must land
/// as `StoreError::Model`, not decode into a silently wrong prefix.
#[test]
fn forged_layout_violations_are_model_errors() {
    let seal = |mut e: Encoder| -> Vec<u8> {
        let sum = fnv1a(e.as_bytes());
        e.u64(sum);
        e.into_bytes()
    };
    // n = 2 skeleton: id, n, flags, perm, µ (desc), cols x then y.
    let forge = |perm: [u32; 2], mus: [f64; 2], cols: [f64; 4]| -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(7);
        e.u32(2);
        e.u32(0);
        for p in perm {
            e.u32(p);
        }
        for m in mus {
            e.f64(m);
        }
        for c in cols {
            e.f64(c);
        }
        seal(e)
    };

    for (bytes, what) in [
        (forge([0, 0], [1.0, 0.5], [0.0; 4]), "a duplicate permutation slot"),
        (forge([0, 9], [1.0, 0.5], [0.0; 4]), "an out-of-range source index"),
        (forge([0, 1], [0.5, 1.0], [0.0; 4]), "ascending memberships"),
        (forge([1, 0], [1.0, 1.0], [0.0; 4]), "a wrong tie-break order"),
        (forge([0, 1], [1.0, 0.0], [0.0; 4]), "a zero membership"),
        (forge([0, 1], [1.0, 1.5], [0.0; 4]), "a membership above 1"),
        (forge([0, 1], [0.9, 0.5], [0.0; 4]), "a missing kernel"),
        (forge([0, 1], [1.0, 0.5], [f64::NAN, 0.0, 0.0, 0.0]), "a NaN coordinate"),
    ] {
        let e = decode_must_error(&bytes, what);
        assert!(matches!(e, StoreError::Model(_)), "{what} gave {e}");
    }

    // Declared point count disagreeing with the payload size.
    let mut e = Encoder::new();
    e.u64(7);
    e.u32(3); // claims 3 points, carries 2
    e.u32(0);
    for p in [0u32, 1] {
        e.u32(p);
    }
    for m in [1.0, 0.5] {
        e.f64(m);
    }
    for c in [0.0; 4] {
        e.f64(c);
    }
    let bytes = seal(e);
    let err = decode_must_error(&bytes, "a lying point count");
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fz-v3-corrupt-{}-{name}", std::process::id()))
}

#[test]
fn stale_version_files_are_version_mismatch() {
    let path = tmp("stale");
    let mut w = FileStoreWriter::<2>::create(&path).unwrap();
    w.append(&sample()).unwrap();
    let store = w.finish().unwrap();
    drop(store);

    // Patch the header back to the previous format version: the open
    // must refuse with the typed mismatch, not misparse v3 records with
    // v2 expectations.
    let mut bytes = std::fs::read(&path).unwrap();
    assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION);
    let stale = VERSION - 1;
    bytes[4..6].copy_from_slice(&stale.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match FileStore::<2>::open(&path).unwrap_err() {
        StoreError::VersionMismatch { found, expected } => {
            assert_eq!(found, stale);
            assert_eq!(expected, VERSION);
        }
        other => panic!("expected VersionMismatch, got {other}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn flipped_record_bytes_fail_the_probe_not_the_open() {
    let path = tmp("probe");
    let mut w = FileStoreWriter::<2>::create(&path).unwrap();
    w.append(&sample()).unwrap();
    let store = w.finish().unwrap();
    drop(store);

    // Damage one byte inside the record region. The open (which only
    // touches header, summaries, index, trailer) still succeeds; the
    // probe must fail with a checksum error.
    let mut bytes = std::fs::read(&path).unwrap();
    let record_mid = 16 + record_len(2, 5) / 2;
    bytes[record_mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let store = FileStore::<2>::open(&path).unwrap();
    let err = store.probe(ObjectId(42)).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    std::fs::remove_file(&path).unwrap();
}
