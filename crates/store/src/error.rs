//! Store-level errors.

use fuzzy_core::{ModelError, ObjectId};
use std::fmt;
use std::io;

/// Errors raised by object stores.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// File structure violated (bad magic, truncated section, checksum
    /// mismatch, ...).
    Corrupt {
        /// Human-readable description of the corruption.
        reason: String,
    },
    /// The file was written for a different format version.
    VersionMismatch {
        /// Version found in the file.
        found: u16,
        /// Version this build understands.
        expected: u16,
    },
    /// The file stores objects of a different dimensionality.
    DimensionMismatch {
        /// Dimensionality found in the file.
        found: u16,
        /// Dimensionality requested by the caller.
        expected: u16,
    },
    /// No object with this id exists.
    UnknownObject(ObjectId),
    /// A stored record decoded into an invalid fuzzy object.
    Model(ModelError),
    /// An object with this id was already written.
    DuplicateObject(ObjectId),
    /// An encoded node does not fit in one page of a paged file.
    PageOverflow {
        /// Bytes the node needs.
        needed: u64,
        /// Configured page size.
        page_size: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Corrupt { reason } => write!(f, "corrupt store: {reason}"),
            Self::VersionMismatch { found, expected } => {
                write!(f, "format version {found}, expected {expected}")
            }
            Self::DimensionMismatch { found, expected } => {
                write!(f, "stored dimensionality {found}, expected {expected}")
            }
            Self::UnknownObject(id) => write!(f, "unknown object {id}"),
            Self::Model(e) => write!(f, "invalid stored object: {e}"),
            Self::DuplicateObject(id) => write!(f, "duplicate object {id}"),
            Self::PageOverflow { needed, page_size } => {
                write!(f, "node needs {needed} bytes but pages hold {page_size}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ModelError> for StoreError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}
