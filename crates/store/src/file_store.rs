//! File-backed object store with positioned reads and access counting.

use crate::error::StoreError;
use crate::format::{
    decode_object, decode_summary, encode_object, encode_summary, Decoder, Encoder, HEADER_LEN,
    MAGIC, TRAILER_LEN, VERSION,
};
use crate::stats::{IoStats, IoStatsSnapshot};
use crate::ObjectStore;
use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Streaming writer: objects are appended one at a time (datasets larger
/// than memory can be generated without buffering), summaries and the index
/// are accumulated and flushed by [`FileStoreWriter::finish`].
pub struct FileStoreWriter<const D: usize> {
    out: BufWriter<File>,
    path: PathBuf,
    offset: u64,
    index: Vec<(ObjectId, u64, u64)>,
    summaries: Vec<ObjectSummary<D>>,
    seen: HashMap<ObjectId, ()>,
}

impl<const D: usize> FileStoreWriter<D> {
    /// Create (truncate) the file at `path` and write the header.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(&path)?;
        let mut out = BufWriter::new(file);
        let mut header = Encoder::with_capacity(HEADER_LEN);
        header.bytes(&MAGIC);
        header.u16(VERSION);
        header.u16(D as u16);
        header.u64(0); // reserved
        out.write_all(header.as_bytes())?;
        Ok(Self {
            out,
            path,
            offset: HEADER_LEN as u64,
            index: Vec::new(),
            summaries: Vec::new(),
            seen: HashMap::new(),
        })
    }

    /// Append one object; its summary is computed here so readers never
    /// need to touch the records for index construction.
    pub fn append(&mut self, obj: &FuzzyObject<D>) -> Result<(), StoreError> {
        if self.seen.insert(obj.id(), ()).is_some() {
            return Err(StoreError::DuplicateObject(obj.id()));
        }
        let record = encode_object(obj);
        self.out.write_all(&record)?;
        self.index.push((obj.id(), self.offset, record.len() as u64));
        self.offset += record.len() as u64;
        self.summaries.push(ObjectSummary::from_object(obj));
        Ok(())
    }

    /// Number of objects appended so far.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing was appended yet.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Flush summaries, index and trailer; returns the opened store.
    pub fn finish(mut self) -> Result<FileStore<D>, StoreError> {
        let summary_off = self.offset;
        let mut enc = Encoder::with_capacity(8 + self.summaries.len() * 256);
        enc.u64(self.summaries.len() as u64);
        for s in &self.summaries {
            encode_summary(&mut enc, s);
        }
        let index_off = summary_off + enc.len() as u64;
        enc.u64(self.index.len() as u64);
        for (id, off, len) in &self.index {
            enc.u64(id.0);
            enc.u64(*off);
            enc.u64(*len);
        }
        // Trailer.
        enc.u64(summary_off);
        enc.u64(index_off);
        enc.u64(self.index.len() as u64);
        enc.bytes(&MAGIC);
        self.out.write_all(enc.as_bytes())?;
        self.out.flush()?;
        drop(self.out);
        FileStore::open(&self.path)
    }
}

/// Read side: index and summaries live in memory, records are fetched with
/// positioned reads (no seek contention, `File` is shared immutably).
#[derive(Debug)]
pub struct FileStore<const D: usize> {
    file: File,
    path: PathBuf,
    index: HashMap<ObjectId, (u64, u64)>,
    summaries: Vec<ObjectSummary<D>>,
    stats: IoStats,
}

impl<const D: usize> FileStore<D> {
    /// Open an existing store file, validating magic, version and
    /// dimensionality.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let total = file.metadata()?.len();
        if total < (HEADER_LEN + TRAILER_LEN) as u64 {
            return Err(StoreError::Corrupt { reason: "file shorter than header+trailer".into() });
        }
        // Header.
        let mut head = [0u8; HEADER_LEN];
        file.read_exact(&mut head)?;
        if head[..4] != MAGIC {
            return Err(StoreError::Corrupt { reason: "bad magic in header".into() });
        }
        let mut d = Decoder::new(&head[4..]);
        let version = d.u16()?;
        if version != VERSION {
            return Err(StoreError::VersionMismatch { found: version, expected: VERSION });
        }
        let dims = d.u16()?;
        if dims as usize != D {
            return Err(StoreError::DimensionMismatch { found: dims, expected: D as u16 });
        }
        // Trailer.
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        let mut tail = [0u8; TRAILER_LEN];
        file.read_exact(&mut tail)?;
        if tail[TRAILER_LEN - 4..] != MAGIC {
            return Err(StoreError::Corrupt { reason: "bad magic in trailer".into() });
        }
        let mut t = Decoder::new(&tail);
        let summary_off = t.u64()?;
        let index_off = t.u64()?;
        let count = t.u64()? as usize;
        if summary_off > index_off || index_off >= total {
            return Err(StoreError::Corrupt { reason: "trailer offsets out of order".into() });
        }

        // Summaries.
        let sum_len = (index_off - summary_off) as usize;
        let mut sum_bytes = vec![0u8; sum_len];
        file.read_exact_at(&mut sum_bytes, summary_off)?;
        let mut sd = Decoder::new(&sum_bytes);
        let sum_count = sd.u64()? as usize;
        if sum_count != count {
            return Err(StoreError::Corrupt {
                reason: format!("summary count {sum_count} != object count {count}"),
            });
        }
        let mut summaries = Vec::with_capacity(count);
        for _ in 0..count {
            summaries.push(decode_summary::<D>(&mut sd)?);
        }

        // Index.
        let idx_len = (total - TRAILER_LEN as u64 - index_off) as usize;
        let mut idx_bytes = vec![0u8; idx_len];
        file.read_exact_at(&mut idx_bytes, index_off)?;
        let mut ix = Decoder::new(&idx_bytes);
        let idx_count = ix.u64()? as usize;
        if idx_count != count {
            return Err(StoreError::Corrupt {
                reason: format!("index count {idx_count} != object count {count}"),
            });
        }
        let mut index = HashMap::with_capacity(count);
        for _ in 0..count {
            let id = ObjectId(ix.u64()?);
            let off = ix.u64()?;
            let len = ix.u64()?;
            if off + len > summary_off {
                return Err(StoreError::Corrupt {
                    reason: format!("record for {id} overlaps summary section"),
                });
            }
            index.insert(id, (off, len));
        }

        Ok(Self { file, path, index, summaries, stats: IoStats::new() })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All stored ids (index order is unspecified).
    pub fn ids(&self) -> Vec<ObjectId> {
        self.summaries.iter().map(|s| s.id).collect()
    }
}

impl<const D: usize> ObjectStore<D> for FileStore<D> {
    fn probe(&self, id: ObjectId) -> Result<Arc<FuzzyObject<D>>, StoreError> {
        let &(off, len) = self.index.get(&id).ok_or(StoreError::UnknownObject(id))?;
        let mut buf = vec![0u8; len as usize];
        self.file.read_exact_at(&mut buf, off)?;
        self.stats.record_read(len);
        let obj = decode_object::<D>(&buf)?;
        if obj.id() != id {
            return Err(StoreError::Corrupt {
                reason: format!("record at offset {off} has id {} but index says {id}", obj.id()),
            });
        }
        Ok(Arc::new(obj))
    }

    fn len(&self) -> usize {
        self.summaries.len()
    }

    fn summaries(&self) -> &[ObjectSummary<D>] {
        &self.summaries
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_geom::Point;

    fn obj(id: u64, shift: f64) -> FuzzyObject<2> {
        let pts = vec![
            Point::xy(shift, shift),
            Point::xy(shift + 1.0, shift),
            Point::xy(shift, shift + 2.0),
        ];
        FuzzyObject::new(ObjectId(id), pts, vec![1.0, 0.5, 0.25]).unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fuzzy-store-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn write_then_probe_roundtrip() {
        let path = tmp("roundtrip");
        let mut w = FileStoreWriter::<2>::create(&path).unwrap();
        for i in 0..20u64 {
            w.append(&obj(i, i as f64)).unwrap();
        }
        assert_eq!(w.len(), 20);
        let store = w.finish().unwrap();
        assert_eq!(store.len(), 20);
        for i in 0..20u64 {
            let o = store.probe(ObjectId(i)).unwrap();
            assert_eq!(o.id(), ObjectId(i));
            assert_eq!(o.len(), 3);
            assert_eq!(o.points()[0], Point::xy(i as f64, i as f64));
        }
        assert_eq!(store.stats().object_reads, 20);
        store.reset_stats();
        assert_eq!(store.stats().object_reads, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn summaries_available_without_probes() {
        let path = tmp("summaries");
        let mut w = FileStoreWriter::<2>::create(&path).unwrap();
        for i in 0..5u64 {
            w.append(&obj(i, i as f64 * 10.0)).unwrap();
        }
        let store = w.finish().unwrap();
        let sums = store.summaries();
        assert_eq!(sums.len(), 5);
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(s.id, ObjectId(i as u64));
            assert_eq!(s.point_count, 3);
            assert!(s.support_mbr.contains_mbr(&s.kernel_mbr));
        }
        // Reading summaries must not count as object access.
        assert_eq!(store.stats().object_reads, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_object_is_an_error() {
        let path = tmp("unknown");
        let mut w = FileStoreWriter::<2>::create(&path).unwrap();
        w.append(&obj(1, 0.0)).unwrap();
        let store = w.finish().unwrap();
        assert!(matches!(
            store.probe(ObjectId(999)).unwrap_err(),
            StoreError::UnknownObject(ObjectId(999))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_append_rejected() {
        let path = tmp("dup");
        let mut w = FileStoreWriter::<2>::create(&path).unwrap();
        w.append(&obj(1, 0.0)).unwrap();
        assert!(matches!(
            w.append(&obj(1, 5.0)).unwrap_err(),
            StoreError::DuplicateObject(ObjectId(1))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dimension_mismatch_detected() {
        let path = tmp("dims");
        let mut w = FileStoreWriter::<2>::create(&path).unwrap();
        w.append(&obj(1, 0.0)).unwrap();
        let _ = w.finish().unwrap();
        let err = FileStore::<3>::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::DimensionMismatch { found: 2, expected: 3 }));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_file_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"this is not a fuzzy dataset at all........").unwrap();
        let err = FileStore::<2>::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bytes_read_accounts_record_sizes() {
        let path = tmp("bytes");
        let mut w = FileStoreWriter::<2>::create(&path).unwrap();
        w.append(&obj(1, 0.0)).unwrap();
        let store = w.finish().unwrap();
        let _ = store.probe(ObjectId(1)).unwrap();
        let snap = store.stats();
        // id(8) + n(4) + flags(4) + perm(3×4) + µ(3×8) + cols(2×3×8) + fnv(8).
        assert_eq!(snap.bytes_read, crate::format::record_len(2, 3) as u64);
        assert_eq!(snap.bytes_read, 108);
        std::fs::remove_file(&path).unwrap();
    }
}
