//! `.fzrn` — persisted road networks for the graph-metric workload.
//!
//! A [`RoadNetwork`] is defined entirely by its vertex coordinates and
//! undirected edge list; the CSR adjacency, the all-pairs shortest-path
//! table and the coordinate lookup are derived. The file therefore stores
//! only the definition — deterministic inputs rebuild deterministic
//! derived state bit-for-bit on load (Dijkstra over f64-bit heap keys has
//! one canonical answer for a given input), which keeps the format small
//! and the loader honest: there is no way for a stale APSP table to
//! disagree with the edges that shipped next to it.
//!
//! Layout (all little-endian, `docs/FORMAT.md` conventions):
//!
//! ```text
//! magic "FZRN" | version u16 | dims u16 | reserved u64     (header, 16 B)
//! vertex count u64 | per vertex: D × f64
//! edge count u64   | per edge: u u32, v u32, w f64
//! fnv1a(body) u64  | magic "FZRN"                          (trailer, 12 B)
//! ```

use crate::error::StoreError;
use crate::format::{fnv1a, Decoder, Encoder};
use fuzzy_core::RoadNetwork;
use fuzzy_geom::Point;
use std::fs;
use std::io::Write;
use std::path::Path;

/// File magic of the persisted road network.
pub const ROADNET_MAGIC: [u8; 4] = *b"FZRN";
/// `.fzrn` format version understood by this build.
pub const ROADNET_VERSION: u16 = 1;

/// Persist `net` as a `.fzrn` file (see the module docs for the layout).
pub fn save_road_network<const D: usize>(
    net: &RoadNetwork<D>,
    path: impl AsRef<Path>,
) -> Result<(), StoreError> {
    let coords = net.coords();
    let edges = net.edges();
    let mut body = Encoder::with_capacity(16 + coords.len() * D * 8 + edges.len() * 16);
    body.u64(coords.len() as u64);
    for p in coords {
        for &c in p.coords() {
            body.f64(c);
        }
    }
    body.u64(edges.len() as u64);
    for &(u, v, w) in edges {
        body.u32(u);
        body.u32(v);
        body.f64(w);
    }
    let body = body.into_bytes();
    let mut out = Encoder::with_capacity(16 + body.len() + 12);
    out.bytes(&ROADNET_MAGIC);
    out.u16(ROADNET_VERSION);
    out.u16(D as u16);
    out.u64(0); // reserved
    out.bytes(&body);
    out.u64(fnv1a(&body));
    out.bytes(&ROADNET_MAGIC);
    let mut file = fs::File::create(path)?;
    file.write_all(out.as_bytes())?;
    file.sync_all()?;
    Ok(())
}

/// Load a `.fzrn` file and rebuild the full [`RoadNetwork`] (CSR, APSP,
/// coordinate lookup) from the persisted definition. Verifies magic,
/// version, dimensionality and the body checksum; graph-validity errors
/// surface as [`StoreError::Corrupt`].
pub fn load_road_network<const D: usize>(
    path: impl AsRef<Path>,
) -> Result<RoadNetwork<D>, StoreError> {
    let bytes = fs::read(path)?;
    let corrupt = |reason: &str| StoreError::Corrupt { reason: reason.to_string() };
    if bytes.len() < 16 + 12 {
        return Err(corrupt("fzrn file shorter than header + trailer"));
    }
    if bytes[..4] != ROADNET_MAGIC || bytes[bytes.len() - 4..] != ROADNET_MAGIC {
        return Err(corrupt("bad fzrn magic"));
    }
    let mut head = Decoder::new(&bytes[4..16]);
    let version = head.u16()?;
    if version != ROADNET_VERSION {
        return Err(StoreError::VersionMismatch { found: version, expected: ROADNET_VERSION });
    }
    let dims = head.u16()?;
    if dims as usize != D {
        return Err(StoreError::DimensionMismatch { found: dims, expected: D as u16 });
    }
    let body = &bytes[16..bytes.len() - 12];
    let mut tail = Decoder::new(&bytes[bytes.len() - 12..bytes.len() - 4]);
    if tail.u64()? != fnv1a(body) {
        return Err(corrupt("fzrn body checksum mismatch"));
    }
    let mut d = Decoder::new(body);
    let vertex_count = d.u64()? as usize;
    let mut coords = Vec::with_capacity(vertex_count);
    for _ in 0..vertex_count {
        let mut c = [0.0_f64; D];
        for v in c.iter_mut() {
            *v = d.f64()?;
        }
        coords.push(Point::new(c));
    }
    let edge_count = d.u64()? as usize;
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let u = d.u32()?;
        let v = d.u32()?;
        let w = d.f64()?;
        edges.push((u, v, w));
    }
    if d.remaining() != 0 {
        return Err(corrupt("trailing bytes after fzrn edge list"));
    }
    RoadNetwork::new(coords, edges)
        .map_err(|e| StoreError::Corrupt { reason: format!("invalid road network: {e}") })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> RoadNetwork<2> {
        let mut coords = Vec::new();
        let mut edges = Vec::new();
        for y in 0..4u32 {
            for x in 0..4u32 {
                coords.push(Point::new([x as f64, y as f64]));
                let i = y * 4 + x;
                if x > 0 {
                    edges.push((i - 1, i, 1.0));
                }
                if y > 0 {
                    edges.push((i - 4, i, 1.0));
                }
            }
        }
        RoadNetwork::new(coords, edges).unwrap()
    }

    #[test]
    fn roundtrip_rebuilds_identical_distances() {
        let net = grid();
        let dir = std::env::temp_dir().join("fzrn_roundtrip_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.fzrn");
        save_road_network(&net, &path).unwrap();
        let back: RoadNetwork<2> = load_road_network(&path).unwrap();
        assert_eq!(back.vertex_count(), net.vertex_count());
        assert_eq!(back.edges(), net.edges());
        for u in 0..16 {
            for v in 0..16 {
                assert_eq!(net.shortest_path(u, v).to_bits(), back.shortest_path(u, v).to_bits(),);
            }
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bitflip_is_rejected() {
        let net = grid();
        let dir = std::env::temp_dir().join("fzrn_corrupt_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.fzrn");
        save_road_network(&net, &path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_road_network::<2>(&path), Err(StoreError::Corrupt { .. })));
        fs::remove_file(&path).ok();
    }
}
