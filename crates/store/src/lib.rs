//! Object storage for fuzzy datasets.
//!
//! The paper's setting (Section 3.1): fuzzy objects are large (1 000 points
//! each in the evaluation), so the R-tree keeps only per-object summaries in
//! memory "along with a pointer which refers to the actual location on hard
//! disk"; retrieving an object — a *probe* — is the dominant cost and the
//! headline metric of every experiment.
//!
//! * [`FileStore`] — an append-only binary file of object records with an
//!   embedded summary section and index; probes use positioned reads
//!   (`pread`) and count accesses/bytes.
//! * [`MemStore`] — an in-memory stand-in with identical accounting, for
//!   tests and small workloads.
//! * [`CachedStore`] — an LRU wrapper used by the `abl-cache` ablation (the
//!   paper's algorithms are evaluated *without* caching).
//! * [`PageCache`] — a generic bounded LRU buffer pool for page-structured
//!   files (the paged R-tree index reads through one).
//! * [`DeltaLog`] — the checksummed `.fzdl` sidecar persisting a paged
//!   index's pending inserts/tombstones between processes (the index file
//!   itself is immutable until compaction).
//! * [`ObjectStore`] — the trait the query processor is generic over.

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod file_store;
pub mod format;
pub mod mem_store;
pub mod overlay;
pub mod pagecache;
pub mod roadnet;
pub mod stats;

pub use cache::CachedStore;
pub use error::StoreError;
pub use file_store::{FileStore, FileStoreWriter};
pub use mem_store::MemStore;
pub use overlay::DeltaLog;
pub use pagecache::{CachedPage, PageCache, PageCacheStats};
pub use roadnet::{load_road_network, save_road_network, ROADNET_MAGIC, ROADNET_VERSION};
pub use stats::{IoStats, IoStatsSnapshot};

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn stores_are_send_sync() {
        assert_send_sync::<FileStore<2>>();
        assert_send_sync::<MemStore<2>>();
        assert_send_sync::<CachedStore<FileStore<2>, 2>>();
        assert_send_sync::<CachedStore<MemStore<2>, 2>>();
    }
}

use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
use std::sync::Arc;

/// A probe result that records where the object came from.
///
/// Query-local cost accounting needs to know whether a probe actually
/// touched the backing medium (one of the paper's "object accesses") or was
/// served by a cache layer — per-query counter deltas cannot distinguish
/// the two once queries run concurrently against a shared store.
#[derive(Clone, Debug)]
pub struct TracedProbe<const D: usize> {
    /// The retrieved object.
    pub object: Arc<FuzzyObject<D>>,
    /// True when the probe reached the backing medium (counts as one
    /// object access); false for cache hits.
    pub disk_read: bool,
}

/// Abstract object store: the query processor only ever probes by id and
/// reads the in-memory summary table.
///
/// Implementations must be usable behind a shared reference from many
/// threads at once — all methods take `&self` and the built-in stores use
/// atomic counters and positioned reads, so `&FileStore`/`&MemStore` can be
/// probed concurrently without external locking.
pub trait ObjectStore<const D: usize> {
    /// Retrieve one object — this is the "object access" the paper counts.
    fn probe(&self, id: ObjectId) -> Result<Arc<FuzzyObject<D>>, StoreError>;

    /// Retrieve one object together with its provenance (backing medium vs
    /// cache). The default forwards to [`ObjectStore::probe`] and reports a
    /// disk read; caching layers override it to report hits.
    fn probe_traced(&self, id: ObjectId) -> Result<TracedProbe<D>, StoreError> {
        Ok(TracedProbe { object: self.probe(id)?, disk_read: true })
    }

    /// Number of stored objects.
    fn len(&self) -> usize;

    /// True when no objects are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The in-memory summary table (support/kernel MBRs, conservative
    /// lines, representative points) for index construction.
    fn summaries(&self) -> &[ObjectSummary<D>];

    /// I/O accounting snapshot.
    fn stats(&self) -> IoStatsSnapshot;

    /// Reset the I/O counters (between experiment runs).
    fn reset_stats(&self);
}
