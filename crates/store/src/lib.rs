//! Object storage for fuzzy datasets.
//!
//! The paper's setting (Section 3.1): fuzzy objects are large (1 000 points
//! each in the evaluation), so the R-tree keeps only per-object summaries in
//! memory "along with a pointer which refers to the actual location on hard
//! disk"; retrieving an object — a *probe* — is the dominant cost and the
//! headline metric of every experiment.
//!
//! * [`FileStore`] — an append-only binary file of object records with an
//!   embedded summary section and index; probes use positioned reads
//!   (`pread`) and count accesses/bytes.
//! * [`MemStore`] — an in-memory stand-in with identical accounting, for
//!   tests and small workloads.
//! * [`CachedStore`] — an LRU wrapper used by the `abl-cache` ablation (the
//!   paper's algorithms are evaluated *without* caching).
//! * [`ObjectStore`] — the trait the query processor is generic over.

pub mod cache;
pub mod error;
pub mod file_store;
pub mod format;
pub mod mem_store;
pub mod stats;

pub use cache::CachedStore;
pub use error::StoreError;
pub use file_store::{FileStore, FileStoreWriter};
pub use mem_store::MemStore;
pub use stats::{IoStats, IoStatsSnapshot};

use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
use std::sync::Arc;

/// Abstract object store: the query processor only ever probes by id and
/// reads the in-memory summary table.
pub trait ObjectStore<const D: usize> {
    /// Retrieve one object — this is the "object access" the paper counts.
    fn probe(&self, id: ObjectId) -> Result<Arc<FuzzyObject<D>>, StoreError>;

    /// Number of stored objects.
    fn len(&self) -> usize;

    /// True when no objects are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The in-memory summary table (support/kernel MBRs, conservative
    /// lines, representative points) for index construction.
    fn summaries(&self) -> &[ObjectSummary<D>];

    /// I/O accounting snapshot.
    fn stats(&self) -> IoStatsSnapshot;

    /// Reset the I/O counters (between experiment runs).
    fn reset_stats(&self);
}
