//! An LRU cache layer over any object store.
//!
//! The paper evaluates its algorithms **without** caching — the repeated
//! AKNN invocations of the basic RKNN algorithm re-probe objects every time,
//! which is precisely why it loses by an order of magnitude. This wrapper
//! exists for the `abl-cache` ablation: how much of the RSS optimization's
//! advantage could a plain cache have recovered?

use crate::error::StoreError;
use crate::stats::IoStatsSnapshot;
use crate::{ObjectStore, TracedProbe};
use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// LRU entries: id → (object, last-use tick).
struct CacheInner<const D: usize> {
    map: HashMap<ObjectId, (Arc<FuzzyObject<D>>, u64)>,
    tick: u64,
}

/// A bounded LRU cache in front of a store `S`.
pub struct CachedStore<S, const D: usize> {
    inner: S,
    capacity: usize,
    cache: Mutex<CacheInner<D>>,
    hit_count: std::sync::atomic::AtomicU64,
}

impl<S: ObjectStore<D>, const D: usize> CachedStore<S, D> {
    /// Wrap `inner` with an LRU of at most `capacity` objects.
    pub fn new(inner: S, capacity: usize) -> Self {
        Self {
            inner,
            capacity: capacity.max(1),
            cache: Mutex::new(CacheInner { map: HashMap::new(), tick: 0 }),
            hit_count: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Drop all cached objects.
    pub fn clear(&self) {
        let mut c = self.cache.lock().unwrap();
        c.map.clear();
    }

    /// Number of currently cached objects.
    pub fn cached_len(&self) -> usize {
        self.cache.lock().unwrap().map.len()
    }
}

impl<S: ObjectStore<D>, const D: usize> ObjectStore<D> for CachedStore<S, D> {
    fn probe(&self, id: ObjectId) -> Result<Arc<FuzzyObject<D>>, StoreError> {
        Ok(self.probe_traced(id)?.object)
    }

    fn probe_traced(&self, id: ObjectId) -> Result<TracedProbe<D>, StoreError> {
        {
            let mut c = self.cache.lock().unwrap();
            c.tick += 1;
            let tick = c.tick;
            if let Some((obj, last)) = c.map.get_mut(&id) {
                *last = tick;
                let hit = obj.clone();
                drop(c);
                // A cache hit is *not* an object access in the paper's
                // accounting; record it separately.
                self.record_hit();
                return Ok(TracedProbe { object: hit, disk_read: false });
            }
        }
        // Propagate the inner provenance: a miss here that an inner cache
        // layer serves is still not a disk read.
        let probe = self.inner.probe_traced(id)?;
        let mut c = self.cache.lock().unwrap();
        c.tick += 1;
        let tick = c.tick;
        if c.map.len() >= self.capacity {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = c.map.iter().min_by_key(|(_, (_, last))| *last) {
                c.map.remove(&victim);
            }
        }
        c.map.insert(id, (probe.object.clone(), tick));
        Ok(probe)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn summaries(&self) -> &[ObjectSummary<D>] {
        self.inner.summaries()
    }

    fn stats(&self) -> IoStatsSnapshot {
        let mut snap = self.inner.stats();
        snap.cache_hits += self.hits();
        snap
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
        self.hit_count.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}

impl<S, const D: usize> CachedStore<S, D> {
    fn record_hit(&self) {
        self.hit_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn hits(&self) -> u64 {
        self.hit_count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem_store::MemStore;
    use fuzzy_geom::Point;

    fn obj(id: u64) -> FuzzyObject<2> {
        FuzzyObject::new(ObjectId(id), vec![Point::xy(id as f64, 0.0)], vec![1.0]).unwrap()
    }

    fn store(n: u64, cap: usize) -> CachedStore<MemStore<2>, 2> {
        CachedStore::new(MemStore::from_objects((0..n).map(obj)).unwrap(), cap)
    }

    #[test]
    fn hits_do_not_count_as_object_reads() {
        let s = store(4, 4);
        let _ = s.probe(ObjectId(1)).unwrap();
        let _ = s.probe(ObjectId(1)).unwrap();
        let _ = s.probe(ObjectId(1)).unwrap();
        let snap = s.stats();
        assert_eq!(snap.object_reads, 1);
        assert_eq!(snap.cache_hits, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let s = store(10, 2);
        let _ = s.probe(ObjectId(0)).unwrap();
        let _ = s.probe(ObjectId(1)).unwrap();
        let _ = s.probe(ObjectId(0)).unwrap(); // refresh 0
        let _ = s.probe(ObjectId(2)).unwrap(); // evicts 1
        assert_eq!(s.cached_len(), 2);
        let before = s.stats().object_reads;
        let _ = s.probe(ObjectId(1)).unwrap(); // miss again, evicts 0 (LRU)
        assert_eq!(s.stats().object_reads, before + 1);
        let before = s.stats().object_reads;
        let _ = s.probe(ObjectId(2)).unwrap(); // still cached
        assert_eq!(s.stats().object_reads, before);
        let _ = s.probe(ObjectId(0)).unwrap(); // was evicted -> miss
        assert_eq!(s.stats().object_reads, before + 1);
    }

    #[test]
    fn clear_empties_cache() {
        let s = store(3, 3);
        let _ = s.probe(ObjectId(0)).unwrap();
        s.clear();
        assert_eq!(s.cached_len(), 0);
        let _ = s.probe(ObjectId(0)).unwrap();
        assert_eq!(s.stats().object_reads, 2);
    }
}
