//! I/O accounting.
//!
//! The paper's evaluation measures "the number of object access from hard
//! disk"; these counters are the source of truth for every experiment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe I/O counters embedded in every store.
#[derive(Debug, Default)]
pub struct IoStats {
    object_reads: AtomicU64,
    bytes_read: AtomicU64,
    cache_hits: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one object probe of `bytes` bytes.
    #[inline]
    pub fn record_read(&self, bytes: u64) {
        self.object_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a cache hit (a probe that did *not* reach the disk).
    #[inline]
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            object_reads: self.object_reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.object_reads.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Objects actually read from the backing medium.
    pub object_reads: u64,
    /// Bytes read from the backing medium.
    pub bytes_read: u64,
    /// Probes served from a cache layer.
    pub cache_hits: u64,
}

impl IoStatsSnapshot {
    /// Counter difference (`self` after, `before` before).
    ///
    /// For whole-store diagnostics only (e.g. bracketing an experiment
    /// phase on an otherwise idle store). Do **not** use it for per-query
    /// cost accounting: with concurrent queries the delta includes every
    /// other query's traffic — that is exactly why the query processor
    /// charges query-local `QueryStats` via `ObjectStore::probe_traced`
    /// instead.
    pub fn since(&self, before: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            object_reads: self.object_reads - before.object_reads,
            bytes_read: self.bytes_read - before.bytes_read,
            cache_hits: self.cache_hits - before.cache_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = IoStats::new();
        s.record_read(100);
        s.record_read(50);
        s.record_cache_hit();
        let snap = s.snapshot();
        assert_eq!(snap.object_reads, 2);
        assert_eq!(snap.bytes_read, 150);
        assert_eq!(snap.cache_hits, 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_read(10);
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new();
        s.record_read(10);
        let before = s.snapshot();
        s.record_read(20);
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.object_reads, 1);
        assert_eq!(delta.bytes_read, 20);
    }
}
