//! The delta-log sidecar format (`.fzdl`): persistence for the index
//! crate's paged-tree write overlay.
//!
//! A `PagedRTree` index file is immutable until compaction; dynamic
//! inserts and deletes accumulate in an in-memory overlay
//! (`fuzzy_index::OverlayRTree`). This module persists that overlay as a
//! small sidecar next to the index file so a fresh process — `fkq
//! insert/delete` invocations, a restarted server — sees the same live
//! object set without rewriting the index.
//!
//! Byte layout (little-endian, normative spec in `docs/FORMAT.md`):
//!
//! ```text
//! [ header  ] magic "FZDL" | version u16 | dims u16
//!             | inserted count u64 | tombstone count u64
//! [ inserts ] inserted object summaries, FileStore summary encoding
//! [ deletes ] tombstoned object ids, u64 each
//! [ trailer ] FNV-1a checksum over everything before it, u64
//! ```
//!
//! The log is a *state snapshot*, not an append log: every save rewrites
//! the (small) file whole, via a temp file renamed into place — a crash
//! mid-save leaves the previously persisted state authoritative, and the
//! trailing checksum catches any torn temp write that leaks through.

use crate::error::StoreError;
use crate::format::{decode_summary, encode_summary, fnv1a, summary_len, Decoder, Encoder};
use fuzzy_core::ObjectSummary;
use std::path::Path;

/// Delta-log magic ("FuZzy DeLta").
pub const DELTA_MAGIC: [u8; 4] = *b"FZDL";
/// Delta-log format version understood by this build.
pub const DELTA_VERSION: u16 = 2;
/// Header length in bytes (magic, version, dims, two counts).
pub const DELTA_HEADER_LEN: usize = 4 + 2 + 2 + 8 + 8;

fn corrupt(reason: impl Into<String>) -> StoreError {
    StoreError::Corrupt { reason: reason.into() }
}

/// A decoded delta log: the overlay state of one index file.
#[derive(Clone, Debug, Default)]
pub struct DeltaLog<const D: usize> {
    /// Summaries inserted since the last compaction, in insertion order
    /// (the order is part of the overlay's deterministic node layout).
    pub inserted: Vec<ObjectSummary<D>>,
    /// Object ids tombstoned out of the base index file, ascending.
    pub tombstones: Vec<u64>,
}

impl<const D: usize> DeltaLog<D> {
    /// True when the log carries no changes (compaction leaves this).
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.tombstones.is_empty()
    }

    /// Serialize to bytes (header, payload, checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload =
            DELTA_HEADER_LEN + self.inserted.len() * summary_len(D) + self.tombstones.len() * 8;
        let mut e = Encoder::with_capacity(payload + 8);
        e.bytes(&DELTA_MAGIC);
        e.u16(DELTA_VERSION);
        e.u16(D as u16);
        e.u64(self.inserted.len() as u64);
        e.u64(self.tombstones.len() as u64);
        for s in &self.inserted {
            encode_summary(&mut e, s);
        }
        for &id in &self.tombstones {
            e.u64(id);
        }
        let sum = fnv1a(e.as_bytes());
        e.u64(sum);
        e.into_bytes()
    }

    /// Decode from bytes, verifying magic, version, dimensionality and
    /// checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < DELTA_HEADER_LEN + 8 {
            return Err(corrupt("delta log shorter than header + checksum"));
        }
        if bytes[..4] != DELTA_MAGIC {
            return Err(corrupt("bad magic in delta log"));
        }
        let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        let mut d = Decoder::new(&payload[4..]);
        let version = d.u16()?;
        if version != DELTA_VERSION {
            return Err(StoreError::VersionMismatch { found: version, expected: DELTA_VERSION });
        }
        let dims = d.u16()?;
        if dims as usize != D {
            return Err(StoreError::DimensionMismatch { found: dims, expected: D as u16 });
        }
        if stored != fnv1a(payload) {
            return Err(corrupt("delta log checksum mismatch"));
        }
        let n_inserted = d.u64()? as usize;
        let n_tombstones = d.u64()? as usize;
        let expect = DELTA_HEADER_LEN + n_inserted * summary_len(D) + n_tombstones * 8;
        if payload.len() != expect {
            return Err(corrupt(format!(
                "delta log payload is {} bytes, counts imply {expect}",
                payload.len()
            )));
        }
        let mut inserted = Vec::with_capacity(n_inserted);
        for _ in 0..n_inserted {
            inserted.push(decode_summary::<D>(&mut d)?);
        }
        let mut tombstones = Vec::with_capacity(n_tombstones);
        for _ in 0..n_tombstones {
            tombstones.push(d.u64()?);
        }
        Ok(Self { inserted, tombstones })
    }

    /// Write the log to `path`. The bytes go to a `.tmp` sibling first
    /// and are renamed into place, so a crash mid-save leaves the
    /// previous log intact; a torn write of the temp file never becomes
    /// visible (and would fail the trailing checksum anyway).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load a log from `path`. A missing file is the empty log — an index
    /// file without a sidecar simply has no pending changes.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        match std::fs::read(path.as_ref()) {
            Ok(bytes) => Self::from_bytes(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::{FuzzyObject, ObjectId};
    use fuzzy_geom::Point;

    fn summary(id: u64, x: f64) -> ObjectSummary<2> {
        let obj = FuzzyObject::new(
            ObjectId(id),
            vec![Point::xy(x, 0.0), Point::xy(x + 0.5, 0.5)],
            vec![1.0, 0.5],
        )
        .unwrap();
        ObjectSummary::from_object(&obj)
    }

    #[test]
    fn roundtrip() {
        let log = DeltaLog::<2> {
            inserted: (0..17).map(|i| summary(100 + i, i as f64)).collect(),
            tombstones: vec![3, 9, 12],
        };
        let back = DeltaLog::<2>::from_bytes(&log.to_bytes()).unwrap();
        assert_eq!(back.tombstones, log.tombstones);
        assert_eq!(back.inserted.len(), log.inserted.len());
        for (a, b) in back.inserted.iter().zip(&log.inserted) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.support_mbr, b.support_mbr);
        }
    }

    #[test]
    fn missing_file_is_the_empty_log() {
        let log = DeltaLog::<2>::load("/nonexistent/delta.fzdl").unwrap();
        assert!(log.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let log = DeltaLog::<2> { inserted: vec![summary(1, 0.0)], tombstones: vec![7] };
        let pristine = log.to_bytes();

        let mut bad = pristine.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(DeltaLog::<2>::from_bytes(&bad).unwrap_err(), StoreError::Corrupt { .. }));

        let mut bad = pristine.clone();
        bad[DELTA_HEADER_LEN + 4] ^= 0x01; // flip a payload bit
        assert!(matches!(DeltaLog::<2>::from_bytes(&bad).unwrap_err(), StoreError::Corrupt { .. }));

        let mut bad = pristine.clone();
        bad.truncate(bad.len() - 3);
        assert!(DeltaLog::<2>::from_bytes(&bad).is_err());

        // Wrong dimensionality is a typed error.
        assert!(matches!(
            DeltaLog::<3>::from_bytes(&pristine).unwrap_err(),
            StoreError::DimensionMismatch { found: 2, expected: 3 }
        ));

        assert!(DeltaLog::<2>::from_bytes(&pristine).is_ok());
    }
}
