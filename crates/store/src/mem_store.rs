//! In-memory object store with the same accounting semantics as
//! [`crate::FileStore`] — every probe counts as one (simulated) object
//! access. Used by tests, examples and CPU-bound benchmarks.

use crate::error::StoreError;
use crate::stats::{IoStats, IoStatsSnapshot};
use crate::ObjectStore;
use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
use std::collections::HashMap;
use std::sync::Arc;

/// A `HashMap`-backed store.
///
/// ```
/// use fuzzy_core::{FuzzyObject, ObjectId};
/// use fuzzy_geom::Point;
/// use fuzzy_store::{MemStore, ObjectStore};
///
/// let store = MemStore::from_objects((0..3).map(|i| {
///     FuzzyObject::new(
///         ObjectId(i),
///         vec![Point::xy(i as f64, 0.0), Point::xy(i as f64, 1.0)],
///         vec![1.0, 0.5],
///     )
///     .unwrap()
/// }))
/// .unwrap();
///
/// assert_eq!(store.len(), 3);
/// assert_eq!(store.summaries().len(), 3); // free: no probe charged
/// let obj = store.probe(ObjectId(1)).unwrap();
/// assert_eq!(obj.id(), ObjectId(1));
/// assert_eq!(store.stats().object_reads, 1); // ... but the probe was charged
/// ```
#[derive(Debug)]
pub struct MemStore<const D: usize> {
    objects: HashMap<ObjectId, Arc<FuzzyObject<D>>>,
    summaries: Vec<ObjectSummary<D>>,
    stats: IoStats,
    /// Approximate encoded record size per object, for byte accounting
    /// parity with the file store.
    sizes: HashMap<ObjectId, u64>,
}

impl<const D: usize> MemStore<D> {
    /// Build from a collection of objects (summaries computed here).
    pub fn from_objects(
        objects: impl IntoIterator<Item = FuzzyObject<D>>,
    ) -> Result<Self, StoreError> {
        let mut map = HashMap::new();
        let mut summaries = Vec::new();
        let mut sizes = HashMap::new();
        for obj in objects {
            if map.contains_key(&obj.id()) {
                return Err(StoreError::DuplicateObject(obj.id()));
            }
            summaries.push(ObjectSummary::from_object(&obj));
            sizes.insert(obj.id(), crate::format::record_len(D, obj.len()) as u64);
            map.insert(obj.id(), Arc::new(obj));
        }
        Ok(Self { objects: map, summaries, stats: IoStats::new(), sizes })
    }

    /// All stored ids.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.summaries.iter().map(|s| s.id).collect()
    }
}

impl<const D: usize> ObjectStore<D> for MemStore<D> {
    fn probe(&self, id: ObjectId) -> Result<Arc<FuzzyObject<D>>, StoreError> {
        let obj = self.objects.get(&id).cloned().ok_or(StoreError::UnknownObject(id))?;
        self.stats.record_read(self.sizes[&id]);
        Ok(obj)
    }

    fn len(&self) -> usize {
        self.summaries.len()
    }

    fn summaries(&self) -> &[ObjectSummary<D>] {
        &self.summaries
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_geom::Point;

    fn obj(id: u64) -> FuzzyObject<2> {
        FuzzyObject::new(
            ObjectId(id),
            vec![Point::xy(id as f64, 0.0), Point::xy(id as f64 + 1.0, 1.0)],
            vec![1.0, 0.5],
        )
        .unwrap()
    }

    #[test]
    fn probe_counts_accesses() {
        let store = MemStore::from_objects((0..4).map(obj)).unwrap();
        assert_eq!(store.len(), 4);
        let _ = store.probe(ObjectId(2)).unwrap();
        let _ = store.probe(ObjectId(2)).unwrap();
        assert_eq!(store.stats().object_reads, 2);
        assert!(store.stats().bytes_read > 0);
    }

    #[test]
    fn duplicate_rejected() {
        let err = MemStore::from_objects([obj(1), obj(1)]).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateObject(ObjectId(1))));
    }

    #[test]
    fn unknown_probe_fails() {
        let store = MemStore::from_objects([obj(1)]).unwrap();
        assert!(matches!(store.probe(ObjectId(9)).unwrap_err(), StoreError::UnknownObject(_)));
    }

    #[test]
    fn byte_accounting_matches_file_encoding() {
        let store = MemStore::from_objects([obj(5)]).unwrap();
        let _ = store.probe(ObjectId(5)).unwrap();
        let expected = crate::format::encode_object(&obj(5)).len() as u64;
        assert_eq!(store.stats().bytes_read, expected);
    }
}
