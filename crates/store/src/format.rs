//! On-disk binary format (hand-rolled, little-endian, versioned).
//!
//! Normative byte-level spec — including the paged R-tree index format
//! that reuses this module's encoder/decoder — in `docs/FORMAT.md`.
//!
//! ```text
//! [ header   ] magic "FZKN" | version u16 | dims u16 | reserved u64
//! [ records  ] one per object: id u64 | n u32 | flags u32
//!              | perm n×u32 | µ n×f64 (descending) | cols D×n×f64 | fnv u64
//! [ summaries] count u64, then one fixed-size summary per object
//! [ index    ] count u64, then per object: id u64 | offset u64 | len u64
//! [ trailer  ] summary_off u64 | index_off u64 | count u64 | magic "FZKN"
//! ```
//!
//! Every record carries an FNV-1a checksum so a truncated or bit-flipped
//! file is detected at probe time rather than silently decoded.

use crate::error::StoreError;
use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
use fuzzy_geom::{ConservativeLine, Mbr, Point};

/// File magic.
pub const MAGIC: [u8; 4] = *b"FZKN";
/// Format version understood by this build. Version 2 switched every
/// checksum from bytewise FNV-1a to the word-at-a-time variant below —
/// record decoding sits on the query hot path, and the byte-serial
/// multiply chain of classic FNV cost more than the rest of the decode
/// combined. Version 3 turned object records **columnar**: points are
/// stored membership-descending as dimension-major coordinate columns
/// plus the permutation that restores construction order, so a decoded
/// object's [`MembershipPrefix`](fuzzy_core::MembershipPrefix) — the
/// layout every hot distance kernel scans — is rebuilt straight from the
/// record bytes without a sort.
pub const VERSION: u16 = 3;
/// Header length in bytes.
pub const HEADER_LEN: usize = 4 + 2 + 2 + 8;
/// Trailer length in bytes.
pub const TRAILER_LEN: usize = 8 + 8 + 8 + 4;

/// 64-bit FNV-1a over **8-byte little-endian words** (spec in
/// `docs/FORMAT.md`): the state is seeded with the FNV offset basis mixed
/// with the input length, then each word — the trailing partial word
/// zero-padded — is folded with the classic `xor`-then-multiply step.
/// One multiply per 8 bytes instead of one per byte gives ~8× the
/// throughput with the same error-detection envelope for our fixed-layout
/// records (length is part of the state, so zero padding cannot alias).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut h: u64 = 0xcbf29ce484222325 ^ (bytes.len() as u64).wrapping_mul(PRIME);
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        h = (h ^ u64::from_le_bytes(w.try_into().unwrap())).wrapping_mul(PRIME);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    h
}

/// Little-endian byte writer over a growable buffer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encoder with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self { buf: Vec::with_capacity(n) }
    }

    /// Append a u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the buffer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Little-endian byte reader with bounds checking.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.buf.len() {
            return Err(StoreError::Corrupt {
                reason: format!(
                    "unexpected end of data: need {} bytes at offset {}, have {}",
                    n,
                    self.pos,
                    self.buf.len()
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a u16.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a u32.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a u64.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an f64.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n)
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Encoded size of one v3 object record with `n` points in `d` dimensions.
pub const fn record_len(d: usize, n: usize) -> usize {
    8 + 4 + 4 + n * 4 + n * 8 + d * n * 8 + 8
}

/// Encode one object record (including trailing checksum).
///
/// Records store the **membership-descending columnar** layout directly:
/// the permutation back to construction order, the sorted memberships,
/// then the dimension-major coordinate columns. Decoding therefore hands
/// the distance kernels their scan layout without re-sorting (the
/// `MembershipPrefix` cache is pre-filled), while the observable object
/// round-trips exactly — same points, memberships and iteration order.
pub fn encode_object<const D: usize>(obj: &FuzzyObject<D>) -> Vec<u8> {
    let n = obj.len();
    let pb = obj.by_membership();
    let mut e = Encoder::with_capacity(record_len(D, n));
    e.u64(obj.id().0);
    e.u32(n as u32);
    e.u32(0); // flags, reserved
    for &i in pb.source_indices() {
        e.u32(i);
    }
    for &mu in pb.memberships() {
        e.f64(mu);
    }
    for d in 0..D {
        for &c in pb.coord_column(d) {
            e.f64(c);
        }
    }
    let sum = fnv1a(e.as_bytes());
    e.u64(sum);
    e.into_bytes()
}

/// Decode one object record, verifying the checksum, the columnar layout
/// contract (permutation, descending memberships) and model invariants.
pub fn decode_object<const D: usize>(bytes: &[u8]) -> Result<FuzzyObject<D>, StoreError> {
    if bytes.len() < record_len(D, 0) {
        return Err(StoreError::Corrupt { reason: "record too short".into() });
    }
    let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(StoreError::Corrupt {
            reason: format!("record checksum mismatch: stored {stored:x}, computed {computed:x}"),
        });
    }
    let mut d = Decoder::new(payload);
    let id = ObjectId(d.u64()?);
    let n = d.u32()? as usize;
    let _flags = d.u32()?;
    let expected = n * 4 + n * 8 + D * n * 8;
    if d.remaining() != expected {
        return Err(StoreError::Corrupt {
            reason: format!(
                "record for {id} declares {n} points but carries {} payload bytes (expected {expected})",
                d.remaining()
            ),
        });
    }
    let mut orig = Vec::with_capacity(n);
    for _ in 0..n {
        orig.push(d.u32()?);
    }
    let mut mus = Vec::with_capacity(n);
    for _ in 0..n {
        mus.push(d.f64()?);
    }
    let mut cols = Vec::with_capacity(D * n);
    for _ in 0..D * n {
        cols.push(d.f64()?);
    }
    Ok(FuzzyObject::from_columnar(id, orig, mus, cols)?)
}

/// Fixed encoded size of one summary.
pub const fn summary_len(d: usize) -> usize {
    8 + 4 + 4 + (4 * d + 4 * d + d) * 8
}

/// Encode one summary into `e`.
pub fn encode_summary<const D: usize>(e: &mut Encoder, s: &ObjectSummary<D>) {
    e.u64(s.id.0);
    e.u32(s.point_count);
    e.u32(0); // padding / future flags
    for i in 0..D {
        e.f64(s.support_mbr.lo(i));
        e.f64(s.support_mbr.hi(i));
    }
    for i in 0..D {
        e.f64(s.kernel_mbr.lo(i));
        e.f64(s.kernel_mbr.hi(i));
    }
    for line in &s.upper_lines {
        e.f64(line.m);
        e.f64(line.t);
    }
    for line in &s.lower_lines {
        e.f64(line.m);
        e.f64(line.t);
    }
    for i in 0..D {
        e.f64(s.rep[i]);
    }
}

/// Decode one summary.
pub fn decode_summary<const D: usize>(d: &mut Decoder<'_>) -> Result<ObjectSummary<D>, StoreError> {
    let id = ObjectId(d.u64()?);
    let point_count = d.u32()?;
    let _flags = d.u32()?;
    let read_mbr = |d: &mut Decoder<'_>| -> Result<Mbr<D>, StoreError> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = d.f64()?;
            hi[i] = d.f64()?;
        }
        Ok(Mbr::new(lo, hi))
    };
    let support_mbr = read_mbr(d)?;
    let kernel_mbr = read_mbr(d)?;
    let mut upper_lines = [ConservativeLine::ZERO; D];
    for line in upper_lines.iter_mut() {
        *line = ConservativeLine { m: d.f64()?, t: d.f64()? };
    }
    let mut lower_lines = [ConservativeLine::ZERO; D];
    for line in lower_lines.iter_mut() {
        *line = ConservativeLine { m: d.f64()?, t: d.f64()? };
    }
    let mut rep = [0.0; D];
    for x in rep.iter_mut() {
        *x = d.f64()?;
    }
    Ok(ObjectSummary {
        id,
        support_mbr,
        kernel_mbr,
        upper_lines,
        lower_lines,
        rep: Point::new(rep),
        point_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_object(id: u64) -> FuzzyObject<2> {
        let pts = vec![Point::xy(1.5, -2.25), Point::xy(0.0, 0.125), Point::xy(-3.5, 7.0)];
        FuzzyObject::new(ObjectId(id), pts, vec![1.0, 0.5, 0.25]).unwrap()
    }

    #[test]
    fn object_roundtrip_is_exact() {
        let obj = sample_object(42);
        let bytes = encode_object(&obj);
        assert_eq!(bytes.len(), record_len(2, obj.len()));
        let back: FuzzyObject<2> = decode_object(&bytes).unwrap();
        assert_eq!(back.id(), obj.id());
        assert_eq!(back.points(), obj.points());
        assert_eq!(back.memberships(), obj.memberships());
        // v3 decoding pre-fills the membership-descending prefix layout —
        // no sort on the probe path — and it matches a lazy build bitwise.
        assert!(back.prefix_ready());
        let pa = obj.by_membership();
        let pb = back.by_membership();
        assert_eq!(pa.points(), pb.points());
        assert_eq!(pa.memberships(), pb.memberships());
        assert_eq!(pa.source_indices(), pb.source_indices());
        for d in 0..2 {
            assert_eq!(pa.coord_column(d), pb.coord_column(d));
        }
    }

    #[test]
    fn unsorted_record_payload_rejected() {
        // A forged record whose checksum is valid but whose memberships
        // ascend must be rejected by the layout validation, not decoded
        // into a silently wrong prefix.
        let mut e = Encoder::new();
        e.u64(9);
        e.u32(2);
        e.u32(0);
        e.u32(0);
        e.u32(1); // perm
        e.f64(0.5);
        e.f64(1.0); // µ ascending: invalid
        for c in [0.0, 1.0, 0.0, 1.0] {
            e.f64(c);
        }
        let sum = fnv1a(e.as_bytes());
        e.u64(sum);
        let err = decode_object::<2>(&e.into_bytes()).unwrap_err();
        assert!(matches!(err, StoreError::Model(_)), "{err}");
    }

    #[test]
    fn checksum_detects_corruption() {
        let obj = sample_object(1);
        let mut bytes = encode_object(&obj);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = decode_object::<2>(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn truncation_detected() {
        let obj = sample_object(2);
        let bytes = encode_object(&obj);
        let err = decode_object::<2>(&bytes[..bytes.len() - 4]).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        let err = decode_object::<2>(&bytes[..8]).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
    }

    #[test]
    fn summary_roundtrip_is_exact() {
        let obj = sample_object(7);
        let s = ObjectSummary::from_object(&obj);
        let mut e = Encoder::new();
        encode_summary(&mut e, &s);
        assert_eq!(e.len(), summary_len(2));
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back: ObjectSummary<2> = decode_summary(&mut d).unwrap();
        assert_eq!(back.id, s.id);
        assert_eq!(back.point_count, s.point_count);
        assert_eq!(back.support_mbr, s.support_mbr);
        assert_eq!(back.kernel_mbr, s.kernel_mbr);
        assert_eq!(back.rep, s.rep);
        for i in 0..2 {
            assert_eq!(back.upper_lines[i], s.upper_lines[i]);
            assert_eq!(back.lower_lines[i], s.lower_lines[i]);
        }
    }

    #[test]
    fn checksum_discriminates() {
        // Length participates in the state: zero padding cannot alias.
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abc\0"));
        // Word-boundary sensitivity: moving a byte across the 8-byte
        // boundary changes the digest.
        assert_ne!(fnv1a(b"0123456x7"), fnv1a(b"01234567x"));
        // Single bit flips are detected in every position of a record-
        // sized buffer.
        let base = vec![0x5Au8; 64];
        let h = fnv1a(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 1;
            assert_ne!(fnv1a(&flipped), h, "flip at {i} undetected");
        }
        // Golden value pins the algorithm across refactors.
        assert_eq!(fnv1a(b"fuzzy-knn"), {
            const PRIME: u64 = 0x100000001b3;
            let mut h: u64 = 0xcbf29ce484222325 ^ 9u64.wrapping_mul(PRIME);
            h = (h ^ u64::from_le_bytes(*b"fuzzy-kn")).wrapping_mul(PRIME);
            h = (h ^ u64::from_le_bytes(*b"n\0\0\0\0\0\0\0")).wrapping_mul(PRIME);
            h
        });
    }

    #[test]
    fn decoder_bounds_checked() {
        let mut d = Decoder::new(&[1, 2, 3]);
        assert!(d.u16().is_ok());
        assert!(d.u32().is_err());
    }
}
