//! A generic bounded LRU page cache — the buffer pool behind the paged
//! R-tree (`fuzzy_index::PagedRTree`) and any future page-structured file.
//!
//! Where [`crate::CachedStore`] caches whole fuzzy objects by id, this
//! cache holds *pages*: fixed-size units of a file keyed by page number,
//! decoded once and shared as `Arc<T>` between concurrent readers. Every
//! lookup reports its provenance (backing medium vs cache) the same way
//! [`crate::ObjectStore::probe_traced`] does, so per-query cost accounting
//! stays exact under concurrency.
//!
//! The eviction policy is least-recently-used with lazy invalidation: each
//! access appends a `(key, stamp)` ticket to a queue, and eviction pops
//! tickets until one still matches the key's current stamp. Stale tickets
//! (from keys that were re-accessed or already evicted) are discarded, so
//! both lookup and eviction are O(1) amortized.

use crate::error::StoreError;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A page served by the cache, with its provenance.
#[derive(Debug)]
pub struct CachedPage<T> {
    /// The decoded page contents, shared with the cache.
    pub value: Arc<T>,
    /// True when serving this page touched the backing medium (a miss);
    /// false for cache hits.
    pub disk_read: bool,
}

impl<T> Clone for CachedPage<T> {
    fn clone(&self) -> Self {
        Self { value: Arc::clone(&self.value), disk_read: self.disk_read }
    }
}

/// Point-in-time counters of a [`PageCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to load from the backing medium.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

struct Slot<T> {
    value: Arc<T>,
    /// Stamp of this slot's newest LRU ticket; older tickets are stale.
    stamp: u64,
}

struct Inner<T> {
    map: HashMap<u64, Slot<T>>,
    /// LRU tickets, oldest first. A ticket is live iff its stamp equals
    /// the mapped slot's current stamp.
    queue: VecDeque<(u64, u64)>,
    next_stamp: u64,
}

impl<T> Inner<T> {
    fn touch(&mut self, key: u64) {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        if let Some(slot) = self.map.get_mut(&key) {
            slot.stamp = stamp;
        }
        self.queue.push_back((key, stamp));
        // Lazy invalidation leaves one stale ticket behind per re-access;
        // when eviction never runs (resident set below capacity) those
        // would otherwise accumulate forever. Compact once the queue
        // outgrows the live set by 2×: retain only live tickets, O(1)
        // amortized per touch.
        if self.queue.len() > (self.map.len() * 2).max(64) {
            let map = &self.map;
            self.queue.retain(|(key, stamp)| map.get(key).is_some_and(|slot| slot.stamp == *stamp));
        }
    }

    /// Evict the least recently used live entry, if any.
    fn evict_one(&mut self) -> bool {
        while let Some((key, stamp)) = self.queue.pop_front() {
            let live = self.map.get(&key).is_some_and(|slot| slot.stamp == stamp);
            if live {
                self.map.remove(&key);
                return true;
            }
        }
        false
    }
}

/// A bounded LRU cache of decoded pages, keyed by page number.
///
/// `get_or_load` is the only read path: on a miss the supplied loader runs
/// *outside* the cache lock (so concurrent readers of other pages are
/// never serialized behind an I/O), then the result is inserted, evicting
/// the least recently used page when the capacity is exceeded. Two threads
/// missing the same page concurrently may both run the loader — each then
/// correctly reports a disk read — which is the same interleaving caveat
/// [`crate::CachedStore`] has for object probes.
///
/// ```
/// use fuzzy_store::PageCache;
///
/// let cache: PageCache<Vec<u8>> = PageCache::new(1); // one-page pool
/// let a = cache.get_or_load(0, || Ok(vec![0xAA])).unwrap();
/// assert!(a.disk_read);
/// // Same page again: served from the pool.
/// assert!(!cache.get_or_load(0, || unreachable!("cached")).unwrap().disk_read);
/// // A different page evicts page 0 (capacity 1) ...
/// let b = cache.get_or_load(1, || Ok(vec![0xBB])).unwrap();
/// assert!(b.disk_read);
/// // ... so page 0 must be loaded again.
/// assert!(cache.get_or_load(0, || Ok(vec![0xAA])).unwrap().disk_read);
/// assert_eq!(cache.stats().evictions, 2);
/// ```
#[derive(Debug)]
pub struct PageCache<T> {
    capacity: usize,
    inner: Mutex<InnerBox<T>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Newtype so the `Debug` derive on [`PageCache`] does not require
/// `T: Debug`.
struct InnerBox<T>(Inner<T>);

impl<T> std::fmt::Debug for InnerBox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCacheInner").field("resident", &self.0.map.len()).finish()
    }
}

impl<T> PageCache<T> {
    /// A cache holding at most `capacity` pages (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(InnerBox(Inner {
                map: HashMap::new(),
                queue: VecDeque::new(),
                next_stamp: 0,
            })),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().unwrap().0.map.len()
    }

    /// Look `key` up, running `load` on a miss. The returned provenance
    /// flag is true exactly when `load` ran.
    pub fn get_or_load(
        &self,
        key: u64,
        load: impl FnOnce() -> Result<T, StoreError>,
    ) -> Result<CachedPage<T>, StoreError> {
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(slot) = inner.0.map.get(&key) {
                let value = Arc::clone(&slot.value);
                inner.0.touch(key);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(CachedPage { value, disk_read: false });
            }
        }
        // Load outside the lock: a slow page read must not stall readers
        // of resident pages.
        let value = Arc::new(load()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut inner.0;
        while inner.map.len() >= self.capacity {
            if inner.evict_one() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break; // queue exhausted; cannot happen while map is non-empty
            }
        }
        inner.map.insert(key, Slot { value: Arc::clone(&value), stamp: 0 });
        inner.touch(key);
        Ok(CachedPage { value, disk_read: true })
    }

    /// Drop every resident page (e.g. to measure a cold start).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.0.map.clear();
        inner.0.queue.clear();
    }

    /// Snapshot the hit/miss/eviction counters.
    pub fn stats(&self) -> PageCacheStats {
        PageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Zero the hit/miss/eviction counters (resident pages stay).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_ok(v: u64) -> impl FnOnce() -> Result<u64, StoreError> {
        move || Ok(v)
    }

    #[test]
    fn hit_after_miss() {
        let cache: PageCache<u64> = PageCache::new(4);
        let first = cache.get_or_load(7, load_ok(70)).unwrap();
        assert!(first.disk_read);
        assert_eq!(*first.value, 70);
        let second = cache.get_or_load(7, || panic!("must not reload")).unwrap();
        assert!(!second.disk_read);
        assert_eq!(*second.value, 70);
        assert_eq!(cache.stats(), PageCacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn capacity_one_keeps_exactly_the_last_page() {
        // The degenerate pool: every access to a *different* page must
        // evict the resident one, and re-accessing the resident page must
        // never count as a miss.
        let cache: PageCache<u64> = PageCache::new(1);
        assert!(cache.get_or_load(0, load_ok(0)).unwrap().disk_read);
        assert!(!cache.get_or_load(0, || panic!("resident")).unwrap().disk_read);
        assert!(cache.get_or_load(1, load_ok(1)).unwrap().disk_read); // evicts 0
        assert_eq!(cache.resident(), 1);
        assert!(cache.get_or_load(0, load_ok(0)).unwrap().disk_read); // 0 was evicted
        assert!(cache.get_or_load(1, load_ok(1)).unwrap().disk_read); // 1 was evicted
        assert_eq!(cache.resident(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 4, 3));
    }

    #[test]
    fn lru_order_respects_recency() {
        let cache: PageCache<u64> = PageCache::new(2);
        cache.get_or_load(0, load_ok(0)).unwrap();
        cache.get_or_load(1, load_ok(1)).unwrap();
        cache.get_or_load(0, || panic!("hit")).unwrap(); // refresh 0
        cache.get_or_load(2, load_ok(2)).unwrap(); // evicts 1 (LRU)
        assert!(!cache.get_or_load(0, || panic!("0 stays resident")).unwrap().disk_read);
        assert!(cache.get_or_load(1, load_ok(1)).unwrap().disk_read);
    }

    #[test]
    fn loader_errors_propagate_and_cache_nothing() {
        let cache: PageCache<u64> = PageCache::new(2);
        let err = cache
            .get_or_load(3, || Err(StoreError::Corrupt { reason: "bad page".into() }))
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        assert_eq!(cache.resident(), 0);
        // The next lookup still has to load.
        assert!(cache.get_or_load(3, load_ok(3)).unwrap().disk_read);
    }

    #[test]
    fn clear_forces_cold_reads() {
        let cache: PageCache<u64> = PageCache::new(4);
        cache.get_or_load(0, load_ok(0)).unwrap();
        cache.get_or_load(1, load_ok(1)).unwrap();
        cache.clear();
        assert_eq!(cache.resident(), 0);
        assert!(cache.get_or_load(0, load_ok(0)).unwrap().disk_read);
    }

    #[test]
    fn stats_reset_keeps_contents() {
        let cache: PageCache<u64> = PageCache::new(4);
        cache.get_or_load(0, load_ok(0)).unwrap();
        cache.reset_stats();
        assert_eq!(cache.stats(), PageCacheStats::default());
        assert!(!cache.get_or_load(0, || panic!("still resident")).unwrap().disk_read);
    }

    #[test]
    fn ticket_queue_stays_bounded_without_evictions() {
        // A pool that never reaches capacity must not accumulate one LRU
        // ticket per access forever.
        let cache: PageCache<u64> = PageCache::new(1024);
        for i in 0..100_000u64 {
            cache.get_or_load(i % 4, load_ok(i % 4)).unwrap();
        }
        let queue_len = cache.inner.lock().unwrap().0.queue.len();
        assert!(queue_len <= 64 + 1, "ticket queue grew to {queue_len}");
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn concurrent_lookups_converge() {
        let cache: std::sync::Arc<PageCache<u64>> = std::sync::Arc::new(PageCache::new(8));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let page = cache.get_or_load(i % 8, load_ok(i % 8)).unwrap();
                        assert_eq!(*page.value, i % 8);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
        // The working set fits: after warmup everything hits.
        assert!(stats.hits >= 800 - 4 * 8);
    }
}
