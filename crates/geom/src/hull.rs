//! Convex hulls in the plane (Andrew's monotone chain, ref. \[3\] of the
//! paper) and the *upper convex hull* used by Definition 6.

use crate::point::Point;

/// Full convex hull of `points`, counter-clockwise, starting from the
/// lexicographically smallest point. Collinear points on the hull boundary
/// are dropped. Returns the input (deduplicated) when fewer than three
/// distinct points exist.
pub fn convex_hull_2d(points: &[Point<2>]) -> Vec<Point<2>> {
    let mut pts: Vec<Point<2>> = points.to_vec();
    pts.sort_by(|a, b| a.lex_cmp(b));
    pts.dedup();
    if pts.len() < 3 {
        return pts;
    }
    let mut lower: Vec<Point<2>> = Vec::with_capacity(pts.len());
    for p in &pts {
        while lower.len() >= 2
            && Point::cross(&lower[lower.len() - 2], &lower[lower.len() - 1], p) <= 0.0
        {
            lower.pop();
        }
        lower.push(*p);
    }
    let mut upper: Vec<Point<2>> = Vec::with_capacity(pts.len());
    for p in pts.iter().rev() {
        while upper.len() >= 2
            && Point::cross(&upper[upper.len() - 2], &upper[upper.len() - 1], p) <= 0.0
        {
            upper.pop();
        }
        upper.push(*p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

/// Upper convex hull (UCH) of a point cloud, left to right.
///
/// This is the structure Definition 6 builds the optimal conservative line
/// on: the returned chain starts at the leftmost point, ends at the
/// rightmost, and consecutive segments turn right (slopes are monotonically
/// non-increasing). Every input point lies on or below the chain.
///
/// Points sharing an x coordinate are collapsed to the one with the largest
/// y (only the topmost can be on the upper hull).
pub fn upper_hull_2d(points: &[Point<2>]) -> Vec<Point<2>> {
    if points.is_empty() {
        return Vec::new();
    }
    let mut pts: Vec<Point<2>> = points.to_vec();
    // Sort by x asc then y desc so the first of each x-group is the topmost.
    pts.sort_by(|a, b| a.x().total_cmp(&b.x()).then_with(|| b.y().total_cmp(&a.y())));
    pts.dedup_by(|next, kept| next.x() == kept.x());

    let mut hull: Vec<Point<2>> = Vec::with_capacity(pts.len());
    for p in &pts {
        // Keep only right turns (cross < 0); pop collinear too, so the chain
        // is minimal.
        while hull.len() >= 2
            && Point::cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) >= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull
}

/// Evaluate the upper hull chain at abscissa `x` by linear interpolation;
/// outside the chain's x-range the nearest endpoint's y is returned.
pub fn upper_hull_eval(hull: &[Point<2>], x: f64) -> f64 {
    assert!(!hull.is_empty(), "cannot evaluate an empty hull");
    if x <= hull[0].x() {
        return hull[0].y();
    }
    if x >= hull[hull.len() - 1].x() {
        return hull[hull.len() - 1].y();
    }
    // Binary search for the segment containing x.
    let mut lo = 0;
    let mut hi = hull.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if hull[mid].x() <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (a, b) = (hull[lo], hull[hi]);
    if b.x() == a.x() {
        return a.y().max(b.y());
    }
    let t = (x - a.x()) / (b.x() - a.x());
    a.y() + t * (b.y() - a.y())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point<2> {
        Point::xy(x, y)
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts =
            vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0), p(0.5, 0.5), p(0.25, 0.75)];
        let hull = convex_hull_2d(&pts);
        assert_eq!(hull.len(), 4);
        for corner in [p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)] {
            assert!(hull.contains(&corner), "missing {corner:?}");
        }
    }

    #[test]
    fn hull_drops_collinear_boundary_points() {
        let pts = vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(1.0, 1.0)];
        let hull = convex_hull_2d(&pts);
        assert_eq!(hull.len(), 3);
        assert!(!hull.contains(&p(1.0, 0.0)));
    }

    #[test]
    fn hull_degenerate_inputs() {
        assert!(convex_hull_2d(&[]).is_empty());
        assert_eq!(convex_hull_2d(&[p(1.0, 1.0)]), vec![p(1.0, 1.0)]);
        let two = convex_hull_2d(&[p(0.0, 0.0), p(1.0, 1.0), p(0.0, 0.0)]);
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn upper_hull_of_decreasing_staircase() {
        // A boundary-function-like decreasing curve.
        let pts = vec![p(0.0, 5.0), p(0.2, 4.0), p(0.5, 3.5), p(0.8, 1.0), p(1.0, 0.0)];
        let hull = upper_hull_2d(&pts);
        // Chain must start/end at extremes.
        assert_eq!(hull.first().unwrap().x(), 0.0);
        assert_eq!(hull.last().unwrap().x(), 1.0);
        // Slopes non-increasing (right turns).
        for w in hull.windows(3) {
            assert!(Point::cross(&w[0], &w[1], &w[2]) < 0.0);
        }
        // Every input point on or below the chain.
        for q in &pts {
            assert!(upper_hull_eval(&hull, q.x()) >= q.y() - 1e-12);
        }
    }

    #[test]
    fn upper_hull_collapses_duplicate_x() {
        let pts = vec![p(0.0, 1.0), p(0.0, 3.0), p(1.0, 0.0)];
        let hull = upper_hull_2d(&pts);
        assert_eq!(hull, vec![p(0.0, 3.0), p(1.0, 0.0)]);
    }

    #[test]
    fn upper_hull_dominates_all_points_random() {
        // Pseudo-random but deterministic point cloud.
        let mut pts = Vec::new();
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            pts.push(p(next(), next()));
        }
        let hull = upper_hull_2d(&pts);
        for q in &pts {
            assert!(upper_hull_eval(&hull, q.x()) >= q.y() - 1e-9, "point {q:?} above hull");
        }
    }

    #[test]
    fn eval_outside_range_clamps() {
        let hull = vec![p(0.2, 2.0), p(0.8, 1.0)];
        assert_eq!(upper_hull_eval(&hull, 0.0), 2.0);
        assert_eq!(upper_hull_eval(&hull, 1.0), 1.0);
        assert!((upper_hull_eval(&hull, 0.5) - 1.5).abs() < 1e-12);
    }
}
