//! The previous arena-based kd-tree, retained as a differential oracle.
//!
//! [`ArenaKdTree`] is the node-arena implementation that
//! [`crate::kdtree::KdTree`] replaced: explicit `Node` records with child
//! ids, row-major point storage, and per-point scalar distance evaluation.
//! It is deliberately kept — structure, leaf size (12 vs 16) and traversal
//! shape all differ from the implicit tree, so agreement between the two is
//! strong evidence that neither layout leaks into the answers. The
//! differential suite in `crates/geom/tests` drives both against a brute
//! oracle and requires bit-identical `(distance², index)` results.
//!
//! Same contracts as the implicit tree: the membership-descending leaf
//! prefix invariant, strictly-closer-than-cap seeding, and canonical
//! smallest-original-index tie-breaking.

use crate::kdtree::LevelFilter;
use crate::mbr::Mbr;
use crate::point::Point;

const LEAF_SIZE: usize = 12;

#[derive(Clone, Debug)]
enum NodeKind {
    Leaf { start: u32, end: u32 },
    Internal { left: u32, right: u32 },
}

#[derive(Clone, Debug)]
struct Node<const D: usize> {
    mbr: Mbr<D>,
    max_mu: f64,
    kind: NodeKind,
}

/// Bulk-loaded, immutable arena kd-tree over `(point, membership)` pairs.
///
/// Construction permutes the points internally; query results refer to the
/// *original* input indices. See the module docs for why this type exists.
#[derive(Clone, Debug)]
pub struct ArenaKdTree<const D: usize> {
    pts: Vec<Point<D>>,
    mus: Vec<f64>,
    orig: Vec<u32>,
    nodes: Vec<Node<D>>,
    root: u32,
}

impl<const D: usize> ArenaKdTree<D> {
    /// Build a tree from parallel slices of points and memberships.
    ///
    /// # Panics
    /// When the slices differ in length or are empty.
    pub fn build(points: &[Point<D>], memberships: &[f64]) -> Self {
        assert_eq!(points.len(), memberships.len(), "points/memberships length mismatch");
        assert!(!points.is_empty(), "cannot build a kd-tree over no points");
        let n = points.len();
        let mut tree = Self {
            pts: points.to_vec(),
            mus: memberships.to_vec(),
            orig: (0..n as u32).collect(),
            nodes: Vec::with_capacity(2 * n / LEAF_SIZE + 2),
            root: 0,
        };
        tree.root = tree.build_range(0, n);
        tree
    }

    fn build_range(&mut self, start: usize, end: usize) -> u32 {
        let mbr = Mbr::from_points(self.pts[start..end].iter()).expect("non-empty range");
        let max_mu = self.mus[start..end].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if end - start <= LEAF_SIZE {
            // Leaf prefix invariant: membership descending (ties by
            // original index), so any level filter selects a contiguous
            // prefix of the leaf.
            let mut idx: Vec<usize> = (start..end).collect();
            idx.sort_by(|&a, &b| {
                self.mus[b].total_cmp(&self.mus[a]).then(self.orig[a].cmp(&self.orig[b]))
            });
            self.apply_permutation(start, &idx);
            let id = self.nodes.len() as u32;
            self.nodes.push(Node {
                mbr,
                max_mu,
                kind: NodeKind::Leaf { start: start as u32, end: end as u32 },
            });
            return id;
        }
        // Split on the widest dimension at the median.
        let mut dim = 0;
        let mut widest = -1.0;
        for i in 0..D {
            let e = mbr.extent(i);
            if e > widest {
                widest = e;
                dim = i;
            }
        }
        let mid = start + (end - start) / 2;
        let mut idx: Vec<usize> = (start..end).collect();
        idx.select_nth_unstable_by(mid - start, |&a, &b| {
            self.pts[a][dim].total_cmp(&self.pts[b][dim])
        });
        self.apply_permutation(start, &idx);

        let left = self.build_range(start, mid);
        let right = self.build_range(mid, end);
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { mbr, max_mu, kind: NodeKind::Internal { left, right } });
        id
    }

    /// Reorder `pts`, `mus`, `orig` in `start..start+idx.len()` so that
    /// position `start + i` holds what was at `idx[i]`.
    fn apply_permutation(&mut self, start: usize, idx: &[usize]) {
        let new_pts: Vec<Point<D>> = idx.iter().map(|&i| self.pts[i]).collect();
        let new_mus: Vec<f64> = idx.iter().map(|&i| self.mus[i]).collect();
        let new_orig: Vec<u32> = idx.iter().map(|&i| self.orig[i]).collect();
        self.pts[start..start + idx.len()].copy_from_slice(&new_pts);
        self.mus[start..start + idx.len()].copy_from_slice(&new_mus);
        self.orig[start..start + idx.len()].copy_from_slice(&new_orig);
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// Always false: construction rejects empty input.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Bounding box of all points.
    #[inline]
    pub fn mbr(&self) -> &Mbr<D> {
        &self.nodes[self.root as usize].mbr
    }

    /// Largest membership in the tree.
    #[inline]
    pub fn max_mu(&self) -> f64 {
        self.nodes[self.root as usize].max_mu
    }

    /// Nearest neighbour of `q` among points passing `filter`; returns the
    /// original index and the distance, or `None` when no point passes.
    /// Distance ties are broken by the smallest original index.
    pub fn nn_filtered(&self, q: &Point<D>, filter: LevelFilter) -> Option<(usize, f64)> {
        self.nn_sq_within(q, filter, f64::INFINITY).map(|(i, d2)| (i, d2.sqrt()))
    }

    /// Seeded nearest-neighbour search in **squared** space, identical in
    /// contract to [`crate::kdtree::KdTree::nn_sq_within`]: strictly closer
    /// than `cap_sq`, distance ties broken by the smallest original index.
    pub fn nn_sq_within(
        &self,
        q: &Point<D>,
        filter: LevelFilter,
        cap_sq: f64,
    ) -> Option<(usize, f64)> {
        let mut best = cap_sq;
        let mut best_orig: Option<u32> = None;
        self.nn_rec(self.root, q, filter, &mut best, &mut best_orig);
        best_orig.map(|o| (o as usize, best))
    }

    fn nn_rec(
        &self,
        node_id: u32,
        q: &Point<D>,
        filter: LevelFilter,
        best_sq: &mut f64,
        best_orig: &mut Option<u32>,
    ) {
        let node = &self.nodes[node_id as usize];
        if !filter.accepts(node.max_mu) {
            return;
        }
        let d2 = q.dist_sq_to_box(node.mbr.lo_coords(), node.mbr.hi_coords());
        // Same canonical pruning rule as the implicit tree: equal-distance
        // boxes stay visitable once a candidate holds the best slot.
        let prunable = match best_orig {
            Some(_) => d2 > *best_sq,
            None => d2 >= *best_sq,
        };
        if prunable {
            return;
        }
        match node.kind {
            NodeKind::Leaf { start, end } => {
                for i in start as usize..end as usize {
                    // Leaf prefix invariant: memberships descend, so the
                    // first rejection ends the accepted prefix.
                    if !filter.accepts(self.mus[i]) {
                        break;
                    }
                    let d2 = q.dist_sq(&self.pts[i]);
                    let o = self.orig[i];
                    let wins = match *best_orig {
                        None => d2 < *best_sq,
                        Some(bo) => d2 < *best_sq || (d2 == *best_sq && o < bo),
                    };
                    if wins {
                        *best_sq = d2;
                        *best_orig = Some(o);
                    }
                }
            }
            NodeKind::Internal { left, right } => {
                let dl = q.dist_sq_to_box(
                    self.nodes[left as usize].mbr.lo_coords(),
                    self.nodes[left as usize].mbr.hi_coords(),
                );
                let dr = q.dist_sq_to_box(
                    self.nodes[right as usize].mbr.lo_coords(),
                    self.nodes[right as usize].mbr.hi_coords(),
                );
                let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
                self.nn_rec(first, q, filter, best_sq, best_orig);
                self.nn_rec(second, q, filter, best_sq, best_orig);
            }
        }
    }

    /// Collect the original indices of all points passing `filter` that lie
    /// within `radius` of `q`, in ascending original-index order.
    pub fn within_radius_filtered(
        &self,
        q: &Point<D>,
        radius: f64,
        filter: LevelFilter,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        let r2 = radius * radius;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if !filter.accepts(node.max_mu) {
                continue;
            }
            if q.dist_sq_to_box(node.mbr.lo_coords(), node.mbr.hi_coords()) > r2 {
                continue;
            }
            match node.kind {
                NodeKind::Leaf { start, end } => {
                    for i in start as usize..end as usize {
                        if !filter.accepts(self.mus[i]) {
                            break; // leaf prefix invariant
                        }
                        if q.dist_sq(&self.pts[i]) <= r2 {
                            out.push(self.orig[i] as usize);
                        }
                    }
                }
                NodeKind::Internal { left, right } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tie_break_matches_canonical_contract() {
        let pts = vec![Point::xy(2.0, 0.0); 5];
        let mus = vec![1.0; 5];
        let tree = ArenaKdTree::build(&pts, &mus);
        let (i, d) = tree.nn_filtered(&Point::origin(), LevelFilter::support()).unwrap();
        assert_eq!((i, d), (0, 2.0));
    }

    #[test]
    fn strict_cap_excludes_equal_distance() {
        let tree = ArenaKdTree::build(&[Point::xy(3.0, 4.0)], &[1.0]);
        assert!(tree.nn_sq_within(&Point::origin(), LevelFilter::support(), 25.0).is_none());
    }
}
