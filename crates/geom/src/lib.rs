//! Computational-geometry substrate for the `fuzzy-knn` workspace.
//!
//! This crate is dimension-generic (`const D: usize`) and completely
//! independent of the fuzzy-object model: it provides the raw geometric
//! machinery that the paper's algorithms are built on.
//!
//! * [`Point`] and [`Mbr`] with the `MinDist` (Eq. 1) and `MaxDist` (Eq. 3)
//!   metrics used as α-distance bounds throughout the paper.
//! * [`hull`] — Andrew's monotone-chain convex hull and the *upper convex
//!   hull* (UCH) needed by Definition 6.
//! * [`conservative`] — the *optimal conservative approximation* of a
//!   boundary function (Definition 6): a line `y = m·x + t` that stays above
//!   every sample while minimising the summed squared error, found by the
//!   Achtert-style anchor bisection over the UCH.
//! * [`kdtree`] — an implicit, bulk-loaded kd-tree (the tree *is* one
//!   median-ordered flat slice; subtree = subrange) whose nodes are
//!   annotated with the maximum membership value of their subtree,
//!   supporting level-filtered nearest-neighbour queries over dim-major
//!   coordinate columns.
//! * [`kernel`] — the columnar min-reduction distance kernels (unrolled
//!   multi-accumulator and scalar reference paths, bitwise-identical).
//! * [`mod@reference`] — the previous arena-based kd-tree, retained as the
//!   differential oracle for the implicit layout.
//! * [`closest_pair`] — dual-tree bichromatic closest pair with level
//!   pruning; this is the evaluator for the α-distance
//!   `d_α(A,B) = min_{a∈A_α, b∈B_α} ‖a−b‖`.

#![warn(missing_docs)]

pub mod closest_pair;
pub mod conservative;
pub mod hull;
pub mod kdtree;
pub mod kernel;
pub mod mbr;
pub mod point;
pub mod reference;

pub use closest_pair::{
    bichromatic_closest_pair, bichromatic_closest_pair_sq, PairResult, PairResultSq,
};
pub use conservative::{fit_conservative_line, fit_conservative_line_exact, ConservativeLine};
pub use hull::{convex_hull_2d, upper_hull_2d};
pub use kdtree::{KdTree, LevelFilter};
pub use mbr::Mbr;
pub use point::Point;

/// Workspace-wide absolute tolerance used when comparing floating-point
/// geometric quantities (distances, memberships).
pub const EPS: f64 = 1e-9;

/// Compare two `f64` with the workspace tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * (1.0 + a.abs().max(b.abs()))
}
