//! Minimum bounding rectangles and the MinDist / MaxDist metrics.
#![allow(clippy::needless_range_loop)] // paired per-dimension loops read clearer
//!
//! `MinDist` is Equation (1) of the paper and `MaxDist` Equation (3); they
//! lower- respectively upper-bound the α-distance between any two point sets
//! enclosed by the rectangles.

use crate::point::Point;
use std::fmt;

/// An axis-aligned minimum bounding rectangle (hyper-rectangle) in `D`
/// dimensions, stored as per-dimension lower and upper bounds
/// `(M^{1−}, M^{1+}, …, M^{d−}, M^{d+})` in the paper's notation.
#[derive(Clone, Copy, PartialEq)]
pub struct Mbr<const D: usize> {
    lo: [f64; D],
    hi: [f64; D],
}

impl<const D: usize> Mbr<D> {
    /// Construct from explicit bounds. Panics in debug builds if any
    /// `lo[i] > hi[i]` — an inverted rectangle is always a logic error.
    #[inline]
    pub fn new(lo: [f64; D], hi: [f64; D]) -> Self {
        debug_assert!((0..D).all(|i| lo[i] <= hi[i]), "inverted MBR: {lo:?} > {hi:?}");
        Self { lo, hi }
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: &Point<D>) -> Self {
        Self { lo: *p.coords(), hi: *p.coords() }
    }

    /// Tightest rectangle enclosing all `points`; `None` when empty.
    pub fn from_points<'a, I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a Point<D>>,
    {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut mbr = Self::from_point(first);
        for p in it {
            mbr.expand_point(p);
        }
        Some(mbr)
    }

    /// An "empty" rectangle that acts as the identity of [`Mbr::union`];
    /// useful as a fold seed. Never returned by queries.
    #[inline]
    pub fn empty() -> Self {
        Self { lo: [f64::INFINITY; D], hi: [f64::NEG_INFINITY; D] }
    }

    /// True for the [`Mbr::empty`] sentinel.
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..D).any(|i| self.lo[i] > self.hi[i])
    }

    /// Lower bound of dimension `i` (`M^{i−}`).
    #[inline]
    pub fn lo(&self, i: usize) -> f64 {
        self.lo[i]
    }

    /// Upper bound of dimension `i` (`M^{i+}`).
    #[inline]
    pub fn hi(&self, i: usize) -> f64 {
        self.hi[i]
    }

    /// All lower bounds.
    #[inline]
    pub fn lo_coords(&self) -> &[f64; D] {
        &self.lo
    }

    /// All upper bounds.
    #[inline]
    pub fn hi_coords(&self) -> &[f64; D] {
        &self.hi
    }

    /// Grow (in place) to cover `p`.
    #[inline]
    pub fn expand_point(&mut self, p: &Point<D>) {
        for i in 0..D {
            let c = p.coords()[i];
            if c < self.lo[i] {
                self.lo[i] = c;
            }
            if c > self.hi[i] {
                self.hi[i] = c;
            }
        }
    }

    /// Grow (in place) to cover `other`.
    #[inline]
    pub fn expand_mbr(&mut self, other: &Self) {
        for i in 0..D {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// Smallest rectangle covering both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut out = *self;
        out.expand_mbr(other);
        out
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = self.lo[i].max(other.lo[i]);
            hi[i] = self.hi[i].min(other.hi[i]);
            if lo[i] > hi[i] {
                return None;
            }
        }
        Some(Self { lo, hi })
    }

    /// True when the rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        (0..D).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= p.coords()[i] && p.coords()[i] <= self.hi[i])
    }

    /// True when `other` lies entirely inside `self` (boundaries allowed).
    #[inline]
    pub fn contains_mbr(&self, other: &Self) -> bool {
        (0..D).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// Geometric center.
    #[inline]
    pub fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for i in 0..D {
            c[i] = 0.5 * (self.lo[i] + self.hi[i]);
        }
        Point::new(c)
    }

    /// Side length along dimension `i`.
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        (self.hi[i] - self.lo[i]).max(0.0)
    }

    /// `D`-dimensional volume (area in 2-d).
    #[inline]
    pub fn area(&self) -> f64 {
        (0..D).map(|i| self.extent(i)).product()
    }

    /// Sum of side lengths — the R*-tree "margin" objective.
    #[inline]
    pub fn margin(&self) -> f64 {
        (0..D).map(|i| self.extent(i)).sum()
    }

    /// Volume of the intersection (zero when disjoint).
    #[inline]
    pub fn overlap(&self, other: &Self) -> f64 {
        self.intersection(other).map_or(0.0, |m| m.area())
    }

    /// Increase in volume caused by enlarging `self` to cover `other`.
    #[inline]
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared `MinDist` (Eq. 1): the squared smallest distance between any
    /// point of `self` and any point of `other`. Zero when they intersect.
    #[inline]
    pub fn min_dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            // l_i of Eq. (1): the gap between the projections, if any.
            let l = if self.lo[i] > other.hi[i] {
                self.lo[i] - other.hi[i]
            } else if other.lo[i] > self.hi[i] {
                other.lo[i] - self.hi[i]
            } else {
                0.0
            };
            acc += l * l;
        }
        acc
    }

    /// `MinDist` (Eq. 1).
    #[inline]
    pub fn min_dist(&self, other: &Self) -> f64 {
        self.min_dist_sq(other).sqrt()
    }

    /// Squared `MaxDist` (Eq. 3): the squared largest distance between any
    /// point of `self` and any point of `other`.
    #[inline]
    pub fn max_dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let l = (self.hi[i] - other.lo[i]).abs().max((self.lo[i] - other.hi[i]).abs());
            acc += l * l;
        }
        acc
    }

    /// `MaxDist` (Eq. 3).
    #[inline]
    pub fn max_dist(&self, other: &Self) -> f64 {
        self.max_dist_sq(other).sqrt()
    }

    /// `MinDist` from a single point (zero when inside).
    #[inline]
    pub fn min_dist_point(&self, p: &Point<D>) -> f64 {
        p.dist_sq_to_box(&self.lo, &self.hi).sqrt()
    }

    /// `MaxDist` from a single point: distance to the farthest corner.
    #[inline]
    pub fn max_dist_point(&self, p: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let c = p.coords()[i];
            let l = (c - self.lo[i]).abs().max((c - self.hi[i]).abs());
            acc += l * l;
        }
        acc.sqrt()
    }

    /// Rectangle grown by `pad` on every side (negative `pad` shrinks but is
    /// clamped so the rectangle never inverts).
    pub fn inflate(&self, pad: f64) -> Self {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for i in 0..D {
            let c = 0.5 * (lo[i] + hi[i]);
            lo[i] = (lo[i] - pad).min(c);
            hi[i] = (hi[i] + pad).max(c);
        }
        Self { lo, hi }
    }
}

impl<const D: usize> fmt::Debug for Mbr<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mbr[")?;
        for i in 0..D {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{}..{}", self.lo[i], self.hi[i])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Mbr<2> {
        Mbr::new([0.0, 0.0], [1.0, 1.0])
    }

    #[test]
    fn from_points_is_tight() {
        let pts = [Point::xy(1.0, 5.0), Point::xy(-2.0, 3.0), Point::xy(0.0, 7.0)];
        let m = Mbr::from_points(pts.iter()).unwrap();
        assert_eq!(m.lo(0), -2.0);
        assert_eq!(m.hi(0), 1.0);
        assert_eq!(m.lo(1), 3.0);
        assert_eq!(m.hi(1), 7.0);
    }

    #[test]
    fn from_points_empty_is_none() {
        let m: Option<Mbr<2>> = Mbr::from_points(std::iter::empty());
        assert!(m.is_none());
    }

    #[test]
    fn empty_is_union_identity() {
        let m = unit();
        assert_eq!(Mbr::empty().union(&m), m);
        assert!(Mbr::<2>::empty().is_empty());
        assert!(!m.is_empty());
    }

    #[test]
    fn min_dist_disjoint_boxes() {
        let a = unit();
        let b = Mbr::new([4.0, 5.0], [6.0, 7.0]);
        // Gap is 3 in x, 4 in y -> distance 5.
        assert_eq!(a.min_dist(&b), 5.0);
        assert_eq!(b.min_dist(&a), 5.0);
    }

    #[test]
    fn min_dist_overlapping_is_zero() {
        let a = unit();
        let b = Mbr::new([0.5, 0.5], [2.0, 2.0]);
        assert_eq!(a.min_dist(&b), 0.0);
    }

    #[test]
    fn min_dist_axis_gap_only() {
        let a = unit();
        let b = Mbr::new([3.0, 0.0], [4.0, 1.0]);
        assert_eq!(a.min_dist(&b), 2.0);
    }

    #[test]
    fn max_dist_corners() {
        let a = unit();
        let b = Mbr::new([2.0, 0.0], [3.0, 1.0]);
        // Farthest corner pair: (0,0)-(3,1) or (0,1)-(3,0): sqrt(9+1).
        assert!((a.max_dist(&b) - 10.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_dist_of_box_with_itself() {
        let a = unit();
        // Diagonal of the unit square.
        assert!((a.max_dist(&a) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn point_distances() {
        let a = unit();
        let inside = Point::xy(0.5, 0.5);
        assert_eq!(a.min_dist_point(&inside), 0.0);
        let out = Point::xy(2.0, 1.0);
        assert_eq!(a.min_dist_point(&out), 1.0);
        // Farthest corner from (2,1) is (0,0): sqrt(4+1).
        assert!((a.max_dist_point(&out) - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn containment_and_intersection() {
        let a = unit();
        let b = Mbr::new([0.25, 0.25], [0.75, 0.75]);
        assert!(a.contains_mbr(&b));
        assert!(!b.contains_mbr(&a));
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).unwrap(), b);
        let c = Mbr::new([5.0, 5.0], [6.0, 6.0]);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn area_margin_overlap_enlargement() {
        let a = unit();
        assert_eq!(a.area(), 1.0);
        assert_eq!(a.margin(), 2.0);
        let b = Mbr::new([0.5, 0.0], [1.5, 1.0]);
        assert_eq!(a.overlap(&b), 0.5);
        // Union is [0,1.5]x[0,1] = 1.5, so enlargement = 0.5.
        assert_eq!(a.enlargement(&b), 0.5);
    }

    #[test]
    fn inflate_grows_every_side() {
        let a = unit().inflate(0.5);
        assert_eq!(a.lo(0), -0.5);
        assert_eq!(a.hi(1), 1.5);
        // Shrinking past the center clamps instead of inverting.
        let tiny = unit().inflate(-10.0);
        assert!(!tiny.is_empty());
        assert!(tiny.extent(0) <= 1.0);
    }

    #[test]
    fn min_max_dist_bound_actual_point_distances() {
        // Deterministic grid check: for all pairs of sample points inside two
        // boxes, MinDist <= ||a-b|| <= MaxDist.
        let a = Mbr::new([0.0, 0.0], [2.0, 1.0]);
        let b = Mbr::new([3.0, -1.0], [5.0, 0.5]);
        let samples = |m: &Mbr<2>| {
            let mut v = Vec::new();
            for i in 0..=4 {
                for j in 0..=4 {
                    v.push(Point::xy(
                        m.lo(0) + m.extent(0) * i as f64 / 4.0,
                        m.lo(1) + m.extent(1) * j as f64 / 4.0,
                    ));
                }
            }
            v
        };
        let (mn, mx) = (a.min_dist(&b), a.max_dist(&b));
        for p in samples(&a) {
            for q in samples(&b) {
                let d = p.dist(&q);
                assert!(d >= mn - 1e-12, "{d} < MinDist {mn}");
                assert!(d <= mx + 1e-12, "{d} > MaxDist {mx}");
            }
        }
    }
}
