//! Fixed-dimension Euclidean points.
#![allow(clippy::needless_range_loop)] // index loops over [f64; D] pairs read clearer

use std::fmt;
use std::ops::{Index, IndexMut};

/// A point in `D`-dimensional Euclidean space.
///
/// The paper works in 2-d (pixel masks) but every definition is stated for
/// `R^d`; we keep the dimension as a const generic so the whole stack (MBRs,
/// kd-trees, R-tree, query processing) is dimension-agnostic.
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

impl<const D: usize> Point<D> {
    /// Create a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Self { coords }
    }

    /// The origin (all coordinates zero).
    #[inline]
    pub const fn origin() -> Self {
        Self { coords: [0.0; D] }
    }

    /// Coordinate array.
    #[inline]
    pub const fn coords(&self) -> &[f64; D] {
        &self.coords
    }

    /// Number of dimensions (the const generic, exposed for generic code).
    #[inline]
    pub const fn dims(&self) -> usize {
        D
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this in comparisons: it avoids the `sqrt` and preserves order.
    #[inline]
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.coords[i] - other.coords[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance `‖a − b‖` to `other`.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared distance from this point to an axis-aligned box given by
    /// per-dimension `lo`/`hi` bounds (zero if the point is inside).
    #[inline]
    pub fn dist_sq_to_box(&self, lo: &[f64; D], hi: &[f64; D]) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let c = self.coords[i];
            let d = if c < lo[i] {
                lo[i] - c
            } else if c > hi[i] {
                c - hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Component-wise addition.
    #[inline]
    pub fn add(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for i in 0..D {
            coords[i] += other.coords[i];
        }
        Self { coords }
    }

    /// Component-wise subtraction (`self − other`).
    #[inline]
    pub fn sub(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for i in 0..D {
            coords[i] -= other.coords[i];
        }
        Self { coords }
    }

    /// Scale every coordinate by `s`.
    #[inline]
    pub fn scale(&self, s: f64) -> Self {
        let mut coords = self.coords;
        for c in &mut coords {
            *c *= s;
        }
        Self { coords }
    }

    /// Euclidean norm of the position vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum::<f64>().sqrt()
    }

    /// True when every coordinate is finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }

    /// Lexicographic total ordering (ties broken dimension by dimension);
    /// used to make geometric algorithms deterministic.
    pub fn lex_cmp(&self, other: &Self) -> std::cmp::Ordering {
        for i in 0..D {
            match self.coords[i].total_cmp(&other.coords[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl Point<2> {
    /// Convenience constructor for the common 2-d case.
    #[inline]
    pub const fn xy(x: f64, y: f64) -> Self {
        Self::new([x, y])
    }

    /// X coordinate.
    #[inline]
    pub const fn x(&self) -> f64 {
        self.coords[0]
    }

    /// Y coordinate.
    #[inline]
    pub const fn y(&self) -> f64 {
        self.coords[1]
    }

    /// Cross product of `(b − a) × (c − a)`; positive for a counter-clockwise
    /// turn, negative for clockwise, zero for collinear points.
    #[inline]
    pub fn cross(a: &Self, b: &Self, c: &Self) -> f64 {
        (b.x() - a.x()) * (c.y() - a.y()) - (b.y() - a.y()) * (c.x() - a.x())
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::origin()
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.coords[i]
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    #[inline]
    fn from(coords: [f64; D]) -> Self {
        Self { coords }
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_hand_computation() {
        let a = Point::xy(0.0, 0.0);
        let b = Point::xy(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new([1.0, -2.0, 0.5]);
        let b = Point::new([-4.0, 7.0, 2.5]);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn dist_to_box_inside_is_zero() {
        let p = Point::xy(0.5, 0.5);
        assert_eq!(p.dist_sq_to_box(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn dist_to_box_outside_corner() {
        let p = Point::xy(2.0, 2.0);
        let d2 = p.dist_sq_to_box(&[0.0, 0.0], &[1.0, 1.0]);
        assert!((d2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dist_to_box_outside_face() {
        let p = Point::xy(0.5, 3.0);
        let d2 = p.dist_sq_to_box(&[0.0, 0.0], &[1.0, 1.0]);
        assert!((d2 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cross_sign_encodes_turn_direction() {
        let a = Point::xy(0.0, 0.0);
        let b = Point::xy(1.0, 0.0);
        let ccw = Point::xy(1.0, 1.0);
        let cw = Point::xy(1.0, -1.0);
        assert!(Point::cross(&a, &b, &ccw) > 0.0);
        assert!(Point::cross(&a, &b, &cw) < 0.0);
        assert_eq!(Point::cross(&a, &b, &Point::xy(2.0, 0.0)), 0.0);
    }

    #[test]
    fn vector_ops() {
        let a = Point::xy(1.0, 2.0);
        let b = Point::xy(3.0, 5.0);
        assert_eq!(b.sub(&a), Point::xy(2.0, 3.0));
        assert_eq!(a.add(&b), Point::xy(4.0, 7.0));
        assert_eq!(a.scale(2.0), Point::xy(2.0, 4.0));
    }

    #[test]
    fn lex_cmp_orders_by_first_differing_dim() {
        let a = Point::xy(1.0, 9.0);
        let b = Point::xy(2.0, 0.0);
        assert_eq!(a.lex_cmp(&b), std::cmp::Ordering::Less);
        let c = Point::xy(1.0, 10.0);
        assert_eq!(a.lex_cmp(&c), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn three_dimensional_points_work() {
        let a = Point::new([1.0, 2.0, 3.0]);
        let b = Point::new([1.0, 2.0, 7.0]);
        assert_eq!(a.dist(&b), 4.0);
        assert_eq!(a.dims(), 3);
    }
}
