//! An implicit, bulk-loaded kd-tree over weighted points.
//!
//! Every point carries a *membership* weight `µ ∈ (0, 1]` and every node is
//! annotated with the maximum membership of its subtree, so spatial queries
//! can be filtered by a membership level: a query at level α simply skips
//! subtrees whose `max_µ` fails the filter. This turns the kd-tree into an
//! index over *all α-cuts at once* — the crucial property exploited by the
//! α-distance evaluators, because the fraction of an object participating in
//! a query is unknown until the query arrives (Section 1 of the paper).
//!
//! **Implicit layout.** There is no node arena and there are no child ids:
//! the tree is the median order itself. A subtree *is* a subrange
//! `[start, end)` of the flat point storage — recursion always splits at
//! `mid = start + (end − start) / 2`, so child ranges are derived, not
//! stored. Node annotations (subtree max-µ and exact bounding boxes) live in
//! flat arrays addressed by the breadth-first heap rule `root = 0`,
//! `children(i) = 2i+1, 2i+2`. Compared to the previous arena tree this
//! removes a pointer chase and a cache line per visited node, and the whole
//! structure is three flat slices — trivially relocatable.
//!
//! **Columnar storage.** Coordinates are stored as dim-major columns
//! (`cols[d·len + j]` is coordinate `d` of slot `j`), so leaf scans run the
//! unrolled min-reduction kernel of [`crate::kernel`] over contiguous
//! per-dimension lanes instead of gathering row-major points.
//!
//! **Leaf prefix invariant.** Within every leaf range the points are stored
//! in membership-descending order (ties by original index), so the subset
//! passing any [`LevelFilter`] is a *contiguous prefix* of the leaf. Leaf
//! scans stop at the first rejected membership instead of testing every
//! point.
//!
//! **Canonical answers.** All queries break distance ties by the smallest
//! original index, so results are a pure function of the input point set —
//! independent of tree shape, traversal order, and kernel lane count. The
//! retained reference tree ([`crate::reference::ArenaKdTree`]) implements
//! the same contract; the differential suite in `crates/geom/tests` holds
//! both to bit-identical `(distance², index)` answers against a brute
//! oracle.

#![allow(clippy::needless_range_loop)] // per-dimension index loops read clearer

use crate::kernel;
use crate::mbr::Mbr;
use crate::point::Point;

/// A membership-level filter: selects points with `µ ≥ min` (inclusive) or
/// `µ > min` (strict).
///
/// The strict form implements the paper's `α* + ε` stepping exactly: the cut
/// "just above" a critical value `v` is `{a : µ(a) > v}`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelFilter {
    /// Threshold value in `[0, 1]`.
    pub min: f64,
    /// When true, require `µ > min`; otherwise `µ ≥ min`.
    pub strict: bool,
}

impl LevelFilter {
    /// Inclusive filter `µ ≥ min` — a plain α-cut.
    #[inline]
    pub const fn at_least(min: f64) -> Self {
        Self { min, strict: false }
    }

    /// Strict filter `µ > min` — the cut immediately above `min`.
    #[inline]
    pub const fn above(min: f64) -> Self {
        Self { min, strict: true }
    }

    /// The no-op filter accepting every valid membership (`µ > 0`),
    /// selecting the support set.
    #[inline]
    pub const fn support() -> Self {
        Self { min: 0.0, strict: true }
    }

    /// Does membership `mu` pass the filter?
    #[inline]
    pub fn accepts(&self, mu: f64) -> bool {
        if self.strict {
            mu > self.min
        } else {
            mu >= self.min
        }
    }
}

/// Maximum number of points in an implicit leaf range. A multiple of the
/// kernel lane width so full leaves stream through the unrolled reduction
/// without a remainder pass.
const LEAF_SIZE: usize = 16;

/// An implicit node: a heap id (for the annotation arrays) plus the point
/// subrange it covers. Never stored — derived on the way down.
#[derive(Clone, Copy, Debug)]
pub(crate) struct NodeRef {
    id: u32,
    start: u32,
    end: u32,
}

impl NodeRef {
    #[inline]
    fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// First slot of the covered range.
    #[inline]
    pub(crate) fn start(self) -> u32 {
        self.start
    }

    #[inline]
    pub(crate) fn is_leaf(self) -> bool {
        self.len() <= LEAF_SIZE
    }

    /// Child ranges under the fixed `mid = start + len/2` split rule.
    #[inline]
    pub(crate) fn children(self) -> (NodeRef, NodeRef) {
        debug_assert!(!self.is_leaf());
        let mid = self.start + (self.end - self.start) / 2;
        (
            NodeRef { id: 2 * self.id + 1, start: self.start, end: mid },
            NodeRef { id: 2 * self.id + 2, start: mid, end: self.end },
        )
    }
}

/// One point during construction; kept AoS so `select_nth_unstable_by`
/// permutes coordinates, membership and original index in lockstep.
#[derive(Clone, Copy)]
struct BuildItem<const D: usize> {
    pt: Point<D>,
    mu: f64,
    orig: u32,
}

/// Bulk-loaded, immutable implicit kd-tree over `(point, membership)` pairs.
///
/// Construction permutes the points internally; query results refer to the
/// *original* input indices. See the module docs for the layout.
#[derive(Clone, Debug)]
pub struct KdTree<const D: usize> {
    len: usize,
    /// Dim-major coordinate columns over the median order.
    cols: Box<[f64]>,
    /// Memberships in median order (descending within each leaf range).
    mus: Box<[f64]>,
    /// Original input index of each slot.
    orig: Box<[u32]>,
    /// Heap-indexed subtree max-membership annotations.
    max_mu: Box<[f64]>,
    /// Heap-indexed exact subtree bounds: `2·D` values per node, lows then
    /// highs. Unused heap slots keep an inverted sentinel and are never
    /// read.
    bounds: Box<[f64]>,
    /// Number of real (visited) nodes, for diagnostics.
    node_count: usize,
    root_mbr: Mbr<D>,
}

impl<const D: usize> KdTree<D> {
    /// Build a tree from parallel slices of points and memberships.
    ///
    /// # Panics
    /// When the slices differ in length or are empty.
    pub fn build(points: &[Point<D>], memberships: &[f64]) -> Self {
        assert_eq!(points.len(), memberships.len(), "points/memberships length mismatch");
        assert!(!points.is_empty(), "cannot build a kd-tree over no points");
        let n = points.len();
        let mut items: Vec<BuildItem<D>> = points
            .iter()
            .zip(memberships)
            .enumerate()
            .map(|(i, (&pt, &mu))| BuildItem { pt, mu, orig: i as u32 })
            .collect();

        // Computed before any permutation, so the expansion order (and with
        // it any NaN-coordinate quirk) matches a plain scan of the input.
        let root_mbr = Mbr::from_points(points.iter()).expect("non-empty input");
        let mut ann = Annotations { max_mu: Vec::new(), bounds: Vec::new(), nodes: 0 };
        build_range(&mut items, &mut ann, 0, 0, n);

        let mut cols = vec![0.0; D * n].into_boxed_slice();
        let mut mus = vec![0.0; n].into_boxed_slice();
        let mut orig = vec![0u32; n].into_boxed_slice();
        for (j, it) in items.iter().enumerate() {
            for d in 0..D {
                cols[d * n + j] = it.pt.coords()[d];
            }
            mus[j] = it.mu;
            orig[j] = it.orig;
        }
        Self {
            len: n,
            cols,
            mus,
            orig,
            max_mu: ann.max_mu.into_boxed_slice(),
            bounds: ann.bounds.into_boxed_slice(),
            node_count: ann.nodes,
            root_mbr,
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: construction rejects empty input.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding box of all points.
    #[inline]
    pub fn mbr(&self) -> &Mbr<D> {
        &self.root_mbr
    }

    /// Largest membership in the tree.
    #[inline]
    pub fn max_mu(&self) -> f64 {
        self.max_mu[0]
    }

    /// Number of implicit nodes the structure decomposes into (diagnostics).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Nearest neighbour of `q` among points passing `filter`; returns the
    /// original index and the distance, or `None` when no point passes.
    /// Distance ties are broken by the smallest original index.
    pub fn nn_filtered(&self, q: &Point<D>, filter: LevelFilter) -> Option<(usize, f64)> {
        self.nn_sq_within(q, filter, f64::INFINITY).map(|(i, d2)| (i, d2.sqrt()))
    }

    /// Seeded nearest-neighbour search in **squared** space: the original
    /// index and squared distance of the closest point passing `filter`
    /// that lies *strictly closer* than `cap_sq`, or `None` when no such
    /// point exists. With `cap_sq = ∞` this is [`KdTree::nn_filtered`]
    /// without the final square root. The seed lets chained searches (one
    /// per activated point in the α-distance evaluators) start each probe
    /// from the running best, pruning most of the tree immediately.
    /// Distance ties are broken by the smallest original index.
    pub fn nn_sq_within(
        &self,
        q: &Point<D>,
        filter: LevelFilter,
        cap_sq: f64,
    ) -> Option<(usize, f64)> {
        let mut best = cap_sq;
        let mut best_orig: Option<u32> = None;
        self.nn_rec(self.root_ref(), q, filter, &mut best, &mut best_orig);
        best_orig.map(|o| (o as usize, best))
    }

    fn nn_rec(
        &self,
        node: NodeRef,
        q: &Point<D>,
        filter: LevelFilter,
        best_sq: &mut f64,
        best_orig: &mut Option<u32>,
    ) {
        if !filter.accepts(self.max_mu[node.id as usize]) {
            return;
        }
        let d2 = self.box_dist_sq(node, q);
        // With a candidate in hand, subtrees at exactly the best distance
        // must still be visited: they may hold an equal-distance point with
        // a smaller original index (the canonical winner). Without one, the
        // cap is exclusive — only strictly closer points qualify.
        let prunable = match best_orig {
            Some(_) => d2 > *best_sq,
            None => d2 >= *best_sq,
        };
        if prunable {
            return;
        }
        if node.is_leaf() {
            let p = self.leaf_prefix_len(node, filter);
            if let Some(cand) = self.leaf_candidate(node.start as usize, p, q) {
                consider(cand, best_sq, best_orig);
            }
            return;
        }
        let (left, right) = node.children();
        let dl = self.box_dist_sq(left, q);
        let dr = self.box_dist_sq(right, q);
        let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
        self.nn_rec(first, q, filter, best_sq, best_orig);
        self.nn_rec(second, q, filter, best_sq, best_orig);
    }

    /// Collect the original indices of all points passing `filter` that lie
    /// within `radius` of `q`, in ascending original-index order.
    pub fn within_radius_filtered(
        &self,
        q: &Point<D>,
        radius: f64,
        filter: LevelFilter,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        let r2 = radius * radius;
        let mut stack = vec![self.root_ref()];
        while let Some(node) = stack.pop() {
            if !filter.accepts(self.max_mu[node.id as usize]) {
                continue;
            }
            if self.box_dist_sq(node, q) > r2 {
                continue;
            }
            if node.is_leaf() {
                let p = self.leaf_prefix_len(node, filter);
                for j in node.start as usize..node.start as usize + p {
                    if self.row_dist_sq(q, j) <= r2 {
                        out.push(self.orig[j] as usize);
                    }
                }
            } else {
                let (left, right) = node.children();
                stack.push(left);
                stack.push(right);
            }
        }
        // Canonical order: tree shape must not leak into the answer.
        out.sort_unstable();
        out
    }

    // ----- internals shared with the closest-pair module -----

    #[inline]
    pub(crate) fn root_ref(&self) -> NodeRef {
        NodeRef { id: 0, start: 0, end: self.len as u32 }
    }

    #[inline]
    pub(crate) fn node_max_mu(&self, node: NodeRef) -> f64 {
        self.max_mu[node.id as usize]
    }

    /// Squared point-to-node-box distance, matching
    /// [`Point::dist_sq_to_box`] bit for bit.
    #[inline]
    pub(crate) fn box_dist_sq(&self, node: NodeRef, q: &Point<D>) -> f64 {
        let b = node.id as usize * 2 * D;
        let (lo, hi) = (&self.bounds[b..b + D], &self.bounds[b + D..b + 2 * D]);
        let mut acc = 0.0;
        for i in 0..D {
            let c = q.coords()[i];
            let d = if c < lo[i] {
                lo[i] - c
            } else if c > hi[i] {
                c - hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Squared node-box-to-node-box gap across two trees, matching
    /// [`Mbr::min_dist_sq`] bit for bit.
    #[inline]
    pub(crate) fn box_gap_sq(&self, node: NodeRef, other: &Self, onode: NodeRef) -> f64 {
        let a = node.id as usize * 2 * D;
        let b = onode.id as usize * 2 * D;
        let (alo, ahi) = (&self.bounds[a..a + D], &self.bounds[a + D..a + 2 * D]);
        let (blo, bhi) = (&other.bounds[b..b + D], &other.bounds[b + D..b + 2 * D]);
        let mut acc = 0.0;
        for i in 0..D {
            let l = if alo[i] > bhi[i] {
                alo[i] - bhi[i]
            } else if blo[i] > ahi[i] {
                blo[i] - ahi[i]
            } else {
                0.0
            };
            acc += l * l;
        }
        acc
    }

    /// Length of the membership-accepted prefix of a leaf range (the leaf
    /// prefix invariant: memberships descend, so the first rejection ends
    /// the accepted set).
    #[inline]
    pub(crate) fn leaf_prefix_len(&self, node: NodeRef, filter: LevelFilter) -> usize {
        let (start, end) = (node.start as usize, node.end as usize);
        let mut p = 0;
        for j in start..end {
            if !filter.accepts(self.mus[j]) {
                break;
            }
            p += 1;
        }
        p
    }

    /// Dim-major column views over the slot range `[start, start + n)`.
    #[inline]
    pub(crate) fn col_slices(&self, start: usize, n: usize) -> [&[f64]; D] {
        std::array::from_fn(|d| &self.cols[d * self.len + start..d * self.len + start + n])
    }

    /// Point, membership and original index stored at `slot`.
    #[inline]
    pub(crate) fn point_at(&self, slot: usize) -> (Point<D>, f64, u32) {
        let mut c = [0.0; D];
        for d in 0..D {
            c[d] = self.cols[d * self.len + slot];
        }
        (Point::new(c), self.mus[slot], self.orig[slot])
    }

    /// Original input index of the point stored at `slot`.
    #[inline]
    pub(crate) fn orig_at(&self, slot: usize) -> u32 {
        self.orig[slot]
    }

    /// Squared distance from `q` to the point at `slot`, with the same
    /// arithmetic (dimension order, one accumulator) as the kernels and
    /// [`Point::dist_sq`].
    #[inline]
    pub(crate) fn row_dist_sq(&self, q: &Point<D>, slot: usize) -> f64 {
        let mut s = 0.0;
        for d in 0..D {
            let diff = self.cols[d * self.len + slot] - q.coords()[d];
            s += diff * diff;
        }
        s
    }

    /// Canonical best candidate of the first `p` slots of a leaf: the
    /// kernel min-reduction over the columns, then the smallest original
    /// index achieving it. `None` when the prefix is empty or contains no
    /// comparable (non-NaN, finite-min) candidate.
    fn leaf_candidate(&self, start: usize, p: usize, q: &Point<D>) -> Option<(f64, u32)> {
        if p == 0 {
            return None;
        }
        let m = kernel::min_dist_sq_cols(&self.col_slices(start, p), q.coords());
        if m == f64::INFINITY {
            return None; // every candidate was NaN
        }
        let mut best_orig = u32::MAX;
        for j in start..start + p {
            if self.row_dist_sq(q, j).to_bits() == m.to_bits() {
                best_orig = best_orig.min(self.orig[j]);
            }
        }
        debug_assert_ne!(best_orig, u32::MAX, "kernel min must come from a row");
        Some((m, best_orig))
    }
}

/// Canonical update rule shared by the tree traversals: a candidate wins on
/// strictly smaller distance, or on equal distance with a smaller original
/// index — but only once a real point holds the best slot (the initial cap
/// is exclusive).
#[inline]
fn consider(cand: (f64, u32), best_sq: &mut f64, best_orig: &mut Option<u32>) {
    let (d2, o) = cand;
    let wins = match *best_orig {
        None => d2 < *best_sq,
        Some(bo) => d2 < *best_sq || (d2 == *best_sq && o < bo),
    };
    if wins {
        *best_sq = d2;
        *best_orig = Some(o);
    }
}

/// Growable heap-indexed annotation storage used during construction.
struct Annotations {
    max_mu: Vec<f64>,
    /// `2·D` values per heap slot: lows then highs.
    bounds: Vec<f64>,
    nodes: usize,
}

impl Annotations {
    fn ensure<const D: usize>(&mut self, id: usize) {
        let need = (id + 1) * 2 * D;
        if self.bounds.len() < need {
            self.bounds.resize(need, 0.0);
            self.max_mu.resize(id + 1, f64::NEG_INFINITY);
        }
    }
}

/// Recursive construction over `items[start..end)` for heap node `id`:
/// records the subtree annotations, establishes the leaf prefix invariant
/// at the leaves, and median-partitions internal ranges in place.
fn build_range<const D: usize>(
    items: &mut [BuildItem<D>],
    ann: &mut Annotations,
    id: usize,
    start: usize,
    end: usize,
) {
    ann.ensure::<D>(id);
    ann.nodes += 1;
    let range = &items[start..end];
    let mbr = Mbr::from_points(range.iter().map(|it| &it.pt)).expect("non-empty range");
    let max_mu = range.iter().map(|it| it.mu).fold(f64::NEG_INFINITY, f64::max);
    {
        let b = id * 2 * D;
        ann.bounds[b..b + D].copy_from_slice(mbr.lo_coords());
        ann.bounds[b + D..b + 2 * D].copy_from_slice(mbr.hi_coords());
        ann.max_mu[id] = max_mu;
    }
    if end - start <= LEAF_SIZE {
        // Leaf prefix invariant: membership descending, ties by original
        // index for determinism.
        items[start..end].sort_by(|a, b| b.mu.total_cmp(&a.mu).then(a.orig.cmp(&b.orig)));
        return;
    }
    // Split on the widest dimension at the median; the split position is
    // implied by the range, never stored.
    let mut dim = 0;
    let mut widest = -1.0;
    for i in 0..D {
        let e = mbr.extent(i);
        if e > widest {
            widest = e;
            dim = i;
        }
    }
    let mid = start + (end - start) / 2;
    items[start..end].select_nth_unstable_by(mid - start, |a, b| a.pt[dim].total_cmp(&b.pt[dim]));
    build_range(items, ann, 2 * id + 1, start, mid);
    build_range(items, ann, 2 * id + 2, mid, end);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_tree() -> (Vec<Point<2>>, Vec<f64>, KdTree<2>) {
        // 10x10 grid; membership grows with x+y, normalized to (0,1].
        let mut pts = Vec::new();
        let mut mus = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::xy(i as f64, j as f64));
                mus.push(((i + j) as f64 + 1.0) / 19.0);
            }
        }
        let tree = KdTree::build(&pts, &mus);
        (pts, mus, tree)
    }

    fn brute_nn(
        pts: &[Point<2>],
        mus: &[f64],
        q: &Point<2>,
        f: LevelFilter,
    ) -> Option<(usize, f64)> {
        pts.iter()
            .zip(mus)
            .enumerate()
            .filter(|(_, (_, &mu))| f.accepts(mu))
            .map(|(i, (p, _))| (i, p.dist(q)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    #[test]
    fn filter_semantics() {
        let f = LevelFilter::at_least(0.5);
        assert!(f.accepts(0.5));
        assert!(f.accepts(0.7));
        assert!(!f.accepts(0.49));
        let s = LevelFilter::above(0.5);
        assert!(!s.accepts(0.5));
        assert!(s.accepts(0.5000001));
        assert!(LevelFilter::support().accepts(1e-12));
        assert!(!LevelFilter::support().accepts(0.0));
    }

    #[test]
    fn nn_matches_brute_force_across_filters() {
        let (pts, mus, tree) = grid_tree();
        let queries =
            [Point::xy(4.5, 4.5), Point::xy(-3.0, 2.0), Point::xy(20.0, 20.0), Point::xy(0.0, 9.0)];
        for &q in &queries {
            for lvl in [0.0, 0.3, 0.5, 0.9, 1.0] {
                for strict in [false, true] {
                    let f = LevelFilter { min: lvl, strict };
                    let got = tree.nn_filtered(&q, f);
                    let want = brute_nn(&pts, &mus, &q, f);
                    match (got, want) {
                        (None, None) => {}
                        (Some((ig, dg)), Some((iw, dw))) => {
                            assert_eq!(ig, iw, "q={q:?} lvl={lvl} strict={strict}");
                            assert!(
                                (dg - dw).abs() < 1e-12,
                                "q={q:?} lvl={lvl} strict={strict}: {dg} vs {dw}"
                            );
                        }
                        other => panic!("mismatch at q={q:?} lvl={lvl}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn nn_ties_resolve_to_smallest_original_index() {
        // Four copies of the same point: the canonical winner is index 0,
        // whatever the leaf order or lane assignment.
        let pts = vec![Point::xy(1.0, 1.0); 4];
        let mus = vec![0.5, 1.0, 0.7, 0.9];
        let tree = KdTree::build(&pts, &mus);
        let (i, d) = tree.nn_filtered(&Point::xy(0.0, 0.0), LevelFilter::support()).unwrap();
        assert_eq!(i, 0);
        assert!((d - 2.0f64.sqrt()).abs() < 1e-12);
        // Filtering out index 0 moves the canonical winner to index 1.
        let (i, _) = tree.nn_filtered(&Point::xy(0.0, 0.0), LevelFilter::at_least(0.9)).unwrap();
        assert_eq!(i, 1);
    }

    #[test]
    fn filter_excluding_everything_returns_none() {
        let (_, _, tree) = grid_tree();
        assert!(tree.nn_filtered(&Point::xy(0.0, 0.0), LevelFilter::above(1.0)).is_none());
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let (pts, mus, tree) = grid_tree();
        let q = Point::xy(5.0, 5.0);
        let f = LevelFilter::at_least(0.4);
        let got = tree.within_radius_filtered(&q, 2.5, f);
        let mut want: Vec<usize> = pts
            .iter()
            .zip(&mus)
            .enumerate()
            .filter(|(_, (p, &mu))| f.accepts(mu) && p.dist(&q) <= 2.5)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        // Already sorted: the output order is canonical.
        assert_eq!(got, want);
    }

    #[test]
    fn singleton_tree() {
        let tree = KdTree::build(&[Point::xy(1.0, 2.0)], &[0.8]);
        assert_eq!(tree.len(), 1);
        let (i, d) = tree.nn_filtered(&Point::xy(1.0, 3.0), LevelFilter::at_least(0.5)).unwrap();
        assert_eq!(i, 0);
        assert!((d - 1.0).abs() < 1e-12);
        assert!(tree.nn_filtered(&Point::xy(0.0, 0.0), LevelFilter::at_least(0.9)).is_none());
    }

    #[test]
    fn max_mu_annotation_is_root_max() {
        let (_, mus, tree) = grid_tree();
        let want = mus.iter().copied().fold(f64::MIN, f64::max);
        assert_eq!(tree.max_mu(), want);
        assert!(tree.node_count() >= 1);
    }

    #[test]
    fn strictly_closer_cap_semantics_survive_ties() {
        // A point exactly at the cap distance must not be returned, even
        // though equal distances are otherwise tie-broken by index.
        let pts = vec![Point::xy(3.0, 4.0), Point::xy(6.0, 8.0)];
        let mus = vec![1.0, 1.0];
        let tree = KdTree::build(&pts, &mus);
        let q = Point::origin();
        assert!(tree.nn_sq_within(&q, LevelFilter::support(), 25.0).is_none());
        let (i, d2) = tree.nn_sq_within(&q, LevelFilter::support(), 25.0 + 1e-9).unwrap();
        assert_eq!((i, d2), (0, 25.0));
    }

    #[test]
    #[should_panic(expected = "cannot build")]
    fn empty_build_panics() {
        let _ = KdTree::<2>::build(&[], &[]);
    }
}
