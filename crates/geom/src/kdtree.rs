//! A bulk-loaded kd-tree over weighted points.
//!
//! Every point carries a *membership* weight `µ ∈ (0, 1]` and every node is
//! annotated with the maximum membership of its subtree, so spatial queries
//! can be filtered by a membership level: a query at level α simply skips
//! subtrees whose `max_µ` fails the filter. This turns the kd-tree into an
//! index over *all α-cuts at once* — the crucial property exploited by the
//! α-distance evaluators, because the fraction of an object participating in
//! a query is unknown until the query arrives (Section 1 of the paper).
//!
//! **Leaf prefix invariant:** within every leaf the points are stored in
//! membership-descending order, so the subset passing any [`LevelFilter`]
//! is a *contiguous prefix* of the leaf range. Leaf scans therefore stop
//! at the first rejected membership instead of testing every point — the
//! per-point filter closure of the original implementation becomes a
//! single early exit.

use crate::mbr::Mbr;
use crate::point::Point;

/// A membership-level filter: selects points with `µ ≥ min` (inclusive) or
/// `µ > min` (strict).
///
/// The strict form implements the paper's `α* + ε` stepping exactly: the cut
/// "just above" a critical value `v` is `{a : µ(a) > v}`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelFilter {
    /// Threshold value in `[0, 1]`.
    pub min: f64,
    /// When true, require `µ > min`; otherwise `µ ≥ min`.
    pub strict: bool,
}

impl LevelFilter {
    /// Inclusive filter `µ ≥ min` — a plain α-cut.
    #[inline]
    pub const fn at_least(min: f64) -> Self {
        Self { min, strict: false }
    }

    /// Strict filter `µ > min` — the cut immediately above `min`.
    #[inline]
    pub const fn above(min: f64) -> Self {
        Self { min, strict: true }
    }

    /// The no-op filter accepting every valid membership (`µ > 0`),
    /// selecting the support set.
    #[inline]
    pub const fn support() -> Self {
        Self { min: 0.0, strict: true }
    }

    /// Does membership `mu` pass the filter?
    #[inline]
    pub fn accepts(&self, mu: f64) -> bool {
        if self.strict {
            mu > self.min
        } else {
            mu >= self.min
        }
    }
}

const LEAF_SIZE: usize = 12;

#[derive(Clone, Debug)]
enum NodeKind {
    Leaf { start: u32, end: u32 },
    Internal { left: u32, right: u32 },
}

#[derive(Clone, Debug)]
struct Node<const D: usize> {
    mbr: Mbr<D>,
    max_mu: f64,
    kind: NodeKind,
}

/// Bulk-loaded, immutable kd-tree over `(point, membership)` pairs.
///
/// Construction permutes the points internally; query results refer to the
/// *original* input indices.
#[derive(Clone, Debug)]
pub struct KdTree<const D: usize> {
    pts: Vec<Point<D>>,
    mus: Vec<f64>,
    orig: Vec<u32>,
    nodes: Vec<Node<D>>,
    root: u32,
}

impl<const D: usize> KdTree<D> {
    /// Build a tree from parallel slices of points and memberships.
    ///
    /// # Panics
    /// When the slices differ in length or are empty.
    pub fn build(points: &[Point<D>], memberships: &[f64]) -> Self {
        assert_eq!(points.len(), memberships.len(), "points/memberships length mismatch");
        assert!(!points.is_empty(), "cannot build a kd-tree over no points");
        let n = points.len();
        let mut tree = Self {
            pts: points.to_vec(),
            mus: memberships.to_vec(),
            orig: (0..n as u32).collect(),
            nodes: Vec::with_capacity(2 * n / LEAF_SIZE + 2),
            root: 0,
        };
        tree.root = tree.build_range(0, n);
        tree
    }

    fn build_range(&mut self, start: usize, end: usize) -> u32 {
        let mbr = Mbr::from_points(self.pts[start..end].iter()).expect("non-empty range");
        let max_mu = self.mus[start..end].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if end - start <= LEAF_SIZE {
            // Establish the leaf prefix invariant: membership descending
            // (ties by original index, for determinism), so any level
            // filter selects a contiguous prefix of the leaf.
            let mut idx: Vec<usize> = (start..end).collect();
            idx.sort_by(|&a, &b| {
                self.mus[b].total_cmp(&self.mus[a]).then(self.orig[a].cmp(&self.orig[b]))
            });
            self.apply_permutation(start, &idx);
            let id = self.nodes.len() as u32;
            self.nodes.push(Node {
                mbr,
                max_mu,
                kind: NodeKind::Leaf { start: start as u32, end: end as u32 },
            });
            return id;
        }
        // Split on the widest dimension at the median.
        let mut dim = 0;
        let mut widest = -1.0;
        for i in 0..D {
            let e = mbr.extent(i);
            if e > widest {
                widest = e;
                dim = i;
            }
        }
        let mid = start + (end - start) / 2;
        // Select the median, permuting pts/mus/orig in lockstep via an index
        // sort of the subrange.
        let mut idx: Vec<usize> = (start..end).collect();
        idx.select_nth_unstable_by(mid - start, |&a, &b| {
            self.pts[a][dim].total_cmp(&self.pts[b][dim])
        });
        self.apply_permutation(start, &idx);

        let left = self.build_range(start, mid);
        let right = self.build_range(mid, end);
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { mbr, max_mu, kind: NodeKind::Internal { left, right } });
        id
    }

    /// Reorder `pts`, `mus`, `orig` in `start..start+idx.len()` so that
    /// position `start + i` holds what was at `idx[i]`.
    fn apply_permutation(&mut self, start: usize, idx: &[usize]) {
        let new_pts: Vec<Point<D>> = idx.iter().map(|&i| self.pts[i]).collect();
        let new_mus: Vec<f64> = idx.iter().map(|&i| self.mus[i]).collect();
        let new_orig: Vec<u32> = idx.iter().map(|&i| self.orig[i]).collect();
        self.pts[start..start + idx.len()].copy_from_slice(&new_pts);
        self.mus[start..start + idx.len()].copy_from_slice(&new_mus);
        self.orig[start..start + idx.len()].copy_from_slice(&new_orig);
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// Always false: construction rejects empty input.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Bounding box of all points.
    #[inline]
    pub fn mbr(&self) -> &Mbr<D> {
        &self.nodes[self.root as usize].mbr
    }

    /// Largest membership in the tree.
    #[inline]
    pub fn max_mu(&self) -> f64 {
        self.nodes[self.root as usize].max_mu
    }

    /// Number of internal + leaf nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Nearest neighbour of `q` among points passing `filter`; returns the
    /// original index and the distance, or `None` when no point passes.
    pub fn nn_filtered(&self, q: &Point<D>, filter: LevelFilter) -> Option<(usize, f64)> {
        self.nn_sq_within(q, filter, f64::INFINITY).map(|(i, d2)| (i, d2.sqrt()))
    }

    /// Seeded nearest-neighbour search in **squared** space: the original
    /// index and squared distance of the closest point passing `filter`
    /// that lies *strictly closer* than `cap_sq`, or `None` when no such
    /// point exists. With `cap_sq = ∞` this is [`KdTree::nn_filtered`]
    /// without the final square root. The seed lets chained searches (one
    /// per activated point in the α-distance evaluators) start each probe
    /// from the running best, pruning most of the tree immediately.
    pub fn nn_sq_within(
        &self,
        q: &Point<D>,
        filter: LevelFilter,
        cap_sq: f64,
    ) -> Option<(usize, f64)> {
        let mut best = cap_sq;
        let mut best_idx: Option<usize> = None;
        self.nn_rec(self.root, q, filter, &mut best, &mut best_idx);
        best_idx.map(|i| (i, best))
    }

    fn nn_rec(
        &self,
        node_id: u32,
        q: &Point<D>,
        filter: LevelFilter,
        best_sq: &mut f64,
        best_idx: &mut Option<usize>,
    ) {
        let node = &self.nodes[node_id as usize];
        if !filter.accepts(node.max_mu) {
            return;
        }
        let d2 = q.dist_sq_to_box(node.mbr.lo_coords(), node.mbr.hi_coords());
        if d2 >= *best_sq {
            return;
        }
        match node.kind {
            NodeKind::Leaf { start, end } => {
                for i in start as usize..end as usize {
                    // Leaf prefix invariant: memberships descend, so the
                    // first rejection ends the accepted prefix.
                    if !filter.accepts(self.mus[i]) {
                        break;
                    }
                    let d2 = q.dist_sq(&self.pts[i]);
                    if d2 < *best_sq {
                        *best_sq = d2;
                        *best_idx = Some(self.orig[i] as usize);
                    }
                }
            }
            NodeKind::Internal { left, right } => {
                let dl = q.dist_sq_to_box(
                    self.nodes[left as usize].mbr.lo_coords(),
                    self.nodes[left as usize].mbr.hi_coords(),
                );
                let dr = q.dist_sq_to_box(
                    self.nodes[right as usize].mbr.lo_coords(),
                    self.nodes[right as usize].mbr.hi_coords(),
                );
                let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
                self.nn_rec(first, q, filter, best_sq, best_idx);
                self.nn_rec(second, q, filter, best_sq, best_idx);
            }
        }
    }

    /// Collect the original indices of all points passing `filter` that lie
    /// within `radius` of `q`.
    pub fn within_radius_filtered(
        &self,
        q: &Point<D>,
        radius: f64,
        filter: LevelFilter,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        let r2 = radius * radius;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if !filter.accepts(node.max_mu) {
                continue;
            }
            if q.dist_sq_to_box(node.mbr.lo_coords(), node.mbr.hi_coords()) > r2 {
                continue;
            }
            match node.kind {
                NodeKind::Leaf { start, end } => {
                    for i in start as usize..end as usize {
                        if !filter.accepts(self.mus[i]) {
                            break; // leaf prefix invariant
                        }
                        if q.dist_sq(&self.pts[i]) <= r2 {
                            out.push(self.orig[i] as usize);
                        }
                    }
                }
                NodeKind::Internal { left, right } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        out
    }

    // ----- internals exposed to the closest-pair module -----

    #[inline]
    pub(crate) fn node_mbr(&self, id: u32) -> &Mbr<D> {
        &self.nodes[id as usize].mbr
    }

    #[inline]
    pub(crate) fn node_max_mu(&self, id: u32) -> f64 {
        self.nodes[id as usize].max_mu
    }

    #[inline]
    pub(crate) fn node_children(&self, id: u32) -> Option<(u32, u32)> {
        match self.nodes[id as usize].kind {
            NodeKind::Internal { left, right } => Some((left, right)),
            NodeKind::Leaf { .. } => None,
        }
    }

    /// Leaf slot ranges are membership-descending (the leaf prefix
    /// invariant), so callers may stop scanning at the first slot whose
    /// membership fails their filter.
    #[inline]
    pub(crate) fn node_points(&self, id: u32) -> Option<(usize, usize)> {
        match self.nodes[id as usize].kind {
            NodeKind::Leaf { start, end } => Some((start as usize, end as usize)),
            NodeKind::Internal { .. } => None,
        }
    }

    #[inline]
    pub(crate) fn root_id(&self) -> u32 {
        self.root
    }

    #[inline]
    pub(crate) fn point_at(&self, slot: usize) -> (&Point<D>, f64, u32) {
        (&self.pts[slot], self.mus[slot], self.orig[slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_tree() -> (Vec<Point<2>>, Vec<f64>, KdTree<2>) {
        // 10x10 grid; membership grows with x+y, normalized to (0,1].
        let mut pts = Vec::new();
        let mut mus = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::xy(i as f64, j as f64));
                mus.push(((i + j) as f64 + 1.0) / 19.0);
            }
        }
        let tree = KdTree::build(&pts, &mus);
        (pts, mus, tree)
    }

    fn brute_nn(
        pts: &[Point<2>],
        mus: &[f64],
        q: &Point<2>,
        f: LevelFilter,
    ) -> Option<(usize, f64)> {
        pts.iter()
            .zip(mus)
            .enumerate()
            .filter(|(_, (_, &mu))| f.accepts(mu))
            .map(|(i, (p, _))| (i, p.dist(q)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    #[test]
    fn filter_semantics() {
        let f = LevelFilter::at_least(0.5);
        assert!(f.accepts(0.5));
        assert!(f.accepts(0.7));
        assert!(!f.accepts(0.49));
        let s = LevelFilter::above(0.5);
        assert!(!s.accepts(0.5));
        assert!(s.accepts(0.5000001));
        assert!(LevelFilter::support().accepts(1e-12));
        assert!(!LevelFilter::support().accepts(0.0));
    }

    #[test]
    fn nn_matches_brute_force_across_filters() {
        let (pts, mus, tree) = grid_tree();
        let queries =
            [Point::xy(4.5, 4.5), Point::xy(-3.0, 2.0), Point::xy(20.0, 20.0), Point::xy(0.0, 9.0)];
        for &q in &queries {
            for lvl in [0.0, 0.3, 0.5, 0.9, 1.0] {
                for strict in [false, true] {
                    let f = LevelFilter { min: lvl, strict };
                    let got = tree.nn_filtered(&q, f);
                    let want = brute_nn(&pts, &mus, &q, f);
                    match (got, want) {
                        (None, None) => {}
                        (Some((_, dg)), Some((_, dw))) => {
                            assert!(
                                (dg - dw).abs() < 1e-12,
                                "q={q:?} lvl={lvl} strict={strict}: {dg} vs {dw}"
                            );
                        }
                        other => panic!("mismatch at q={q:?} lvl={lvl}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn filter_excluding_everything_returns_none() {
        let (_, _, tree) = grid_tree();
        assert!(tree.nn_filtered(&Point::xy(0.0, 0.0), LevelFilter::above(1.0)).is_none());
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let (pts, mus, tree) = grid_tree();
        let q = Point::xy(5.0, 5.0);
        let f = LevelFilter::at_least(0.4);
        let mut got = tree.within_radius_filtered(&q, 2.5, f);
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .zip(&mus)
            .enumerate()
            .filter(|(_, (p, &mu))| f.accepts(mu) && p.dist(&q) <= 2.5)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn singleton_tree() {
        let tree = KdTree::build(&[Point::xy(1.0, 2.0)], &[0.8]);
        assert_eq!(tree.len(), 1);
        let (i, d) = tree.nn_filtered(&Point::xy(1.0, 3.0), LevelFilter::at_least(0.5)).unwrap();
        assert_eq!(i, 0);
        assert!((d - 1.0).abs() < 1e-12);
        assert!(tree.nn_filtered(&Point::xy(0.0, 0.0), LevelFilter::at_least(0.9)).is_none());
    }

    #[test]
    fn max_mu_annotation_is_root_max() {
        let (_, mus, tree) = grid_tree();
        let want = mus.iter().copied().fold(f64::MIN, f64::max);
        assert_eq!(tree.max_mu(), want);
        assert!(tree.node_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "cannot build")]
    fn empty_build_panics() {
        let _ = KdTree::<2>::build(&[], &[]);
    }
}
