//! Optimal conservative linear approximation of a boundary function
//! (Definition 6 of the paper).
//!
//! Given samples `⟨α, δ(α)⟩` of a (typically decreasing) boundary function,
//! find the line `L_opt : y = m·x + t` that
//!
//! 1. is *conservative*: `m·α + t ≥ δ(α)` for every sample, and
//! 2. minimises the summed squared error `Σ ((m·α + t) − δ(α))²`.
//!
//! The optimum is a supporting line of the *upper convex hull* (UCH) of the
//! samples: it either interpolates a single hull vertex (the *anchor point*,
//! with the anchor-optimal slope) or coincides with a hull edge. We locate
//! the anchor with the bisection of Achtert et al. (ref. \[1\] of the paper)
//! and additionally evaluate the neighbouring candidates, which makes the
//! search robust to floating-point ties; [`fit_conservative_line_exact`]
//! scans every vertex and edge and is used as the test oracle.

use crate::hull::upper_hull_2d;
use crate::point::Point;

/// A line `y = m·x + t` that conservatively approximates a boundary
/// function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConservativeLine {
    /// Slope `m_opt`.
    pub m: f64,
    /// Intercept `t_opt`.
    pub t: f64,
}

impl ConservativeLine {
    /// The constant-zero line; conservative for the all-zero boundary
    /// function (an object equal to its kernel).
    pub const ZERO: Self = Self { m: 0.0, t: 0.0 };

    /// Evaluate the line at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.m * x + self.t
    }

    /// Summed squared error against `samples` (lower is tighter).
    pub fn sse(&self, samples: &[(f64, f64)]) -> f64 {
        samples
            .iter()
            .map(|&(x, y)| {
                let e = self.eval(x) - y;
                e * e
            })
            .sum()
    }

    /// True when the line lies on or above every sample (within `tol`).
    pub fn is_conservative(&self, samples: &[(f64, f64)], tol: f64) -> bool {
        samples.iter().all(|&(x, y)| self.eval(x) >= y - tol)
    }

    /// Raise the intercept by the largest violation so the line dominates
    /// every sample exactly (a no-op when already conservative).
    fn lifted(mut self, samples: &[(f64, f64)]) -> Self {
        let mut worst: f64 = 0.0;
        for &(x, y) in samples {
            worst = worst.max(y - self.eval(x));
        }
        if worst > 0.0 {
            self.t += worst;
        }
        self
    }
}

/// Anchor-optimal line (AOL): the least-squares line constrained to pass
/// through `anchor`, i.e. the slope minimising
/// `Σ (m·(x_i − x_a) − (y_i − y_a))²`.
fn anchor_optimal_line(anchor: Point<2>, samples: &[(f64, f64)]) -> ConservativeLine {
    let (xa, ya) = (anchor.x(), anchor.y());
    let mut num = 0.0;
    let mut den = 0.0;
    for &(x, y) in samples {
        let dx = x - xa;
        num += dx * (y - ya);
        den += dx * dx;
    }
    let m = if den > 0.0 { num / den } else { 0.0 };
    ConservativeLine { m, t: ya - m * xa }
}

/// Line through two points (hull edge); vertical pairs fall back to a
/// horizontal line through the higher point.
fn line_through(a: Point<2>, b: Point<2>) -> ConservativeLine {
    let dx = b.x() - a.x();
    if dx.abs() < f64::EPSILON {
        return ConservativeLine { m: 0.0, t: a.y().max(b.y()) };
    }
    let m = (b.y() - a.y()) / dx;
    ConservativeLine { m, t: a.y() - m * a.x() }
}

fn best_of(
    candidates: impl IntoIterator<Item = ConservativeLine>,
    samples: &[(f64, f64)],
) -> ConservativeLine {
    candidates
        .into_iter()
        .map(|c| c.lifted(samples))
        .min_by(|a, b| a.sse(samples).total_cmp(&b.sse(samples)))
        .expect("at least one candidate line")
}

/// Fit the optimal conservative line to `samples` using the UCH anchor
/// bisection. Degenerate inputs (empty, single point, constant function)
/// yield the obvious horizontal line. The result is guaranteed conservative
/// (a final exact lift absorbs floating-point wobble).
pub fn fit_conservative_line(samples: &[(f64, f64)]) -> ConservativeLine {
    match samples {
        [] => return ConservativeLine::ZERO,
        [(_, y)] => return ConservativeLine { m: 0.0, t: *y },
        _ => {}
    }
    let pts: Vec<Point<2>> = samples.iter().map(|&(x, y)| Point::xy(x, y)).collect();
    let hull = upper_hull_2d(&pts);
    if hull.len() == 1 {
        // All samples share one x; a horizontal line through the top sample.
        return ConservativeLine { m: 0.0, t: hull[0].y() };
    }

    // Bisection over hull vertices for the anchor point. `above` uses a
    // relative tolerance: a vertex only redirects the search when it is
    // meaningfully above the candidate line.
    let above = |line: &ConservativeLine, p: &Point<2>| -> bool {
        p.y() > line.eval(p.x()) + 1e-12 * (1.0 + p.y().abs())
    };
    let (mut lo, mut hi) = (0usize, hull.len() - 1);
    let mut anchor = (lo + hi) / 2;
    // The loop always terminates: each step strictly shrinks [lo, hi].
    while lo <= hi {
        anchor = (lo + hi) / 2;
        let aol = anchor_optimal_line(hull[anchor], samples);
        let succ_above = anchor + 1 < hull.len() && above(&aol, &hull[anchor + 1]);
        let pred_above = anchor >= 1 && above(&aol, &hull[anchor - 1]);
        if succ_above {
            lo = anchor + 1;
        } else if pred_above {
            if anchor == 0 {
                break;
            }
            hi = anchor - 1;
        } else {
            break; // both neighbours at or below: global anchor found
        }
        if lo > hi {
            break;
        }
    }

    // Evaluate the located anchor plus its neighbourhood (vertices and
    // edges); the lift makes every candidate feasible, the SSE picks the
    // tightest. This absorbs any bisection off-by-one near ties.
    let mut candidates: Vec<ConservativeLine> = Vec::with_capacity(8);
    let from = anchor.saturating_sub(1);
    let to = (anchor + 1).min(hull.len() - 1);
    for i in from..=to {
        candidates.push(anchor_optimal_line(hull[i], samples));
        if i + 1 < hull.len() {
            candidates.push(line_through(hull[i], hull[i + 1]));
        }
    }
    best_of(candidates, samples)
}

/// Exact reference implementation: evaluate the AOL of *every* hull vertex
/// and the line of *every* hull edge, lift each to feasibility and return
/// the smallest-SSE line. `O(h·n)` — used as the oracle in tests and in the
/// `abl-line` ablation.
pub fn fit_conservative_line_exact(samples: &[(f64, f64)]) -> ConservativeLine {
    match samples {
        [] => return ConservativeLine::ZERO,
        [(_, y)] => return ConservativeLine { m: 0.0, t: *y },
        _ => {}
    }
    let pts: Vec<Point<2>> = samples.iter().map(|&(x, y)| Point::xy(x, y)).collect();
    let hull = upper_hull_2d(&pts);
    if hull.len() == 1 {
        return ConservativeLine { m: 0.0, t: hull[0].y() };
    }
    let mut candidates: Vec<ConservativeLine> = Vec::with_capacity(2 * hull.len());
    for i in 0..hull.len() {
        candidates.push(anchor_optimal_line(hull[i], samples));
        if i + 1 < hull.len() {
            candidates.push(line_through(hull[i], hull[i + 1]));
        }
    }
    best_of(candidates, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boundary_like(n: usize, seed: u64) -> Vec<(f64, f64)> {
        // Decreasing, non-negative staircase on [0, 1] ending at 0 — the
        // shape of a real boundary function.
        let mut state = seed.max(1);
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut xs: Vec<f64> = (0..n).map(|_| rnd()).collect();
        xs.push(0.0);
        xs.push(1.0);
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        let mut y = 0.0;
        let mut pts: Vec<(f64, f64)> = xs
            .iter()
            .rev()
            .map(|&x| {
                let p = (x, y);
                y += rnd() * 0.3;
                p
            })
            .collect();
        pts.reverse();
        pts
    }

    #[test]
    fn fits_exactly_collinear_samples() {
        let samples: Vec<(f64, f64)> = (0..=10)
            .map(|i| {
                let x = i as f64 / 10.0;
                (x, 2.0 - 1.5 * x)
            })
            .collect();
        let line = fit_conservative_line(&samples);
        assert!((line.m - (-1.5)).abs() < 1e-9, "m = {}", line.m);
        assert!((line.t - 2.0).abs() < 1e-9, "t = {}", line.t);
        assert!(line.sse(&samples) < 1e-12);
    }

    #[test]
    fn conservative_on_staircases() {
        for seed in 1..30u64 {
            let samples = boundary_like(40, seed);
            let line = fit_conservative_line(&samples);
            assert!(
                line.is_conservative(&samples, 1e-9),
                "seed {seed}: line {line:?} not conservative"
            );
        }
    }

    #[test]
    fn matches_exact_oracle() {
        for seed in 1..30u64 {
            let samples = boundary_like(25, seed * 7 + 1);
            let fast = fit_conservative_line(&samples);
            let exact = fit_conservative_line_exact(&samples);
            let (fs, es) = (fast.sse(&samples), exact.sse(&samples));
            // The oracle is optimal, so es <= fs; and the bisection should
            // actually find the optimum.
            assert!(es <= fs + 1e-9, "seed {seed}: exact {es} > fast {fs}");
            assert!(
                fs <= es + 1e-6 * (1.0 + es),
                "seed {seed}: bisection missed optimum: fast {fs} vs exact {es}"
            );
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(fit_conservative_line(&[]), ConservativeLine::ZERO);
        let single = fit_conservative_line(&[(0.4, 2.0)]);
        assert_eq!((single.m, single.t), (0.0, 2.0));
        // All samples at one x: horizontal through the top.
        let stacked = fit_conservative_line(&[(0.5, 1.0), (0.5, 3.0), (0.5, 2.0)]);
        assert_eq!(stacked.m, 0.0);
        assert!((stacked.t - 3.0).abs() < 1e-12);
        // Constant function.
        let flat = fit_conservative_line(&[(0.0, 1.0), (0.5, 1.0), (1.0, 1.0)]);
        assert!((flat.eval(0.25) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn line_is_tighter_than_constant_upper_bound() {
        // The whole point of L_opt: beat the trivial bound t = max δ.
        let samples = boundary_like(60, 42);
        let line = fit_conservative_line(&samples);
        let max_y = samples.iter().map(|&(_, y)| y).fold(0.0, f64::max);
        let constant = ConservativeLine { m: 0.0, t: max_y };
        assert!(line.sse(&samples) <= constant.sse(&samples));
    }

    #[test]
    fn two_point_input() {
        let samples = [(0.0, 1.0), (1.0, 0.0)];
        let line = fit_conservative_line(&samples);
        assert!(line.is_conservative(&samples, 1e-12));
        assert!(line.sse(&samples) < 1e-18);
    }
}
