//! Bichromatic closest pair between two membership-filtered point sets.
//!
//! This is the computational core of the α-distance (Definition 3):
//! `d_α(A, B) = min_{a ∈ A_α, b ∈ B_α} ‖a − b‖` is exactly the closest pair
//! between the two α-cuts. The dual-tree branch-and-bound below descends two
//! kd-trees simultaneously, pruning node pairs whose boxes are farther apart
//! than the best pair found so far and subtrees whose maximum membership
//! fails the level filter — the classical approach of Corral et al.
//! (ref. \[9\] of the paper) adapted to fuzzy cuts.

use crate::kdtree::{KdTree, LevelFilter};

/// Result of a closest-pair computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairResult {
    /// Distance between the winning pair.
    pub dist: f64,
    /// Original index of the winning point in the first tree.
    pub i: usize,
    /// Original index of the winning point in the second tree.
    pub j: usize,
}

/// Result of a closest-pair computation in squared space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairResultSq {
    /// **Squared** distance between the winning pair.
    pub dist_sq: f64,
    /// Original index of the winning point in the first tree.
    pub i: usize,
    /// Original index of the winning point in the second tree.
    pub j: usize,
}

/// Closest pair between the points of `a` passing `filter_a` and the points
/// of `b` passing `filter_b`. Returns `None` when either side is empty under
/// its filter.
///
/// `upper_bound`, when finite, allows the caller to seed the search with an
/// already-known distance bound (e.g. the paper's improved upper bound
/// `d⁺_α`); pairs at or beyond it are pruned, and `None` is returned if no
/// strictly closer pair exists.
pub fn bichromatic_closest_pair<const D: usize>(
    a: &KdTree<D>,
    b: &KdTree<D>,
    filter_a: LevelFilter,
    filter_b: LevelFilter,
    upper_bound: f64,
) -> Option<PairResult> {
    let bound_sq = if upper_bound.is_finite() { upper_bound * upper_bound } else { f64::INFINITY };
    bichromatic_closest_pair_sq(a, b, filter_a, filter_b, bound_sq).map(|r| PairResult {
        dist: r.dist_sq.sqrt(),
        i: r.i,
        j: r.j,
    })
}

/// [`bichromatic_closest_pair`] without the boundary square root: both the
/// seed and the result are **squared** distances. This is the form every
/// internal traversal uses — the single `sqrt` is taken only where a real
/// distance leaves the hot path.
pub fn bichromatic_closest_pair_sq<const D: usize>(
    a: &KdTree<D>,
    b: &KdTree<D>,
    filter_a: LevelFilter,
    filter_b: LevelFilter,
    upper_bound_sq: f64,
) -> Option<PairResultSq> {
    let mut best_sq = upper_bound_sq;
    let mut best: Option<(u32, u32)> = None;
    descend(a, b, a.root_id(), b.root_id(), filter_a, filter_b, &mut best_sq, &mut best);
    best.map(|(i, j)| PairResultSq { dist_sq: best_sq, i: i as usize, j: j as usize })
}

#[allow(clippy::too_many_arguments)]
fn descend<const D: usize>(
    a: &KdTree<D>,
    b: &KdTree<D>,
    na: u32,
    nb: u32,
    fa: LevelFilter,
    fb: LevelFilter,
    best_sq: &mut f64,
    best: &mut Option<(u32, u32)>,
) {
    if !fa.accepts(a.node_max_mu(na)) || !fb.accepts(b.node_max_mu(nb)) {
        return;
    }
    let gap = a.node_mbr(na).min_dist_sq(b.node_mbr(nb));
    if gap >= *best_sq {
        return;
    }
    match (a.node_children(na), b.node_children(nb)) {
        (None, None) => {
            // Leaf x leaf: scan the accepted prefixes (leaf slots are
            // membership-descending, so the first rejection on either
            // side ends that side's accepted range).
            let (sa, ea) = a.node_points(na).expect("leaf");
            let (sb, eb) = b.node_points(nb).expect("leaf");
            for ia in sa..ea {
                let (pa, mua, oa) = a.point_at(ia);
                if !fa.accepts(mua) {
                    break;
                }
                for ib in sb..eb {
                    let (pb, mub, ob) = b.point_at(ib);
                    if !fb.accepts(mub) {
                        break;
                    }
                    let d2 = pa.dist_sq(pb);
                    if d2 < *best_sq {
                        *best_sq = d2;
                        *best = Some((oa, ob));
                    }
                }
            }
        }
        (Some((l, r)), None) => {
            let mut kids = [(l, nb), (r, nb)];
            order_by_gap(a, b, &mut kids);
            for (ca, cb) in kids {
                descend(a, b, ca, cb, fa, fb, best_sq, best);
            }
        }
        (None, Some((l, r))) => {
            let mut kids = [(na, l), (na, r)];
            order_by_gap(a, b, &mut kids);
            for (ca, cb) in kids {
                descend(a, b, ca, cb, fa, fb, best_sq, best);
            }
        }
        (Some((al, ar)), Some((bl, br))) => {
            let mut kids = [(al, bl), (al, br), (ar, bl), (ar, br)];
            order_by_gap(a, b, &mut kids);
            for (ca, cb) in kids {
                descend(a, b, ca, cb, fa, fb, best_sq, best);
            }
        }
    }
}

/// Visit the most promising node pairs first: descending by box gap gives
/// the branch-and-bound its tight early bound.
fn order_by_gap<const D: usize>(a: &KdTree<D>, b: &KdTree<D>, pairs: &mut [(u32, u32)]) {
    pairs.sort_by(|&(xa, xb), &(ya, yb)| {
        a.node_mbr(xa)
            .min_dist_sq(b.node_mbr(xb))
            .total_cmp(&a.node_mbr(ya).min_dist_sq(b.node_mbr(yb)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn random_cloud(n: usize, seed: u64, offset: f64) -> (Vec<Point<2>>, Vec<f64>) {
        let mut rng = Lcg(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::xy(rng.next_f64() * 10.0 + offset, rng.next_f64() * 10.0))
            .collect();
        // Memberships in (0, 1], with a guaranteed kernel point.
        let mut mus: Vec<f64> = (0..n).map(|_| rng.next_f64().max(1e-3)).collect();
        mus[0] = 1.0;
        (pts, mus)
    }

    fn brute(
        a: &(Vec<Point<2>>, Vec<f64>),
        b: &(Vec<Point<2>>, Vec<f64>),
        fa: LevelFilter,
        fb: LevelFilter,
    ) -> Option<f64> {
        let mut best: Option<f64> = None;
        for (p, &mu) in a.0.iter().zip(&a.1) {
            if !fa.accepts(mu) {
                continue;
            }
            for (q, &nu) in b.0.iter().zip(&b.1) {
                if !fb.accepts(nu) {
                    continue;
                }
                let d = p.dist(q);
                best = Some(best.map_or(d, |b: f64| b.min(d)));
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_over_levels() {
        for seed in 1..12u64 {
            let a = random_cloud(150, seed, 0.0);
            let b = random_cloud(130, seed.wrapping_mul(77) + 5, 6.0);
            let ta = KdTree::build(&a.0, &a.1);
            let tb = KdTree::build(&b.0, &b.1);
            for lvl in [0.0, 0.2, 0.5, 0.8, 1.0] {
                for strict in [false, true] {
                    let f = LevelFilter { min: lvl, strict };
                    let got =
                        bichromatic_closest_pair(&ta, &tb, f, f, f64::INFINITY).map(|r| r.dist);
                    let want = brute(&a, &b, f, f);
                    match (got, want) {
                        (None, None) => {}
                        (Some(g), Some(w)) => assert!(
                            (g - w).abs() < 1e-12,
                            "seed {seed} lvl {lvl} strict {strict}: {g} vs {w}"
                        ),
                        other => panic!("seed {seed} lvl {lvl}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn result_indices_are_original_and_consistent() {
        let a = random_cloud(60, 3, 0.0);
        let b = random_cloud(60, 4, 2.0);
        let ta = KdTree::build(&a.0, &a.1);
        let tb = KdTree::build(&b.0, &b.1);
        let f = LevelFilter::at_least(0.3);
        let r = bichromatic_closest_pair(&ta, &tb, f, f, f64::INFINITY).unwrap();
        assert!(f.accepts(a.1[r.i]));
        assert!(f.accepts(b.1[r.j]));
        assert!((a.0[r.i].dist(&b.0[r.j]) - r.dist).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_filters() {
        let a = random_cloud(80, 9, 0.0);
        let b = random_cloud(80, 10, 1.0);
        let ta = KdTree::build(&a.0, &a.1);
        let tb = KdTree::build(&b.0, &b.1);
        let fa = LevelFilter::at_least(0.9);
        let fb = LevelFilter::at_least(0.1);
        let got = bichromatic_closest_pair(&ta, &tb, fa, fb, f64::INFINITY).map(|r| r.dist);
        let want = brute(&a, &b, fa, fb);
        match (got, want) {
            (None, None) => {}
            (Some(g), Some(w)) => assert!((g - w).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn upper_bound_seeding_prunes_but_preserves_closer_pairs() {
        let a = random_cloud(100, 21, 0.0);
        let b = random_cloud(100, 22, 3.0);
        let ta = KdTree::build(&a.0, &a.1);
        let tb = KdTree::build(&b.0, &b.1);
        let f = LevelFilter::support();
        let exact = bichromatic_closest_pair(&ta, &tb, f, f, f64::INFINITY).unwrap().dist;
        // A generous seed must not change the answer.
        let seeded = bichromatic_closest_pair(&ta, &tb, f, f, exact + 1.0).unwrap().dist;
        assert!((seeded - exact).abs() < 1e-12);
        // A seed below the true distance finds nothing.
        assert!(bichromatic_closest_pair(&ta, &tb, f, f, exact * 0.5).is_none());
    }

    #[test]
    fn identical_point_in_both_sets_gives_zero() {
        let shared = Point::xy(5.0, 5.0);
        let a = (vec![shared, Point::xy(0.0, 0.0)], vec![1.0, 0.5]);
        let b = (vec![Point::xy(9.0, 9.0), shared], vec![0.4, 1.0]);
        let ta = KdTree::build(&a.0, &a.1);
        let tb = KdTree::build(&b.0, &b.1);
        let r = bichromatic_closest_pair(
            &ta,
            &tb,
            LevelFilter::at_least(1.0),
            LevelFilter::at_least(1.0),
            f64::INFINITY,
        )
        .unwrap();
        assert_eq!(r.dist, 0.0);
        assert_eq!((r.i, r.j), (0, 1));
    }
}
