//! Bichromatic closest pair between two membership-filtered point sets.
//!
//! This is the computational core of the α-distance (Definition 3):
//! `d_α(A, B) = min_{a ∈ A_α, b ∈ B_α} ‖a − b‖` is exactly the closest pair
//! between the two α-cuts. The dual-tree branch-and-bound below descends two
//! implicit kd-trees simultaneously, pruning node pairs whose boxes are
//! farther apart than the best pair found so far and subtrees whose maximum
//! membership fails the level filter — the classical approach of Corral et
//! al. (ref. \[9\] of the paper) adapted to fuzzy cuts.
//!
//! Leaf×leaf base cases run the columnar min-reduction kernel: for each
//! accepted point of the first leaf, one kernel sweep over the second
//! leaf's accepted column prefix replaces the inner scalar loop.
//!
//! Winning pairs are canonical: ties on distance resolve to the
//! lexicographically smallest `(i, j)` of original indices, so the result
//! is independent of traversal order and tree shape.

use crate::kdtree::{KdTree, LevelFilter};
use crate::kernel;

/// Result of a closest-pair computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairResult {
    /// Distance between the winning pair.
    pub dist: f64,
    /// Original index of the winning point in the first tree.
    pub i: usize,
    /// Original index of the winning point in the second tree.
    pub j: usize,
}

/// Result of a closest-pair computation in squared space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairResultSq {
    /// **Squared** distance between the winning pair.
    pub dist_sq: f64,
    /// Original index of the winning point in the first tree.
    pub i: usize,
    /// Original index of the winning point in the second tree.
    pub j: usize,
}

/// Closest pair between the points of `a` passing `filter_a` and the points
/// of `b` passing `filter_b`. Returns `None` when either side is empty under
/// its filter.
///
/// `upper_bound`, when finite, allows the caller to seed the search with an
/// already-known distance bound (e.g. the paper's improved upper bound
/// `d⁺_α`); pairs at or beyond it are pruned, and `None` is returned if no
/// strictly closer pair exists.
pub fn bichromatic_closest_pair<const D: usize>(
    a: &KdTree<D>,
    b: &KdTree<D>,
    filter_a: LevelFilter,
    filter_b: LevelFilter,
    upper_bound: f64,
) -> Option<PairResult> {
    let bound_sq = if upper_bound.is_finite() { upper_bound * upper_bound } else { f64::INFINITY };
    bichromatic_closest_pair_sq(a, b, filter_a, filter_b, bound_sq).map(|r| PairResult {
        dist: r.dist_sq.sqrt(),
        i: r.i,
        j: r.j,
    })
}

/// [`bichromatic_closest_pair`] without the boundary square root: both the
/// seed and the result are **squared** distances. This is the form every
/// internal traversal uses — the single `sqrt` is taken only where a real
/// distance leaves the hot path.
pub fn bichromatic_closest_pair_sq<const D: usize>(
    a: &KdTree<D>,
    b: &KdTree<D>,
    filter_a: LevelFilter,
    filter_b: LevelFilter,
    upper_bound_sq: f64,
) -> Option<PairResultSq> {
    let mut state = SearchState { best_sq: upper_bound_sq, best: None };
    descend(a, b, a.root_ref(), b.root_ref(), filter_a, filter_b, &mut state);
    state.best.map(|(i, j)| PairResultSq { dist_sq: state.best_sq, i: i as usize, j: j as usize })
}

struct SearchState {
    best_sq: f64,
    best: Option<(u32, u32)>,
}

impl SearchState {
    /// Canonical update: strictly smaller distance wins; an equal distance
    /// wins only with a lexicographically smaller `(i, j)`. The initial
    /// cap is exclusive (no pair yet ⇒ only strictly closer qualifies).
    #[inline]
    fn consider(&mut self, d2: f64, i: u32, j: u32) {
        let wins = match self.best {
            None => d2 < self.best_sq,
            Some(cur) => d2 < self.best_sq || (d2 == self.best_sq && (i, j) < cur),
        };
        if wins {
            self.best_sq = d2;
            self.best = Some((i, j));
        }
    }

    /// Node pairs whose box gap exceeds the best distance can never win;
    /// with a pair in hand, a gap exactly at the best distance must still
    /// be explored for a lexicographically smaller witness.
    #[inline]
    fn prunable(&self, gap: f64) -> bool {
        match self.best {
            Some(_) => gap > self.best_sq,
            None => gap >= self.best_sq,
        }
    }
}

fn descend<const D: usize>(
    a: &KdTree<D>,
    b: &KdTree<D>,
    na: crate::kdtree::NodeRef,
    nb: crate::kdtree::NodeRef,
    fa: LevelFilter,
    fb: LevelFilter,
    state: &mut SearchState,
) {
    if !fa.accepts(a.node_max_mu(na)) || !fb.accepts(b.node_max_mu(nb)) {
        return;
    }
    if state.prunable(a.box_gap_sq(na, b, nb)) {
        return;
    }
    match (na.is_leaf(), nb.is_leaf()) {
        (true, true) => {
            // Leaf x leaf: the accepted ranges are contiguous prefixes
            // (membership-descending leaf slots). For every accepted point
            // of `a`, one columnar kernel sweep over `b`'s prefix gives the
            // row minimum; only improvements pay for the canonical argmin
            // rescan.
            let pa = a.leaf_prefix_len(na, fa);
            let pb = b.leaf_prefix_len(nb, fb);
            if pb == 0 {
                return;
            }
            let sb = nb.start() as usize;
            let bcols = b.col_slices(sb, pb);
            for ia in na.start() as usize..na.start() as usize + pa {
                let (qa, _, oa) = a.point_at(ia);
                let m = kernel::min_dist_sq_cols(&bcols, qa.coords());
                if m == f64::INFINITY {
                    continue;
                }
                let improves = match state.best {
                    None => m < state.best_sq,
                    Some(_) => m <= state.best_sq,
                };
                if !improves {
                    continue;
                }
                // Canonical witness on `b`'s side: smallest original index
                // among the rows achieving the kernel minimum.
                let mut ob = u32::MAX;
                for jb in sb..sb + pb {
                    if b.row_dist_sq(&qa, jb).to_bits() == m.to_bits() {
                        ob = ob.min(b.orig_at(jb));
                    }
                }
                debug_assert_ne!(ob, u32::MAX, "kernel min must come from a row");
                state.consider(m, oa, ob);
            }
        }
        (false, true) => {
            let (l, r) = na.children();
            let mut kids = [(l, nb), (r, nb)];
            order_by_gap(a, b, &mut kids);
            for (ca, cb) in kids {
                descend(a, b, ca, cb, fa, fb, state);
            }
        }
        (true, false) => {
            let (l, r) = nb.children();
            let mut kids = [(na, l), (na, r)];
            order_by_gap(a, b, &mut kids);
            for (ca, cb) in kids {
                descend(a, b, ca, cb, fa, fb, state);
            }
        }
        (false, false) => {
            let (al, ar) = na.children();
            let (bl, br) = nb.children();
            let mut kids = [(al, bl), (al, br), (ar, bl), (ar, br)];
            order_by_gap(a, b, &mut kids);
            for (ca, cb) in kids {
                descend(a, b, ca, cb, fa, fb, state);
            }
        }
    }
}

/// Visit the most promising node pairs first: ascending box gap gives the
/// branch-and-bound its tight early bound.
fn order_by_gap<const D: usize>(
    a: &KdTree<D>,
    b: &KdTree<D>,
    pairs: &mut [(crate::kdtree::NodeRef, crate::kdtree::NodeRef)],
) {
    pairs.sort_by(|&(xa, xb), &(ya, yb)| {
        a.box_gap_sq(xa, b, xb).total_cmp(&a.box_gap_sq(ya, b, yb))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn random_cloud(n: usize, seed: u64, offset: f64) -> (Vec<Point<2>>, Vec<f64>) {
        let mut rng = Lcg(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::xy(rng.next_f64() * 10.0 + offset, rng.next_f64() * 10.0))
            .collect();
        // Memberships in (0, 1], with a guaranteed kernel point.
        let mut mus: Vec<f64> = (0..n).map(|_| rng.next_f64().max(1e-3)).collect();
        mus[0] = 1.0;
        (pts, mus)
    }

    fn brute(
        a: &(Vec<Point<2>>, Vec<f64>),
        b: &(Vec<Point<2>>, Vec<f64>),
        fa: LevelFilter,
        fb: LevelFilter,
    ) -> Option<f64> {
        let mut best: Option<f64> = None;
        for (p, &mu) in a.0.iter().zip(&a.1) {
            if !fa.accepts(mu) {
                continue;
            }
            for (q, &nu) in b.0.iter().zip(&b.1) {
                if !fb.accepts(nu) {
                    continue;
                }
                let d = p.dist(q);
                best = Some(best.map_or(d, |b: f64| b.min(d)));
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_over_levels() {
        for seed in 1..12u64 {
            let a = random_cloud(150, seed, 0.0);
            let b = random_cloud(130, seed.wrapping_mul(77) + 5, 6.0);
            let ta = KdTree::build(&a.0, &a.1);
            let tb = KdTree::build(&b.0, &b.1);
            for lvl in [0.0, 0.2, 0.5, 0.8, 1.0] {
                for strict in [false, true] {
                    let f = LevelFilter { min: lvl, strict };
                    let got =
                        bichromatic_closest_pair(&ta, &tb, f, f, f64::INFINITY).map(|r| r.dist);
                    let want = brute(&a, &b, f, f);
                    match (got, want) {
                        (None, None) => {}
                        (Some(g), Some(w)) => assert!(
                            (g - w).abs() < 1e-12,
                            "seed {seed} lvl {lvl} strict {strict}: {g} vs {w}"
                        ),
                        other => panic!("seed {seed} lvl {lvl}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn result_indices_are_original_and_consistent() {
        let a = random_cloud(60, 3, 0.0);
        let b = random_cloud(60, 4, 2.0);
        let ta = KdTree::build(&a.0, &a.1);
        let tb = KdTree::build(&b.0, &b.1);
        let f = LevelFilter::at_least(0.3);
        let r = bichromatic_closest_pair(&ta, &tb, f, f, f64::INFINITY).unwrap();
        assert!(f.accepts(a.1[r.i]));
        assert!(f.accepts(b.1[r.j]));
        assert!((a.0[r.i].dist(&b.0[r.j]) - r.dist).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_filters() {
        let a = random_cloud(80, 9, 0.0);
        let b = random_cloud(80, 10, 1.0);
        let ta = KdTree::build(&a.0, &a.1);
        let tb = KdTree::build(&b.0, &b.1);
        let fa = LevelFilter::at_least(0.9);
        let fb = LevelFilter::at_least(0.1);
        let got = bichromatic_closest_pair(&ta, &tb, fa, fb, f64::INFINITY).map(|r| r.dist);
        let want = brute(&a, &b, fa, fb);
        match (got, want) {
            (None, None) => {}
            (Some(g), Some(w)) => assert!((g - w).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn upper_bound_seeding_prunes_but_preserves_closer_pairs() {
        let a = random_cloud(100, 21, 0.0);
        let b = random_cloud(100, 22, 3.0);
        let ta = KdTree::build(&a.0, &a.1);
        let tb = KdTree::build(&b.0, &b.1);
        let f = LevelFilter::support();
        let exact = bichromatic_closest_pair(&ta, &tb, f, f, f64::INFINITY).unwrap().dist;
        // A generous seed must not change the answer.
        let seeded = bichromatic_closest_pair(&ta, &tb, f, f, exact + 1.0).unwrap().dist;
        assert!((seeded - exact).abs() < 1e-12);
        // A seed below the true distance finds nothing.
        assert!(bichromatic_closest_pair(&ta, &tb, f, f, exact * 0.5).is_none());
    }

    #[test]
    fn identical_point_in_both_sets_gives_zero() {
        let shared = Point::xy(5.0, 5.0);
        let a = (vec![shared, Point::xy(0.0, 0.0)], vec![1.0, 0.5]);
        let b = (vec![Point::xy(9.0, 9.0), shared], vec![0.4, 1.0]);
        let ta = KdTree::build(&a.0, &a.1);
        let tb = KdTree::build(&b.0, &b.1);
        let r = bichromatic_closest_pair(
            &ta,
            &tb,
            LevelFilter::at_least(1.0),
            LevelFilter::at_least(1.0),
            f64::INFINITY,
        )
        .unwrap();
        assert_eq!(r.dist, 0.0);
        assert_eq!((r.i, r.j), (0, 1));
    }

    #[test]
    fn tied_pairs_resolve_lexicographically() {
        // Two pairs at the same distance; the canonical winner is the
        // lexicographically smallest (i, j).
        let a = (vec![Point::xy(0.0, 0.0), Point::xy(10.0, 0.0)], vec![1.0, 1.0]);
        let b = (vec![Point::xy(1.0, 0.0), Point::xy(9.0, 0.0)], vec![1.0, 1.0]);
        let ta = KdTree::build(&a.0, &a.1);
        let tb = KdTree::build(&b.0, &b.1);
        let f = LevelFilter::support();
        let r = bichromatic_closest_pair(&ta, &tb, f, f, f64::INFINITY).unwrap();
        assert_eq!(r.dist, 1.0);
        assert_eq!((r.i, r.j), (0, 0));
    }
}
