//! Columnar min-reduction distance kernels.
//!
//! The α-distance evaluators spend almost all their time computing
//! `min_j ‖q − p_j‖²` over a contiguous membership prefix. When the points
//! are stored as dim-major columns this is a pure streaming reduction — but
//! the naive loop carries the running minimum through every iteration, so
//! the CPU serialises on the `min` latency chain and the compiler cannot
//! vectorise it (reassociating a float reduction is not allowed without
//! fast-math). The [`min_dist_sq_cols_lanes`] kernel breaks the chain with
//! [`LANES`] independent accumulators and folds them once at the end.
//!
//! **Bitwise identity.** Both kernels return the *same bits* for the same
//! input, and the same bits as the row-major scan they replaced:
//!
//! * each candidate `s_j = Σ_d (c_d[j] − q_d)²` is accumulated in dimension
//!   order, exactly like [`Point::dist_sq`](crate::Point::dist_sq);
//! * every `s_j` is either `+0.0`, a positive float, `+∞`, or NaN (squares
//!   cannot produce `−0.0`), and [`f64::min`] ignores NaN operands, so the
//!   reduction is an exact *selection* over a set with a unique minimum
//!   bit-pattern — associative and commutative, hence independent of lane
//!   assignment and fold order.
//!
//! The differential suite in `crates/geom/tests` and the lane tests in this
//! module hold both kernels to that contract, including remainder lengths
//! (`n % LANES ≠ 0`), single points, and NaN inputs.

/// Number of independent accumulators in the unrolled kernel. Eight `f64`
/// lanes span two AVX2 registers (or four SSE2 ones) and comfortably cover
/// the `min` latency chain on current cores.
pub const LANES: usize = 8;

/// Minimum squared Euclidean distance from `q` to the points stored in the
/// dim-major columns `cols` (column `d` holds coordinate `d` of every
/// point). Returns `+∞` when the columns are empty.
///
/// Dispatches to the lane kernel unless the crate is built with the
/// `scalar-kernel` feature, which forces the sequential reference path
/// (useful for debugging codegen or pinning down a miscompile). Both paths
/// return identical bits — see the module docs.
///
/// # Panics
/// In debug builds, when the columns differ in length.
#[inline]
pub fn min_dist_sq_cols<const D: usize>(cols: &[&[f64]; D], q: &[f64; D]) -> f64 {
    #[cfg(feature = "scalar-kernel")]
    {
        min_dist_sq_cols_scalar(cols, q)
    }
    #[cfg(not(feature = "scalar-kernel"))]
    {
        min_dist_sq_cols_lanes(cols, q)
    }
}

/// Sequential reference kernel: one accumulator, candidates reduced in
/// index order. This is the bit-level specification the lane kernel is
/// tested against.
pub fn min_dist_sq_cols_scalar<const D: usize>(cols: &[&[f64]; D], q: &[f64; D]) -> f64 {
    let n = cols[0].len();
    debug_assert!(cols.iter().all(|c| c.len() == n), "ragged columns");
    let mut best = f64::INFINITY;
    // `j` walks D parallel columns at once, so an iterator over any one
    // of them would not replace the index.
    #[allow(clippy::needless_range_loop)]
    for j in 0..n {
        let mut s = 0.0;
        for d in 0..D {
            let diff = cols[d][j] - q[d];
            s += diff * diff;
        }
        best = best.min(s);
    }
    best
}

/// Unrolled kernel: [`LANES`] independent accumulators walk the columns in
/// lock-step, then fold. Bitwise-equal to [`min_dist_sq_cols_scalar`]; see
/// the module docs for why the reassociation is exact.
pub fn min_dist_sq_cols_lanes<const D: usize>(cols: &[&[f64]; D], q: &[f64; D]) -> f64 {
    let n = cols[0].len();
    debug_assert!(cols.iter().all(|c| c.len() == n), "ragged columns");
    let mut acc = [f64::INFINITY; LANES];
    let split = n - n % LANES;
    let mut base = 0;
    while base < split {
        let mut s = [0.0f64; LANES];
        for d in 0..D {
            // Fixed-size chunk views let the compiler drop the bounds
            // checks and keep the per-dimension FMA stream contiguous.
            let chunk: &[f64; LANES] =
                cols[d][base..base + LANES].try_into().expect("chunk is LANES wide");
            let qd = q[d];
            for l in 0..LANES {
                let diff = chunk[l] - qd;
                s[l] += diff * diff;
            }
        }
        for l in 0..LANES {
            acc[l] = acc[l].min(s[l]);
        }
        base += LANES;
    }
    // Remainder rows land in distinct lanes, so they still join the final
    // fold exactly once each.
    for (l, j) in (split..n).enumerate() {
        let mut s = 0.0;
        for d in 0..D {
            let diff = cols[d][j] - q[d];
            s += diff * diff;
        }
        acc[l] = acc[l].min(s);
    }
    let mut best = acc[0];
    for &a in &acc[1..] {
        best = best.min(a);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (splitmix64), enough for layout
    /// torture without pulling in the rand stub.
    struct Mix(u64);
    impl Mix {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
        }
    }

    fn random_cols<const D: usize>(n: usize, seed: u64) -> (Vec<Vec<f64>>, [f64; D]) {
        let mut mix = Mix(seed);
        let cols = (0..D).map(|_| (0..n).map(|_| mix.next_f64()).collect()).collect();
        let q = std::array::from_fn(|_| mix.next_f64());
        (cols, q)
    }

    fn as_refs<const D: usize>(cols: &[Vec<f64>]) -> [&[f64]; D] {
        std::array::from_fn(|d| cols[d].as_slice())
    }

    #[test]
    fn lanes_match_scalar_bitwise_across_lengths() {
        // Every remainder class around multiples of LANES, plus 0 and 1.
        for n in 0..(4 * LANES + 3) {
            let (cols, q) = random_cols::<2>(n, 0x5eed + n as u64);
            let refs = as_refs::<2>(&cols);
            let s = min_dist_sq_cols_scalar(&refs, &q);
            let l = min_dist_sq_cols_lanes(&refs, &q);
            assert_eq!(s.to_bits(), l.to_bits(), "n={n}: scalar {s} vs lanes {l}");
            assert_eq!(min_dist_sq_cols(&refs, &q).to_bits(), s.to_bits());
        }
    }

    #[test]
    fn lanes_match_scalar_bitwise_in_3d() {
        for n in [1, 7, 8, 9, 31, 64, 100] {
            let (cols, q) = random_cols::<3>(n, 0xabc + n as u64);
            let refs = as_refs::<3>(&cols);
            assert_eq!(
                min_dist_sq_cols_scalar(&refs, &q).to_bits(),
                min_dist_sq_cols_lanes(&refs, &q).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn empty_columns_yield_infinity() {
        let refs: [&[f64]; 2] = [&[], &[]];
        assert_eq!(min_dist_sq_cols_scalar(&refs, &[0.0, 0.0]), f64::INFINITY);
        assert_eq!(min_dist_sq_cols_lanes(&refs, &[0.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn single_point_matches_dist_sq() {
        let refs: [&[f64]; 2] = [&[3.0], &[4.0]];
        let q = [0.0, 0.0];
        assert_eq!(min_dist_sq_cols_scalar(&refs, &q), 25.0);
        assert_eq!(min_dist_sq_cols_lanes(&refs, &q), 25.0);
    }

    #[test]
    fn nan_rows_are_ignored_by_both_kernels() {
        // NaN candidates must never win the reduction, in either kernel,
        // wherever they fall relative to the lane boundaries.
        for nan_at in 0..17 {
            let mut xs: Vec<f64> = (0..17).map(|i| 10.0 + i as f64).collect();
            let ys: Vec<f64> = (0..17).map(|i| 10.0 - i as f64).collect();
            xs[nan_at] = f64::NAN;
            let refs: [&[f64]; 2] = [&xs, &ys];
            let q = [0.0, 0.0];
            let s = min_dist_sq_cols_scalar(&refs, &q);
            let l = min_dist_sq_cols_lanes(&refs, &q);
            assert!(!s.is_nan() && !l.is_nan());
            assert_eq!(s.to_bits(), l.to_bits(), "nan_at={nan_at}");
        }
    }

    #[test]
    fn all_nan_input_yields_infinity() {
        let xs = [f64::NAN; 5];
        let ys = [f64::NAN; 5];
        let refs: [&[f64]; 2] = [&xs, &ys];
        let q = [0.0, 0.0];
        assert_eq!(min_dist_sq_cols_scalar(&refs, &q), f64::INFINITY);
        assert_eq!(min_dist_sq_cols_lanes(&refs, &q), f64::INFINITY);
    }

    #[test]
    fn duplicate_minima_are_stable() {
        // Several rows tie for the minimum; selection semantics make the
        // result well-defined regardless of which lane sees it first.
        let xs = [1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 1.0];
        let ys = [0.0; 10];
        let refs: [&[f64]; 2] = [&xs, &ys];
        let q = [0.0, 0.0];
        assert_eq!(min_dist_sq_cols_scalar(&refs, &q), 1.0);
        assert_eq!(min_dist_sq_cols_lanes(&refs, &q), 1.0);
    }
}
