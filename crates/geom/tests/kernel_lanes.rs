//! SIMD-vs-scalar lane equivalence, forced explicitly: both kernel paths
//! are public precisely so this suite can run them side by side and
//! assert **bitwise-equal** min-reductions regardless of which one the
//! `scalar-kernel` feature selects as the build-time dispatcher.
//!
//! The bitwise argument (see `fuzzy_geom::kernel` docs): candidates are
//! `+0.0`/positive/`+∞`/NaN — never `-0.0` — so `f64::min` is an exact
//! selection and any lane assignment or fold order returns the same bits.
//! These tests pin that argument against regressions: remainder rows
//! (`n % 8 ≠ 0`), single points, empty columns, NaN rows, duplicate
//! minima, and the dispatcher agreeing with whichever path it selects.

use fuzzy_geom::kernel::{
    min_dist_sq_cols, min_dist_sq_cols_lanes, min_dist_sq_cols_scalar, LANES,
};
use fuzzy_geom::{KdTree, LevelFilter, Point};

struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn columns<const D: usize>(seed: u64, n: usize) -> Vec<Vec<f64>> {
    let mut rng = Mix(seed);
    (0..D).map(|_| (0..n).map(|_| rng.f64() * 2000.0 - 1000.0).collect()).collect()
}

fn as_refs<const D: usize>(cols: &[Vec<f64>]) -> [&[f64]; D] {
    std::array::from_fn(|d| cols[d].as_slice())
}

/// Every length from empty through several full lane blocks, covering
/// each possible remainder `n % LANES` more than once.
#[test]
fn forced_paths_match_bitwise_across_all_remainders() {
    for n in 0..(4 * LANES + 3) {
        for seed in [1u64, 99, 12345] {
            let cols = columns::<2>(seed ^ n as u64, n);
            let refs = as_refs::<2>(&cols);
            for qi in 0..5 {
                let q = [qi as f64 * 137.0 - 300.0, 250.0 - qi as f64 * 91.0];
                let scalar = min_dist_sq_cols_scalar(&refs, &q);
                let lanes = min_dist_sq_cols_lanes(&refs, &q);
                let dispatched = min_dist_sq_cols(&refs, &q);
                assert_eq!(
                    scalar.to_bits(),
                    lanes.to_bits(),
                    "n={n} seed={seed} q#{qi}: scalar {scalar} vs lanes {lanes}"
                );
                assert_eq!(dispatched.to_bits(), scalar.to_bits(), "dispatcher diverges at n={n}");
            }
        }
    }
}

#[test]
fn forced_paths_match_in_3d() {
    for n in [1usize, LANES - 1, LANES, LANES + 1, 3 * LANES + 5] {
        let cols = columns::<3>(777 + n as u64, n);
        let refs = as_refs::<3>(&cols);
        let q = [1.5, -2.5, 0.25];
        assert_eq!(
            min_dist_sq_cols_scalar(&refs, &q).to_bits(),
            min_dist_sq_cols_lanes(&refs, &q).to_bits(),
            "3-D n={n}"
        );
    }
}

#[test]
fn single_point_and_empty_edge_cases() {
    let empty: [&[f64]; 2] = [&[], &[]];
    let q = [0.0, 0.0];
    assert_eq!(min_dist_sq_cols_scalar(&empty, &q), f64::INFINITY);
    assert_eq!(min_dist_sq_cols_lanes(&empty, &q), f64::INFINITY);

    let one: [&[f64]; 2] = [&[3.0], &[4.0]];
    let s = min_dist_sq_cols_scalar(&one, &q);
    let l = min_dist_sq_cols_lanes(&one, &q);
    assert_eq!(s.to_bits(), l.to_bits());
    assert_eq!(s, 25.0);
}

#[test]
fn nan_rows_are_ignored_identically() {
    // A NaN in any coordinate poisons that candidate only; both paths
    // must skip it and agree bitwise, wherever the NaN lands relative to
    // lane boundaries.
    let n = 2 * LANES + 3;
    for nan_at in 0..n {
        let mut cols = columns::<2>(4242, n);
        cols[nan_at % 2][nan_at] = f64::NAN;
        let refs = as_refs::<2>(&cols);
        let q = [0.0, 0.0];
        let s = min_dist_sq_cols_scalar(&refs, &q);
        let l = min_dist_sq_cols_lanes(&refs, &q);
        assert_eq!(s.to_bits(), l.to_bits(), "nan at row {nan_at}");
        assert!(s.is_finite(), "one NaN row must not poison the reduction");
    }
}

/// End-to-end: a tree query (which funnels leaf scans through the
/// dispatcher) agrees bitwise with a manual reduction over both forced
/// paths — the kernel swap is invisible at the query surface.
#[test]
fn tree_leaf_scans_agree_with_forced_kernels() {
    let mut rng = Mix(90210);
    let n = 200;
    let pts: Vec<Point<2>> =
        (0..n).map(|_| Point::xy(rng.f64() * 50.0, rng.f64() * 50.0)).collect();
    let mut mus: Vec<f64> = (0..n).map(|_| (rng.f64() * 0.99 + 0.01).min(1.0)).collect();
    mus[0] = 1.0;
    let tree = KdTree::build(&pts, &mus);
    let f = LevelFilter::at_least(0.0);
    for _ in 0..20 {
        let q = Point::xy(rng.f64() * 60.0 - 5.0, rng.f64() * 60.0 - 5.0);
        let (idx, d2) = tree.nn_sq_within(&q, f, f64::INFINITY).unwrap();
        // Oracle reduction over the whole cloud through both kernels.
        let xs: Vec<f64> = pts.iter().map(|p| p.x()).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.y()).collect();
        let cols: [&[f64]; 2] = [&xs, &ys];
        let s = min_dist_sq_cols_scalar(&cols, q.coords());
        let l = min_dist_sq_cols_lanes(&cols, q.coords());
        assert_eq!(s.to_bits(), l.to_bits());
        assert_eq!(d2.to_bits(), s.to_bits(), "tree NN distance differs from kernel reduction");
        assert_eq!(pts[idx].dist_sq(&q).to_bits(), d2.to_bits());
    }
}
