//! The kernel-equivalence differential suite: the flat implicit
//! [`KdTree`] must return **bit-identical** `(distance, index)` answers to
//! the retained arena tree ([`ArenaKdTree`]) and to a brute-force oracle,
//! across point counts straddling every leaf-size boundary, α levels,
//! strictness, dimensionalities, and adversarial inputs (NaN coordinates,
//! degenerate membership distributions, duplicated points).
//!
//! The contract being locked down:
//!
//! * `nn_sq_within` returns the candidate **strictly** closer than the
//!   cap, ties broken by smallest original index — regardless of tree
//!   shape or traversal order;
//! * `within_radius_filtered` returns exactly the indices at `d² ≤ r²`,
//!   ascending;
//! * `bichromatic_closest_pair_sq` returns the lexicographically smallest
//!   witness pair among the tied minima;
//! * points with NaN coordinates never win and never poison an answer
//!   (their candidate distance is NaN, which every evaluator ignores the
//!   same way).

use fuzzy_geom::reference::ArenaKdTree;
use fuzzy_geom::{bichromatic_closest_pair_sq, KdTree, LevelFilter, Point};
use proptest::prelude::*;

/// splitmix64 — deterministic, dependency-free.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Membership distribution shapes the sweep exercises.
#[derive(Clone, Copy, Debug)]
enum MuShape {
    /// Continuous values in (0, 1].
    Continuous,
    /// Every µ drawn from {0.2, 0.5, 0.8, 1.0} — heavy ties in the leaf
    /// sort, prefix boundaries landing between equal values.
    Quantized,
    /// All memberships exactly 1.0 — the fully degenerate case where the
    /// leaf order is decided by index tie-breaks alone.
    AllOnes,
}

/// A D-dimensional cloud; `nan_every` > 0 poisons one coordinate of every
/// `nan_every`-th point, `dup_every` > 0 duplicates every `dup_every`-th
/// point exactly (forcing zero-distance ties).
fn cloud<const D: usize>(
    seed: u64,
    n: usize,
    shape: MuShape,
    nan_every: usize,
    dup_every: usize,
) -> (Vec<Point<D>>, Vec<f64>) {
    let mut rng = Mix(seed);
    let mut pts: Vec<Point<D>> = Vec::with_capacity(n);
    let mut mus = Vec::with_capacity(n);
    for i in 0..n {
        let mut c = [0.0; D];
        for x in c.iter_mut() {
            *x = rng.f64() * 20.0 - 10.0;
        }
        if dup_every > 0 && i % dup_every == 0 && i > 0 {
            c = *pts[i / 2].coords();
        }
        if nan_every > 0 && i % nan_every == nan_every - 1 {
            c[i % D] = f64::NAN;
        }
        pts.push(Point::new(c));
        let mu = match shape {
            MuShape::Continuous => (rng.f64() * 0.999 + 0.001).min(1.0),
            MuShape::Quantized => [0.2, 0.5, 0.8, 1.0][(rng.next() % 4) as usize],
            MuShape::AllOnes => 1.0,
        };
        mus.push(mu);
    }
    // Like fuzzy objects: guarantee a kernel point.
    mus[0] = 1.0;
    (pts, mus)
}

/// Brute-force NN oracle with the canonical contract: the strictly-
/// closer-than-cap minimum by `(d², index)`, NaN distances ignored.
fn brute_nn<const D: usize>(
    pts: &[Point<D>],
    mus: &[f64],
    q: &Point<D>,
    f: LevelFilter,
    cap_sq: f64,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, (p, &mu)) in pts.iter().zip(mus).enumerate() {
        if !f.accepts(mu) {
            continue;
        }
        let d2 = p.dist_sq(q);
        // NaN fails both comparisons, exactly like the kernels.
        let wins = match best {
            None => d2 < cap_sq,
            Some((_, b)) => d2 < b,
        };
        if wins {
            best = Some((i, d2));
        }
    }
    best
}

/// Brute radius oracle: ascending indices at `d² ≤ r²`.
fn brute_radius<const D: usize>(
    pts: &[Point<D>],
    mus: &[f64],
    q: &Point<D>,
    f: LevelFilter,
    radius: f64,
) -> Vec<usize> {
    let r2 = radius * radius;
    pts.iter()
        .zip(mus)
        .enumerate()
        .filter(|(_, (p, &mu))| f.accepts(mu) && p.dist_sq(q) <= r2)
        .map(|(i, _)| i)
        .collect()
}

/// Brute closest-pair oracle: the strictly-closer-than-cap minimum by
/// `(d², i, j)` lexicographically.
fn brute_pair<const D: usize>(
    pa: &[Point<D>],
    ma: &[f64],
    pb: &[Point<D>],
    mb: &[f64],
    fa: LevelFilter,
    fb: LevelFilter,
    cap_sq: f64,
) -> Option<(f64, usize, usize)> {
    let mut best: Option<(f64, usize, usize)> = None;
    for (i, (p, &mu)) in pa.iter().zip(ma).enumerate() {
        if !fa.accepts(mu) {
            continue;
        }
        for (j, (q, &nu)) in pb.iter().zip(mb).enumerate() {
            if !fb.accepts(nu) {
                continue;
            }
            let d2 = p.dist_sq(q);
            let wins = match best {
                None => d2 < cap_sq,
                Some((b, bi, bj)) => d2.to_bits() == b.to_bits() && (i, j) < (bi, bj) || d2 < b,
            };
            if wins {
                best = Some((d2, i, j));
            }
        }
    }
    best
}

/// Run the full three-way comparison for one cloud and one filter, over a
/// battery of query points (random, on-point, far away).
fn check_cloud<const D: usize>(pts: &[Point<D>], mus: &[f64], f: LevelFilter, tag: &str) {
    let flat = KdTree::build(pts, mus);
    let arena = ArenaKdTree::build(pts, mus);
    let mut rng = Mix(0xD1FF ^ pts.len() as u64);
    let mut queries: Vec<Point<D>> = (0..6)
        .map(|_| {
            let mut c = [0.0; D];
            for x in c.iter_mut() {
                *x = rng.f64() * 24.0 - 12.0;
            }
            Point::new(c)
        })
        .collect();
    // On-point queries force zero-distance ties; with duplicated points
    // several indices tie at exactly 0.
    for i in [0, pts.len() / 2, pts.len() - 1] {
        if pts[i].is_finite() {
            queries.push(pts[i]);
        }
    }

    for q in &queries {
        // Unbounded NN.
        let want = brute_nn(pts, mus, q, f, f64::INFINITY);
        let got_flat = flat.nn_sq_within(q, f, f64::INFINITY);
        let got_arena = arena.nn_sq_within(q, f, f64::INFINITY);
        assert_nn_eq(want, got_flat, &format!("{tag}: flat vs brute (unbounded)"));
        assert_nn_eq(want, got_arena, &format!("{tag}: arena vs brute (unbounded)"));

        // Capped NN: at the answer (must prune to None) and just above.
        if let Some((_, d2)) = want {
            assert_nn_eq(None, flat.nn_sq_within(q, f, d2), &format!("{tag}: flat cap==answer"));
            assert_nn_eq(None, arena.nn_sq_within(q, f, d2), &format!("{tag}: arena cap==answer"));
            let above = d2 * (1.0 + 1e-12) + f64::MIN_POSITIVE;
            assert_nn_eq(
                brute_nn(pts, mus, q, f, above),
                flat.nn_sq_within(q, f, above),
                &format!("{tag}: flat cap just above"),
            );
        }

        // Radius scans at several radii, including 0 (exact hits only).
        for radius in [0.0, 1.0, 5.0, 30.0] {
            let want = brute_radius(pts, mus, q, f, radius);
            assert_eq!(
                flat.within_radius_filtered(q, radius, f),
                want,
                "{tag}: flat radius {radius}"
            );
            assert_eq!(
                arena.within_radius_filtered(q, radius, f),
                want,
                "{tag}: arena radius {radius}"
            );
        }
    }
}

fn assert_nn_eq(want: Option<(usize, f64)>, got: Option<(usize, f64)>, tag: &str) {
    match (want, got) {
        (None, None) => {}
        (Some((wi, wd)), Some((gi, gd))) => {
            assert_eq!(wi, gi, "{tag}: index mismatch ({wd} vs {gd})");
            assert_eq!(wd.to_bits(), gd.to_bits(), "{tag}: distance bits differ at index {wi}");
        }
        other => panic!("{tag}: presence mismatch {other:?}"),
    }
}

/// Point counts chosen to straddle the implicit leaf size (16): below,
/// exactly at, one past, a multiple, one past a multiple, and large
/// enough for several levels of recursion.
const SIZES: [usize; 8] = [1, 2, 15, 16, 17, 64, 65, 257];

const FILTERS: [LevelFilter; 6] = [
    LevelFilter { min: 0.0, strict: false },
    LevelFilter { min: 0.0, strict: true },
    LevelFilter { min: 0.2, strict: false },
    LevelFilter { min: 0.5, strict: true },
    LevelFilter { min: 0.8, strict: false },
    LevelFilter { min: 1.0, strict: false },
];

#[test]
fn flat_arena_and_brute_agree_2d() {
    for (si, &n) in SIZES.iter().enumerate() {
        for shape in [MuShape::Continuous, MuShape::Quantized, MuShape::AllOnes] {
            let (pts, mus) = cloud::<2>(91 + si as u64, n, shape, 0, 0);
            for f in FILTERS {
                check_cloud(&pts, &mus, f, &format!("2d n={n} {shape:?} f={f:?}"));
            }
        }
    }
}

#[test]
fn flat_arena_and_brute_agree_3d() {
    for (si, &n) in SIZES.iter().enumerate() {
        let (pts, mus) = cloud::<3>(177 + si as u64, n, MuShape::Quantized, 0, 0);
        for f in FILTERS {
            check_cloud(&pts, &mus, f, &format!("3d n={n} f={f:?}"));
        }
    }
}

#[test]
fn duplicated_points_tie_break_canonically() {
    // Every other point is a duplicate: NN at a duplicated site ties at
    // exactly zero and must resolve to the smallest original index in
    // all three evaluators.
    for &n in &[16usize, 48, 130] {
        let (pts, mus) = cloud::<2>(7_000 + n as u64, n, MuShape::Quantized, 0, 2);
        for f in FILTERS {
            check_cloud(&pts, &mus, f, &format!("dup n={n} f={f:?}"));
        }
    }
}

#[test]
fn nan_coordinates_never_win_or_poison() {
    for &n in &[8usize, 17, 64, 129] {
        for nan_every in [2usize, 3, 5] {
            let (pts, mus) = cloud::<2>(31 * n as u64, n, MuShape::Continuous, nan_every, 0);
            for f in [LevelFilter::at_least(0.0), LevelFilter::at_least(0.5)] {
                check_cloud(&pts, &mus, f, &format!("nan n={n} every={nan_every} f={f:?}"));
            }
        }
    }
}

#[test]
fn all_nan_cloud_returns_none() {
    // Every candidate distance is NaN → every evaluator reports None /
    // empty, not a NaN answer.
    let pts: Vec<Point<2>> = (0..20).map(|i| Point::xy(f64::NAN, i as f64)).collect();
    let mus: Vec<f64> = vec![1.0; 20];
    let flat = KdTree::build(&pts, &mus);
    let arena = ArenaKdTree::build(&pts, &mus);
    let q = Point::xy(0.0, 0.0);
    let f = LevelFilter::at_least(0.0);
    assert_eq!(flat.nn_sq_within(&q, f, f64::INFINITY), None);
    assert_eq!(arena.nn_sq_within(&q, f, f64::INFINITY), None);
    assert!(flat.within_radius_filtered(&q, 1e9, f).is_empty());
    assert!(arena.within_radius_filtered(&q, 1e9, f).is_empty());
}

#[test]
fn closest_pair_matches_brute_bitwise_with_witnesses() {
    for &(na, nb) in &[(5usize, 7usize), (16, 16), (33, 48), (90, 70)] {
        for shape in [MuShape::Continuous, MuShape::Quantized] {
            let (pa, ma) = cloud::<2>(na as u64 * 13 + 1, na, shape, 0, 0);
            let (pb, mb) = cloud::<2>(nb as u64 * 17 + 2, nb, shape, 0, 0);
            let ta = KdTree::build(&pa, &ma);
            let tb = KdTree::build(&pb, &mb);
            for f in [LevelFilter::at_least(0.0), LevelFilter::at_least(0.5)] {
                let want = brute_pair(&pa, &ma, &pb, &mb, f, f, f64::INFINITY);
                let got = bichromatic_closest_pair_sq(&ta, &tb, f, f, f64::INFINITY)
                    .map(|r| (r.dist_sq, r.i, r.j));
                match (want, got) {
                    (None, None) => {}
                    (Some((wd, wi, wj)), Some((gd, gi, gj))) => {
                        assert_eq!(wd.to_bits(), gd.to_bits(), "na={na} nb={nb} {shape:?}");
                        assert_eq!((wi, wj), (gi, gj), "witness pair, na={na} nb={nb}");
                    }
                    other => panic!("presence mismatch {other:?}"),
                }
                // Cap at the answer: strictly-closer semantics prune all.
                if let Some((wd, _, _)) = want {
                    assert!(bichromatic_closest_pair_sq(&ta, &tb, f, f, wd).is_none());
                }
            }
        }
    }
}

#[test]
fn duplicate_cross_points_pick_lexicographic_pair() {
    // Both sides share several exact sites: many (i, j) pairs tie at 0.
    let shared = [Point::xy(1.0, 1.0), Point::xy(-2.0, 3.0)];
    let mut pa: Vec<Point<2>> = vec![Point::xy(9.0, 9.0)];
    let mut pb: Vec<Point<2>> = vec![Point::xy(-9.0, -9.0)];
    for _ in 0..3 {
        pa.extend_from_slice(&shared);
        pb.extend_from_slice(&shared);
    }
    let ma = vec![1.0; pa.len()];
    let mb = vec![1.0; pb.len()];
    let ta = KdTree::build(&pa, &ma);
    let tb = KdTree::build(&pb, &mb);
    let f = LevelFilter::at_least(0.0);
    let got = bichromatic_closest_pair_sq(&ta, &tb, f, f, f64::INFINITY).unwrap();
    assert_eq!(got.dist_sq, 0.0);
    // Smallest witness: pa[1] == pb[1] == shared[0].
    assert_eq!((got.i, got.j), (1, 1));
    assert_eq!(
        brute_pair(&pa, &ma, &pb, &mb, f, f, f64::INFINITY),
        Some((0.0, 1, 1)),
        "oracle agrees on the lexicographic witness"
    );
}

// ---- randomized layer on top of the deterministic sweeps ----

fn arb_cloud2(max: usize) -> impl Strategy<Value = (Vec<Point<2>>, Vec<f64>)> {
    prop::collection::vec(((-50.0..50.0f64, -50.0..50.0f64), 0.001..=1.0f64), 1..max).prop_map(
        |v| {
            let (coords, mut mus): (Vec<(f64, f64)>, Vec<f64>) = v.into_iter().unzip();
            mus[0] = 1.0;
            (coords.into_iter().map(|(x, y)| Point::xy(x, y)).collect(), mus)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random clouds: the flat tree, the arena reference and the brute
    /// oracle return the identical `(index, d²-bits)` answer.
    #[test]
    fn random_clouds_agree_bitwise(
        (pts, mus) in arb_cloud2(120),
        qx in -60.0..60.0f64,
        qy in -60.0..60.0f64,
        lvl in 0.0..=1.0f64,
        strict in any::<bool>(),
    ) {
        let q = Point::xy(qx, qy);
        let f = LevelFilter { min: lvl, strict };
        let flat = KdTree::build(&pts, &mus);
        let arena = ArenaKdTree::build(&pts, &mus);
        let want = brute_nn(&pts, &mus, &q, f, f64::INFINITY);
        let got_flat = flat.nn_sq_within(&q, f, f64::INFINITY);
        let got_arena = arena.nn_sq_within(&q, f, f64::INFINITY);
        prop_assert_eq!(want.map(|(i, d)| (i, d.to_bits())),
                        got_flat.map(|(i, d)| (i, d.to_bits())));
        prop_assert_eq!(want.map(|(i, d)| (i, d.to_bits())),
                        got_arena.map(|(i, d)| (i, d.to_bits())));
    }

    /// Random radius scans agree exactly (index sets, ascending).
    #[test]
    fn random_radius_scans_agree(
        (pts, mus) in arb_cloud2(90),
        qx in -60.0..60.0f64,
        qy in -60.0..60.0f64,
        radius in 0.0..80.0f64,
        lvl in 0.0..=1.0f64,
    ) {
        let q = Point::xy(qx, qy);
        let f = LevelFilter::at_least(lvl);
        let flat = KdTree::build(&pts, &mus);
        let arena = ArenaKdTree::build(&pts, &mus);
        let want = brute_radius(&pts, &mus, &q, f, radius);
        prop_assert_eq!(&flat.within_radius_filtered(&q, radius, f), &want);
        prop_assert_eq!(&arena.within_radius_filtered(&q, radius, f), &want);
    }
}

// ---------------------------------------------------------------------
// The metric seam under L2: the generic membership-filtered pair fold
// (`fuzzy_core::metric::generic_alpha_distance_sq_bounded`, what any
// non-L2 metric evaluates by default) must agree **bitwise** with the
// adaptive L2 kernel (`Metric::alpha_distance_sq_bounded` on `L2`, which
// routes to the kd machinery under test above) — same `Some` values to
// the last bit, same `None` domination decisions, across the same
// adversarial cloud shapes the kernel suite sweeps. This is the
// refactor's core claim made falsifiable at the geometry layer: the seam
// changed how distances are *organized*, never what they *are*.
mod metric_seam {
    use super::{cloud, Mix, MuShape};
    use fuzzy_core::metric::{generic_alpha_distance_sq_bounded, Metric, L2};
    use fuzzy_core::{FuzzyObject, ObjectId, Threshold};

    fn object(seed: u64, n: usize, shape: MuShape, id: u64) -> FuzzyObject<2> {
        let (pts, mus) = cloud::<2>(seed, n, shape, 0, 3);
        FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
    }

    #[test]
    fn generic_fold_matches_l2_kernel_bitwise() {
        let shapes = [MuShape::Continuous, MuShape::Quantized, MuShape::AllOnes];
        for (si, &shape) in shapes.iter().enumerate() {
            for n in [1usize, 2, 7, 33, 80] {
                let a = object(1000 + si as u64 * 7 + n as u64, n, shape, 1);
                let b = object(2000 + si as u64 * 13 + n as u64, n.max(3), shape, 2);
                for alpha in [0.1, 0.2, 0.5, 0.8, 1.0] {
                    for strict in [false, true] {
                        let t = Threshold { value: alpha, strict };
                        let kernel = L2.alpha_distance_sq_bounded(&a, &b, t, f64::INFINITY);
                        let fold = generic_alpha_distance_sq_bounded(&L2, &a, &b, t, f64::INFINITY);
                        assert_eq!(
                            kernel.map(f64::to_bits),
                            fold.map(f64::to_bits),
                            "kernel vs generic fold diverged: shape {shape:?} n {n} t {t}"
                        );
                        // Seed domination must agree as well: seeding both
                        // evaluators with the exact value forces `None`
                        // from both (the strict-< contract).
                        if let Some(d_sq) = kernel {
                            assert_eq!(
                                L2.alpha_distance_sq_bounded(&a, &b, t, d_sq),
                                None,
                                "kernel failed its own seed contract"
                            );
                            assert_eq!(
                                generic_alpha_distance_sq_bounded(&L2, &a, &b, t, d_sq),
                                None,
                                "generic fold failed the seed contract"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn generic_fold_matches_kernel_under_random_seeds() {
        let mut rng = Mix(0xD1FF);
        for round in 0..60u64 {
            let a = object(round * 3 + 1, 24, MuShape::Quantized, 1);
            let b = object(round * 3 + 2, 24, MuShape::Quantized, 2);
            let t =
                Threshold { value: [0.2, 0.5, 0.8][(round % 3) as usize], strict: round % 2 == 0 };
            let seed_sq = rng.f64() * 900.0;
            let kernel = L2.alpha_distance_sq_bounded(&a, &b, t, seed_sq);
            let fold = generic_alpha_distance_sq_bounded(&L2, &a, &b, t, seed_sq);
            assert_eq!(
                kernel.map(f64::to_bits),
                fold.map(f64::to_bits),
                "seeded divergence at round {round} seed² {seed_sq}"
            );
        }
    }
}
