//! Property-based tests for the geometry substrate.

use fuzzy_geom::{
    bichromatic_closest_pair, fit_conservative_line, fit_conservative_line_exact, upper_hull_2d,
    KdTree, LevelFilter, Mbr, Point,
};
use proptest::prelude::*;

fn arb_point2() -> impl Strategy<Value = Point<2>> {
    (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(x, y)| Point::xy(x, y))
}

fn arb_mbr2() -> impl Strategy<Value = Mbr<2>> {
    (arb_point2(), arb_point2()).prop_map(|(a, b)| {
        let lo = [a.x().min(b.x()), a.y().min(b.y())];
        let hi = [a.x().max(b.x()), a.y().max(b.y())];
        Mbr::new(lo, hi)
    })
}

fn arb_mu() -> impl Strategy<Value = f64> {
    // Memberships in (0, 1]; avoid subnormals.
    (0.001..=1.0f64).prop_map(|m| (m * 1000.0).round() / 1000.0)
}

fn arb_cloud(max: usize) -> impl Strategy<Value = (Vec<Point<2>>, Vec<f64>)> {
    prop::collection::vec((arb_point2(), arb_mu()), 1..max).prop_map(|v| {
        let (pts, mut mus): (Vec<_>, Vec<f64>) = v.into_iter().unzip();
        mus[0] = 1.0; // non-empty kernel, like fuzzy objects
        (pts, mus)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MinDist/MaxDist bound the distance between arbitrary contained points.
    #[test]
    fn min_max_dist_bracket_contained_points(
        a in arb_mbr2(),
        b in arb_mbr2(),
        fx in 0.0..=1.0f64, fy in 0.0..=1.0f64,
        gx in 0.0..=1.0f64, gy in 0.0..=1.0f64,
    ) {
        let p = Point::xy(
            a.lo(0) + fx * a.extent(0),
            a.lo(1) + fy * a.extent(1),
        );
        let q = Point::xy(
            b.lo(0) + gx * b.extent(0),
            b.lo(1) + gy * b.extent(1),
        );
        let d = p.dist(&q);
        prop_assert!(a.min_dist(&b) <= d + 1e-9);
        prop_assert!(d <= a.max_dist(&b) + 1e-9);
    }

    /// Union is commutative, contains both operands, and is monotone in area.
    #[test]
    fn union_laws(a in arb_mbr2(), b in arb_mbr2()) {
        let u = a.union(&b);
        prop_assert_eq!(u, b.union(&a));
        prop_assert!(u.contains_mbr(&a));
        prop_assert!(u.contains_mbr(&b));
        prop_assert!(u.area() >= a.area().max(b.area()) - 1e-9);
    }

    /// MinDist is symmetric and zero iff the boxes intersect.
    #[test]
    fn min_dist_symmetric_and_zero_on_overlap(a in arb_mbr2(), b in arb_mbr2()) {
        prop_assert_eq!(a.min_dist(&b), b.min_dist(&a));
        if a.intersects(&b) {
            prop_assert_eq!(a.min_dist(&b), 0.0);
        } else {
            prop_assert!(a.min_dist(&b) > 0.0);
        }
    }

    /// Upper hull dominates every input point.
    #[test]
    fn upper_hull_dominates(pts in prop::collection::vec(arb_point2(), 1..60)) {
        let hull = upper_hull_2d(&pts);
        prop_assert!(!hull.is_empty());
        for p in &pts {
            let y = fuzzy_geom::hull::upper_hull_eval(&hull, p.x());
            prop_assert!(y >= p.y() - 1e-9 * (1.0 + p.y().abs()));
        }
    }

    /// The fitted line is conservative and no tighter than the exact oracle.
    #[test]
    fn conservative_line_laws(
        raw in prop::collection::vec((0.0..=1.0f64, 0.0..=10.0f64), 2..40)
    ) {
        let samples: Vec<(f64, f64)> = raw;
        let fast = fit_conservative_line(&samples);
        let exact = fit_conservative_line_exact(&samples);
        prop_assert!(fast.is_conservative(&samples, 1e-9), "fast not conservative");
        prop_assert!(exact.is_conservative(&samples, 1e-9), "exact not conservative");
        // Oracle is optimal.
        prop_assert!(exact.sse(&samples) <= fast.sse(&samples) + 1e-6);
    }

    /// Filtered kd NN agrees with brute force.
    #[test]
    fn kd_nn_matches_brute(
        (pts, mus) in arb_cloud(80),
        q in arb_point2(),
        lvl in 0.0..=1.0f64,
        strict in any::<bool>(),
    ) {
        let tree = KdTree::build(&pts, &mus);
        let f = LevelFilter { min: lvl, strict };
        let got = tree.nn_filtered(&q, f).map(|(_, d)| d);
        let want = pts.iter().zip(&mus)
            .filter(|(_, &mu)| f.accepts(mu))
            .map(|(p, _)| p.dist(&q))
            .min_by(f64::total_cmp);
        match (got, want) {
            (None, None) => {}
            (Some(g), Some(w)) => prop_assert!((g - w).abs() < 1e-9),
            other => prop_assert!(false, "mismatch {:?}", other),
        }
    }

    /// Dual-tree closest pair agrees with brute force.
    #[test]
    fn closest_pair_matches_brute(
        (pa, ma) in arb_cloud(50),
        (pb, mb) in arb_cloud(50),
        lvl in 0.0..=1.0f64,
    ) {
        let ta = KdTree::build(&pa, &ma);
        let tb = KdTree::build(&pb, &mb);
        let f = LevelFilter::at_least(lvl);
        let got = bichromatic_closest_pair(&ta, &tb, f, f, f64::INFINITY).map(|r| r.dist);
        let mut want: Option<f64> = None;
        for (p, &mu) in pa.iter().zip(&ma) {
            if !f.accepts(mu) { continue; }
            for (q, &nu) in pb.iter().zip(&mb) {
                if !f.accepts(nu) { continue; }
                let d = p.dist(q);
                want = Some(want.map_or(d, |w: f64| w.min(d)));
            }
        }
        match (got, want) {
            (None, None) => {}
            (Some(g), Some(w)) => prop_assert!((g - w).abs() < 1e-9),
            other => prop_assert!(false, "mismatch {:?}", other),
        }
    }

    /// Closest-pair distance is bounded above by the distance between any
    /// concrete member pair — in particular the kernel representatives
    /// (index 0, µ = 1, accepted by every level filter). This is the
    /// geometric fact behind the paper's representative-point upper bound.
    #[test]
    fn closest_pair_le_representative_distance(
        (pa, ma) in arb_cloud(40),
        (pb, mb) in arb_cloud(40),
        lvl in 0.0..=1.0f64,
    ) {
        let ta = KdTree::build(&pa, &ma);
        let tb = KdTree::build(&pb, &mb);
        let f = LevelFilter::at_least(lvl);
        let got = bichromatic_closest_pair(&ta, &tb, f, f, f64::INFINITY)
            .expect("kernels are non-empty")
            .dist;
        prop_assert!(got <= pa[0].dist(&pb[0]) + 1e-9);
        // The filtered centroids are convex combinations of members, so
        // their distance is dominated by the maximum cross distance, which
        // brackets the closest pair from the other side:
        //   closest pair ≤ representative distance ≤ max cross,
        //   centroid distance ≤ max cross.
        let centroid = |pts: &[Point<2>], mus: &[f64]| {
            let mut acc = Point::xy(0.0, 0.0);
            let mut n = 0.0;
            for (p, &mu) in pts.iter().zip(mus) {
                if f.accepts(mu) {
                    acc = acc.add(p);
                    n += 1.0;
                }
            }
            acc.scale(1.0 / n)
        };
        let (ca, cb) = (centroid(&pa, &ma), centroid(&pb, &mb));
        let max_cross = pa.iter().zip(&ma)
            .filter(|(_, &mu)| f.accepts(mu))
            .flat_map(|(p, _)| {
                pb.iter().zip(&mb).filter(|(_, &nu)| f.accepts(nu)).map(move |(q, _)| p.dist(q))
            })
            .fold(0.0, f64::max);
        prop_assert!(pa[0].dist(&pb[0]) <= max_cross + 1e-9);
        prop_assert!(ca.dist(&cb) <= max_cross + 1e-9);
        prop_assert!(got <= max_cross + 1e-9);
    }

    /// The MinDist of the filtered sets' MBRs lower-bounds the exact
    /// filtered closest-pair distance (the index-level pruning bound used
    /// as the α-distance lower bound, Eq. 1).
    #[test]
    fn mbr_min_dist_lower_bounds_closest_pair(
        (pa, ma) in arb_cloud(40),
        (pb, mb) in arb_cloud(40),
        lvl in 0.0..=1.0f64,
    ) {
        let f = LevelFilter::at_least(lvl);
        let filtered = |pts: &[Point<2>], mus: &[f64]| -> Vec<Point<2>> {
            pts.iter().zip(mus).filter(|(_, &mu)| f.accepts(mu)).map(|(p, _)| *p).collect()
        };
        let (fa, fb) = (filtered(&pa, &ma), filtered(&pb, &mb));
        let mbr_a = Mbr::from_points(fa.iter()).expect("kernel keeps the cut non-empty");
        let mbr_b = Mbr::from_points(fb.iter()).expect("kernel keeps the cut non-empty");
        let ta = KdTree::build(&pa, &ma);
        let tb = KdTree::build(&pb, &mb);
        let exact = bichromatic_closest_pair(&ta, &tb, f, f, f64::INFINITY).unwrap().dist;
        prop_assert!(mbr_a.min_dist(&mbr_b) <= exact + 1e-9);
        // And MaxDist brackets it from above.
        prop_assert!(exact <= mbr_a.max_dist(&mbr_b) + 1e-9);
        // The MBRs really are minimal: every filtered point is contained.
        for p in &fa {
            prop_assert!(mbr_a.contains_point(p));
        }
        for p in &fb {
            prop_assert!(mbr_b.contains_point(p));
        }
    }

    /// Closest pair distance is monotone non-decreasing in the level —
    /// the geometric root of the α-distance monotonicity (Section 2.1).
    #[test]
    fn closest_pair_monotone_in_level(
        (pa, ma) in arb_cloud(40),
        (pb, mb) in arb_cloud(40),
        l1 in 0.0..=1.0f64,
        l2 in 0.0..=1.0f64,
    ) {
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let ta = KdTree::build(&pa, &ma);
        let tb = KdTree::build(&pb, &mb);
        let d_lo = bichromatic_closest_pair(
            &ta, &tb, LevelFilter::at_least(lo), LevelFilter::at_least(lo), f64::INFINITY);
        let d_hi = bichromatic_closest_pair(
            &ta, &tb, LevelFilter::at_least(hi), LevelFilter::at_least(hi), f64::INFINITY);
        // Kernels are non-empty so both must exist.
        let (d_lo, d_hi) = (d_lo.unwrap().dist, d_hi.unwrap().dist);
        prop_assert!(d_lo <= d_hi + 1e-9, "d_{{{lo}}} = {d_lo} > d_{{{hi}}} = {d_hi}");
    }
}
