//! The pluggable metric seam.
//!
//! Every pruning bound in the engine — `d⁻`/`d⁺` over α-cuts, the Eq. 2
//! approximations, the lazy-probe τ discipline — needs only the metric
//! axioms, not Euclidean geometry. [`Metric`] captures exactly what the
//! query layer consumes:
//!
//! * **point evaluation** — [`Metric::dist`] / [`Metric::dist_sq`]; the
//!   whole engine works in squared distances, so implementations must keep
//!   `dist_sq = dist²` monotone-consistent;
//! * **box bounds** — [`Metric::min_box_dist_sq`] /
//!   [`Metric::max_box_dist_sq`] turn the coordinate rectangles the index
//!   already stores into sound distance bounds. The defaults (`0`, `+∞`)
//!   are always sound and simply disable rectangle pruning; `L2` overrides
//!   them with the exact `MinDist`/`MaxDist` of Eqs. 1 and 3;
//! * **α-distance** — [`Metric::alpha_distance_sq_bounded`] evaluates
//!   Definition 3 under the metric, honoring the kernel's seed contract.
//!   The default is the membership-filtered pair scan; `L2` routes to the
//!   adaptive columnar/kd kernel in [`crate::distance`], which is why the
//!   generic engine stays byte-identical to the specialized one under `L2`;
//! * **distance profiles** — [`Metric::distance_profile`] builds the full
//!   staircase `α ↦ d_α` the RKNN algorithms refine against.
//!
//! Two implementations ship here: [`L2`] (the paper's setting, every hook
//! delegating to the existing specialized code) and [`GraphMetric`]
//! (shortest-path distance over a [`RoadNetwork`], the kFANN-style road
//! workload where fuzzy objects live on network vertices).

use crate::object::FuzzyObject;
use crate::profile::DistanceProfile;
use crate::threshold::Threshold;
use fuzzy_geom::{Mbr, Point};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// A metric on `D`-dimensional points, plus the derived hooks the query
/// engine prunes with. Implementations must satisfy the metric axioms
/// (non-negativity, identity of indiscernibles on their point domain,
/// symmetry, triangle inequality) — the `metric_laws` proptest harness in
/// `crates/core/tests` checks sampled instances of all four.
pub trait Metric<const D: usize>: Sync {
    /// Short stable name (`"l2"`, `"graph"`) used in CLI flags, bench
    /// reports and index headers.
    fn name(&self) -> &'static str;

    /// The distance `d(a, b)`.
    fn dist(&self, a: &Point<D>, b: &Point<D>) -> f64;

    /// The squared distance. Must equal `dist(a, b)²` up to the rounding
    /// of that product; the engine only ever *compares* squared values
    /// against each other, so any monotone-consistent squaring works.
    #[inline]
    fn dist_sq(&self, a: &Point<D>, b: &Point<D>) -> f64 {
        let d = self.dist(a, b);
        d * d
    }

    /// Sound squared lower bound on `d(a, b)` over all `a ∈ box_a`,
    /// `b ∈ box_b`. The default `0.0` never prunes and is sound for every
    /// metric; override when the metric can score coordinate rectangles
    /// (L2 uses `MinDist`, Eq. 1).
    #[inline]
    fn min_box_dist_sq(&self, _box_a: &Mbr<D>, _box_b: &Mbr<D>) -> f64 {
        0.0
    }

    /// Sound squared upper bound on `min_{a ∈ box_a} d(a, b)` style
    /// confinement queries: an upper bound on the distance between the
    /// *closest* pair once both point sets are known non-empty inside the
    /// boxes. The default `+∞` never confirms anything early; L2 uses
    /// `MaxDist` (Eq. 3).
    #[inline]
    fn max_box_dist_sq(&self, _box_a: &Mbr<D>, _box_b: &Mbr<D>) -> f64 {
        f64::INFINITY
    }

    /// The squared α-distance `d_α(a, b)²` (Definition 3) under this
    /// metric, pruned by a **squared** seed: `None` when either cut is
    /// empty under `t` or no qualifying pair lies strictly closer than
    /// `upper_bound_sq` (the kernel's documented seed contract). The
    /// default is the membership-filtered pair scan; metrics with faster
    /// exact evaluators override it (L2 routes to the adaptive kernel).
    fn alpha_distance_sq_bounded(
        &self,
        a: &FuzzyObject<D>,
        b: &FuzzyObject<D>,
        t: Threshold,
        upper_bound_sq: f64,
    ) -> Option<f64> {
        generic_alpha_distance_sq_bounded(self, a, b, t, upper_bound_sq)
    }

    /// The full α-distance staircase `α ↦ d_α(a, q)` under this metric
    /// (Definition 7; what the RKNN refinement loops consume). The default
    /// enumerates every pair; L2 overrides with the descending kd sweep.
    fn distance_profile(&self, a: &FuzzyObject<D>, q: &FuzzyObject<D>) -> DistanceProfile {
        DistanceProfile::from_pairs(
            a.iter().flat_map(|(p, mu)| q.iter().map(move |(r, nu)| (mu.min(nu), self.dist(p, r)))),
        )
    }
}

/// Reference α-distance evaluator for any metric: the membership-filtered
/// all-pairs scan in squared space, honoring the strict-`<` seed contract
/// of [`crate::distance::alpha_distance_sq_bounded`]. Public so tests can
/// oracle-check specialized overrides against it.
pub fn generic_alpha_distance_sq_bounded<M: Metric<D> + ?Sized, const D: usize>(
    metric: &M,
    a: &FuzzyObject<D>,
    b: &FuzzyObject<D>,
    t: Threshold,
    upper_bound_sq: f64,
) -> Option<f64> {
    let mut best = upper_bound_sq;
    let mut found = false;
    for (p, mu) in a.iter() {
        if !t.accepts(mu) {
            continue;
        }
        for (r, nu) in b.iter() {
            if !t.accepts(nu) {
                continue;
            }
            let d_sq = metric.dist_sq(p, r);
            if d_sq < best {
                best = d_sq;
                found = true;
            }
        }
    }
    found.then_some(best)
}

/// The Euclidean metric — the paper's setting and the engine's fast path.
/// Every hook delegates to the pre-existing specialized code (exact
/// `MinDist`/`MaxDist` box bounds, the adaptive columnar/kd α-distance
/// kernel, the descending kd profile sweep), so query answers and per-query
/// counters through the metric seam are byte-identical to the direct calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L2;

impl<const D: usize> Metric<D> for L2 {
    #[inline]
    fn name(&self) -> &'static str {
        "l2"
    }

    #[inline]
    fn dist(&self, a: &Point<D>, b: &Point<D>) -> f64 {
        a.dist(b)
    }

    #[inline]
    fn dist_sq(&self, a: &Point<D>, b: &Point<D>) -> f64 {
        a.dist_sq(b)
    }

    #[inline]
    fn min_box_dist_sq(&self, box_a: &Mbr<D>, box_b: &Mbr<D>) -> f64 {
        box_a.min_dist_sq(box_b)
    }

    #[inline]
    fn max_box_dist_sq(&self, box_a: &Mbr<D>, box_b: &Mbr<D>) -> f64 {
        box_a.max_dist_sq(box_b)
    }

    #[inline]
    fn alpha_distance_sq_bounded(
        &self,
        a: &FuzzyObject<D>,
        b: &FuzzyObject<D>,
        t: Threshold,
        upper_bound_sq: f64,
    ) -> Option<f64> {
        crate::distance::alpha_distance_sq_bounded(a, b, t, upper_bound_sq)
    }

    #[inline]
    fn distance_profile(&self, a: &FuzzyObject<D>, q: &FuzzyObject<D>) -> DistanceProfile {
        DistanceProfile::compute(a, q)
    }
}

/// An undirected weighted road network: vertex coordinates plus a CSR
/// adjacency, with all-pairs shortest paths precomputed at construction
/// (one Dijkstra per vertex). Sized for workload graphs of a few hundred
/// to a few thousand vertices — the APSP table is `V²` doubles.
///
/// Shortest-path distance over an undirected graph with non-negative edge
/// weights is a true metric on the vertex set (on disconnected graphs,
/// with `+∞` between components — the extended-metric convention).
#[derive(Clone, Debug)]
pub struct RoadNetwork<const D: usize> {
    coords: Vec<Point<D>>,
    /// Original undirected edge list `(u, v, w)`, kept for serialization.
    edges: Vec<(u32, u32, f64)>,
    /// CSR offsets, `len = V + 1`.
    offsets: Vec<u32>,
    /// CSR neighbor targets.
    targets: Vec<u32>,
    /// CSR edge weights, parallel to `targets`.
    weights: Vec<f64>,
    /// Row-major `V × V` shortest-path matrix.
    apsp: Vec<f64>,
    /// Exact coordinate → vertex lookup (keyed on IEEE-754 bit patterns).
    lookup: HashMap<[u64; D], u32>,
}

/// Construction failure for [`RoadNetwork`].
#[derive(Clone, Debug, PartialEq)]
pub enum RoadNetworkError {
    /// The vertex set was empty.
    NoVertices,
    /// An edge referenced a vertex index `>= V`.
    EdgeOutOfRange {
        /// The offending vertex index.
        index: u32,
    },
    /// An edge weight was negative, NaN or infinite.
    BadWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A vertex coordinate was NaN or infinite.
    BadCoordinate,
}

impl std::fmt::Display for RoadNetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoVertices => write!(f, "road network has no vertices"),
            Self::EdgeOutOfRange { index } => {
                write!(f, "edge references out-of-range vertex {index}")
            }
            Self::BadWeight { weight } => write!(f, "edge weight {weight} is not finite and >= 0"),
            Self::BadCoordinate => write!(f, "vertex coordinate is not finite"),
        }
    }
}

impl std::error::Error for RoadNetworkError {}

impl<const D: usize> RoadNetwork<D> {
    /// Build a network from vertex coordinates and an undirected edge
    /// list, validating indices and weights and precomputing all-pairs
    /// shortest paths.
    pub fn new(
        coords: Vec<Point<D>>,
        edges: Vec<(u32, u32, f64)>,
    ) -> Result<Self, RoadNetworkError> {
        if coords.is_empty() {
            return Err(RoadNetworkError::NoVertices);
        }
        if coords.iter().any(|p| !p.is_finite()) {
            return Err(RoadNetworkError::BadCoordinate);
        }
        let n = coords.len() as u32;
        for &(u, v, w) in &edges {
            if u >= n {
                return Err(RoadNetworkError::EdgeOutOfRange { index: u });
            }
            if v >= n {
                return Err(RoadNetworkError::EdgeOutOfRange { index: v });
            }
            if !(w.is_finite() && w >= 0.0) {
                return Err(RoadNetworkError::BadWeight { weight: w });
            }
        }

        // CSR over the symmetrized edge list.
        let mut degree = vec![0u32; coords.len()];
        for &(u, v, _) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(coords.len() + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..coords.len()].to_vec();
        let mut targets = vec![0u32; acc as usize];
        let mut weights = vec![0.0f64; acc as usize];
        for &(u, v, w) in &edges {
            for (a, b) in [(u, v), (v, u)] {
                let slot = cursor[a as usize] as usize;
                targets[slot] = b;
                weights[slot] = w;
                cursor[a as usize] += 1;
            }
        }

        let mut lookup = HashMap::with_capacity(coords.len());
        for (i, p) in coords.iter().enumerate() {
            let mut key = [0u64; D];
            for (k, c) in key.iter_mut().zip(p.coords()) {
                *k = c.to_bits();
            }
            // First vertex wins on duplicate coordinates (deterministic).
            lookup.entry(key).or_insert(i as u32);
        }

        let mut net = Self { coords, edges, offsets, targets, weights, apsp: Vec::new(), lookup };
        net.apsp = net.compute_apsp();
        Ok(net)
    }

    /// One Dijkstra per source over the CSR adjacency. Deterministic: the
    /// heap orders by `(dist bits, vertex)` and relaxations use strict
    /// improvement only.
    fn compute_apsp(&self) -> Vec<f64> {
        let n = self.coords.len();
        let mut apsp = vec![f64::INFINITY; n * n];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
        for src in 0..n {
            let dist = &mut apsp[src * n..(src + 1) * n];
            dist[src] = 0.0;
            heap.clear();
            heap.push(std::cmp::Reverse((0, src as u32)));
            while let Some(std::cmp::Reverse((dbits, u))) = heap.pop() {
                let du = f64::from_bits(dbits);
                if du > dist[u as usize] {
                    continue;
                }
                let (lo, hi) =
                    (self.offsets[u as usize] as usize, self.offsets[u as usize + 1] as usize);
                for (&v, &w) in self.targets[lo..hi].iter().zip(&self.weights[lo..hi]) {
                    let nd = du + w;
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        // Non-negative doubles order identically as their
                        // bit patterns, so the u64 heap key is exact.
                        heap.push(std::cmp::Reverse((nd.to_bits(), v)));
                    }
                }
            }
        }
        // Symmetrize: on an undirected graph row u's entry for v and row
        // v's entry for u are the same shortest path, but Dijkstra sums
        // its edge weights in opposite orders, which can differ in the
        // last ulp. Taking the min makes d(u, v) == d(v, u) **bitwise**
        // — the symmetry axiom the metric-law suite pins — while staying
        // a valid path length (both orientations are achievable sums).
        for u in 0..n {
            for v in (u + 1)..n {
                let m = apsp[u * n + v].min(apsp[v * n + u]);
                apsp[u * n + v] = m;
                apsp[v * n + u] = m;
            }
        }
        apsp
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.coords.len()
    }

    /// Vertex coordinates, indexed by vertex id.
    pub fn coords(&self) -> &[Point<D>] {
        &self.coords
    }

    /// The undirected edge list `(u, v, w)` as constructed.
    pub fn edges(&self) -> &[(u32, u32, f64)] {
        &self.edges
    }

    /// The vertex whose coordinates match `p` bit-for-bit, if any.
    pub fn vertex_at(&self, p: &Point<D>) -> Option<u32> {
        let mut key = [0u64; D];
        for (k, c) in key.iter_mut().zip(p.coords()) {
            *k = c.to_bits();
        }
        self.lookup.get(&key).copied()
    }

    /// The vertex for `p`: the bit-exact match when `p` lies on a vertex,
    /// otherwise the deterministic nearest-vertex snap (smallest squared
    /// Euclidean distance, ties to the lowest vertex id).
    pub fn snap(&self, p: &Point<D>) -> u32 {
        if let Some(v) = self.vertex_at(p) {
            return v;
        }
        let mut best = (f64::INFINITY, 0u32);
        for (i, c) in self.coords.iter().enumerate() {
            let d = p.dist_sq(c);
            if d < best.0 {
                best = (d, i as u32);
            }
        }
        best.1
    }

    /// Shortest-path distance between two vertices (`+∞` when
    /// disconnected).
    pub fn shortest_path(&self, u: u32, v: u32) -> f64 {
        self.apsp[u as usize * self.coords.len() + v as usize]
    }

    /// True when every vertex reaches every other.
    pub fn is_connected(&self) -> bool {
        let n = self.coords.len();
        self.apsp[..n].iter().all(|d| d.is_finite())
    }
}

/// Graph shortest-path metric over a shared [`RoadNetwork`]. Points are
/// mapped to vertices (bit-exact lookup with a deterministic nearest snap
/// for off-network points), so on vertex-resident fuzzy objects — what the
/// `fuzzy-datagen` road workload generates — this is the true network
/// metric.
#[derive(Clone, Debug)]
pub struct GraphMetric<const D: usize> {
    net: Arc<RoadNetwork<D>>,
}

impl<const D: usize> GraphMetric<D> {
    /// Wrap a shared network.
    pub fn new(net: Arc<RoadNetwork<D>>) -> Self {
        Self { net }
    }

    /// The underlying network.
    pub fn network(&self) -> &RoadNetwork<D> {
        &self.net
    }
}

impl<const D: usize> Metric<D> for GraphMetric<D> {
    #[inline]
    fn name(&self) -> &'static str {
        "graph"
    }

    #[inline]
    fn dist(&self, a: &Point<D>, b: &Point<D>) -> f64 {
        self.net.shortest_path(self.net.snap(a), self.net.snap(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::alpha_distance_sq_bounded;
    use crate::object::ObjectId;

    fn blob(seed: u64, n: usize, cx: f64, cy: f64) -> FuzzyObject<2> {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = vec![Point::xy(cx, cy)];
        let mut mus = vec![1.0];
        for _ in 1..n {
            let r = rnd();
            let th = rnd() * std::f64::consts::TAU;
            pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
            mus.push(((1.0 - r) * 0.9 + 0.05).clamp(0.01, 1.0));
        }
        FuzzyObject::new(ObjectId(seed), pts, mus).unwrap()
    }

    /// A deliberately hook-poor Euclidean metric: `dist`/`dist_sq` only,
    /// so the default box bounds, pair-scan α-distance and pair-enumeration
    /// profile all run as written. `dist_sq` matches the kernel's squared
    /// arithmetic (summed squares, not `dist²`) — bitwise agreement between
    /// generic and specialized paths requires consistent squaring, which is
    /// exactly what the `dist_sq` contract documents.
    struct BareL2;
    impl Metric<2> for BareL2 {
        fn name(&self) -> &'static str {
            "bare-l2"
        }
        fn dist(&self, a: &Point<2>, b: &Point<2>) -> f64 {
            a.dist(b)
        }
        fn dist_sq(&self, a: &Point<2>, b: &Point<2>) -> f64 {
            a.dist_sq(b)
        }
    }

    #[test]
    fn l2_hooks_delegate_bitwise() {
        let a = blob(3, 60, 0.0, 0.0);
        let b = blob(4, 70, 2.0, 1.0);
        let m = L2;
        let pa = *a.point(0);
        let pb = *b.point(0);
        assert_eq!(Metric::<2>::dist(&m, &pa, &pb).to_bits(), pa.dist(&pb).to_bits());
        assert_eq!(Metric::<2>::dist_sq(&m, &pa, &pb).to_bits(), pa.dist_sq(&pb).to_bits());
        let ma = a.support_mbr();
        let mb = b.support_mbr();
        assert_eq!(m.min_box_dist_sq(&ma, &mb).to_bits(), ma.min_dist_sq(&mb).to_bits());
        assert_eq!(m.max_box_dist_sq(&ma, &mb).to_bits(), ma.max_dist_sq(&mb).to_bits());
        for v in [0.2, 0.5, 1.0] {
            let t = Threshold::at(v);
            let via_metric = m.alpha_distance_sq_bounded(&a, &b, t, f64::INFINITY);
            let direct = alpha_distance_sq_bounded(&a, &b, t, f64::INFINITY);
            assert_eq!(via_metric.map(f64::to_bits), direct.map(f64::to_bits));
        }
    }

    #[test]
    fn generic_defaults_match_l2_kernel_bitwise() {
        // The hook-free metric must agree with the adaptive kernel on the
        // same Euclidean geometry: same answers, same seed contract.
        for seed in 1..6u64 {
            let a = blob(seed, 50, 0.0, 0.0);
            let b = blob(seed + 40, 55, 1.5, -0.5);
            for v in [0.1, 0.5, 0.9, 1.0] {
                let t = Threshold::at(v);
                let generic = BareL2.alpha_distance_sq_bounded(&a, &b, t, f64::INFINITY);
                let kernel = alpha_distance_sq_bounded(&a, &b, t, f64::INFINITY);
                assert_eq!(
                    generic.map(f64::to_bits),
                    kernel.map(f64::to_bits),
                    "seed {seed} α {v}"
                );
                if let Some(d_sq) = kernel {
                    // Seed contract: strictly-above preserves, at prunes.
                    assert_eq!(
                        BareL2.alpha_distance_sq_bounded(&a, &b, t, d_sq * (1.0 + 1e-9)),
                        Some(d_sq)
                    );
                    assert_eq!(BareL2.alpha_distance_sq_bounded(&a, &b, t, d_sq), None);
                }
            }
        }
        // Profiles agree too (within float tolerance of the two orders).
        let a = blob(9, 40, 0.0, 0.0);
        let q = blob(10, 40, 2.0, 0.0);
        let generic = BareL2.distance_profile(&a, &q);
        let sweep = Metric::<2>::distance_profile(&L2, &a, &q);
        assert_eq!(generic.segments().len(), sweep.segments().len());
        for (g, s) in generic.segments().iter().zip(sweep.segments()) {
            assert!((g.level - s.level).abs() < 1e-12);
            assert!((g.dist - s.dist).abs() < 1e-12);
        }
    }

    fn grid_network() -> RoadNetwork<2> {
        // 3×3 grid, unit edges.
        let mut coords = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                coords.push(Point::xy(x as f64, y as f64));
            }
        }
        let mut edges = Vec::new();
        for y in 0..3u32 {
            for x in 0..3u32 {
                let v = y * 3 + x;
                if x + 1 < 3 {
                    edges.push((v, v + 1, 1.0));
                }
                if y + 1 < 3 {
                    edges.push((v, v + 3, 1.0));
                }
            }
        }
        RoadNetwork::new(coords, edges).unwrap()
    }

    #[test]
    fn grid_shortest_paths_are_manhattan() {
        let net = grid_network();
        assert!(net.is_connected());
        assert_eq!(net.shortest_path(0, 8), 4.0); // (0,0) → (2,2)
        assert_eq!(net.shortest_path(0, 2), 2.0);
        assert_eq!(net.shortest_path(4, 4), 0.0);
        // Symmetry over every pair.
        for u in 0..9u32 {
            for v in 0..9u32 {
                assert_eq!(net.shortest_path(u, v).to_bits(), net.shortest_path(v, u).to_bits());
            }
        }
    }

    #[test]
    fn graph_metric_evaluates_on_vertices_and_snaps_off_network() {
        let net = Arc::new(grid_network());
        let m = GraphMetric::new(net.clone());
        let a = Point::xy(0.0, 0.0);
        let b = Point::xy(2.0, 2.0);
        assert_eq!(m.dist(&a, &b), 4.0);
        assert_eq!(m.dist_sq(&a, &b), 16.0);
        // An off-network point snaps to its nearest vertex.
        let c = Point::xy(1.9, 2.1);
        assert_eq!(net.snap(&c), 8);
        assert_eq!(m.dist(&a, &c), 4.0);
    }

    #[test]
    fn graph_alpha_distance_uses_cut_semantics() {
        let net = Arc::new(grid_network());
        let m = GraphMetric::new(net);
        // A: kernel on vertex (0,0), a µ=0.4 point on (2,0).
        let a = FuzzyObject::new(
            ObjectId(1),
            vec![Point::xy(0.0, 0.0), Point::xy(2.0, 0.0)],
            vec![1.0, 0.4],
        )
        .unwrap();
        // B: kernel on (2,2), a µ=0.6 point on (2,1).
        let b = FuzzyObject::new(
            ObjectId(2),
            vec![Point::xy(2.0, 2.0), Point::xy(2.0, 1.0)],
            vec![1.0, 0.6],
        )
        .unwrap();
        // α ≤ 0.4: closest pair (2,0)–(2,1), network distance 1.
        let d = m.alpha_distance_sq_bounded(&a, &b, Threshold::at(0.4), f64::INFINITY);
        assert_eq!(d, Some(1.0));
        // 0.4 < α ≤ 0.6: (0,0)–(2,1), distance 3.
        let d = m.alpha_distance_sq_bounded(&a, &b, Threshold::at(0.6), f64::INFINITY);
        assert_eq!(d, Some(9.0));
        // Kernel level: (0,0)–(2,2), distance 4.
        let d = m.alpha_distance_sq_bounded(&a, &b, Threshold::kernel(), f64::INFINITY);
        assert_eq!(d, Some(16.0));
    }

    #[test]
    fn road_network_rejects_bad_input() {
        assert!(matches!(RoadNetwork::<2>::new(vec![], vec![]), Err(RoadNetworkError::NoVertices)));
        let coords = vec![Point::xy(0.0, 0.0), Point::xy(1.0, 0.0)];
        assert!(matches!(
            RoadNetwork::new(coords.clone(), vec![(0, 5, 1.0)]),
            Err(RoadNetworkError::EdgeOutOfRange { index: 5 })
        ));
        assert!(matches!(
            RoadNetwork::new(coords.clone(), vec![(0, 1, -1.0)]),
            Err(RoadNetworkError::BadWeight { .. })
        ));
        assert!(matches!(
            RoadNetwork::new(vec![Point::xy(f64::NAN, 0.0)], vec![]),
            Err(RoadNetworkError::BadCoordinate)
        ));
        // Disconnected networks are allowed; distances are +∞.
        let net = RoadNetwork::new(coords, vec![]).unwrap();
        assert!(!net.is_connected());
        assert_eq!(net.shortest_path(0, 1), f64::INFINITY);
    }
}
