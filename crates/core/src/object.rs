//! The fuzzy object itself: a validated set of probabilistic spatial points.

use crate::error::ModelError;
use crate::threshold::Threshold;
use fuzzy_geom::{KdTree, Mbr, Point};
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a fuzzy object inside a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A fuzzy object (Definition 1): `A = {⟨a, µ_A(a)⟩ | µ_A(a) > 0}`.
///
/// Invariants enforced at construction:
/// * at least one point,
/// * every membership in `(0, 1]`, every coordinate finite,
/// * non-empty kernel — some point has membership exactly `1.0`
///   (the paper's standing assumption, Section 2.1).
///
/// Two derived structures are built lazily on first use and cached:
///
/// * a kd-tree over the points (annotated with subtree membership maxima),
///   shared by the tree-based α-distance evaluators;
/// * a [`MembershipPrefix`] — the points re-stored as a
///   **membership-descending structure-of-arrays**, so any α-cut is a
///   contiguous prefix located by one binary search. The hot distance
///   kernels scan these prefixes instead of filtering point-by-point.
///
/// The externally observable point order ([`FuzzyObject::points`],
/// [`FuzzyObject::iter`], serialization) remains the construction order.
#[derive(Clone, Debug)]
pub struct FuzzyObject<const D: usize> {
    id: ObjectId,
    points: Vec<Point<D>>,
    memberships: Vec<f64>,
    kd: OnceLock<KdTree<D>>,
    prefix: OnceLock<MembershipPrefix<D>>,
}

/// The membership-descending structure-of-arrays view of an object's
/// points: `points()[i]` carries `memberships()[i]`, and memberships are
/// sorted descending (ties broken by original index, so the layout is
/// deterministic). Any threshold then selects the contiguous prefix
/// `0..prefix_len(t)` — a single binary search instead of a scan — and
/// the quadratic α-distance kernels become cache-friendly prefix×prefix
/// loops over dense coordinate arrays.
#[derive(Clone, Debug)]
pub struct MembershipPrefix<const D: usize> {
    pts: Vec<Point<D>>,
    mus: Vec<f64>,
    /// Dimension-major coordinate columns (`cols[d*len + j]` is coordinate
    /// `d` of sorted point `j`): the distance kernels stream these
    /// contiguously through the unrolled lane reduction of
    /// [`fuzzy_geom::kernel`].
    cols: Vec<f64>,
    /// `orig[j]` is the construction-order index of sorted point `j` — the
    /// permutation that undoes the membership sort. Serialized with format
    /// v3 records so decoding can restore the original order without
    /// re-sorting.
    orig: Vec<u32>,
}

impl<const D: usize> MembershipPrefix<D> {
    fn build(points: &[Point<D>], memberships: &[f64]) -> Self {
        // One (µ, index) buffer; unstable sort is fine because the index
        // tie-break makes the order total and deterministic.
        let mut keyed: Vec<(f64, u32)> =
            memberships.iter().zip(0u32..).map(|(&mu, i)| (mu, i)).collect();
        keyed.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let n = keyed.len();
        let mut cols = vec![0.0; D * n];
        for (j, &(_, i)) in keyed.iter().enumerate() {
            for d in 0..D {
                cols[d * n + j] = points[i as usize].coords()[d];
            }
        }
        Self {
            pts: keyed.iter().map(|&(_, i)| points[i as usize]).collect(),
            mus: keyed.iter().map(|&(mu, _)| mu).collect(),
            cols,
            orig: keyed.iter().map(|&(_, i)| i).collect(),
        }
    }

    /// Points, membership-descending.
    #[inline]
    pub fn points(&self) -> &[Point<D>] {
        &self.pts
    }

    /// Memberships, descending, parallel to [`MembershipPrefix::points`].
    #[inline]
    pub fn memberships(&self) -> &[f64] {
        &self.mus
    }

    /// Coordinate column of dimension `d` (membership-descending order,
    /// parallel to [`MembershipPrefix::points`]).
    #[inline]
    pub fn coord_column(&self, d: usize) -> &[f64] {
        &self.cols[d * self.pts.len()..(d + 1) * self.pts.len()]
    }

    /// Construction-order index of each sorted point — the permutation
    /// that undoes the membership sort, parallel to
    /// [`MembershipPrefix::points`].
    #[inline]
    pub fn source_indices(&self) -> &[u32] {
        &self.orig
    }

    /// Length of the prefix selected by `t`: the cut `{a : t accepts µ(a)}`
    /// is exactly `points()[..prefix_len(t)]`.
    #[inline]
    pub fn prefix_len(&self, t: Threshold) -> usize {
        self.mus.partition_point(|&mu| t.accepts(mu))
    }

    /// Per-dimension bounds of the prefix `0..n` as `(lo, hi)` arrays —
    /// the exact cut MBR, computed with one pass over the coordinate
    /// columns. Callers use it to skip whole prefix scans whose bounding
    /// box already lies beyond a known bound.
    pub fn prefix_bounds(&self, n: usize) -> ([f64; D], [f64; D]) {
        let mut lo = [f64::INFINITY; D];
        let mut hi = [f64::NEG_INFINITY; D];
        for d in 0..D {
            for &c in &self.coord_column(d)[..n] {
                lo[d] = lo[d].min(c);
                hi[d] = hi[d].max(c);
            }
        }
        (lo, hi)
    }

    /// The smallest **squared** distance from `p` to a point of the
    /// prefix `0..n`, via the unrolled columnar min-reduction kernel of
    /// [`fuzzy_geom::kernel`] (explicit multi-accumulator lanes; bitwise
    /// identical to the scalar evaluators). `+∞` for an empty prefix.
    #[inline]
    pub fn min_dist_sq_to_prefix(&self, p: &Point<D>, n: usize) -> f64 {
        let len = self.pts.len();
        let cols: [&[f64]; D] = std::array::from_fn(|d| &self.cols[d * len..d * len + n]);
        fuzzy_geom::kernel::min_dist_sq_cols(&cols, p.coords())
    }
}

impl<const D: usize> FuzzyObject<D> {
    /// Validate and construct. See [`FuzzyObjectBuilder`] for a more
    /// ergonomic incremental interface with optional normalization.
    pub fn new(
        id: ObjectId,
        points: Vec<Point<D>>,
        memberships: Vec<f64>,
    ) -> Result<Self, ModelError> {
        if points.len() != memberships.len() {
            return Err(ModelError::LengthMismatch {
                points: points.len(),
                memberships: memberships.len(),
            });
        }
        if points.is_empty() {
            return Err(ModelError::EmptyObject);
        }
        let mut has_kernel = false;
        for (i, (&mu, p)) in memberships.iter().zip(&points).enumerate() {
            if !(mu > 0.0 && mu <= 1.0) {
                return Err(ModelError::InvalidMembership { index: i, value: mu });
            }
            if !p.is_finite() {
                return Err(ModelError::NonFiniteCoordinate { index: i });
            }
            has_kernel |= mu == 1.0;
        }
        if !has_kernel {
            return Err(ModelError::EmptyKernel);
        }
        Ok(Self { id, points, memberships, kd: OnceLock::new(), prefix: OnceLock::new() })
    }

    /// Validate and construct from the membership-descending **columnar**
    /// layout that format v3 records store directly: `orig[j]` is the
    /// construction-order index of sorted slot `j`, `mus` descends (ties
    /// by `orig`), and `cols[d·n + j]` is coordinate `d` of slot `j`.
    ///
    /// The original point order is restored by scattering through `orig`,
    /// so the observable object (points, memberships, iteration order,
    /// sampling) is identical to [`FuzzyObject::new`] on the source data —
    /// and the [`MembershipPrefix`] cache is pre-filled from the given
    /// columns, so probed objects skip the membership sort entirely.
    pub fn from_columnar(
        id: ObjectId,
        orig: Vec<u32>,
        mus: Vec<f64>,
        cols: Vec<f64>,
    ) -> Result<Self, ModelError> {
        let n = orig.len();
        if mus.len() != n {
            return Err(ModelError::LengthMismatch { points: n, memberships: mus.len() });
        }
        if n == 0 {
            return Err(ModelError::EmptyObject);
        }
        if cols.len() != D * n {
            return Err(ModelError::InvalidColumnarLayout {
                reason: "coordinate columns do not cover every point",
            });
        }
        // `orig` must be a permutation of 0..n.
        let mut seen = vec![false; n];
        for &i in &orig {
            if i as usize >= n || seen[i as usize] {
                return Err(ModelError::InvalidColumnarLayout {
                    reason: "source indices are not a permutation",
                });
            }
            seen[i as usize] = true;
        }
        // Memberships descend with the canonical orig tie-break — the
        // exact order `MembershipPrefix::build` would have produced.
        for j in 1..n {
            let ord = mus[j - 1].total_cmp(&mus[j]).then(orig[j].cmp(&orig[j - 1]));
            if ord == std::cmp::Ordering::Less {
                return Err(ModelError::InvalidColumnarLayout {
                    reason: "memberships are not membership-descending",
                });
            }
        }
        // Scatter back to construction order, validating as we go.
        let mut points = vec![Point::origin(); n];
        let mut memberships = vec![0.0; n];
        for (j, &i) in orig.iter().enumerate() {
            let mu = mus[j];
            if !(mu > 0.0 && mu <= 1.0) {
                return Err(ModelError::InvalidMembership { index: i as usize, value: mu });
            }
            let mut c = [0.0; D];
            for d in 0..D {
                c[d] = cols[d * n + j];
            }
            let p = Point::new(c);
            if !p.is_finite() {
                return Err(ModelError::NonFiniteCoordinate { index: i as usize });
            }
            points[i as usize] = p;
            memberships[i as usize] = mu;
        }
        // Descending order makes the kernel check O(1).
        if mus[0] != 1.0 {
            return Err(ModelError::EmptyKernel);
        }
        let pts_sorted: Vec<Point<D>> = (0..n)
            .map(|j| {
                let mut c = [0.0; D];
                for d in 0..D {
                    c[d] = cols[d * n + j];
                }
                Point::new(c)
            })
            .collect();
        let prefix = OnceLock::new();
        let _ = prefix.set(MembershipPrefix { pts: pts_sorted, mus, cols, orig });
        Ok(Self { id, points, memberships, kd: OnceLock::new(), prefix })
    }

    /// Object identifier.
    #[inline]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Number of probabilistic points (`|A_s|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false (construction rejects empty objects).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points (the support set, since every stored membership is > 0).
    #[inline]
    pub fn points(&self) -> &[Point<D>] {
        &self.points
    }

    /// Membership values, parallel to [`FuzzyObject::points`].
    #[inline]
    pub fn memberships(&self) -> &[f64] {
        &self.memberships
    }

    /// Iterate `⟨a, µ(a)⟩` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Point<D>, f64)> + '_ {
        self.points.iter().zip(self.memberships.iter().copied())
    }

    /// The lazily built, cached kd-tree over the object's points.
    pub fn kd_tree(&self) -> &KdTree<D> {
        self.kd.get_or_init(|| KdTree::build(&self.points, &self.memberships))
    }

    /// True when the cached kd-tree has already been built. The adaptive
    /// α-distance kernel uses this to avoid constructing a tree for an
    /// object probed once (e.g. a freshly decoded store object) when a
    /// cheaper evaluation path exists.
    #[inline]
    pub fn kd_tree_ready(&self) -> bool {
        self.kd.get().is_some()
    }

    /// The lazily built, cached membership-descending prefix layout. Much
    /// cheaper to build than the kd-tree (one sort, no recursive
    /// partitioning), which is why the hot kernels prefer it for objects
    /// probed a single time.
    pub fn by_membership(&self) -> &MembershipPrefix<D> {
        self.prefix.get_or_init(|| MembershipPrefix::build(&self.points, &self.memberships))
    }

    /// True when the membership-descending prefix layout is already built
    /// (always the case for objects decoded from format v3 records).
    #[inline]
    pub fn prefix_ready(&self) -> bool {
        self.prefix.get().is_some()
    }

    /// MBR of the support set (`M_A` = `M_A(0)` in the paper's notation).
    pub fn support_mbr(&self) -> Mbr<D> {
        Mbr::from_points(self.points.iter()).expect("object is non-empty")
    }

    /// MBR of the kernel set (`M_A(1)`); the kernel is never empty.
    pub fn kernel_mbr(&self) -> Mbr<D> {
        Mbr::from_points(self.iter().filter(|&(_, mu)| mu == 1.0).map(|(p, _)| p))
            .expect("kernel is non-empty by construction")
    }

    /// Indices of points belonging to the cut selected by `t`.
    pub fn cut_indices(&self, t: Threshold) -> Vec<usize> {
        self.memberships
            .iter()
            .enumerate()
            .filter(|&(_, &mu)| t.accepts(mu))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of points in the cut selected by `t` (`|A_α|`).
    pub fn cut_len(&self, t: Threshold) -> usize {
        self.memberships.iter().filter(|&&mu| t.accepts(mu)).count()
    }

    /// Exact MBR of the cut selected by `t` (`M_A(α)`), or `None` when the
    /// cut is empty (only possible for strict thresholds at high values).
    pub fn cut_mbr(&self, t: Threshold) -> Option<Mbr<D>> {
        Mbr::from_points(self.iter().filter(|&(_, mu)| t.accepts(mu)).map(|(p, _)| p))
    }

    /// The distinct membership values `U_A`, ascending (Section 3.2).
    pub fn distinct_levels(&self) -> Vec<f64> {
        let mut levels = self.memberships.clone();
        levels.sort_by(f64::total_cmp);
        levels.dedup();
        levels
    }

    /// A representative point of the kernel, `rep(A)` (§3.4). We pick the
    /// first kernel point deterministically; the paper chooses randomly, but
    /// any kernel point satisfies Lemma 1 and determinism aids testing.
    pub fn rep_point(&self) -> Point<D> {
        *self
            .iter()
            .find(|&(_, mu)| mu == 1.0)
            .map(|(p, _)| p)
            .expect("kernel is non-empty by construction")
    }

    /// Uniformly sample (with a simple deterministic LCG keyed on `seed`)
    /// `n` point indices from the cut at `t`; fewer when the cut is smaller.
    /// Used to build the query sample set `Q'_α` of §3.4.
    pub fn sample_cut_indices(&self, t: Threshold, n: usize, seed: u64) -> Vec<usize> {
        let cut = self.cut_indices(t);
        if cut.len() <= n {
            return cut;
        }
        // Partial Fisher–Yates over the cut index vector.
        let mut idx = cut;
        let mut state = seed | 1;
        let mut next = move |bound: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % bound as u64) as usize
        };
        for i in 0..n {
            let j = i + next(idx.len() - i);
            idx.swap(i, j);
        }
        idx.truncate(n);
        idx
    }

    /// Point accessor.
    #[inline]
    pub fn point(&self, i: usize) -> &Point<D> {
        &self.points[i]
    }

    /// Membership accessor.
    #[inline]
    pub fn membership(&self, i: usize) -> f64 {
        self.memberships[i]
    }
}

/// Incremental builder with optional max-normalization (for raw data whose
/// largest membership is not exactly 1, e.g. probabilistic segmentation
/// masks; the paper normalizes its datasets the same way, §6.1).
#[derive(Clone, Debug, Default)]
pub struct FuzzyObjectBuilder<const D: usize> {
    points: Vec<Point<D>>,
    memberships: Vec<f64>,
    normalize_max: bool,
}

impl<const D: usize> FuzzyObjectBuilder<D> {
    /// Empty builder.
    pub fn new() -> Self {
        Self { points: Vec::new(), memberships: Vec::new(), normalize_max: false }
    }

    /// Pre-allocate for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            points: Vec::with_capacity(n),
            memberships: Vec::with_capacity(n),
            normalize_max: false,
        }
    }

    /// Rescale memberships by `1 / max(µ)` at build time so the kernel is
    /// non-empty. Mirrors the paper's "normalize the probability values"
    /// dataset preparation step.
    pub fn normalize_max(mut self, yes: bool) -> Self {
        self.normalize_max = yes;
        self
    }

    /// Add one probabilistic point.
    pub fn push(&mut self, p: Point<D>, mu: f64) -> &mut Self {
        self.points.push(p);
        self.memberships.push(mu);
        self
    }

    /// Number of points added so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points were added.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Validate and build.
    pub fn build(mut self, id: ObjectId) -> Result<FuzzyObject<D>, ModelError> {
        if self.normalize_max {
            let max = self.memberships.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if max > 0.0 && max.is_finite() {
                for mu in &mut self.memberships {
                    *mu /= max;
                }
                // Guard against 0.999999... from the division itself.
                for mu in &mut self.memberships {
                    if *mu > 1.0 {
                        *mu = 1.0;
                    }
                }
            }
        }
        FuzzyObject::new(id, self.points, self.memberships)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> FuzzyObject<2> {
        // A small pyramid-shaped object: center has µ=1, ring µ=0.5, rim µ=0.2.
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(-1.0, 0.0),
            Point::xy(0.0, 1.0),
            Point::xy(0.0, -1.0),
            Point::xy(2.0, 0.0),
            Point::xy(-2.0, 0.0),
        ];
        let mus = vec![1.0, 0.5, 0.5, 0.5, 0.5, 0.2, 0.2];
        FuzzyObject::new(ObjectId(7), pts, mus).unwrap()
    }

    #[test]
    fn validation_catches_bad_input() {
        let p = vec![Point::xy(0.0, 0.0)];
        assert_eq!(
            FuzzyObject::<2>::new(ObjectId(0), vec![], vec![]).unwrap_err(),
            ModelError::EmptyObject
        );
        assert!(matches!(
            FuzzyObject::new(ObjectId(0), p.clone(), vec![0.0]).unwrap_err(),
            ModelError::InvalidMembership { .. }
        ));
        assert!(matches!(
            FuzzyObject::new(ObjectId(0), p.clone(), vec![1.5]).unwrap_err(),
            ModelError::InvalidMembership { .. }
        ));
        assert_eq!(
            FuzzyObject::new(ObjectId(0), p.clone(), vec![0.9]).unwrap_err(),
            ModelError::EmptyKernel
        );
        assert!(matches!(
            FuzzyObject::new(ObjectId(0), p, vec![1.0, 0.5]).unwrap_err(),
            ModelError::LengthMismatch { .. }
        ));
        assert!(matches!(
            FuzzyObject::new(ObjectId(0), vec![Point::xy(f64::NAN, 0.0)], vec![1.0]).unwrap_err(),
            ModelError::NonFiniteCoordinate { .. }
        ));
    }

    #[test]
    fn cuts_shrink_as_alpha_grows() {
        let a = obj();
        let sizes: Vec<usize> = [0.0, 0.2, 0.5, 1.0]
            .iter()
            .map(|&v: &f64| a.cut_len(Threshold::at(v.max(f64::MIN_POSITIVE))))
            .collect();
        assert_eq!(sizes, vec![7, 7, 5, 1]);
        // Strict cut just above 0.5 drops the ring.
        assert_eq!(a.cut_len(Threshold::above(0.5)), 1);
    }

    #[test]
    fn mbrs_nest() {
        let a = obj();
        let support = a.support_mbr();
        let mid = a.cut_mbr(Threshold::at(0.5)).unwrap();
        let kernel = a.kernel_mbr();
        assert!(support.contains_mbr(&mid));
        assert!(mid.contains_mbr(&kernel));
        assert_eq!(support.lo(0), -2.0);
        assert_eq!(kernel.area(), 0.0);
    }

    #[test]
    fn empty_cut_for_strict_one() {
        let a = obj();
        assert!(a.cut_mbr(Threshold::above(1.0)).is_none());
        assert_eq!(a.cut_len(Threshold::above(1.0)), 0);
    }

    #[test]
    fn distinct_levels_sorted_dedup() {
        let a = obj();
        assert_eq!(a.distinct_levels(), vec![0.2, 0.5, 1.0]);
    }

    #[test]
    fn rep_point_is_kernel_member() {
        let a = obj();
        let rep = a.rep_point();
        assert_eq!(rep, Point::xy(0.0, 0.0));
    }

    #[test]
    fn sampling_is_within_cut_and_deterministic() {
        let a = obj();
        let t = Threshold::at(0.5);
        let s1 = a.sample_cut_indices(t, 3, 99);
        let s2 = a.sample_cut_indices(t, 3, 99);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 3);
        for &i in &s1 {
            assert!(t.accepts(a.membership(i)));
        }
        // Requesting more than available returns the whole cut.
        let all = a.sample_cut_indices(t, 100, 1);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn builder_normalizes_to_unit_kernel() {
        let mut b = FuzzyObjectBuilder::with_capacity(3);
        b.push(Point::xy(0.0, 0.0), 0.8)
            .push(Point::xy(1.0, 0.0), 0.4)
            .push(Point::xy(0.0, 1.0), 0.2);
        let obj = b.normalize_max(true).build(ObjectId(1)).unwrap();
        assert_eq!(obj.memberships()[0], 1.0);
        assert!((obj.memberships()[1] - 0.5).abs() < 1e-12);
        assert_eq!(obj.kernel_mbr().area(), 0.0);
    }

    #[test]
    fn builder_without_normalization_requires_kernel() {
        let mut b = FuzzyObjectBuilder::new();
        b.push(Point::xy(0.0, 0.0), 0.8);
        assert_eq!(b.len(), 1);
        assert_eq!(b.build(ObjectId(1)).unwrap_err(), ModelError::EmptyKernel);
    }

    #[test]
    fn kd_tree_is_cached_and_consistent() {
        let a = obj();
        let t1 = a.kd_tree() as *const _;
        let t2 = a.kd_tree() as *const _;
        assert_eq!(t1, t2);
        assert_eq!(a.kd_tree().len(), a.len());
    }

    /// Decompose `a` into the columnar triple a v3 record stores.
    fn columnar_parts(a: &FuzzyObject<2>) -> (Vec<u32>, Vec<f64>, Vec<f64>) {
        let pb = a.by_membership();
        let n = a.len();
        let mut cols = Vec::with_capacity(2 * n);
        for d in 0..2 {
            cols.extend_from_slice(pb.coord_column(d));
        }
        (pb.source_indices().to_vec(), pb.memberships().to_vec(), cols)
    }

    #[test]
    fn from_columnar_round_trips_construction_order() {
        let a = obj();
        let (orig, mus, cols) = columnar_parts(&a);
        let b = FuzzyObject::from_columnar(a.id(), orig, mus, cols).unwrap();
        assert_eq!(a.points(), b.points());
        assert_eq!(a.memberships(), b.memberships());
        // The prefix cache is pre-filled and bitwise-identical to the one
        // a lazy build would produce.
        assert!(b.prefix_ready());
        let pa = a.by_membership();
        let pb = b.by_membership();
        assert_eq!(pa.points(), pb.points());
        assert_eq!(pa.memberships(), pb.memberships());
        assert_eq!(pa.source_indices(), pb.source_indices());
        for d in 0..2 {
            assert_eq!(pa.coord_column(d), pb.coord_column(d));
        }
    }

    #[test]
    fn from_columnar_rejects_malformed_layouts() {
        let a = obj();
        let (orig, mus, cols) = columnar_parts(&a);

        // Length mismatch between permutation and memberships.
        assert!(matches!(
            FuzzyObject::<2>::from_columnar(a.id(), orig.clone(), mus[1..].to_vec(), cols.clone())
                .unwrap_err(),
            ModelError::LengthMismatch { .. }
        ));
        // Empty record.
        assert_eq!(
            FuzzyObject::<2>::from_columnar(a.id(), vec![], vec![], vec![]).unwrap_err(),
            ModelError::EmptyObject
        );
        // Short coordinate columns.
        assert!(matches!(
            FuzzyObject::<2>::from_columnar(
                a.id(),
                orig.clone(),
                mus.clone(),
                cols[..cols.len() - 1].to_vec()
            )
            .unwrap_err(),
            ModelError::InvalidColumnarLayout { .. }
        ));
        // Duplicate source index (not a permutation).
        let mut bad = orig.clone();
        bad[1] = bad[0];
        assert!(matches!(
            FuzzyObject::<2>::from_columnar(a.id(), bad, mus.clone(), cols.clone()).unwrap_err(),
            ModelError::InvalidColumnarLayout { .. }
        ));
        // Out-of-range source index.
        let mut bad = orig.clone();
        bad[0] = orig.len() as u32;
        assert!(matches!(
            FuzzyObject::<2>::from_columnar(a.id(), bad, mus.clone(), cols.clone()).unwrap_err(),
            ModelError::InvalidColumnarLayout { .. }
        ));
        // Ascending memberships violate the sort contract.
        let mut bad = mus.clone();
        bad.swap(0, mus.len() - 1);
        assert!(matches!(
            FuzzyObject::<2>::from_columnar(a.id(), orig.clone(), bad, cols.clone()).unwrap_err(),
            ModelError::InvalidColumnarLayout { .. }
        ));
        // Equal memberships with the wrong orig order are also rejected
        // (the canonical layout breaks ties by ascending source index).
        let swapped = {
            let pb = a.by_membership();
            let mut o = pb.source_indices().to_vec();
            // Slots 1..=4 all carry µ=0.5 in `obj()`.
            o.swap(1, 2);
            o
        };
        assert!(matches!(
            FuzzyObject::<2>::from_columnar(a.id(), swapped, mus.clone(), cols.clone())
                .unwrap_err(),
            ModelError::InvalidColumnarLayout { .. }
        ));
        // Membership out of (0, 1] reports the *original* index.
        let mut bad = mus.clone();
        let last = bad.len() - 1;
        bad[last] = 0.0;
        match FuzzyObject::<2>::from_columnar(a.id(), orig.clone(), bad, cols.clone()).unwrap_err()
        {
            ModelError::InvalidMembership { index, .. } => {
                assert_eq!(index, orig[last] as usize)
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Missing kernel: scale every µ below 1 (keep order valid).
        let scaled: Vec<f64> = mus.iter().map(|&m| m * 0.5).collect();
        assert_eq!(
            FuzzyObject::<2>::from_columnar(a.id(), orig.clone(), scaled, cols.clone())
                .unwrap_err(),
            ModelError::EmptyKernel
        );
        // Non-finite coordinate.
        let mut bad = cols.clone();
        bad[0] = f64::NAN;
        assert!(matches!(
            FuzzyObject::<2>::from_columnar(a.id(), orig, mus, bad).unwrap_err(),
            ModelError::NonFiniteCoordinate { .. }
        ));
    }
}
