//! The fuzzy object itself: a validated set of probabilistic spatial points.

use crate::error::ModelError;
use crate::threshold::Threshold;
use fuzzy_geom::{KdTree, Mbr, Point};
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a fuzzy object inside a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A fuzzy object (Definition 1): `A = {⟨a, µ_A(a)⟩ | µ_A(a) > 0}`.
///
/// Invariants enforced at construction:
/// * at least one point,
/// * every membership in `(0, 1]`, every coordinate finite,
/// * non-empty kernel — some point has membership exactly `1.0`
///   (the paper's standing assumption, Section 2.1).
///
/// A kd-tree over the points (annotated with subtree membership maxima) is
/// built lazily on first use and cached; all α-distance evaluators share it.
#[derive(Clone, Debug)]
pub struct FuzzyObject<const D: usize> {
    id: ObjectId,
    points: Vec<Point<D>>,
    memberships: Vec<f64>,
    kd: OnceLock<KdTree<D>>,
}

impl<const D: usize> FuzzyObject<D> {
    /// Validate and construct. See [`FuzzyObjectBuilder`] for a more
    /// ergonomic incremental interface with optional normalization.
    pub fn new(
        id: ObjectId,
        points: Vec<Point<D>>,
        memberships: Vec<f64>,
    ) -> Result<Self, ModelError> {
        if points.len() != memberships.len() {
            return Err(ModelError::LengthMismatch {
                points: points.len(),
                memberships: memberships.len(),
            });
        }
        if points.is_empty() {
            return Err(ModelError::EmptyObject);
        }
        let mut has_kernel = false;
        for (i, (&mu, p)) in memberships.iter().zip(&points).enumerate() {
            if !(mu > 0.0 && mu <= 1.0) {
                return Err(ModelError::InvalidMembership { index: i, value: mu });
            }
            if !p.is_finite() {
                return Err(ModelError::NonFiniteCoordinate { index: i });
            }
            has_kernel |= mu == 1.0;
        }
        if !has_kernel {
            return Err(ModelError::EmptyKernel);
        }
        Ok(Self { id, points, memberships, kd: OnceLock::new() })
    }

    /// Object identifier.
    #[inline]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Number of probabilistic points (`|A_s|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false (construction rejects empty objects).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points (the support set, since every stored membership is > 0).
    #[inline]
    pub fn points(&self) -> &[Point<D>] {
        &self.points
    }

    /// Membership values, parallel to [`FuzzyObject::points`].
    #[inline]
    pub fn memberships(&self) -> &[f64] {
        &self.memberships
    }

    /// Iterate `⟨a, µ(a)⟩` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Point<D>, f64)> + '_ {
        self.points.iter().zip(self.memberships.iter().copied())
    }

    /// The lazily built, cached kd-tree over the object's points.
    pub fn kd_tree(&self) -> &KdTree<D> {
        self.kd.get_or_init(|| KdTree::build(&self.points, &self.memberships))
    }

    /// MBR of the support set (`M_A` = `M_A(0)` in the paper's notation).
    pub fn support_mbr(&self) -> Mbr<D> {
        Mbr::from_points(self.points.iter()).expect("object is non-empty")
    }

    /// MBR of the kernel set (`M_A(1)`); the kernel is never empty.
    pub fn kernel_mbr(&self) -> Mbr<D> {
        Mbr::from_points(self.iter().filter(|&(_, mu)| mu == 1.0).map(|(p, _)| p))
            .expect("kernel is non-empty by construction")
    }

    /// Indices of points belonging to the cut selected by `t`.
    pub fn cut_indices(&self, t: Threshold) -> Vec<usize> {
        self.memberships
            .iter()
            .enumerate()
            .filter(|&(_, &mu)| t.accepts(mu))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of points in the cut selected by `t` (`|A_α|`).
    pub fn cut_len(&self, t: Threshold) -> usize {
        self.memberships.iter().filter(|&&mu| t.accepts(mu)).count()
    }

    /// Exact MBR of the cut selected by `t` (`M_A(α)`), or `None` when the
    /// cut is empty (only possible for strict thresholds at high values).
    pub fn cut_mbr(&self, t: Threshold) -> Option<Mbr<D>> {
        Mbr::from_points(self.iter().filter(|&(_, mu)| t.accepts(mu)).map(|(p, _)| p))
    }

    /// The distinct membership values `U_A`, ascending (Section 3.2).
    pub fn distinct_levels(&self) -> Vec<f64> {
        let mut levels = self.memberships.clone();
        levels.sort_by(f64::total_cmp);
        levels.dedup();
        levels
    }

    /// A representative point of the kernel, `rep(A)` (§3.4). We pick the
    /// first kernel point deterministically; the paper chooses randomly, but
    /// any kernel point satisfies Lemma 1 and determinism aids testing.
    pub fn rep_point(&self) -> Point<D> {
        *self
            .iter()
            .find(|&(_, mu)| mu == 1.0)
            .map(|(p, _)| p)
            .expect("kernel is non-empty by construction")
    }

    /// Uniformly sample (with a simple deterministic LCG keyed on `seed`)
    /// `n` point indices from the cut at `t`; fewer when the cut is smaller.
    /// Used to build the query sample set `Q'_α` of §3.4.
    pub fn sample_cut_indices(&self, t: Threshold, n: usize, seed: u64) -> Vec<usize> {
        let cut = self.cut_indices(t);
        if cut.len() <= n {
            return cut;
        }
        // Partial Fisher–Yates over the cut index vector.
        let mut idx = cut;
        let mut state = seed | 1;
        let mut next = move |bound: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % bound as u64) as usize
        };
        for i in 0..n {
            let j = i + next(idx.len() - i);
            idx.swap(i, j);
        }
        idx.truncate(n);
        idx
    }

    /// Point accessor.
    #[inline]
    pub fn point(&self, i: usize) -> &Point<D> {
        &self.points[i]
    }

    /// Membership accessor.
    #[inline]
    pub fn membership(&self, i: usize) -> f64 {
        self.memberships[i]
    }
}

/// Incremental builder with optional max-normalization (for raw data whose
/// largest membership is not exactly 1, e.g. probabilistic segmentation
/// masks; the paper normalizes its datasets the same way, §6.1).
#[derive(Clone, Debug, Default)]
pub struct FuzzyObjectBuilder<const D: usize> {
    points: Vec<Point<D>>,
    memberships: Vec<f64>,
    normalize_max: bool,
}

impl<const D: usize> FuzzyObjectBuilder<D> {
    /// Empty builder.
    pub fn new() -> Self {
        Self { points: Vec::new(), memberships: Vec::new(), normalize_max: false }
    }

    /// Pre-allocate for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            points: Vec::with_capacity(n),
            memberships: Vec::with_capacity(n),
            normalize_max: false,
        }
    }

    /// Rescale memberships by `1 / max(µ)` at build time so the kernel is
    /// non-empty. Mirrors the paper's "normalize the probability values"
    /// dataset preparation step.
    pub fn normalize_max(mut self, yes: bool) -> Self {
        self.normalize_max = yes;
        self
    }

    /// Add one probabilistic point.
    pub fn push(&mut self, p: Point<D>, mu: f64) -> &mut Self {
        self.points.push(p);
        self.memberships.push(mu);
        self
    }

    /// Number of points added so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points were added.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Validate and build.
    pub fn build(mut self, id: ObjectId) -> Result<FuzzyObject<D>, ModelError> {
        if self.normalize_max {
            let max = self.memberships.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if max > 0.0 && max.is_finite() {
                for mu in &mut self.memberships {
                    *mu /= max;
                }
                // Guard against 0.999999... from the division itself.
                for mu in &mut self.memberships {
                    if *mu > 1.0 {
                        *mu = 1.0;
                    }
                }
            }
        }
        FuzzyObject::new(id, self.points, self.memberships)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> FuzzyObject<2> {
        // A small pyramid-shaped object: center has µ=1, ring µ=0.5, rim µ=0.2.
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(-1.0, 0.0),
            Point::xy(0.0, 1.0),
            Point::xy(0.0, -1.0),
            Point::xy(2.0, 0.0),
            Point::xy(-2.0, 0.0),
        ];
        let mus = vec![1.0, 0.5, 0.5, 0.5, 0.5, 0.2, 0.2];
        FuzzyObject::new(ObjectId(7), pts, mus).unwrap()
    }

    #[test]
    fn validation_catches_bad_input() {
        let p = vec![Point::xy(0.0, 0.0)];
        assert_eq!(
            FuzzyObject::<2>::new(ObjectId(0), vec![], vec![]).unwrap_err(),
            ModelError::EmptyObject
        );
        assert!(matches!(
            FuzzyObject::new(ObjectId(0), p.clone(), vec![0.0]).unwrap_err(),
            ModelError::InvalidMembership { .. }
        ));
        assert!(matches!(
            FuzzyObject::new(ObjectId(0), p.clone(), vec![1.5]).unwrap_err(),
            ModelError::InvalidMembership { .. }
        ));
        assert_eq!(
            FuzzyObject::new(ObjectId(0), p.clone(), vec![0.9]).unwrap_err(),
            ModelError::EmptyKernel
        );
        assert!(matches!(
            FuzzyObject::new(ObjectId(0), p, vec![1.0, 0.5]).unwrap_err(),
            ModelError::LengthMismatch { .. }
        ));
        assert!(matches!(
            FuzzyObject::new(ObjectId(0), vec![Point::xy(f64::NAN, 0.0)], vec![1.0]).unwrap_err(),
            ModelError::NonFiniteCoordinate { .. }
        ));
    }

    #[test]
    fn cuts_shrink_as_alpha_grows() {
        let a = obj();
        let sizes: Vec<usize> = [0.0, 0.2, 0.5, 1.0]
            .iter()
            .map(|&v: &f64| a.cut_len(Threshold::at(v.max(f64::MIN_POSITIVE))))
            .collect();
        assert_eq!(sizes, vec![7, 7, 5, 1]);
        // Strict cut just above 0.5 drops the ring.
        assert_eq!(a.cut_len(Threshold::above(0.5)), 1);
    }

    #[test]
    fn mbrs_nest() {
        let a = obj();
        let support = a.support_mbr();
        let mid = a.cut_mbr(Threshold::at(0.5)).unwrap();
        let kernel = a.kernel_mbr();
        assert!(support.contains_mbr(&mid));
        assert!(mid.contains_mbr(&kernel));
        assert_eq!(support.lo(0), -2.0);
        assert_eq!(kernel.area(), 0.0);
    }

    #[test]
    fn empty_cut_for_strict_one() {
        let a = obj();
        assert!(a.cut_mbr(Threshold::above(1.0)).is_none());
        assert_eq!(a.cut_len(Threshold::above(1.0)), 0);
    }

    #[test]
    fn distinct_levels_sorted_dedup() {
        let a = obj();
        assert_eq!(a.distinct_levels(), vec![0.2, 0.5, 1.0]);
    }

    #[test]
    fn rep_point_is_kernel_member() {
        let a = obj();
        let rep = a.rep_point();
        assert_eq!(rep, Point::xy(0.0, 0.0));
    }

    #[test]
    fn sampling_is_within_cut_and_deterministic() {
        let a = obj();
        let t = Threshold::at(0.5);
        let s1 = a.sample_cut_indices(t, 3, 99);
        let s2 = a.sample_cut_indices(t, 3, 99);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 3);
        for &i in &s1 {
            assert!(t.accepts(a.membership(i)));
        }
        // Requesting more than available returns the whole cut.
        let all = a.sample_cut_indices(t, 100, 1);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn builder_normalizes_to_unit_kernel() {
        let mut b = FuzzyObjectBuilder::with_capacity(3);
        b.push(Point::xy(0.0, 0.0), 0.8)
            .push(Point::xy(1.0, 0.0), 0.4)
            .push(Point::xy(0.0, 1.0), 0.2);
        let obj = b.normalize_max(true).build(ObjectId(1)).unwrap();
        assert_eq!(obj.memberships()[0], 1.0);
        assert!((obj.memberships()[1] - 0.5).abs() < 1e-12);
        assert_eq!(obj.kernel_mbr().area(), 0.0);
    }

    #[test]
    fn builder_without_normalization_requires_kernel() {
        let mut b = FuzzyObjectBuilder::new();
        b.push(Point::xy(0.0, 0.0), 0.8);
        assert_eq!(b.len(), 1);
        assert_eq!(b.build(ObjectId(1)).unwrap_err(), ModelError::EmptyKernel);
    }

    #[test]
    fn kd_tree_is_cached_and_consistent() {
        let a = obj();
        let t1 = a.kd_tree() as *const _;
        let t2 = a.kd_tree() as *const _;
        assert_eq!(t1, t2);
        assert_eq!(a.kd_tree().len(), a.len());
    }
}
