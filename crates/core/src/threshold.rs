//! Probability thresholds with exact strict/inclusive semantics.

use fuzzy_geom::LevelFilter;
use std::cmp::Ordering;
use std::fmt;

/// A probability threshold α for selecting α-cuts.
///
/// The inclusive form `Threshold::at(v)` selects the classical α-cut
/// `{a : µ(a) ≥ v}`. The strict form `Threshold::above(v)` selects
/// `{a : µ(a) > v}`, i.e. the cut *immediately above* `v`.
///
/// The strict form is how this implementation realises the `α ← α* + ε`
/// stepping of Algorithms 3 and 5 exactly: because the α-distance is a step
/// function that is constant on intervals `(ℓ_{j-1}, ℓ_j]` between adjacent
/// membership levels, evaluating "just past" a critical value `α*` needs no
/// floating-point epsilon — it is precisely the strict cut at `α*`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Threshold {
    /// Threshold value in `[0, 1]`.
    pub value: f64,
    /// When true the cut is `µ > value`, otherwise `µ ≥ value`.
    pub strict: bool,
}

impl Threshold {
    /// Inclusive threshold: α-cut `{a : µ(a) ≥ v}`.
    ///
    /// # Panics
    /// When `v` is outside `[0, 1]` or not finite.
    #[inline]
    pub fn at(v: f64) -> Self {
        assert!(v.is_finite() && (0.0..=1.0).contains(&v), "threshold {v} outside [0,1]");
        Self { value: v, strict: false }
    }

    /// Strict threshold: the cut `{a : µ(a) > v}` immediately above `v`.
    ///
    /// # Panics
    /// When `v` is outside `[0, 1]` or not finite.
    #[inline]
    pub fn above(v: f64) -> Self {
        assert!(v.is_finite() && (0.0..=1.0).contains(&v), "threshold {v} outside [0,1]");
        Self { value: v, strict: true }
    }

    /// The support-selecting threshold (`µ > 0`).
    #[inline]
    pub const fn support() -> Self {
        Self { value: 0.0, strict: true }
    }

    /// The kernel-selecting threshold (`µ ≥ 1`).
    #[inline]
    pub const fn kernel() -> Self {
        Self { value: 1.0, strict: false }
    }

    /// Does a membership value pass this threshold?
    #[inline]
    pub fn accepts(&self, mu: f64) -> bool {
        if self.strict {
            mu > self.value
        } else {
            mu >= self.value
        }
    }

    /// The equivalent kd-tree level filter.
    #[inline]
    pub fn filter(&self) -> LevelFilter {
        LevelFilter { min: self.value, strict: self.strict }
    }

    /// Total order by *cut inclusion*: `t1 < t2` iff the cut of `t1` is a
    /// strict superset of the cut of `t2` for a generic object — i.e. lower
    /// thresholds sort first, and at equal values the inclusive form sorts
    /// before the strict form (`µ ≥ v ⊇ µ > v`).
    #[inline]
    pub fn cmp_cut(&self, other: &Self) -> Ordering {
        self.value.total_cmp(&other.value).then_with(|| self.strict.cmp(&other.strict))
    }

    /// True when this threshold selects a superset of `other`'s cut
    /// (i.e. `self` is the looser of the two).
    #[inline]
    pub fn is_looser_or_equal(&self, other: &Self) -> bool {
        self.cmp_cut(other) != Ordering::Greater
    }
}

impl fmt::Display for Threshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.strict {
            write!(f, "α>{}", self.value)
        } else {
            write!(f, "α≥{}", self.value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_semantics() {
        let t = Threshold::at(0.5);
        assert!(t.accepts(0.5) && t.accepts(0.9) && !t.accepts(0.4999));
        let s = Threshold::above(0.5);
        assert!(!s.accepts(0.5) && s.accepts(0.5001));
        assert!(Threshold::support().accepts(f64::MIN_POSITIVE));
        assert!(!Threshold::support().accepts(0.0));
        assert!(Threshold::kernel().accepts(1.0));
        assert!(!Threshold::kernel().accepts(0.999999));
    }

    #[test]
    fn cut_order_is_inclusion_order() {
        let a = Threshold::at(0.3);
        let b = Threshold::above(0.3);
        let c = Threshold::at(0.4);
        assert_eq!(a.cmp_cut(&b), Ordering::Less);
        assert_eq!(b.cmp_cut(&c), Ordering::Less);
        assert!(a.is_looser_or_equal(&b));
        assert!(a.is_looser_or_equal(&a));
        assert!(!c.is_looser_or_equal(&b));
    }

    #[test]
    fn filter_roundtrip() {
        let t = Threshold::above(0.7);
        let f = t.filter();
        for mu in [0.0, 0.3, 0.7, 0.70001, 1.0] {
            assert_eq!(t.accepts(mu), f.accepts(mu));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range() {
        let _ = Threshold::at(1.5);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Threshold::at(0.5).to_string(), "α≥0.5");
        assert_eq!(Threshold::above(0.5).to_string(), "α>0.5");
    }
}
