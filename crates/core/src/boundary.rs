//! Boundary functions (Section 3.2).
//!
//! For a fuzzy object `A` and dimension `i`, the α-cut MBR bound
//! `M_A^{i+}(α)` approaches the kernel bound `M_A^{i+}(1)` as α grows. The
//! *boundary function* records the gap
//! `δ(α) = |M_A^{i+}(α) − M_A^{i+}(1)|` at every distinct membership value —
//! a non-increasing curve that the optimal conservative line approximates.

use crate::object::FuzzyObject;
use fuzzy_geom::Mbr;

/// Sampled boundary functions of one object: for every distinct membership
/// level (plus the anchor levels 0 and 1), the per-dimension gaps between
/// the α-cut MBR and the kernel MBR, on both the upper and lower side.
#[derive(Clone, Debug)]
pub struct BoundaryFunctions<const D: usize> {
    /// Sample abscissae, ascending; `levels[0] == 0.0`,
    /// `levels[last] == 1.0`.
    pub levels: Vec<f64>,
    /// `upper[j][i] = M^{i+}(levels[j]) − M^{i+}(1) ≥ 0`.
    pub upper: Vec<[f64; D]>,
    /// `lower[j][i] = M^{i−}(1) − M^{i−}(levels[j]) ≥ 0`.
    pub lower: Vec<[f64; D]>,
}

impl<const D: usize> BoundaryFunctions<D> {
    /// Compute by a single descending sweep over the object's points:
    /// `O(n log n)` for the sort plus `O(n)` MBR growth.
    pub fn compute(obj: &FuzzyObject<D>) -> Self {
        let n = obj.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Highest membership first: the running MBR then *is* the α-cut MBR
        // after consuming every point with µ ≥ current level.
        order.sort_by(|&a, &b| obj.membership(b).total_cmp(&obj.membership(a)));

        let kernel = obj.kernel_mbr();
        let mut running = Mbr::<D>::empty();
        let mut levels_desc: Vec<f64> = Vec::new();
        let mut upper_desc: Vec<[f64; D]> = Vec::new();
        let mut lower_desc: Vec<[f64; D]> = Vec::new();

        let mut pos = 0;
        while pos < n {
            let level = obj.membership(order[pos]);
            // Absorb every point at this level.
            while pos < n && obj.membership(order[pos]) == level {
                running.expand_point(obj.point(order[pos]));
                pos += 1;
            }
            let mut up = [0.0; D];
            let mut lo = [0.0; D];
            for i in 0..D {
                up[i] = (running.hi(i) - kernel.hi(i)).max(0.0);
                lo[i] = (kernel.lo(i) - running.lo(i)).max(0.0);
            }
            levels_desc.push(level);
            upper_desc.push(up);
            lower_desc.push(lo);
        }

        // Ascending order, with the α = 0 anchor (cut == support, so the gap
        // equals the lowest sampled level's gap) and the α = 1 anchor (gap 0
        // by definition; present already because kernels are non-empty).
        levels_desc.reverse();
        upper_desc.reverse();
        lower_desc.reverse();
        let mut levels = Vec::with_capacity(levels_desc.len() + 1);
        let mut upper = Vec::with_capacity(levels_desc.len() + 1);
        let mut lower = Vec::with_capacity(levels_desc.len() + 1);
        if levels_desc.first().copied() != Some(0.0) {
            levels.push(0.0);
            upper.push(upper_desc[0]);
            lower.push(lower_desc[0]);
        }
        levels.extend_from_slice(&levels_desc);
        upper.extend(upper_desc);
        lower.extend(lower_desc);
        debug_assert_eq!(*levels.last().unwrap(), 1.0, "kernel level missing");
        Self { levels, upper, lower }
    }

    /// The `⟨α, δ(α)⟩` sample pairs for the upper side of dimension `dim` —
    /// input to the conservative line fit.
    pub fn upper_samples(&self, dim: usize) -> Vec<(f64, f64)> {
        self.levels.iter().zip(&self.upper).map(|(&l, row)| (l, row[dim])).collect()
    }

    /// The `⟨α, δ(α)⟩` sample pairs for the lower side of dimension `dim`.
    pub fn lower_samples(&self, dim: usize) -> Vec<(f64, f64)> {
        self.levels.iter().zip(&self.lower).map(|(&l, row)| (l, row[dim])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;
    use crate::threshold::Threshold;
    use fuzzy_geom::Point;

    fn obj() -> FuzzyObject<2> {
        let pts = vec![
            Point::xy(0.0, 0.0),   // kernel
            Point::xy(1.0, 0.5),   // µ .5
            Point::xy(-1.0, -0.5), // µ .5
            Point::xy(3.0, 2.0),   // µ .2
            Point::xy(-3.0, -2.0), // µ .2
        ];
        FuzzyObject::new(ObjectId(1), pts, vec![1.0, 0.5, 0.5, 0.2, 0.2]).unwrap()
    }

    #[test]
    fn gaps_match_direct_cut_mbrs() {
        let a = obj();
        let bf = BoundaryFunctions::compute(&a);
        let kernel = a.kernel_mbr();
        for (j, &level) in bf.levels.iter().enumerate() {
            let cut = a.cut_mbr(Threshold::at(level.max(f64::MIN_POSITIVE))).unwrap();
            for i in 0..2 {
                assert!(
                    (bf.upper[j][i] - (cut.hi(i) - kernel.hi(i)).max(0.0)).abs() < 1e-12,
                    "upper gap mismatch at level {level} dim {i}"
                );
                assert!(
                    (bf.lower[j][i] - (kernel.lo(i) - cut.lo(i)).max(0.0)).abs() < 1e-12,
                    "lower gap mismatch at level {level} dim {i}"
                );
            }
        }
    }

    #[test]
    fn anchors_present_and_monotone() {
        let a = obj();
        let bf = BoundaryFunctions::compute(&a);
        assert_eq!(bf.levels.first().copied(), Some(0.0));
        assert_eq!(bf.levels.last().copied(), Some(1.0));
        // δ non-increasing in α on every side.
        for i in 0..2 {
            for w in bf.upper.windows(2) {
                assert!(w[0][i] >= w[1][i] - 1e-12);
            }
            for w in bf.lower.windows(2) {
                assert!(w[0][i] >= w[1][i] - 1e-12);
            }
        }
        // Gap at the kernel level is exactly zero.
        assert_eq!(bf.upper.last().unwrap(), &[0.0, 0.0]);
        assert_eq!(bf.lower.last().unwrap(), &[0.0, 0.0]);
    }

    #[test]
    fn sample_extraction_aligns() {
        let a = obj();
        let bf = BoundaryFunctions::compute(&a);
        let up0 = bf.upper_samples(0);
        assert_eq!(up0.len(), bf.levels.len());
        // δ(0) for dim 0 upper: support hi 3.0 - kernel hi 0.0 = 3.0.
        assert_eq!(up0[0], (0.0, 3.0));
        let lo1 = bf.lower_samples(1);
        // δ(0) for dim 1 lower: kernel lo 0.0 - support lo (-2.0) = 2.0.
        assert_eq!(lo1[0], (0.0, 2.0));
    }

    #[test]
    fn kernel_only_object_has_zero_gaps() {
        let pts = vec![Point::xy(1.0, 1.0), Point::xy(2.0, 2.0)];
        let a = FuzzyObject::new(ObjectId(2), pts, vec![1.0, 1.0]).unwrap();
        let bf = BoundaryFunctions::compute(&a);
        for row in bf.upper.iter().chain(&bf.lower) {
            assert_eq!(row, &[0.0, 0.0]);
        }
    }
}
