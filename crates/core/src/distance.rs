//! α-distance evaluation (Definition 3):
//! `d_α(A, B) = min_{⟨a,b⟩ ∈ A_α×B_α} d(a, b)`.
//!
//! The definition only needs a metric `d`; this module is the **L2
//! specialization** — the columnar/kd fast path that
//! [`crate::metric::L2`] routes its
//! [`Metric::alpha_distance_sq_bounded`](crate::metric::Metric::alpha_distance_sq_bounded)
//! hook to. Other metrics evaluate through the seam in [`crate::metric`]
//! (the generic membership-filtered pair scan, or their own override);
//! the engine above never calls this module directly, it calls the hook —
//! which is why generic and specialized answers agree bitwise under L2.
//!
//! The paper's central cost statement — "the evaluation of α-distance is
//! quadratic with the number of points" — makes this module the system's
//! hot path. Everything here therefore works in **squared** distances and
//! takes the single `sqrt` only at the API boundary; the result is
//! bitwise-identical to minimizing real distances because `sqrt` is
//! correctly rounded and monotone.
//!
//! Evaluators:
//!
//! * [`alpha_distance_brute`] — the naive per-pair scan (with a `sqrt` per
//!   pair), kept verbatim as the test oracle and for the `abl-dist`
//!   ablation.
//! * [`alpha_distance`] / [`alpha_distance_bounded`] — the adaptive kernel.
//!   It treats the **second** argument as the reusable side (the query
//!   object in AKNN, the run-grouped left object in the join): cached
//!   structures — the [`MembershipPrefix`](crate::MembershipPrefix)
//!   layout or the kd-tree — are only ever built on that side, while the
//!   throwaway side (an object decoded for a single probe) is scanned
//!   raw. Per call it picks the cheapest exact strategy:
//!   1. **dense** — when the cut product is small, the throwaway side's
//!      points stream once through the membership filter and each
//!      accepted point runs a dense inner loop over the reusable side's
//!      contiguous α-cut prefix (no tree, no sort, no allocation);
//!   2. **single-tree** — for larger cuts, each accepted throwaway point
//!      runs a seeded nearest-neighbour search in the reusable side's
//!      kd-tree, chaining the running best as the next seed;
//!   3. **dual-tree** — the bichromatic closest pair over both kd-trees
//!      with membership-level pruning (Corral et al., ref. \[9\]), used
//!      when both trees already exist.
//!
//!   All strategies minimize the same set of squared pair distances, so
//!   they return bitwise-equal results (property-tested against the
//!   oracle).
//!
//! The `upper_bound` seed of [`alpha_distance_bounded`] realizes the
//! bound-seeding idea the AKNN traversal exploits (§3.3–3.4): pairs at or
//! beyond the seed are pruned, and `None` reports that no qualifying pair
//! closer than the seed exists.

use crate::object::FuzzyObject;
use crate::threshold::Threshold;
use fuzzy_geom::{bichromatic_closest_pair_sq, KdTree, LevelFilter, Point};

/// Below this `|A_α|·|B_α|` product the dense filtered-scan × prefix loop
/// beats the tree traversals (no tree build, no recursion, a vectorized
/// branchless inner loop). Chosen so objects of a few hundred points
/// never pay a tree construction.
const DENSE_PAIR_BUDGET: usize = 65536;

/// Evaluation strategy selector, mainly for benchmarks and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistanceAlgorithm {
    /// All-pairs scan, `O(|A_α|·|B_α|)`, one `sqrt` per pair (the paper's
    /// naive cost model; the reference oracle).
    BruteForce,
    /// Dual-tree branch and bound over both kd-trees.
    DualTree,
    /// The adaptive kernel: prefix×prefix, single-tree or dual-tree,
    /// whichever is cheapest for the call (the production default).
    Auto,
}

/// α-distance via the adaptive kernel. Returns `None` when either cut is
/// empty under `t` (possible only for strict thresholds at the top level).
pub fn alpha_distance<const D: usize>(
    a: &FuzzyObject<D>,
    b: &FuzzyObject<D>,
    t: Threshold,
) -> Option<f64> {
    alpha_distance_sq_bounded(a, b, t, f64::INFINITY).map(f64::sqrt)
}

/// α-distance with a seed upper bound: pairs at distance `≥ upper_bound`
/// are pruned. Returns `None` when no qualifying pair closer than the seed
/// exists — callers seeding with a known-valid upper bound (Lemma 1) should
/// treat `None` as "the seed itself is the distance witness region".
pub fn alpha_distance_bounded<const D: usize>(
    a: &FuzzyObject<D>,
    b: &FuzzyObject<D>,
    t: Threshold,
    upper_bound: f64,
) -> Option<f64> {
    let bound_sq = if upper_bound.is_finite() { upper_bound * upper_bound } else { f64::INFINITY };
    alpha_distance_sq_bounded(a, b, t, bound_sq).map(f64::sqrt)
}

/// The squared-space workhorse behind every evaluator: the **squared**
/// α-distance, pruned by a **squared** seed. `None` when either cut is
/// empty or no pair lies strictly closer than `upper_bound_sq`.
///
/// This is the form the query engine calls on its hot path — heap keys,
/// pruning bounds and seeds all stay squared, and the single `sqrt` is
/// taken when a distance is reported to the user.
pub fn alpha_distance_sq_bounded<const D: usize>(
    a: &FuzzyObject<D>,
    b: &FuzzyObject<D>,
    t: Threshold,
    upper_bound_sq: f64,
) -> Option<f64> {
    // `a` is the throwaway side, scanned raw: count its cut in one pass
    // (branch-predictable, no allocation, no sort).
    let na = a.memberships().iter().filter(|&&mu| t.accepts(mu)).count();
    if na == 0 {
        return None;
    }
    // `b` is the reusable side: its sorted layout is built once and
    // amortized over every evaluation against it.
    let pb = b.by_membership();
    let nb = pb.prefix_len(t);
    if nb == 0 {
        return None;
    }
    if na.saturating_mul(nb) <= DENSE_PAIR_BUDGET {
        return dense_scan_sq(a, t, pb, nb, upper_bound_sq);
    }
    let f = t.filter();
    if a.kd_tree_ready() && b.kd_tree_ready() {
        return bichromatic_closest_pair_sq(a.kd_tree(), b.kd_tree(), f, f, upper_bound_sq)
            .map(|r| r.dist_sq);
    }
    if a.kd_tree_ready() {
        // Rare shape (the throwaway side happens to carry a tree): probe
        // it from b's prefix instead of building a second tree.
        return single_tree_sq(a.kd_tree(), f, &pb.points()[..nb], upper_bound_sq);
    }
    single_tree_sq(b.kd_tree(), f, FilteredPoints::Raw(a, t), upper_bound_sq)
}

/// Point source for the single-tree path: either a raw membership-filtered
/// scan or an already-contiguous prefix.
enum FilteredPoints<'a, const D: usize> {
    Raw(&'a FuzzyObject<D>, Threshold),
    Prefix(&'a [Point<D>]),
}

impl<'a, const D: usize> From<&'a [Point<D>]> for FilteredPoints<'a, D> {
    fn from(pts: &'a [Point<D>]) -> Self {
        Self::Prefix(pts)
    }
}

/// Dense path: stream `a`'s raw points through the membership filter; each
/// accepted point runs a branchless columnar min-reduction over `b`'s
/// contiguous cut prefix. A point whose distance to the prefix's bounding
/// box already reaches the running best skips its row entirely — with the
/// engine's tight probe seeds, dominated evaluations collapse to a handful
/// of box tests (bitwise-safe: a skipped row's minimum cannot beat the
/// bound that skipped it).
fn dense_scan_sq<const D: usize>(
    a: &FuzzyObject<D>,
    t: Threshold,
    pb: &crate::object::MembershipPrefix<D>,
    nb: usize,
    upper_bound_sq: f64,
) -> Option<f64> {
    let (cut_lo, cut_hi) = pb.prefix_bounds(nb);
    let mut best = upper_bound_sq;
    let mut found = false;
    for (p, mu) in a.iter() {
        if !t.accepts(mu) {
            continue;
        }
        if p.dist_sq_to_box(&cut_lo, &cut_hi) >= best {
            continue;
        }
        let row_min = pb.min_dist_sq_to_prefix(p, nb);
        if row_min < best {
            best = row_min;
            found = true;
        }
    }
    found.then_some(best)
}

/// One seeded NN search per filtered point of the tree-less side, chaining
/// the running best as the next seed: after the first close hit, most
/// probes prune at the root.
fn single_tree_sq<'a, const D: usize>(
    tree: &KdTree<D>,
    filter: LevelFilter,
    cut: impl Into<FilteredPoints<'a, D>>,
    upper_bound_sq: f64,
) -> Option<f64> {
    let mut best = upper_bound_sq;
    let mut found = false;
    let mut visit = |p: &Point<D>| {
        if let Some((_, d2)) = tree.nn_sq_within(p, filter, best) {
            best = d2;
            found = true;
        }
    };
    match cut.into() {
        FilteredPoints::Raw(a, t) => {
            for (p, mu) in a.iter() {
                if t.accepts(mu) {
                    visit(p);
                }
            }
        }
        FilteredPoints::Prefix(pts) => {
            for p in pts {
                visit(p);
            }
        }
    }
    found.then_some(best)
}

/// Reference all-pairs evaluator (a `sqrt` per candidate pair; the bitwise
/// oracle every optimized path is property-tested against).
pub fn alpha_distance_brute<const D: usize>(
    a: &FuzzyObject<D>,
    b: &FuzzyObject<D>,
    t: Threshold,
) -> Option<f64> {
    let mut best: Option<f64> = None;
    for (p, mu) in a.iter() {
        if !t.accepts(mu) {
            continue;
        }
        for (q, nu) in b.iter() {
            if !t.accepts(nu) {
                continue;
            }
            let d = p.dist(q);
            best = Some(best.map_or(d, |x: f64| x.min(d)));
        }
    }
    best
}

/// Dispatch on [`DistanceAlgorithm`].
pub fn alpha_distance_with<const D: usize>(
    algo: DistanceAlgorithm,
    a: &FuzzyObject<D>,
    b: &FuzzyObject<D>,
    t: Threshold,
) -> Option<f64> {
    match algo {
        DistanceAlgorithm::BruteForce => alpha_distance_brute(a, b, t),
        DistanceAlgorithm::DualTree => {
            let f = t.filter();
            bichromatic_closest_pair_sq(a.kd_tree(), b.kd_tree(), f, f, f64::INFINITY)
                .map(|r| r.dist_sq.sqrt())
        }
        DistanceAlgorithm::Auto => alpha_distance(a, b, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;
    use fuzzy_geom::Point;

    fn blob(seed: u64, n: usize, cx: f64, cy: f64) -> FuzzyObject<2> {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = vec![Point::xy(cx, cy)];
        let mut mus = vec![1.0];
        for _ in 1..n {
            let r = rnd();
            let th = rnd() * std::f64::consts::TAU;
            pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
            mus.push(((1.0 - r) * 0.9 + 0.05).clamp(0.01, 1.0));
        }
        FuzzyObject::new(ObjectId(seed), pts, mus).unwrap()
    }

    #[test]
    fn adaptive_kernel_matches_brute_force_bitwise() {
        // 90×90 points straddles the brute budget across α, so this
        // exercises the dense path (high α) and tree paths (low α).
        for seed in 1..10u64 {
            let a = blob(seed, 80, 0.0, 0.0);
            let b = blob(seed + 100, 90, 3.0, 1.0);
            for v in [0.05, 0.3, 0.5, 0.8, 1.0] {
                for strict in [false, true] {
                    let t = Threshold { value: v, strict };
                    let fast = alpha_distance(&a, &b, t);
                    let slow = alpha_distance_brute(&a, &b, t);
                    match (fast, slow) {
                        (None, None) => {}
                        (Some(f), Some(s)) => {
                            assert_eq!(f.to_bits(), s.to_bits(), "seed {seed} t {t}: {f} vs {s}")
                        }
                        other => panic!("seed {seed} t {t}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn all_strategies_agree_bitwise() {
        for seed in [2u64, 5, 9] {
            let a = blob(seed, 120, 0.0, 0.0);
            let b = blob(seed + 7, 110, 2.0, -1.0);
            for v in [0.1, 0.5, 0.9] {
                let t = Threshold::at(v);
                let brute = alpha_distance_with(DistanceAlgorithm::BruteForce, &a, &b, t).unwrap();
                let dual = alpha_distance_with(DistanceAlgorithm::DualTree, &a, &b, t).unwrap();
                let auto = alpha_distance_with(DistanceAlgorithm::Auto, &a, &b, t).unwrap();
                assert_eq!(brute.to_bits(), dual.to_bits(), "seed {seed} α {v}");
                assert_eq!(brute.to_bits(), auto.to_bits(), "seed {seed} α {v}");
            }
        }
    }

    #[test]
    fn tree_paths_match_brute_above_the_dense_budget() {
        // Force the cut product above the real dispatch constant so the
        // non-dense strategies actually run, in every cache shape:
        // b-cached (the hot probe shape), a-cached (the rare symmetric
        // branch), neither (builds b's tree), and both (dual-tree).
        let n = 300; // 300×300 support cuts → 90 000 pairs
        let t = Threshold::at(0.05);
        let fresh = |id: u64| (blob(id, n, 0.0, 0.0), blob(id + 1, n, 1.5, 0.5));
        let (a0, b0) = fresh(31);
        let product = a0.by_membership().prefix_len(t) * b0.by_membership().prefix_len(t);
        assert!(product > super::DENSE_PAIR_BUDGET, "test objects too small: {product}");
        let want = alpha_distance_brute(&a0, &b0, t).unwrap();

        // Only b cached (probed object vs resident query).
        let (a, b) = fresh(31);
        b.kd_tree();
        assert!(!a.kd_tree_ready() && b.kd_tree_ready());
        assert_eq!(alpha_distance(&a, &b, t).unwrap().to_bits(), want.to_bits());
        // Only a cached.
        let (a, b) = fresh(31);
        a.kd_tree();
        assert_eq!(alpha_distance(&a, &b, t).unwrap().to_bits(), want.to_bits());
        // Neither cached: the kernel builds b's tree.
        let (a, b) = fresh(31);
        assert_eq!(alpha_distance(&a, &b, t).unwrap().to_bits(), want.to_bits());
        assert!(!a.kd_tree_ready() && b.kd_tree_ready());
        // Both cached: dual-tree.
        let (a, b) = fresh(31);
        a.kd_tree();
        b.kd_tree();
        assert_eq!(alpha_distance(&a, &b, t).unwrap().to_bits(), want.to_bits());
        // Seeded forms agree too: just above the answer preserves it
        // bitwise, at the answer prunes to None — on the tree paths.
        let (a, b) = fresh(31);
        b.kd_tree();
        let want_sq = alpha_distance_sq_bounded(&a, &b, t, f64::INFINITY).unwrap();
        assert_eq!(want_sq.sqrt().to_bits(), want.to_bits());
        assert_eq!(alpha_distance_sq_bounded(&a, &b, t, want_sq * (1.0 + 1e-9)), Some(want_sq));
        assert_eq!(alpha_distance_sq_bounded(&a, &b, t, want_sq), None);
    }

    #[test]
    fn monotone_in_alpha() {
        let a = blob(3, 100, 0.0, 0.0);
        let b = blob(4, 100, 4.0, 0.0);
        let mut prev = 0.0;
        for v in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let d = alpha_distance(&a, &b, Threshold::at(v)).unwrap();
            assert!(d >= prev - 1e-12, "α-distance decreased at {v}");
            prev = d;
        }
    }

    #[test]
    fn kernel_distance_uses_only_kernel_points() {
        let a = FuzzyObject::new(
            ObjectId(1),
            vec![Point::xy(0.0, 0.0), Point::xy(5.0, 0.0)],
            vec![1.0, 0.2],
        )
        .unwrap();
        let b = FuzzyObject::new(
            ObjectId(2),
            vec![Point::xy(10.0, 0.0), Point::xy(6.0, 0.0)],
            vec![1.0, 0.3],
        )
        .unwrap();
        // At the kernel level only (0,0) and (10,0) qualify.
        assert_eq!(alpha_distance(&a, &b, Threshold::kernel()).unwrap(), 10.0);
        // At support level the closest pair is (5,0)-(6,0).
        assert_eq!(alpha_distance(&a, &b, Threshold::support()).unwrap(), 1.0);
    }

    #[test]
    fn strict_top_threshold_yields_none() {
        let a = blob(7, 30, 0.0, 0.0);
        let b = blob(8, 30, 1.0, 0.0);
        assert_eq!(alpha_distance(&a, &b, Threshold::above(1.0)), None);
    }

    #[test]
    fn bounded_evaluation_respects_seed() {
        let a = blob(9, 60, 0.0, 0.0);
        let b = blob(10, 60, 5.0, 0.0);
        let t = Threshold::at(0.5);
        let exact = alpha_distance(&a, &b, t).unwrap();
        assert_eq!(alpha_distance_bounded(&a, &b, t, exact + 0.5).unwrap(), exact);
        assert_eq!(alpha_distance_bounded(&a, &b, t, exact * 0.9), None);
    }

    #[test]
    fn squared_bounded_form_is_consistent() {
        let a = blob(13, 70, 0.0, 0.0);
        let b = blob(14, 70, 3.0, 2.0);
        let t = Threshold::at(0.4);
        let exact = alpha_distance(&a, &b, t).unwrap();
        let sq = alpha_distance_sq_bounded(&a, &b, t, f64::INFINITY).unwrap();
        assert_eq!(sq.sqrt().to_bits(), exact.to_bits());
        // A squared seed just above the squared answer preserves it.
        assert_eq!(alpha_distance_sq_bounded(&a, &b, t, sq * (1.0 + 1e-9)), Some(sq));
        // A squared seed at the answer prunes everything (strict compare).
        assert_eq!(alpha_distance_sq_bounded(&a, &b, t, sq), None);
    }

    #[test]
    fn dispatch_helper() {
        let a = blob(11, 40, 0.0, 0.0);
        let b = blob(12, 40, 2.0, 2.0);
        let t = Threshold::at(0.4);
        assert_eq!(
            alpha_distance_with(DistanceAlgorithm::BruteForce, &a, &b, t),
            alpha_distance_with(DistanceAlgorithm::DualTree, &a, &b, t)
        );
        assert_eq!(
            alpha_distance_with(DistanceAlgorithm::BruteForce, &a, &b, t),
            alpha_distance_with(DistanceAlgorithm::Auto, &a, &b, t)
        );
    }
}
