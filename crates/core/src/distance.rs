//! α-distance evaluation (Definition 3):
//! `d_α(A, B) = min_{⟨a,b⟩ ∈ A_α×B_α} ‖a − b‖`.
//!
//! Two evaluators are provided:
//!
//! * [`alpha_distance_brute`] — the quadratic all-pairs scan the paper
//!   describes as the naive cost ("the evaluation of α-distance is
//!   quadratic with the number of points"); kept as the test oracle and
//!   for the `abl-dist` ablation.
//! * [`alpha_distance`] — dual-tree bichromatic closest pair over the
//!   objects' cached kd-trees with membership-level pruning; near
//!   `O(n log n)` in practice.

use crate::object::FuzzyObject;
use crate::threshold::Threshold;
use fuzzy_geom::bichromatic_closest_pair;

/// Evaluation strategy selector, mainly for benchmarks and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistanceAlgorithm {
    /// All-pairs scan, `O(|A_α|·|B_α|)`.
    BruteForce,
    /// Dual-tree branch and bound over kd-trees.
    DualTree,
}

/// α-distance via dual-tree closest pair. Returns `None` when either cut is
/// empty under `t` (possible only for strict thresholds at the top level).
pub fn alpha_distance<const D: usize>(
    a: &FuzzyObject<D>,
    b: &FuzzyObject<D>,
    t: Threshold,
) -> Option<f64> {
    alpha_distance_bounded(a, b, t, f64::INFINITY)
}

/// α-distance with a seed upper bound: pairs at distance `≥ upper_bound`
/// are pruned. Returns `None` when no qualifying pair closer than the seed
/// exists — callers seeding with a known-valid upper bound (Lemma 1) should
/// treat `None` as "the seed itself is the distance witness region".
pub fn alpha_distance_bounded<const D: usize>(
    a: &FuzzyObject<D>,
    b: &FuzzyObject<D>,
    t: Threshold,
    upper_bound: f64,
) -> Option<f64> {
    let f = t.filter();
    bichromatic_closest_pair(a.kd_tree(), b.kd_tree(), f, f, upper_bound).map(|r| r.dist)
}

/// Reference all-pairs evaluator.
pub fn alpha_distance_brute<const D: usize>(
    a: &FuzzyObject<D>,
    b: &FuzzyObject<D>,
    t: Threshold,
) -> Option<f64> {
    let mut best: Option<f64> = None;
    for (p, mu) in a.iter() {
        if !t.accepts(mu) {
            continue;
        }
        for (q, nu) in b.iter() {
            if !t.accepts(nu) {
                continue;
            }
            let d = p.dist(q);
            best = Some(best.map_or(d, |x: f64| x.min(d)));
        }
    }
    best
}

/// Dispatch on [`DistanceAlgorithm`].
pub fn alpha_distance_with<const D: usize>(
    algo: DistanceAlgorithm,
    a: &FuzzyObject<D>,
    b: &FuzzyObject<D>,
    t: Threshold,
) -> Option<f64> {
    match algo {
        DistanceAlgorithm::BruteForce => alpha_distance_brute(a, b, t),
        DistanceAlgorithm::DualTree => alpha_distance(a, b, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;
    use fuzzy_geom::Point;

    fn blob(seed: u64, n: usize, cx: f64, cy: f64) -> FuzzyObject<2> {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = vec![Point::xy(cx, cy)];
        let mut mus = vec![1.0];
        for _ in 1..n {
            let r = rnd();
            let th = rnd() * std::f64::consts::TAU;
            pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
            mus.push(((1.0 - r) * 0.9 + 0.05).clamp(0.01, 1.0));
        }
        FuzzyObject::new(ObjectId(seed), pts, mus).unwrap()
    }

    #[test]
    fn dual_tree_matches_brute_force() {
        for seed in 1..10u64 {
            let a = blob(seed, 80, 0.0, 0.0);
            let b = blob(seed + 100, 90, 3.0, 1.0);
            for v in [0.05, 0.3, 0.5, 0.8, 1.0] {
                for strict in [false, true] {
                    let t = Threshold { value: v, strict };
                    let fast = alpha_distance(&a, &b, t);
                    let slow = alpha_distance_brute(&a, &b, t);
                    match (fast, slow) {
                        (None, None) => {}
                        (Some(f), Some(s)) => {
                            assert!((f - s).abs() < 1e-12, "seed {seed} t {t}: {f} vs {s}")
                        }
                        other => panic!("seed {seed} t {t}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn monotone_in_alpha() {
        let a = blob(3, 100, 0.0, 0.0);
        let b = blob(4, 100, 4.0, 0.0);
        let mut prev = 0.0;
        for v in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let d = alpha_distance(&a, &b, Threshold::at(v)).unwrap();
            assert!(d >= prev - 1e-12, "α-distance decreased at {v}");
            prev = d;
        }
    }

    #[test]
    fn kernel_distance_uses_only_kernel_points() {
        let a = FuzzyObject::new(
            ObjectId(1),
            vec![Point::xy(0.0, 0.0), Point::xy(5.0, 0.0)],
            vec![1.0, 0.2],
        )
        .unwrap();
        let b = FuzzyObject::new(
            ObjectId(2),
            vec![Point::xy(10.0, 0.0), Point::xy(6.0, 0.0)],
            vec![1.0, 0.3],
        )
        .unwrap();
        // At the kernel level only (0,0) and (10,0) qualify.
        assert_eq!(alpha_distance(&a, &b, Threshold::kernel()).unwrap(), 10.0);
        // At support level the closest pair is (5,0)-(6,0).
        assert_eq!(alpha_distance(&a, &b, Threshold::support()).unwrap(), 1.0);
    }

    #[test]
    fn strict_top_threshold_yields_none() {
        let a = blob(7, 30, 0.0, 0.0);
        let b = blob(8, 30, 1.0, 0.0);
        assert_eq!(alpha_distance(&a, &b, Threshold::above(1.0)), None);
    }

    #[test]
    fn bounded_evaluation_respects_seed() {
        let a = blob(9, 60, 0.0, 0.0);
        let b = blob(10, 60, 5.0, 0.0);
        let t = Threshold::at(0.5);
        let exact = alpha_distance(&a, &b, t).unwrap();
        assert_eq!(alpha_distance_bounded(&a, &b, t, exact + 0.5).unwrap(), exact);
        assert_eq!(alpha_distance_bounded(&a, &b, t, exact * 0.9), None);
    }

    #[test]
    fn dispatch_helper() {
        let a = blob(11, 40, 0.0, 0.0);
        let b = blob(12, 40, 2.0, 2.0);
        let t = Threshold::at(0.4);
        assert_eq!(
            alpha_distance_with(DistanceAlgorithm::BruteForce, &a, &b, t),
            alpha_distance_with(DistanceAlgorithm::DualTree, &a, &b, t)
        );
    }
}
