//! The fuzzy object model of *K-Nearest Neighbor Search for Fuzzy Objects*
//! (Zheng, Fung, Zhou — SIGMOD 2010).
//!
//! A fuzzy object (Definition 1) is a finite set of probabilistic spatial
//! points `A = {⟨a, µ_A(a)⟩ | µ_A(a) > 0}`. This crate provides:
//!
//! * [`FuzzyObject`] — the object itself, with its support set, kernel set
//!   and α-cuts (Definition 2), validated so that the kernel is never empty
//!   (the paper's standing assumption).
//! * [`Threshold`] — a probability threshold with exact *strict* semantics,
//!   implementing the `α* + ε` stepping of Algorithms 3/5 without floating
//!   point epsilons.
//! * [`boundary`] — the per-dimension boundary functions `δ(α)` of §3.2.
//! * [`ObjectSummary`] — the compact per-object metadata stored in R-tree
//!   leaves: support MBR, kernel MBR, optimal conservative lines `L_opt`
//!   and the kernel representative point; including the approximate α-cut
//!   MBR `M_A(α)*` of Equation (2).
//! * [`distance`] — α-distance evaluators (Definition 3): a quadratic
//!   brute-force reference and the kd dual-tree closest-pair evaluator.
//! * [`metric`] — the pluggable [`Metric`] seam the query layer prunes
//!   through: [`L2`] (every hook delegating to the specialized kernels)
//!   and [`GraphMetric`] (shortest paths over a [`RoadNetwork`]).
//! * [`DistanceProfile`] — the full step function `α ↦ d_α(A, Q)` and the
//!   critical probability set `Ω_Q(A)` (Definition 7).

#![warn(missing_docs)]

pub mod boundary;
pub mod distance;
pub mod error;
pub mod metric;
pub mod object;
pub mod profile;
pub mod summary;
pub mod threshold;

pub use error::ModelError;
pub use metric::{GraphMetric, Metric, RoadNetwork, L2};
pub use object::{FuzzyObject, FuzzyObjectBuilder, MembershipPrefix, ObjectId};
pub use profile::DistanceProfile;
pub use summary::ObjectSummary;
pub use threshold::Threshold;

/// Dimensionality used by the paper's evaluation (pixel masks).
pub type FuzzyObject2 = FuzzyObject<2>;
/// 2-d object summary.
pub type ObjectSummary2 = ObjectSummary<2>;
