//! Model-level validation errors.

use std::fmt;

/// Errors raised when constructing fuzzy objects.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// An object must contain at least one point.
    EmptyObject,
    /// Membership values must lie in `(0, 1]`.
    InvalidMembership {
        /// Index of the offending point.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Index of the offending point.
        index: usize,
    },
    /// The paper assumes every fuzzy object has a non-empty kernel
    /// (`∃a : µ(a) = 1`); see Section 2.1.
    EmptyKernel,
    /// Points and membership slices differ in length.
    LengthMismatch {
        /// Number of points supplied.
        points: usize,
        /// Number of membership values supplied.
        memberships: usize,
    },
    /// A membership-descending columnar record violated its layout
    /// contract (bad permutation, unsorted memberships, short columns).
    InvalidColumnarLayout {
        /// What was wrong with the layout.
        reason: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyObject => write!(f, "fuzzy object must contain at least one point"),
            Self::InvalidMembership { index, value } => {
                write!(f, "membership value {value} at point {index} is outside (0, 1]")
            }
            Self::NonFiniteCoordinate { index } => {
                write!(f, "point {index} has a non-finite coordinate")
            }
            Self::EmptyKernel => write!(
                f,
                "fuzzy object has an empty kernel (no point with membership 1); \
                 normalize memberships or use FuzzyObjectBuilder::normalize_max"
            ),
            Self::LengthMismatch { points, memberships } => {
                write!(f, "length mismatch: {points} points vs {memberships} membership values")
            }
            Self::InvalidColumnarLayout { reason } => {
                write!(f, "invalid columnar layout: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}
