//! Per-object summaries stored in R-tree leaf entries (Sections 3.1–3.4).
//!
//! The paper keeps fuzzy objects on disk and holds only compact metadata in
//! the index: the support MBR (basic search), plus — for the optimized
//! algorithms — the kernel MBR, the optimal conservative lines `L_opt` of
//! every dimension side, and the kernel representative point `rep(A)`.

use crate::boundary::BoundaryFunctions;
use crate::metric::Metric;
use crate::object::{FuzzyObject, ObjectId};
use crate::threshold::Threshold;
use fuzzy_geom::{fit_conservative_line, ConservativeLine, Mbr, Point};

/// Compact, index-resident description of one fuzzy object.
#[derive(Clone, Copy, Debug)]
pub struct ObjectSummary<const D: usize> {
    /// Object identifier (the "pointer to the actual location on disk").
    pub id: ObjectId,
    /// MBR of the support set, `M_A(0)`.
    pub support_mbr: Mbr<D>,
    /// MBR of the kernel set, `M_A(1)`.
    pub kernel_mbr: Mbr<D>,
    /// Conservative lines for the upper side of each dimension
    /// (`m^{i+}_opt, t^{i+}_opt`).
    pub upper_lines: [ConservativeLine; D],
    /// Conservative lines for the lower side of each dimension.
    pub lower_lines: [ConservativeLine; D],
    /// Kernel representative point `rep(A)` (§3.4).
    pub rep: Point<D>,
    /// Number of probabilistic points in the object.
    pub point_count: u32,
}

impl<const D: usize> ObjectSummary<D> {
    /// Build the summary from an object: computes the boundary functions and
    /// fits one optimal conservative line per dimension side.
    pub fn from_object(obj: &FuzzyObject<D>) -> Self {
        let bf = BoundaryFunctions::compute(obj);
        let mut upper_lines = [ConservativeLine::ZERO; D];
        let mut lower_lines = [ConservativeLine::ZERO; D];
        for i in 0..D {
            upper_lines[i] = sanitize(fit_conservative_line(&bf.upper_samples(i)), &bf, i, true);
            lower_lines[i] = sanitize(fit_conservative_line(&bf.lower_samples(i)), &bf, i, false);
        }
        Self {
            id: obj.id(),
            support_mbr: obj.support_mbr(),
            kernel_mbr: obj.kernel_mbr(),
            upper_lines,
            lower_lines,
            rep: obj.rep_point(),
            point_count: obj.len() as u32,
        }
    }

    /// The approximated α-cut MBR `M_A(α)*` of Equation (2):
    ///
    /// ```text
    /// M^{i+}(α)* = min{ M^{i+}(1) + (m^{i+}·α + t^{i+}),  M^{i+}(0) }
    /// M^{i−}(α)* = max{ M^{i−}(1) − (m^{i−}·α + t^{i−}),  M^{i−}(0) }
    /// ```
    ///
    /// Guaranteed to enclose the exact cut MBR `M_A(α)` and to be enclosed
    /// by the support MBR. Strict thresholds evaluate the lines at the same
    /// abscissa, which is conservative because the strict cut is a subset of
    /// the inclusive one.
    pub fn approx_cut_mbr(&self, t: Threshold) -> Mbr<D> {
        let alpha = t.value;
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            let up = self.upper_lines[i].eval(alpha).max(0.0);
            let dn = self.lower_lines[i].eval(alpha).max(0.0);
            hi[i] =
                (self.kernel_mbr.hi(i) + up).min(self.support_mbr.hi(i)).max(self.kernel_mbr.hi(i));
            lo[i] =
                (self.kernel_mbr.lo(i) - dn).max(self.support_mbr.lo(i)).min(self.kernel_mbr.lo(i));
        }
        Mbr::new(lo, hi)
    }

    /// Lower bound `d⁻_α(A, Q) = MinDist(M_A(α)*, M_Q(α))` (§3.2) against a
    /// query cut MBR computed exactly by the caller.
    #[inline]
    pub fn lower_bound_dist(&self, query_cut: &Mbr<D>, t: Threshold) -> f64 {
        self.lower_bound_dist_sq(query_cut, t).sqrt()
    }

    /// Squared form of [`ObjectSummary::lower_bound_dist`] — the form the
    /// best-first traversal keys its heap with (no `sqrt` on the hot path).
    #[inline]
    pub fn lower_bound_dist_sq(&self, query_cut: &Mbr<D>, t: Threshold) -> f64 {
        self.approx_cut_mbr(t).min_dist_sq(query_cut)
    }

    /// Loose upper bound `MaxDist(M_A(α)*, M_Q(α))` (Eq. 3) used by the lazy
    /// probe before the improved §3.4 bound is applied.
    #[inline]
    pub fn upper_bound_dist(&self, query_cut: &Mbr<D>, t: Threshold) -> f64 {
        self.upper_bound_dist_sq(query_cut, t).sqrt()
    }

    /// Squared form of [`ObjectSummary::upper_bound_dist`].
    #[inline]
    pub fn upper_bound_dist_sq(&self, query_cut: &Mbr<D>, t: Threshold) -> f64 {
        self.approx_cut_mbr(t).max_dist_sq(query_cut)
    }

    /// Improved upper bound `d⁺_α(A, Q) = min_{q ∈ Q'_α} ‖rep(A) − q‖`
    /// (Lemma 1): the distance from the kernel representative to the closest
    /// of the sampled query points. Returns `+∞` for an empty sample.
    pub fn rep_upper_bound(&self, query_samples: &[Point<D>]) -> f64 {
        self.rep_upper_bound_sq(query_samples).sqrt()
    }

    /// Squared form of [`ObjectSummary::rep_upper_bound`]: the minimum
    /// squared distance from `rep(A)` to the sampled query points (`+∞`
    /// for an empty sample).
    pub fn rep_upper_bound_sq(&self, query_samples: &[Point<D>]) -> f64 {
        query_samples.iter().map(|q| self.rep.dist_sq(q)).fold(f64::INFINITY, f64::min)
    }

    /// [`ObjectSummary::lower_bound_dist_sq`] under an arbitrary metric:
    /// the metric's box lower bound against the Eq. 2 approximate cut MBR.
    /// Under [`crate::metric::L2`] this is bitwise the specialized form;
    /// metrics without rectangle bounds degrade soundly to `0`.
    #[inline]
    pub fn lower_bound_dist_sq_in<M: Metric<D> + ?Sized>(
        &self,
        metric: &M,
        query_cut: &Mbr<D>,
        t: Threshold,
    ) -> f64 {
        metric.min_box_dist_sq(&self.approx_cut_mbr(t), query_cut)
    }

    /// [`ObjectSummary::rep_upper_bound_sq`] under an arbitrary metric:
    /// the minimum squared metric distance from `rep(A)` to the sampled
    /// query points. Sound for every α because `rep(A)` is a kernel point
    /// and the samples come from the query's cut (Lemma 1 needs only the
    /// metric axioms).
    #[inline]
    pub fn rep_upper_bound_sq_in<M: Metric<D> + ?Sized>(
        &self,
        metric: &M,
        query_samples: &[Point<D>],
    ) -> f64 {
        query_samples.iter().map(|q| metric.dist_sq(&self.rep, q)).fold(f64::INFINITY, f64::min)
    }
}

/// Defensive post-processing of a fitted line: boundary functions are
/// non-increasing, so the optimal line must have non-positive slope; a
/// positive slope can only arise from floating-point degeneracies, in which
/// case we fall back to the (always conservative) horizontal line through
/// the largest gap.
fn sanitize<const D: usize>(
    line: ConservativeLine,
    bf: &BoundaryFunctions<D>,
    dim: usize,
    upper: bool,
) -> ConservativeLine {
    if line.m <= 0.0 && line.t.is_finite() {
        return line;
    }
    let max_gap = if upper {
        bf.upper.iter().map(|r| r[dim]).fold(0.0, f64::max)
    } else {
        bf.lower.iter().map(|r| r[dim]).fold(0.0, f64::max)
    };
    ConservativeLine { m: 0.0, t: max_gap }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_geom::Point;

    fn ring_object(seed: u64, n: usize) -> FuzzyObject<2> {
        // Points on concentric rings, membership decreasing outwards.
        let mut pts = Vec::with_capacity(n);
        let mut mus = Vec::with_capacity(n);
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        pts.push(Point::xy(0.0, 0.0));
        mus.push(1.0);
        for _ in 1..n {
            let r = rnd() * 2.0;
            let theta = rnd() * std::f64::consts::TAU;
            pts.push(Point::xy(r * theta.cos(), r * theta.sin()));
            // Membership decays with radius, quantized to 0.05 steps.
            let mu = ((1.0 - r / 2.2).max(0.05) * 20.0).round() / 20.0;
            mus.push(mu.clamp(0.05, 1.0));
        }
        FuzzyObject::new(ObjectId(seed), pts, mus).unwrap()
    }

    #[test]
    fn approx_mbr_sandwiches_exact_cut() {
        for seed in 1..20u64 {
            let obj = ring_object(seed, 120);
            let s = ObjectSummary::from_object(&obj);
            for v in [0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95, 1.0] {
                for strict in [false, true] {
                    let t = Threshold { value: v, strict };
                    let approx = s.approx_cut_mbr(t);
                    assert!(
                        s.support_mbr.contains_mbr(&approx),
                        "seed {seed} t {t}: approx not within support"
                    );
                    assert!(
                        approx.contains_mbr(&s.kernel_mbr),
                        "seed {seed} t {t}: approx misses kernel"
                    );
                    if let Some(exact) = obj.cut_mbr(t) {
                        assert!(
                            approx.contains_mbr(&exact.inflate(-1e-12)),
                            "seed {seed} t {t}: approx {approx:?} misses exact {exact:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn approx_shrinks_with_alpha() {
        let obj = ring_object(5, 200);
        let s = ObjectSummary::from_object(&obj);
        let mut prev_area = f64::INFINITY;
        for v in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
            let area = s.approx_cut_mbr(Threshold::at(v.max(f64::MIN_POSITIVE))).area();
            assert!(area <= prev_area + 1e-9, "area grew at α={v}");
            prev_area = area;
        }
    }

    #[test]
    fn tighter_than_support_at_high_alpha() {
        // The whole point of §3.2: at high α the approximation beats the
        // support MBR that the basic algorithm uses.
        let obj = ring_object(9, 300);
        let s = ObjectSummary::from_object(&obj);
        let at_09 = s.approx_cut_mbr(Threshold::at(0.9));
        assert!(at_09.area() < s.support_mbr.area() * 0.9);
    }

    #[test]
    fn lower_bound_below_upper_bound() {
        let a = ring_object(11, 100);
        let s = ObjectSummary::from_object(&a);
        let query_cut = Mbr::new([5.0, 5.0], [6.0, 6.0]);
        for v in [0.1, 0.5, 0.9] {
            let t = Threshold::at(v);
            assert!(s.lower_bound_dist(&query_cut, t) <= s.upper_bound_dist(&query_cut, t));
        }
    }

    #[test]
    fn rep_upper_bound_is_min_over_samples() {
        let a = ring_object(13, 50);
        let s = ObjectSummary::from_object(&a);
        let samples = [Point::xy(3.0, 4.0), Point::xy(1.0, 1.0)];
        let d = s.rep_upper_bound(&samples);
        let want = s.rep.dist(&samples[1]).min(s.rep.dist(&samples[0]));
        assert_eq!(d, want);
        assert_eq!(s.rep_upper_bound(&[]), f64::INFINITY);
    }

    #[test]
    fn lines_have_non_positive_slope() {
        for seed in 1..10u64 {
            let obj = ring_object(seed * 3 + 1, 150);
            let s = ObjectSummary::from_object(&obj);
            for i in 0..2 {
                assert!(s.upper_lines[i].m <= 0.0);
                assert!(s.lower_lines[i].m <= 0.0);
            }
        }
    }
}
