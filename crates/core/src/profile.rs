//! The α-distance profile: the full step function `α ↦ d_α(A, Q)` and the
//! critical probability set `Ω_Q(A)` (Definition 7).
//!
//! Because cuts only change composition at distinct membership values, the
//! α-distance is a left-continuous staircase, constant on intervals
//! `(ℓ_{j-1}, ℓ_j]` whose right endpoints are exactly the critical
//! probabilities — "the end points of the horizontal line segments on the
//! curve of d_α(A,Q)" (Figure 8). The RKNN algorithms (Section 4) consume
//! this structure directly.
//!
//! Computation avoids the naive `O(|A|·|Q|)` pair enumeration with a
//! descending sweep: walking the union of distinct levels from 1 down to
//! the minimum, each point "activates" exactly once and asks the opposite
//! kd-tree for its level-filtered nearest neighbour; the running minimum at
//! each level is `d_ℓ`.

use crate::object::FuzzyObject;
use crate::threshold::Threshold;
use fuzzy_geom::LevelFilter;

/// One step of the staircase: `d_α = dist` for `α ∈ (prev_level, level]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Right endpoint of the constancy interval — a critical probability.
    pub level: f64,
    /// The α-distance on the interval.
    pub dist: f64,
}

/// The α-distance profile between a fixed pair of objects.
///
/// Segments are ascending in `level` and strictly increasing in `dist`;
/// the final segment always has `level == 1.0` (kernels are non-empty, so
/// `d_α` is defined on all of `(0, 1]`).
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceProfile {
    segments: Vec<Segment>,
}

impl DistanceProfile {
    /// Compute the profile with the descending kd sweep.
    pub fn compute<const D: usize>(a: &FuzzyObject<D>, q: &FuzzyObject<D>) -> Self {
        // Union of distinct levels, descending.
        let mut levels: Vec<f64> = a.memberships().iter().chain(q.memberships()).copied().collect();
        levels.sort_by(|x, y| y.total_cmp(x));
        levels.dedup();

        // The cached membership-descending prefix layouts make the
        // activation frontier a single cursor per object — no per-call
        // index sort.
        let pa = a.by_membership();
        let pq = q.by_membership();

        let (tree_a, tree_q) = (a.kd_tree(), q.kd_tree());
        let (mut ca, mut cq) = (0usize, 0usize);
        let mut best = f64::INFINITY;
        let mut raw: Vec<Segment> = Vec::with_capacity(levels.len());

        for &level in &levels {
            let filter = LevelFilter::at_least(level);
            // Activate the new A-points and probe Q's tree.
            while ca < pa.points().len() && pa.memberships()[ca] >= level {
                let p = &pa.points()[ca];
                if let Some((_, d)) = tree_q.nn_filtered(p, filter) {
                    if d < best {
                        best = d;
                    }
                }
                ca += 1;
            }
            // Activate the new Q-points and probe A's tree.
            while cq < pq.points().len() && pq.memberships()[cq] >= level {
                let p = &pq.points()[cq];
                if let Some((_, d)) = tree_a.nn_filtered(p, filter) {
                    if d < best {
                        best = d;
                    }
                }
                cq += 1;
            }
            if best.is_finite() {
                raw.push(Segment { level, dist: best });
            }
        }
        debug_assert!(!raw.is_empty(), "kernels are non-empty");
        Self::from_raw_descending(raw)
    }

    /// Reference implementation: enumerate every pair, build the Pareto
    /// frontier of `(min(µ_a, µ_q), dist)`. `O(|A|·|Q|)` — tests only.
    pub fn compute_brute<const D: usize>(a: &FuzzyObject<D>, q: &FuzzyObject<D>) -> Self {
        Self::from_pairs(
            a.iter().flat_map(|(p, mu)| q.iter().map(move |(r, nu)| (mu.min(nu), p.dist(r)))),
        )
    }

    /// Build a profile from raw `(level, dist)` pairs — one per candidate
    /// point pair, with `level = min(µ_a, µ_q)` and `dist` measured under
    /// whatever metric produced them. This is the metric-generic profile
    /// constructor: [`crate::metric::Metric::distance_profile`] defaults to
    /// feeding it the full pair enumeration.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let pairs: Vec<(f64, f64)> = pairs.into_iter().collect();
        // Distinct levels descending.
        let mut levels: Vec<f64> = pairs.iter().map(|&(l, _)| l).collect();
        levels.sort_by(|x, y| y.total_cmp(x));
        levels.dedup();
        let mut raw = Vec::with_capacity(levels.len());
        for &level in &levels {
            let best = pairs
                .iter()
                .filter(|&&(l, _)| l >= level)
                .map(|&(_, d)| d)
                .fold(f64::INFINITY, f64::min);
            if best.is_finite() {
                raw.push(Segment { level, dist: best });
            }
        }
        Self::from_raw_descending(raw)
    }

    /// Compress a descending `(level, running-min)` trace into ascending
    /// segments with strictly increasing distances, keeping for each
    /// distance the *largest* level at which it holds (the critical value).
    fn from_raw_descending(mut raw: Vec<Segment>) -> Self {
        raw.reverse(); // ascending by level, dist non-decreasing
        let mut segments: Vec<Segment> = Vec::with_capacity(raw.len());
        for s in raw {
            match segments.last_mut() {
                Some(last) if s.dist <= last.dist => {
                    // Same distance persists to a higher level: extend.
                    last.level = s.level;
                }
                _ => segments.push(s),
            }
        }
        Self { segments }
    }

    /// The staircase segments, ascending.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The critical probability set `Ω_Q(A)` (Definition 7), ascending.
    /// Always ends with `1.0`.
    pub fn critical_set(&self) -> impl Iterator<Item = f64> + '_ {
        self.segments.iter().map(|s| s.level)
    }

    /// `d_α(A, Q)` at the given threshold; `None` only for strict
    /// thresholds at or above the top level.
    pub fn value_at(&self, t: Threshold) -> Option<f64> {
        self.segment_covering(t).map(|s| s.dist)
    }

    /// The smallest critical probability whose segment covers `t`; this is
    /// `β_A = min{α' ∈ Ω_Q(A) | α' ≥ α}` of Algorithm 3 (for inclusive
    /// thresholds) and its strict analogue for the `α* + ε` steps.
    pub fn next_critical(&self, t: Threshold) -> Option<f64> {
        self.segment_covering(t).map(|s| s.level)
    }

    /// The largest critical probability β with `d_β(A,Q) < bound`, i.e. how
    /// far the object provably stays within distance `bound` (Lemma 4 /
    /// Algorithm 5 line 8). `None` when even the first segment is ≥ bound.
    pub fn max_level_with_dist_below(&self, bound: f64) -> Option<f64> {
        let mut out = None;
        for s in &self.segments {
            if s.dist < bound {
                out = Some(s.level);
            } else {
                break;
            }
        }
        out
    }

    /// The segment whose interval `(prev, level]` contains the threshold.
    fn segment_covering(&self, t: Threshold) -> Option<&Segment> {
        let idx = self.segments.partition_point(|s| {
            if t.strict {
                s.level <= t.value
            } else {
                s.level < t.value
            }
        });
        self.segments.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::alpha_distance_brute;
    use crate::object::ObjectId;
    use fuzzy_geom::Point;

    fn blob(seed: u64, n: usize, cx: f64, cy: f64, quant: f64) -> FuzzyObject<2> {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = vec![Point::xy(cx, cy)];
        let mut mus = vec![1.0];
        for _ in 1..n {
            let r = rnd() * 1.5;
            let th = rnd() * std::f64::consts::TAU;
            pts.push(Point::xy(cx + r * th.cos(), cy + r * th.sin()));
            let mu = ((1.0 - r / 1.6) * quant).round().max(1.0) / quant;
            mus.push(mu.clamp(1.0 / quant, 1.0));
        }
        FuzzyObject::new(ObjectId(seed), pts, mus).unwrap()
    }

    #[test]
    fn sweep_matches_brute_profile() {
        for seed in 1..8u64 {
            let a = blob(seed, 60, 0.0, 0.0, 10.0);
            let q = blob(seed + 50, 70, 2.5, 0.5, 10.0);
            let fast = DistanceProfile::compute(&a, &q);
            let slow = DistanceProfile::compute_brute(&a, &q);
            assert_eq!(fast.segments().len(), slow.segments().len(), "seed {seed}");
            for (f, s) in fast.segments().iter().zip(slow.segments()) {
                assert!((f.level - s.level).abs() < 1e-12, "seed {seed}");
                assert!((f.dist - s.dist).abs() < 1e-12, "seed {seed}");
            }
        }
    }

    #[test]
    fn profile_values_match_pointwise_distance() {
        let a = blob(3, 50, 0.0, 0.0, 8.0);
        let q = blob(4, 50, 3.0, 1.0, 8.0);
        let prof = DistanceProfile::compute(&a, &q);
        for v in [0.05, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0] {
            for strict in [false, true] {
                let t = Threshold { value: v, strict };
                let via_profile = prof.value_at(t);
                let direct = alpha_distance_brute(&a, &q, t);
                match (via_profile, direct) {
                    (None, None) => {}
                    (Some(p), Some(d)) => {
                        assert!((p - d).abs() < 1e-12, "t {t}: {p} vs {d}")
                    }
                    other => panic!("t {t}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn staircase_is_strictly_increasing_and_ends_at_one() {
        let a = blob(5, 80, 0.0, 0.0, 12.0);
        let q = blob(6, 80, 2.0, 2.0, 12.0);
        let prof = DistanceProfile::compute(&a, &q);
        let segs = prof.segments();
        assert_eq!(segs.last().unwrap().level, 1.0);
        for w in segs.windows(2) {
            assert!(w[0].level < w[1].level);
            assert!(w[0].dist < w[1].dist);
        }
    }

    #[test]
    fn hand_computed_staircase() {
        // A: kernel at x=0, one point µ=.4 at x=2.
        let a = FuzzyObject::new(
            ObjectId(1),
            vec![Point::xy(0.0, 0.0), Point::xy(2.0, 0.0)],
            vec![1.0, 0.4],
        )
        .unwrap();
        // Q: kernel at x=10, one point µ=.6 at x=7.
        let q = FuzzyObject::new(
            ObjectId(2),
            vec![Point::xy(10.0, 0.0), Point::xy(7.0, 0.0)],
            vec![1.0, 0.6],
        )
        .unwrap();
        // d_α: α ≤ .4 → |2-7| = 5; .4 < α ≤ .6 → |0-7| = 7; .6 < α → 10.
        let prof = DistanceProfile::compute(&a, &q);
        assert_eq!(
            prof.segments(),
            &[
                Segment { level: 0.4, dist: 5.0 },
                Segment { level: 0.6, dist: 7.0 },
                Segment { level: 1.0, dist: 10.0 },
            ]
        );
        // Critical set.
        let omega: Vec<f64> = prof.critical_set().collect();
        assert_eq!(omega, vec![0.4, 0.6, 1.0]);
        // Threshold lookups, inclusive and strict.
        assert_eq!(prof.value_at(Threshold::at(0.4)), Some(5.0));
        assert_eq!(prof.value_at(Threshold::above(0.4)), Some(7.0));
        assert_eq!(prof.value_at(Threshold::at(1.0)), Some(10.0));
        assert_eq!(prof.value_at(Threshold::above(1.0)), None);
        // next_critical: β_A of Algorithm 3.
        assert_eq!(prof.next_critical(Threshold::at(0.3)), Some(0.4));
        assert_eq!(prof.next_critical(Threshold::above(0.4)), Some(0.6));
        assert_eq!(prof.next_critical(Threshold::at(0.95)), Some(1.0));
        // ICR helper: how far does d stay under 7.5?
        assert_eq!(prof.max_level_with_dist_below(7.5), Some(0.6));
        assert_eq!(prof.max_level_with_dist_below(5.0), None);
        assert_eq!(prof.max_level_with_dist_below(100.0), Some(1.0));
    }

    #[test]
    fn value_below_first_level_is_support_distance() {
        let a = blob(9, 40, 0.0, 0.0, 5.0);
        let q = blob(10, 40, 4.0, 0.0, 5.0);
        let prof = DistanceProfile::compute(&a, &q);
        let support_d = alpha_distance_brute(&a, &q, Threshold::support()).unwrap();
        assert_eq!(prof.value_at(Threshold::above(0.0)), Some(support_d));
        assert_eq!(prof.value_at(Threshold::at(1e-9)), Some(support_d));
    }
}
