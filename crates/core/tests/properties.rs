//! Property-based tests for the fuzzy object model.

use fuzzy_core::boundary::BoundaryFunctions;
use fuzzy_core::distance::{alpha_distance, alpha_distance_brute};
use fuzzy_core::{DistanceProfile, FuzzyObject, ObjectId, ObjectSummary, Threshold};
use fuzzy_geom::Point;
use proptest::prelude::*;

/// Arbitrary fuzzy object: quantized memberships, guaranteed kernel.
fn arb_object(id: u64, max_pts: usize) -> impl Strategy<Value = FuzzyObject<2>> {
    prop::collection::vec(((-50.0..50.0f64), (-50.0..50.0f64), (1u32..=20)), 1..max_pts).prop_map(
        move |raw| {
            let mut pts: Vec<Point<2>> = Vec::with_capacity(raw.len());
            let mut mus: Vec<f64> = Vec::with_capacity(raw.len());
            for (x, y, q) in raw {
                pts.push(Point::xy(x, y));
                mus.push(q as f64 / 20.0);
            }
            mus[0] = 1.0;
            FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
        },
    )
}

fn arb_threshold() -> impl Strategy<Value = Threshold> {
    ((0u32..=20), any::<bool>())
        .prop_map(|(v, strict)| Threshold { value: v as f64 / 20.0, strict })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// α-cuts shrink as thresholds tighten (Definition 2).
    #[test]
    fn cuts_are_nested(obj in arb_object(1, 60), t1 in arb_threshold(), t2 in arb_threshold()) {
        let (loose, tight) = if t1.is_looser_or_equal(&t2) { (t1, t2) } else { (t2, t1) };
        let tight_cut = obj.cut_indices(tight);
        let loose_cut = obj.cut_indices(loose);
        prop_assert!(tight_cut.iter().all(|i| loose_cut.contains(i)));
        prop_assert!(obj.cut_len(loose) >= obj.cut_len(tight));
    }

    /// Exact cut MBRs nest, and the summary's approximation sandwiches them.
    #[test]
    fn summary_approx_sandwich(obj in arb_object(2, 60), t in arb_threshold()) {
        let s = ObjectSummary::from_object(&obj);
        let approx = s.approx_cut_mbr(t);
        prop_assert!(s.support_mbr.contains_mbr(&approx));
        prop_assert!(approx.contains_mbr(&s.kernel_mbr));
        if let Some(exact) = obj.cut_mbr(t) {
            prop_assert!(approx.inflate(1e-9).contains_mbr(&exact),
                "approx {:?} misses exact {:?} at {}", approx, exact, t);
        }
    }

    /// α-distance is symmetric, non-negative, monotone in α, and the two
    /// evaluators agree (Definition 3 + Section 2.1).
    #[test]
    fn alpha_distance_laws(
        a in arb_object(3, 40),
        b in arb_object(4, 40),
        t in arb_threshold(),
    ) {
        let d_fast = alpha_distance(&a, &b, t);
        let d_slow = alpha_distance_brute(&a, &b, t);
        match (d_fast, d_slow) {
            (None, None) => {}
            (Some(f), Some(s)) => {
                prop_assert!((f - s).abs() < 1e-9);
                prop_assert!(f >= 0.0);
                // Symmetry.
                let back = alpha_distance(&b, &a, t).unwrap();
                prop_assert!((f - back).abs() < 1e-9);
            }
            other => prop_assert!(false, "evaluator disagreement: {:?}", other),
        }
        // Monotonicity against the support-level distance.
        if let Some(d) = d_fast {
            let d0 = alpha_distance(&a, &b, Threshold::support()).unwrap();
            prop_assert!(d0 <= d + 1e-9);
        }
    }

    /// The squared-distance kernel returns **bitwise-equal** distances to
    /// the per-pair `sqrt` oracle, whatever strategy the adaptive kernel
    /// picks (dense prefix scan, single-tree, dual-tree): `sqrt` is
    /// correctly rounded and monotone, so `min over sqrt(d²)` and
    /// `sqrt(min over d²)` are the same float. Pre-building kd-trees
    /// steers the strategy choice; objects up to 120 points straddle the
    /// dense budget across thresholds.
    #[test]
    fn squared_kernel_bitwise_equals_brute(
        a in arb_object(20, 120),
        b in arb_object(21, 120),
        t in arb_threshold(),
        pre_a in any::<bool>(),
        pre_b in any::<bool>(),
    ) {
        if pre_a { a.kd_tree(); }
        if pre_b { b.kd_tree(); }
        let fast = alpha_distance(&a, &b, t);
        let slow = alpha_distance_brute(&a, &b, t);
        match (fast, slow) {
            (None, None) => {}
            (Some(f), Some(s)) => prop_assert_eq!(
                f.to_bits(), s.to_bits(),
                "kernel {} != oracle {} at {} (kd pre-built: {}/{})", f, s, t, pre_a, pre_b
            ),
            other => prop_assert!(false, "evaluator disagreement: {:?}", other),
        }
    }

    /// The membership-descending prefix layout selects exactly the α-cut:
    /// `prefix_len` equals the scan count, memberships descend, the prefix
    /// point multiset equals the filtered original points, and everything
    /// past the prefix fails the threshold.
    #[test]
    fn prefix_layout_is_the_alpha_cut(obj in arb_object(22, 80), t in arb_threshold()) {
        let p = obj.by_membership();
        let n = p.prefix_len(t);
        prop_assert_eq!(n, obj.cut_len(t));
        for w in p.memberships().windows(2) {
            prop_assert!(w[0] >= w[1], "memberships must descend");
        }
        for (i, &mu) in p.memberships().iter().enumerate() {
            prop_assert_eq!(t.accepts(mu), i < n, "prefix boundary wrong at {}", i);
        }
        // Same point multiset as the filter over the original layout
        // (compare via sorted total order).
        let mut want: Vec<_> = obj
            .iter()
            .filter(|&(_, mu)| t.accepts(mu))
            .map(|(pt, _)| *pt)
            .collect();
        let mut got: Vec<_> = p.points()[..n].to_vec();
        want.sort_by(|x, y| x.lex_cmp(y));
        got.sort_by(|x, y| x.lex_cmp(y));
        prop_assert_eq!(got, want);
        // The columnar view agrees with the point array.
        for (j, pt) in p.points().iter().enumerate() {
            for d in 0..2 {
                prop_assert_eq!(p.coord_column(d)[j].to_bits(), pt.coords()[d].to_bits());
            }
        }
    }

    /// Bound-seeded evaluation: a seed strictly above the true distance
    /// preserves the exact answer bitwise; a seed at or below it prunes
    /// everything (the documented `None`-on-seed contract).
    #[test]
    fn seeded_evaluation_is_exact_or_none(
        a in arb_object(23, 60),
        b in arb_object(24, 60),
        t in arb_threshold(),
        slack in 1e-9..1.0f64,
    ) {
        use fuzzy_core::distance::alpha_distance_bounded;
        if let Some(exact) = alpha_distance_brute(&a, &b, t) {
            let above = alpha_distance_bounded(&a, &b, t, exact * (1.0 + slack) + f64::MIN_POSITIVE);
            prop_assert_eq!(above.map(f64::to_bits), Some(exact.to_bits()));
            let at = alpha_distance_bounded(&a, &b, t, exact * (1.0 - slack.min(0.5)));
            prop_assert_eq!(at, None);
        }
    }

    /// The sweep profile equals the brute-force Pareto profile, and lookups
    /// into it match direct evaluation at arbitrary thresholds.
    #[test]
    fn profile_is_faithful(
        a in arb_object(5, 30),
        q in arb_object(6, 30),
        t in arb_threshold(),
    ) {
        let fast = DistanceProfile::compute(&a, &q);
        let slow = DistanceProfile::compute_brute(&a, &q);
        prop_assert_eq!(fast.segments().len(), slow.segments().len());
        for (f, s) in fast.segments().iter().zip(slow.segments()) {
            prop_assert!((f.level - s.level).abs() < 1e-12);
            prop_assert!((f.dist - s.dist).abs() < 1e-12);
        }
        let via = fast.value_at(t);
        let direct = alpha_distance_brute(&a, &q, t);
        match (via, direct) {
            (None, None) => {}
            (Some(p), Some(d)) => prop_assert!((p - d).abs() < 1e-9),
            other => prop_assert!(false, "{:?}", other),
        }
    }

    /// Critical probabilities really are change points: the distance just
    /// above a critical value differs from the value at it; and within a
    /// segment the distance is constant (Definition 7 / Lemma 2).
    #[test]
    fn critical_set_marks_changes(a in arb_object(7, 30), q in arb_object(8, 30)) {
        let prof = DistanceProfile::compute(&a, &q);
        let omega: Vec<f64> = prof.critical_set().collect();
        prop_assert_eq!(*omega.last().unwrap(), 1.0);
        for (i, &crit) in omega.iter().enumerate() {
            let at = prof.value_at(Threshold::at(crit)).unwrap();
            if crit < 1.0 {
                let after = prof.value_at(Threshold::above(crit)).unwrap();
                prop_assert!(after > at, "no change above critical {}", crit);
            }
            if i > 0 {
                // Constant within the segment: value just above the previous
                // critical equals the value at this critical.
                let inside = prof.value_at(Threshold::above(omega[i - 1])).unwrap();
                prop_assert!((inside - at).abs() < 1e-12);
            }
        }
    }

    /// α-distance is monotone non-decreasing in α (Section 2.1): tightening
    /// the threshold shrinks both cuts, so the closest pair can only move
    /// apart. The foundation of RKNN's qualifying-range reasoning.
    #[test]
    fn alpha_distance_monotone_in_alpha(
        a in arb_object(10, 40),
        b in arb_object(11, 40),
        t1 in arb_threshold(),
        t2 in arb_threshold(),
    ) {
        let (loose, tight) = if t1.is_looser_or_equal(&t2) { (t1, t2) } else { (t2, t1) };
        match (alpha_distance(&a, &b, loose), alpha_distance(&a, &b, tight)) {
            (Some(dl), Some(dt)) => prop_assert!(
                dl <= dt + 1e-9,
                "d at loose {loose} is {dl} > d at tight {tight} is {dt}"
            ),
            // A non-empty tight cut implies a non-empty loose cut.
            (None, Some(_)) => prop_assert!(false, "cut vanished at the looser threshold"),
            _ => {}
        }
    }

    /// Boundary functions are non-negative, non-increasing and vanish at 1.
    #[test]
    fn boundary_function_shape(obj in arb_object(9, 60)) {
        let bf = BoundaryFunctions::compute(&obj);
        for dim in 0..2 {
            let ups = bf.upper_samples(dim);
            let los = bf.lower_samples(dim);
            prop_assert_eq!(ups.last().unwrap().1, 0.0);
            prop_assert_eq!(los.last().unwrap().1, 0.0);
            for w in ups.windows(2) {
                prop_assert!(w[0].1 >= w[1].1 - 1e-12);
                prop_assert!(w[0].0 < w[1].0);
            }
            for w in los.windows(2) {
                prop_assert!(w[0].1 >= w[1].1 - 1e-12);
            }
        }
    }
}
