//! Metric-law property harness: every [`Metric`] the workspace ships must
//! actually be a metric, because the search layers prune with the
//! triangle inequality (M-tree covering balls, the representative upper
//! bound of Lemma 1, the ball lower bounds of `metric_search`). A
//! "metric" violating the axioms would make those prunes silently drop
//! answers — so the axioms are pinned here for both [`L2`] and
//! [`GraphMetric`], on sampled point triples:
//!
//! * non-negativity: `d(a, b) ≥ 0`
//! * identity: `d(a, a) = 0`
//! * symmetry: `d(a, b) = d(b, a)` (bitwise, not just approximately —
//!   the determinism suites need evaluation-order invariance)
//! * triangle inequality: `d(a, c) ≤ d(a, b) + d(b, c)` (up to one ulp
//!   slack for float accumulation in L2; exact for the graph metric,
//!   whose distances come from one shared APSP table)
//!
//! The harness also pins the seam-level contracts the search code leans
//! on: `dist_sq` consistency and the `alpha_distance_sq_bounded`
//! seed-domination behaviour under both metrics.

use fuzzy_core::metric::{GraphMetric, Metric, RoadNetwork, L2};
use fuzzy_core::{FuzzyObject, ObjectId, Threshold};
use fuzzy_geom::Point;
use proptest::prelude::*;
use std::sync::Arc;

/// A deterministic pseudo-random connected road network: a path spine
/// (guarantees connectivity) plus chords picked from the seed.
fn network(seed: u64, vertices: usize) -> Arc<RoadNetwork<2>> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let n = vertices.max(2);
    let coords: Vec<Point<2>> = (0..n)
        .map(|_| {
            let x = (rng() % 1000) as f64 / 10.0;
            let y = (rng() % 1000) as f64 / 10.0;
            Point::xy(x, y)
        })
        .collect();
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for v in 1..n {
        let u = v - 1;
        edges.push((u as u32, v as u32, coords[u].dist(&coords[v])));
    }
    for _ in 0..n {
        let u = (rng() as usize) % n;
        let v = (rng() as usize) % n;
        if u != v {
            edges.push((u.min(v) as u32, u.max(v) as u32, coords[u].dist(&coords[v])));
        }
    }
    Arc::new(RoadNetwork::new(coords, edges).unwrap())
}

/// Check the four axioms on one concrete triple.
fn assert_metric_laws<M: Metric<2>>(metric: &M, a: &Point<2>, b: &Point<2>, c: &Point<2>) {
    let ab = metric.dist(a, b);
    let ba = metric.dist(b, a);
    let bc = metric.dist(b, c);
    let ac = metric.dist(a, c);
    assert!(ab >= 0.0, "{}: d(a,b) = {ab} < 0", metric.name());
    assert_eq!(metric.dist(a, a).to_bits(), 0.0_f64.to_bits(), "{}: d(a,a) != 0", metric.name());
    assert_eq!(ab.to_bits(), ba.to_bits(), "{}: asymmetric {ab} vs {ba}", metric.name());
    // One ulp of slack per addition for float accumulation.
    let slack = 1.0 + 1e-12;
    assert!(
        ac <= (ab + bc) * slack,
        "{}: triangle violated: d(a,c) = {ac} > {ab} + {bc}",
        metric.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// L2 satisfies the metric axioms on arbitrary coordinate triples.
    #[test]
    fn l2_is_a_metric(
        ax in -100.0..100.0f64, ay in -100.0..100.0f64,
        bx in -100.0..100.0f64, by in -100.0..100.0f64,
        cx in -100.0..100.0f64, cy in -100.0..100.0f64,
    ) {
        let (a, b, c) = (Point::xy(ax, ay), Point::xy(bx, by), Point::xy(cx, cy));
        assert_metric_laws(&L2, &a, &b, &c);
        // The squared hook must agree with its contract: d² computed by
        // the default square-of-dist for generic metrics; for L2 the
        // override sums squares, which must still satisfy d_sq ≥ 0 and
        // sqrt(d_sq) == dist bit-for-bit.
        prop_assert_eq!(L2.dist_sq(&a, &b).sqrt().to_bits(), L2.dist(&a, &b).to_bits());
    }

    /// Graph shortest-path distance satisfies the metric axioms on
    /// sampled vertex triples of pseudo-random connected networks.
    #[test]
    fn graph_is_a_metric(seed in 0u64..1024, i in 0usize..64, j in 0usize..64, k in 0usize..64) {
        let net = network(seed, 24);
        let n = net.vertex_count();
        let metric = GraphMetric::new(net.clone());
        let a = net.coords()[i % n];
        let b = net.coords()[j % n];
        let c = net.coords()[k % n];
        assert_metric_laws(&metric, &a, &b, &c);
        prop_assert_eq!(
            metric.dist_sq(&a, &b).to_bits(),
            (metric.dist(&a, &b) * metric.dist(&a, &b)).to_bits(),
            "graph dist_sq must be the square of dist"
        );
    }

    /// The α-distance evaluator respects its seed contract under both
    /// metrics: an infinite seed yields the true value, and any seed at or
    /// below the true value dominates the object (returns `None`).
    #[test]
    fn alpha_distance_seed_contract(seed in 0u64..256, qa in 0usize..16, qb in 0usize..16) {
        let net = network(seed, 16);
        let n = net.vertex_count();
        let metric = GraphMetric::new(net.clone());
        let obj_at = |id: u64, home: usize| {
            let mut pts = Vec::new();
            let mut mus = Vec::new();
            for hop in 0..3usize {
                let v = (home + hop) % n;
                pts.push(net.coords()[v]);
                mus.push(1.0 / (1.0 + hop as f64));
            }
            FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
        };
        let a = obj_at(1, qa);
        let b = obj_at(2, qb);
        let t = Threshold::at(0.5);
        let exact = metric.alpha_distance_sq_bounded(&a, &b, t, f64::INFINITY);
        if let Some(d_sq) = exact {
            // Seeding strictly above keeps the value; at/below dominates.
            let above = metric.alpha_distance_sq_bounded(&a, &b, t, d_sq * (1.0 + 1e-9) + 1e-300);
            prop_assert_eq!(above.map(f64::to_bits), Some(d_sq.to_bits()));
            prop_assert_eq!(metric.alpha_distance_sq_bounded(&a, &b, t, d_sq), None);
        }
        // L2 honours the same contract on the same objects.
        let exact_l2 = L2.alpha_distance_sq_bounded(&a, &b, t, f64::INFINITY);
        if let Some(d_sq) = exact_l2 {
            prop_assert_eq!(L2.alpha_distance_sq_bounded(&a, &b, t, d_sq), None);
        }
    }
}
