//! Scratch profiler for tuning the approximate sweep's operating
//! point: engine baseline vs both backends across recall dials, on an
//! in-memory synthetic workload. Usage:
//! `cargo run --release --example profile_approx -- <n> <ppo> <radius>`.
use fuzzy_core::metric::L2;
use fuzzy_core::Threshold;
use fuzzy_datagen::SyntheticConfig;
use fuzzy_index::{LshConfig, LshIndex, RTree, RTreeConfig, RecallDial, VpTree, VpTreeConfig};
use fuzzy_query::{
    approx_aknn_with_scratch, recall_at_k, AknnResult, ApproxConfig, QueryEngine, QueryScratch,
};
use fuzzy_store::ObjectStore;
use std::time::Instant;

fn arg(i: usize, default: f64) -> f64 {
    std::env::args().nth(i).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let n = arg(1, 20_000.0) as usize;
    let ppo = arg(2, 24.0) as usize;
    let radius = arg(3, 0.5);
    let cfg = SyntheticConfig {
        num_objects: n,
        points_per_object: ppo,
        radius,
        seed: 42,
        ..SyntheticConfig::default()
    };
    let store = fuzzy_datagen::mem_dataset(cfg.generate()).unwrap();
    let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let queries: Vec<_> = (0..32u64).map(|i| cfg.query_object(i + 1)).collect();
    let k = 10;
    let alpha = 0.5;
    let t = Threshold::at(alpha);
    let mut scratch = QueryScratch::new();

    let engine = QueryEngine::new(&tree, &store);
    let best = fuzzy_query::AknnConfig::lb_lp_ub();
    // warm
    for q in &queries {
        engine.aknn_exact_with_scratch(q, k, alpha, &best, &mut scratch).unwrap();
    }
    let started = Instant::now();
    let mut eprobes = 0u64;
    let exacts: Vec<AknnResult> = queries
        .iter()
        .map(|q| {
            let r = engine.aknn_exact_with_scratch(q, k, alpha, &best, &mut scratch).unwrap();
            eprobes += r.stats.object_accesses;
            r
        })
        .collect();
    let exact_us = started.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;
    println!(
        "engine exact: {exact_us:.1} us/q ({:.1} probes/q)",
        eprobes as f64 / queries.len() as f64
    );

    let vp = VpTree::build(&L2, store.summaries(), VpTreeConfig::default());
    for eps in [0.5, 1.0, 1.5, 2.0, 3.0] {
        let cfgq = ApproxConfig { dial: RecallDial::Budget(eps), fof_rounds: 1 };
        let run = |scratch: &mut QueryScratch<2>| -> (f64, f64, f64) {
            let started = Instant::now();
            let mut probes = 0u64;
            let mut recall = 0.0;
            for (q, e) in queries.iter().zip(&exacts) {
                let r =
                    approx_aknn_with_scratch(&L2, &vp, &store, q, k, t, &cfgq, scratch).unwrap();
                probes += r.stats.object_accesses;
                recall += recall_at_k(&r, e);
            }
            let us = started.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;
            (us, probes as f64 / queries.len() as f64, recall / queries.len() as f64)
        };
        run(&mut scratch); // warm
        let (us, probes, recall) = run(&mut scratch);
        println!(
            "vptree eps={eps}: {us:.1} us/q ({probes:.1} probes/q) recall={recall:.4} speedup={:.2}x",
            exact_us / us
        );
    }

    let lsh = LshIndex::build(store.summaries(), LshConfig::default());
    for budget in [1.0, 2.0, 3.0, 4.0, 6.0] {
        let cfgq = ApproxConfig { dial: RecallDial::Budget(budget), fof_rounds: 1 };
        let run = |scratch: &mut QueryScratch<2>| -> (f64, f64, f64) {
            let started = Instant::now();
            let mut probes = 0u64;
            let mut recall = 0.0;
            for (q, e) in queries.iter().zip(&exacts) {
                let r =
                    approx_aknn_with_scratch(&L2, &lsh, &store, q, k, t, &cfgq, scratch).unwrap();
                probes += r.stats.object_accesses;
                recall += recall_at_k(&r, e);
            }
            let us = started.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;
            (us, probes as f64 / queries.len() as f64, recall / queries.len() as f64)
        };
        run(&mut scratch); // warm
        let (us, probes, recall) = run(&mut scratch);
        println!(
            "lsh b={budget}: {us:.1} us/q ({probes:.1} probes/q) recall={recall:.4} speedup={:.2}x",
            exact_us / us
        );
    }
}
