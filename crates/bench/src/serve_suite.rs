//! Open-loop load generation against a running `fkq serve` daemon, and
//! the schema-versioned `BENCH_serve.json` report it records.
//!
//! The generator is **open-loop**: each target rate gets a fixed send
//! schedule (`start + i/qps`) computed up front, and latency is measured
//! from the *intended* send time, not the actual one — so when the server
//! falls behind, the queueing delay the schedule slip represents is
//! charged to the latency distribution instead of silently lowering the
//! offered rate (the coordinated-omission trap). In-flight concurrency is
//! bounded by the connection count: each of the `connections` threads
//! walks its share of the schedule with blocking request/response.

use crate::json::Json;
use fuzzy_server::{Client, QuerySource, Request, Response, WireVariant};
use std::path::Path;
use std::time::{Duration, Instant};

/// Schema identifier of `BENCH_serve.json`. Bump on layout changes.
pub const SCHEMA: &str = "fuzzy-knn/bench-serve/v1";

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Server address (`unix:<path>` or `host:port`).
    pub addr: String,
    /// Concurrent connections (bounds in-flight requests).
    pub connections: usize,
    /// Target offered rates, one measured run per entry.
    pub qps_targets: Vec<f64>,
    /// Duration of each run, seconds.
    pub duration_secs: f64,
    /// Neighbours per query.
    pub k: usize,
    /// Probability threshold.
    pub alpha: f64,
    /// AKNN pruning variant.
    pub variant: WireVariant,
    /// Per-request deadline in milliseconds (0 = none).
    pub deadline_ms: u32,
    /// Stored object ids to cycle through as query objects.
    pub query_ids: Vec<u64>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            connections: 4,
            qps_targets: vec![100.0, 200.0, 400.0],
            duration_secs: 5.0,
            k: 10,
            alpha: 0.5,
            variant: WireVariant::LbLpUb,
            deadline_ms: 0,
            query_ids: vec![0],
        }
    }
}

/// Outcome tallies of one connection thread.
#[derive(Debug, Default)]
struct Tally {
    ok_latencies_ms: Vec<f64>,
    busy: u64,
    deadline_exceeded: u64,
    errors: u64,
}

/// Run the full QPS sweep and assemble the report. Fails fast if the
/// server is unreachable.
pub fn run(opts: &LoadgenOptions) -> Result<Json, String> {
    if opts.query_ids.is_empty() {
        return Err("query_ids must not be empty".into());
    }
    // Probe the server once for the report header.
    let mut probe =
        Client::connect(&opts.addr).map_err(|e| format!("cannot connect to {}: {e}", opts.addr))?;
    let info = match probe.call(&Request::Info).map_err(|e| e.to_string())? {
        Response::Info { objects, epoch, workers } => (objects, epoch, workers),
        other => return Err(format!("unexpected INFO response: {other:?}")),
    };

    let mut runs = Vec::new();
    for &qps in &opts.qps_targets {
        if qps <= 0.0 || !qps.is_finite() {
            return Err(format!("target qps must be positive, got {qps}"));
        }
        runs.push(run_one_rate(opts, qps)?);
    }

    Ok(Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        (
            "server",
            Json::obj(vec![
                ("objects", Json::num(info.0 as f64)),
                ("epoch", Json::num(info.1 as f64)),
                ("workers", Json::num(info.2 as f64)),
            ]),
        ),
        (
            "workload",
            Json::obj(vec![
                ("connections", Json::num(opts.connections as f64)),
                ("k", Json::num(opts.k as f64)),
                ("alpha", Json::num(opts.alpha)),
                (
                    "variant",
                    Json::str(match opts.variant {
                        WireVariant::Basic => "basic",
                        WireVariant::Lb => "lb",
                        WireVariant::LbLp => "lb-lp",
                        WireVariant::LbLpUb => "lb-lp-ub",
                    }),
                ),
                ("duration_secs", Json::num(opts.duration_secs)),
                ("deadline_ms", Json::num(opts.deadline_ms as f64)),
            ]),
        ),
        ("runs", Json::Arr(runs)),
    ]))
}

/// Drive one target rate: build the schedule, fan it over the
/// connections, merge tallies into a report row.
fn run_one_rate(opts: &LoadgenOptions, qps: f64) -> Result<Json, String> {
    let total = (qps * opts.duration_secs).ceil().max(1.0) as usize;
    let connections = opts.connections.clamp(1, total);
    // Connect everything before starting the clock.
    let mut clients = Vec::with_capacity(connections);
    for _ in 0..connections {
        let mut c = Client::connect(&opts.addr)
            .map_err(|e| format!("cannot connect to {}: {e}", opts.addr))?;
        c.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
        clients.push(c);
    }

    let interval = Duration::from_secs_f64(1.0 / qps);
    let start = Instant::now() + Duration::from_millis(5);
    let mut tallies: Vec<Tally> = Vec::with_capacity(connections);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        for (conn_idx, mut client) in clients.into_iter().enumerate() {
            let opts = &*opts;
            handles.push(scope.spawn(move || {
                let mut tally = Tally::default();
                // Requests conn_idx, conn_idx + C, conn_idx + 2C, …
                let mut i = conn_idx;
                while i < total {
                    let intended = start + interval.mul_f64(i as f64);
                    sleep_until(intended);
                    let id = opts.query_ids[i % opts.query_ids.len()];
                    let request = Request::Aknn {
                        query: QuerySource::Stored(fuzzy_core::ObjectId(id)),
                        k: opts.k as u32,
                        alpha: opts.alpha,
                        variant: opts.variant,
                        deadline_ms: opts.deadline_ms,
                    };
                    match client.call(&request) {
                        Ok(Response::Aknn { .. }) => {
                            let ms = intended.elapsed().as_secs_f64() * 1e3;
                            tally.ok_latencies_ms.push(ms);
                        }
                        Ok(Response::Busy) => tally.busy += 1,
                        Ok(Response::Error {
                            code: fuzzy_server::ErrorCode::DeadlineExceeded,
                            ..
                        }) => tally.deadline_exceeded += 1,
                        Ok(_) | Err(_) => tally.errors += 1,
                    }
                    i += connections;
                }
                tally
            }));
        }
        for h in handles {
            tallies.push(h.join().unwrap_or_default());
        }
    });

    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let mut latencies: Vec<f64> = Vec::new();
    let (mut busy, mut deadline_exceeded, mut errors) = (0u64, 0u64, 0u64);
    for t in &tallies {
        latencies.extend_from_slice(&t.ok_latencies_ms);
        busy += t.busy;
        deadline_exceeded += t.deadline_exceeded;
        errors += t.errors;
    }
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * latencies.len() as f64).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    };
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };

    Ok(Json::obj(vec![
        ("target_qps", Json::num(qps)),
        ("sent", Json::num(total as f64)),
        ("ok", Json::num(latencies.len() as f64)),
        ("busy", Json::num(busy as f64)),
        ("deadline_exceeded", Json::num(deadline_exceeded as f64)),
        ("errors", Json::num(errors as f64)),
        ("achieved_qps", Json::num(latencies.len() as f64 / elapsed)),
        ("latency_ms_mean", Json::num(mean)),
        ("latency_ms_p50", Json::num(pct(50.0))),
        ("latency_ms_p95", Json::num(pct(95.0))),
        ("latency_ms_p99", Json::num(pct(99.0))),
    ]))
}

fn sleep_until(t: Instant) {
    let now = Instant::now();
    if t > now {
        std::thread::sleep(t - now);
    }
}

/// Per-run report fields: `(name, must_be_number)`.
pub const RUN_FIELDS: &[(&str, bool)] = &[
    ("target_qps", true),
    ("sent", true),
    ("ok", true),
    ("busy", true),
    ("deadline_exceeded", true),
    ("errors", true),
    ("achieved_qps", true),
    ("latency_ms_mean", true),
    ("latency_ms_p50", true),
    ("latency_ms_p95", true),
    ("latency_ms_p99", true),
];

/// Structural validation of a serve report (schema, field presence and
/// types, no query errors). Committed `BENCH_serve.json` files must pass.
pub fn validate_report(report: &Json) -> Result<(), String> {
    if report.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema field missing or not {SCHEMA:?}"));
    }
    for key in ["server", "workload"] {
        match report.get(key) {
            Some(Json::Obj(_)) => {}
            _ => return Err(format!("{key} must be an object")),
        }
    }
    let runs = report
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or_else(|| "runs must be an array".to_string())?;
    if runs.is_empty() {
        return Err("runs must not be empty".to_string());
    }
    for (i, run) in runs.iter().enumerate() {
        for &(field, is_number) in RUN_FIELDS {
            let value = run.get(field).ok_or_else(|| format!("runs[{i}] missing {field:?}"))?;
            match (is_number, value) {
                (true, Json::Num(n)) if n.is_finite() && *n >= 0.0 => {}
                (false, Json::Str(_)) => {}
                _ => return Err(format!("runs[{i}].{field} has the wrong type: {value:?}")),
            }
        }
        if run.get("errors").and_then(Json::as_num) != Some(0.0) {
            return Err(format!("runs[{i}] recorded transport/query errors"));
        }
        let ok = run.get("ok").and_then(Json::as_num).unwrap_or(0.0);
        if ok <= 0.0 {
            return Err(format!("runs[{i}] answered no queries"));
        }
    }
    Ok(())
}

/// Serialize, validate and write a serve report; returns the text.
pub fn write_report(path: &Path, report: &Json) -> std::io::Result<String> {
    validate_report(report).map_err(std::io::Error::other)?;
    let text = report.to_pretty();
    std::fs::write(path, &text)?;
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_run() -> Json {
        Json::obj(vec![
            ("target_qps", Json::num(100.0)),
            ("sent", Json::num(500.0)),
            ("ok", Json::num(500.0)),
            ("busy", Json::num(0.0)),
            ("deadline_exceeded", Json::num(0.0)),
            ("errors", Json::num(0.0)),
            ("achieved_qps", Json::num(99.4)),
            ("latency_ms_mean", Json::num(1.2)),
            ("latency_ms_p50", Json::num(1.0)),
            ("latency_ms_p95", Json::num(2.5)),
            ("latency_ms_p99", Json::num(4.0)),
        ])
    }

    fn valid_report() -> Json {
        Json::obj(vec![
            ("schema", Json::str(SCHEMA)),
            ("server", Json::obj(vec![("objects", Json::num(500.0))])),
            ("workload", Json::obj(vec![("connections", Json::num(2.0))])),
            ("runs", Json::Arr(vec![valid_run()])),
        ])
    }

    #[test]
    fn validator_accepts_well_formed_reports() {
        validate_report(&valid_report()).unwrap();
    }

    #[test]
    fn validator_rejects_defects() {
        let mut bad = valid_report();
        if let Json::Obj(fields) = &mut bad {
            fields[0].1 = Json::str("fuzzy-knn/bench-serve/v0");
        }
        assert!(validate_report(&bad).is_err(), "wrong schema version");

        let mut no_runs = valid_report();
        if let Json::Obj(fields) = &mut no_runs {
            fields[3].1 = Json::Arr(vec![]);
        }
        assert!(validate_report(&no_runs).is_err(), "empty runs");

        let mut errored = valid_report();
        if let Json::Obj(fields) = &mut errored {
            if let Json::Arr(runs) = &mut fields[3].1 {
                if let Json::Obj(run) = &mut runs[0] {
                    run.iter_mut().find(|(k, _)| k == "errors").unwrap().1 = Json::num(3.0);
                }
            }
        }
        assert!(validate_report(&errored).is_err(), "nonzero errors");
    }
}
