//! `fkq` — a small command-line front end for fuzzy-knn stores.
//!
//! ```sh
//! fkq generate --kind cell --n 1000 --ppo 200 --out cells.fzkn
//! fkq info cells.fzkn
//! fkq build-index cells.fzkn --out cells.fzpt
//! fkq build-index cells.fzkn --out cells.fzsm --shards 4
//! fkq aknn cells.fzkn --k 10 --alpha 0.5 --index-file cells.fzpt
//! fkq aknn cells.fzkn --k 10 --alpha 0.5 --index-file cells.fzsm
//! fkq rknn cells.fzkn --k 10 --start 0.3 --end 0.7 --algo rss-icr
//! fkq insert cells.fzkn --index-file cells.fzpt --ids 7,8,9
//! fkq delete --index-file cells.fzpt --ids 3,4
//! fkq compact --index-file cells.fzpt
//! fkq bench --out BENCH_aknn.json
//! fkq serve cells.fzkn --listen 127.0.0.1:7878
//! fkq aknn cells.fzkn --k 10 --alpha 0.5 --server 127.0.0.1:7878
//! fkq loadgen --addr 127.0.0.1:7878 --qps 100,200 --out BENCH_serve.json
//! fkq swap --addr 127.0.0.1:7878 --index-file cells.fzpt
//! fkq gen-road --out road.fzkn --graph road.fzrn --vertices 300 --n 150
//! fkq build-index road.fzkn --metric graph --graph road.fzrn --out road.fzmt
//! fkq aknn road.fzkn --k 5 --alpha 0.5 --metric graph --graph road.fzrn --index-file road.fzmt
//! fkq aknn road.fzkn --k 5 --alpha 0.5 --metric graph --graph road.fzrn --brute true
//! fkq build-index cells.fzkn --approx lsh --out cells.fzlh
//! fkq build-index cells.fzkn --approx vptree --out cells.fzvp
//! fkq aknn cells.fzkn --k 10 --alpha 0.5 --index-file cells.fzlh --recall-dial 4 --measure-recall true
//! fkq aknn cells.fzkn --k 10 --alpha 0.5 --index-file cells.fzvp --recall-dial exact
//! ```
//!
//! Query subcommands bulk-load an in-memory R-tree by default; pass
//! `--index-file` to run against a persisted paged index built with
//! `build-index` instead (see `docs/FORMAT.md` for the file layout).
//! A `.fzsm` index file selects a **sharded** index: `build-index
//! --shards S` partitions the dataset into S paged trees behind one
//! checksummed manifest, and every query subcommand then scatter-gathers
//! across the shards with a shared τ bound — answers are byte-identical
//! to the single-tree layout.
//! The index file is immutable until compaction: `insert`/`delete`
//! accumulate changes in a checksummed sidecar delta log
//! (`<index>.fzdl`) which every query subcommand replays automatically;
//! `compact` folds base + delta into a freshly bulk-loaded file.
//!
//! `serve` keeps a store/index pair resident behind the FZQP binary
//! protocol (`docs/PROTOCOL.md`); `aknn`/`rknn --server` run the same
//! query through a daemon and print byte-identical answers; `loadgen`
//! measures latency under open-loop load and writes `BENCH_serve.json`;
//! `swap` publishes a new index epoch without restarting the daemon.

use fuzzy_core::metric::{GraphMetric, Metric, L2};
use fuzzy_core::{FuzzyObject, Threshold};
use fuzzy_datagen::{CellConfig, RoadConfig, SyntheticConfig};
use fuzzy_index::{
    delta_path_for, MTree, MTreeConfig, MassClassAssign, NodeAccess, NodeId, NodeRead,
    OverlayRTree, PagedRTree, RTree, RTreeConfig, ShardAssign, ShardManifest, ShardedIndex,
    StrCenterAssign,
};
use fuzzy_query::{
    metric_aknn, metric_aknn_brute, AknnConfig, QueryEngine, RknnAlgorithm, ShardedQueryEngine,
};
use fuzzy_server::{
    is_sharded_path, serve, Client, ListenAddr, QuerySource, Request, Response, ServeIndex,
    ServeOptions, WireVariant,
};
use fuzzy_store::{FileStore, ObjectStore, StoreError};
use std::collections::HashMap;
use std::process::exit;
use std::sync::Arc;

const USAGE: &str = "usage:
  fkq generate --kind <synthetic|cell> --n <count> [--ppo <points>] [--seed <u64>] \
[--radius <r>] --out <path>
  fkq gen-road --out <path> --graph <net.fzrn> [--vertices <n>] [--extra-edges <n>] \
[--n <objects>] [--ppo <points>] [--span <f>] [--seed <u64>]
  fkq info <path> [--index-file <path>]
  fkq build-index <path> --out <index-path> [--page-size <bytes>] [--max-entries <n>] \
[--min-fill <f>] [--shards <n>] [--shard-strategy <str|mass>] \
[--metric <l2|graph>] [--graph <net.fzrn>] [--fanout <n>] \
[--approx <lsh|vptree>] [--tables <n>] [--hashes <n>] [--leaf-size <n>] [--fof-neighbors <n>]
  fkq aknn <path> --k <k> --alpha <a> [--variant <basic|lb|lb-lp|lb-lp-ub>] [--query-seed <u64>] \
[--index-file <path>] [--cache-pages <n>] [--server <addr>] [--deadline-ms <n>] \
[--metric <l2|graph>] [--graph <net.fzrn>] [--brute <true|false>] \
[--approx <lsh|vptree>] [--recall-dial <exact|v>] [--measure-recall <true|false>]
  fkq rknn <path> --k <k> --start <a> --end <a> [--algo <naive|basic|rss|rss-icr>] \
[--query-seed <u64>] [--index-file <path>] [--cache-pages <n>] [--server <addr>] \
[--deadline-ms <n>]
  fkq insert <path> --index-file <index> --ids <csv> [--cache-pages <n>]
  fkq delete --index-file <index> --ids <csv> [--cache-pages <n>]
  fkq compact --index-file <index> [--page-size <bytes>] [--cache-pages <n>]
  fkq bench [--out <path=BENCH_aknn.json>] [--smoke <true|false>] [--kind <synthetic|cell>] \
[--n <count>] [--ppo <points>] [--seed <u64>] [--queries <count>] [--k <k>] [--alpha <a>] \
[--ks <csv>] [--alphas <csv>] [--threads <csv>] [--shard-counts <csv>] \
[--backend <mem|paged>] [--page-size <bytes>] \
[--cache-pages <n>] [--mutation-rate <f>] [--approx-sweep <true|false>] \
[--approx-n <count>] [--approx-ppo <points>] [--approx-seed <u64>] [--approx-radius <r>] \
[--lsh-budgets <csv>] [--vptree-slacks <csv>]
  fkq serve <path> [--listen <host:port|unix:path>] [--index-file <path>] [--workers <n>] \
[--queue-depth <n>] [--cache-pages <n>]
  fkq loadgen --addr <host:port|unix:path> [--qps <csv>] [--duration <secs>] \
[--connections <n>] [--k <k>] [--alpha <a>] [--variant <name>] [--deadline-ms <n>] \
[--query-ids <csv>] [--out <path=BENCH_serve.json>]
  fkq swap --addr <host:port|unix:path> --index-file <path|:mem:>
  fkq shutdown --addr <host:port|unix:path>";

fn usage() -> ! {
    eprintln!("{USAGE}");
    exit(2)
}

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 >= args.len() {
                eprintln!("flag --{name} needs a value");
                usage();
            }
            flags.insert(name.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            pos.push(args[i].clone());
            i += 1;
        }
    }
    (pos, flags)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str) -> Option<T> {
    flags.get(key).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v}");
            usage()
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if matches!(args[0].as_str(), "--help" | "-h" | "help") {
        println!("fkq — query fuzzy-knn object stores\n\n{USAGE}");
        return;
    }
    let (pos, flags) = parse_flags(&args[1..]);
    match args[0].as_str() {
        "generate" => generate(&flags),
        "gen-road" => gen_road(&flags),
        "info" => info(pos.first().unwrap_or_else(|| usage()), &flags),
        "build-index" => build_index(pos.first().unwrap_or_else(|| usage()), &flags),
        "aknn" => aknn(pos.first().unwrap_or_else(|| usage()), &flags),
        "rknn" => rknn(pos.first().unwrap_or_else(|| usage()), &flags),
        "insert" => insert_cmd(pos.first().unwrap_or_else(|| usage()), &flags),
        "delete" => delete_cmd(&flags),
        "compact" => compact_cmd(&flags),
        "bench" => bench(&flags),
        "serve" => serve_cmd(pos.first().unwrap_or_else(|| usage()), &flags),
        "loadgen" => loadgen_cmd(&flags),
        "swap" => swap_cmd(&flags),
        "shutdown" => shutdown_cmd(&flags),
        _ => usage(),
    }
}

fn generate(flags: &HashMap<String, String>) {
    let kind = flags.get("kind").cloned().unwrap_or_else(|| "synthetic".into());
    let n: usize = get(flags, "n").unwrap_or(1_000);
    let ppo: usize = get(flags, "ppo").unwrap_or(200);
    let seed: u64 = get(flags, "seed").unwrap_or(42);
    let out = flags.get("out").cloned().unwrap_or_else(|| usage());
    let store = match kind.as_str() {
        "synthetic" => {
            let base = SyntheticConfig::default();
            let cfg = SyntheticConfig {
                num_objects: n,
                points_per_object: ppo,
                seed,
                radius: get(flags, "radius").unwrap_or(base.radius),
                ..base
            };
            fuzzy_datagen::write_dataset(&out, cfg.generate())
        }
        "cell" => {
            let cfg =
                CellConfig { num_objects: n, points_per_object: ppo, seed, ..Default::default() };
            fuzzy_datagen::write_dataset(&out, cfg.generate())
        }
        other => {
            eprintln!("unknown kind {other}");
            usage()
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("generation failed: {e}");
        exit(1)
    });
    println!("wrote {} objects to {out}", store.len());
}

/// Generate the road-network workload: a connected graph (persisted as a
/// checksummed `.fzrn` file) plus vertex-resident fuzzy objects written
/// to an ordinary `.fzkn` store — both from one seed, both deterministic.
fn gen_road(flags: &HashMap<String, String>) {
    let defaults = RoadConfig::default();
    let cfg = RoadConfig {
        vertices: get(flags, "vertices").unwrap_or(defaults.vertices),
        extra_edges: get(flags, "extra-edges").unwrap_or(defaults.extra_edges),
        objects: get(flags, "n").unwrap_or(defaults.objects),
        points_per_object: get(flags, "ppo").unwrap_or(defaults.points_per_object),
        span: get(flags, "span").unwrap_or(defaults.span),
        seed: get(flags, "seed").unwrap_or(42),
    };
    let out = flags.get("out").cloned().unwrap_or_else(|| usage());
    let graph_out = flags.get("graph").cloned().unwrap_or_else(|| usage());
    let net = cfg.network();
    fuzzy_store::save_road_network(&net, &graph_out).unwrap_or_else(|e| {
        eprintln!("cannot write {graph_out}: {e}");
        exit(1)
    });
    let store = fuzzy_datagen::write_dataset(&out, cfg.objects(&net)).unwrap_or_else(|e| {
        eprintln!("generation failed: {e}");
        exit(1)
    });
    println!(
        "wrote {} objects to {out}; network: {} vertices, {} edges -> {graph_out}",
        store.len(),
        net.vertex_count(),
        net.edges().len()
    );
}

/// Load the `.fzrn` named by `--graph` into a [`GraphMetric`].
fn load_graph_metric(flags: &HashMap<String, String>) -> GraphMetric<2> {
    let path = flags.get("graph").unwrap_or_else(|| {
        eprintln!("--metric graph needs --graph <net.fzrn>");
        usage()
    });
    let net = fuzzy_store::load_road_network::<2>(path).unwrap_or_else(|e| {
        eprintln!("cannot open road network {path}: {e}");
        exit(1)
    });
    GraphMetric::new(Arc::new(net))
}

/// Decode every object out of a store (the M-tree build needs full point
/// sets for metric spreads, not just summaries).
fn load_objects(store: &FileStore<2>) -> Vec<FuzzyObject<2>> {
    store
        .ids()
        .iter()
        .map(|&id| {
            store
                .probe(id)
                .unwrap_or_else(|e| {
                    eprintln!("cannot load object {id}: {e}");
                    exit(1)
                })
                .as_ref()
                .clone()
        })
        .collect()
}

/// The M-tree to query under `metric`: loaded from `--index-file` when a
/// `.fzmt` path was given (the loader verifies the metric name), else
/// built in memory from the store.
fn mtree_for<M: Metric<2>>(
    metric: &M,
    store: &FileStore<2>,
    flags: &HashMap<String, String>,
) -> MTree<2> {
    if let Some(ix) = flags.get("index-file") {
        if !ix.ends_with(".fzmt") {
            eprintln!("metric queries need an M-tree index (.fzmt); got {ix}");
            exit(1)
        }
        return MTree::load(ix, metric).unwrap_or_else(|e| {
            eprintln!("cannot open M-tree {ix}: {e}");
            exit(1)
        });
    }
    let fanout = get(flags, "fanout").unwrap_or(MTreeConfig::default().fanout);
    MTree::build(metric, &load_objects(store), MTreeConfig { fanout })
}

/// AKNN through the metric seam: best-first over the M-tree, or the
/// brute-force oracle scan with `--brute true`. Answer lines print in the
/// same format as the rectangle path so outputs diff cleanly.
fn run_metric_aknn<M: Metric<2>>(
    metric: &M,
    store: &FileStore<2>,
    q: &FuzzyObject<2>,
    k: usize,
    alpha: f64,
    flags: &HashMap<String, String>,
) {
    if !(alpha > 0.0 && alpha <= 1.0) {
        eprintln!("--alpha must lie in (0, 1]; got {alpha}");
        exit(1)
    }
    let t = Threshold::at(alpha);
    let brute: bool = get(flags, "brute").unwrap_or(false);
    let res = if brute {
        metric_aknn_brute(metric, store, &store.ids(), q, k, t)
    } else {
        let tree = mtree_for(metric, store, flags);
        metric_aknn(metric, &tree, store, q, k, t)
    }
    .unwrap_or_else(|e| {
        eprintln!("query failed: {e}");
        exit(1)
    });
    println!("{k}NN of {} at α = {alpha} (metric {}):", q.id(), metric.name());
    for n in &res.neighbors {
        println!("  {n}");
    }
    println!(
        "cost: {} object accesses, {} node accesses, {} distance evals, {:?}",
        res.stats.object_accesses,
        res.stats.node_accesses,
        res.stats.distance_evals,
        res.stats.wall
    );
}

fn csv_list<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str) -> Option<Vec<T>> {
    flags.get(key).map(|v| {
        v.split(',')
            .map(|item| {
                item.trim().parse().unwrap_or_else(|_| {
                    eprintln!("bad value in --{key}: {item}");
                    usage()
                })
            })
            .collect()
    })
}

/// Run the §6-style AKNN sweeps through the batch executor and write a
/// machine-readable report (see `fuzzy_bench::aknn_suite` for the schema).
fn bench(flags: &HashMap<String, String>) {
    use fuzzy_bench::aknn_suite::{self, BenchOptions, IndexBackend};
    use fuzzy_bench::DatasetSpec;
    use fuzzy_datagen::DatasetKind;

    let smoke: bool = get(flags, "smoke").unwrap_or(false);
    let mut opts = if smoke { BenchOptions::smoke() } else { BenchOptions::full() };
    if let Some(backend) = flags.get("backend") {
        opts.backend = match backend.as_str() {
            "mem" => IndexBackend::Mem,
            "paged" => IndexBackend::Paged,
            other => {
                eprintln!("unknown backend {other}");
                usage()
            }
        };
    }
    opts.page_size = get(flags, "page-size").unwrap_or(opts.page_size);
    opts.cache_pages = get(flags, "cache-pages").unwrap_or(opts.cache_pages);
    if let Some(kind) = flags.get("kind") {
        opts.dataset.kind = match kind.as_str() {
            "synthetic" => DatasetKind::Synthetic,
            "cell" => DatasetKind::Cell,
            other => {
                eprintln!("unknown kind {other}");
                usage()
            }
        };
    }
    let d = &mut opts.dataset;
    *d = DatasetSpec {
        kind: d.kind,
        n: get(flags, "n").unwrap_or(d.n),
        points_per_object: get(flags, "ppo").unwrap_or(d.points_per_object),
        seed: get(flags, "seed").unwrap_or(d.seed),
        radius: get(flags, "radius").map(Some).unwrap_or(d.radius),
    };
    let a = &mut opts.approx_dataset;
    *a = DatasetSpec {
        kind: a.kind,
        n: get(flags, "approx-n").unwrap_or(a.n),
        points_per_object: get(flags, "approx-ppo").unwrap_or(a.points_per_object),
        seed: get(flags, "approx-seed").unwrap_or(a.seed),
        radius: get(flags, "approx-radius").map(Some).unwrap_or(a.radius),
    };
    opts.queries = get(flags, "queries").unwrap_or(opts.queries);
    opts.default_k = get(flags, "k").unwrap_or(opts.default_k);
    opts.default_alpha = get(flags, "alpha").unwrap_or(opts.default_alpha);
    opts.mutation_rate = get(flags, "mutation-rate").unwrap_or(opts.mutation_rate);
    if let Some(ks) = csv_list(flags, "ks") {
        opts.ks = ks;
    }
    if let Some(alphas) = csv_list(flags, "alphas") {
        opts.alphas = alphas;
    }
    if let Some(threads) = csv_list(flags, "threads") {
        opts.thread_counts = threads;
    }
    if let Some(shards) = csv_list(flags, "shard-counts") {
        opts.shard_counts = shards;
    }
    if let Some(budgets) = csv_list(flags, "lsh-budgets") {
        opts.lsh_budgets = budgets;
    }
    if let Some(slacks) = csv_list(flags, "vptree-slacks") {
        opts.vptree_slacks = slacks;
    }
    if let Some(false) = get(flags, "approx-sweep") {
        opts.lsh_budgets.clear();
        opts.vptree_slacks.clear();
    }

    let out = flags.get("out").cloned().unwrap_or_else(|| "BENCH_aknn.json".into());
    eprintln!(
        "benchmarking {:?} n={} ppo={} queries={} (smoke: {smoke}) ...",
        opts.dataset.kind, opts.dataset.n, opts.dataset.points_per_object, opts.queries
    );
    let report = aknn_suite::run(&opts);
    aknn_suite::write_report(std::path::Path::new(&out), &report).unwrap_or_else(|e| {
        eprintln!("cannot write report: {e}");
        exit(1)
    });

    // Console summary: the variant × threads sweep, qps and mean accesses.
    let runs = report.get("runs").and_then(|r| r.as_arr()).unwrap_or(&[]);
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "variant", "threads", "qps", "obj/query", "node/query", "disk/query"
    );
    for run in runs {
        if run.get("sweep").and_then(|s| s.as_str()) != Some("variant_threads") {
            continue;
        }
        let f = |key: &str| run.get(key).and_then(|v| v.as_num()).unwrap_or(f64::NAN);
        println!(
            "{:>10} {:>8} {:>10.1} {:>12.1} {:>12.1} {:>12.1}",
            run.get("variant").and_then(|v| v.as_str()).unwrap_or("?"),
            f("threads") as u64,
            f("qps"),
            f("object_accesses_mean"),
            f("node_accesses_mean"),
            f("node_disk_reads_mean"),
        );
    }
    println!("-> {out}");
}

fn open(path: &str) -> FileStore<2> {
    FileStore::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1)
    })
}

/// A persisted index as the CLI sees it: the bare paged tree when no
/// sidecar delta log exists, or the tree with its overlay replayed.
enum CliIndex {
    Paged(PagedRTree<2>),
    Overlay(OverlayRTree<2>),
}

impl NodeAccess<2> for CliIndex {
    fn root_id(&self) -> NodeId {
        match self {
            Self::Paged(t) => NodeAccess::root_id(t),
            Self::Overlay(t) => NodeAccess::root_id(t),
        }
    }

    fn root_mbr(&self) -> fuzzy_geom::Mbr<2> {
        match self {
            Self::Paged(t) => t.root_mbr(),
            Self::Overlay(t) => t.root_mbr(),
        }
    }

    fn read_node(&self, id: NodeId) -> Result<NodeRead<'_, 2>, StoreError> {
        match self {
            Self::Paged(t) => t.read_node(id),
            Self::Overlay(t) => t.read_node(id),
        }
    }

    fn len(&self) -> usize {
        match self {
            Self::Paged(t) => NodeAccess::len(t),
            Self::Overlay(t) => NodeAccess::len(t),
        }
    }

    fn height(&self) -> usize {
        match self {
            Self::Paged(t) => NodeAccess::height(t),
            Self::Overlay(t) => NodeAccess::height(t),
        }
    }
}

fn cache_pages(flags: &HashMap<String, String>) -> usize {
    get(flags, "cache-pages").unwrap_or(fuzzy_index::DEFAULT_CACHE_PAGES)
}

/// Open an index for querying, replaying its sidecar delta log if one
/// exists so fresh processes see pending inserts/deletes.
fn open_index(path: &str, flags: &HashMap<String, String>) -> CliIndex {
    let fail = |e: StoreError| -> ! {
        eprintln!("cannot open index {path}: {e}");
        exit(1)
    };
    if delta_path_for(path).exists() {
        CliIndex::Overlay(
            OverlayRTree::open_with_cache(path, cache_pages(flags)).unwrap_or_else(|e| fail(e)),
        )
    } else {
        CliIndex::Paged(
            PagedRTree::open_with_cache(path, cache_pages(flags)).unwrap_or_else(|e| fail(e)),
        )
    }
}

/// Open an index for mutation (always through the overlay).
fn open_overlay(path: &str, flags: &HashMap<String, String>) -> OverlayRTree<2> {
    OverlayRTree::open_with_cache(path, cache_pages(flags)).unwrap_or_else(|e| {
        eprintln!("cannot open index {path}: {e}");
        exit(1)
    })
}

/// Open a `.fzsm` shard forest: the manifest plus one overlay per shard
/// (each with its sidecar delta replayed).
fn open_sharded(
    path: &str,
    flags: &HashMap<String, String>,
) -> (ShardManifest<2>, Vec<OverlayRTree<2>>) {
    ShardedIndex::open_overlays(path, cache_pages(flags)).unwrap_or_else(|e| {
        eprintln!("cannot open sharded index {path}: {e}");
        exit(1)
    })
}

/// Insert summaries of store objects (by id) into a persisted index's
/// overlay. Against a `.fzsm` forest each summary routes to the shard
/// with the nearest build-time region; only touched shards write deltas.
fn insert_cmd(path: &str, flags: &HashMap<String, String>) {
    let store = open(path);
    let ix = flags.get("index-file").cloned().unwrap_or_else(|| usage());
    let ids: Vec<u64> = csv_list(flags, "ids").unwrap_or_else(|| usage());
    if is_sharded_path(&ix) {
        let (manifest, mut shards) = open_sharded(&ix, flags);
        let mut inserted = 0usize;
        let mut touched = vec![false; shards.len()];
        for id in ids {
            let Some(summary) = store.summaries().iter().find(|s| s.id.0 == id) else {
                eprintln!("{path} stores no object {id}");
                exit(1)
            };
            if shards.iter().any(|s| s.contains_id(summary.id)) {
                eprintln!("id {id} is already indexed; skipped");
                continue;
            }
            let target = manifest.route(&summary.support_mbr);
            if shards[target].insert(*summary) {
                inserted += 1;
                touched[target] = true;
                println!("  {id} -> shard {target}");
            }
        }
        for (i, shard) in shards.iter().enumerate() {
            if touched[i] {
                shard.save_delta().unwrap_or_else(|e| {
                    eprintln!("cannot write delta log for shard {i}: {e}");
                    exit(1)
                });
            }
        }
        let live: usize = shards.iter().map(NodeAccess::len).sum();
        println!(
            "inserted {inserted} into {ix}: {live} live objects across {} shards",
            shards.len()
        );
        return;
    }
    let mut overlay = open_overlay(&ix, flags);
    let mut inserted = 0usize;
    for id in ids {
        let Some(summary) = store.summaries().iter().find(|s| s.id.0 == id) else {
            eprintln!("{path} stores no object {id}");
            exit(1)
        };
        match overlay.insert(*summary) {
            true => inserted += 1,
            false => eprintln!("id {id} is already indexed; skipped"),
        }
    }
    overlay.save_delta().unwrap_or_else(|e| {
        eprintln!("cannot write delta log: {e}");
        exit(1)
    });
    println!(
        "inserted {inserted} into {ix}: {} live objects (pending +{} -{})",
        NodeAccess::len(&overlay),
        overlay.pending_inserts(),
        overlay.pending_tombstones(),
    );
}

/// Tombstone ids out of a persisted index's overlay. Against a `.fzsm`
/// forest every shard is consulted (routing is only a placement
/// heuristic); the owning shard takes the tombstone.
fn delete_cmd(flags: &HashMap<String, String>) {
    let ix = flags.get("index-file").cloned().unwrap_or_else(|| usage());
    let ids: Vec<u64> = csv_list(flags, "ids").unwrap_or_else(|| usage());
    if is_sharded_path(&ix) {
        let (_, mut shards) = open_sharded(&ix, flags);
        let mut deleted = 0usize;
        let mut touched = vec![false; shards.len()];
        for id in ids {
            let id = fuzzy_core::ObjectId(id);
            match shards.iter_mut().position(|s| s.delete(id)) {
                Some(owner) => {
                    deleted += 1;
                    touched[owner] = true;
                    println!("  {id} <- shard {owner}");
                }
                None => eprintln!("id {id} is not indexed; skipped"),
            }
        }
        for (i, shard) in shards.iter().enumerate() {
            if touched[i] {
                shard.save_delta().unwrap_or_else(|e| {
                    eprintln!("cannot write delta log for shard {i}: {e}");
                    exit(1)
                });
            }
        }
        let live: usize = shards.iter().map(NodeAccess::len).sum();
        println!("deleted {deleted} from {ix}: {live} live objects across {} shards", shards.len());
        return;
    }
    let mut overlay = open_overlay(&ix, flags);
    let mut deleted = 0usize;
    for id in ids {
        match overlay.delete(fuzzy_core::ObjectId(id)) {
            true => deleted += 1,
            false => eprintln!("id {id} is not indexed; skipped"),
        }
    }
    overlay.save_delta().unwrap_or_else(|e| {
        eprintln!("cannot write delta log: {e}");
        exit(1)
    });
    println!(
        "deleted {deleted} from {ix}: {} live objects (pending +{} -{})",
        NodeAccess::len(&overlay),
        overlay.pending_inserts(),
        overlay.pending_tombstones(),
    );
}

/// Fold a persisted index's overlay back into the file (STR bulk reload).
/// Against a `.fzsm` forest each dirty shard compacts on its own thread
/// (per-shard locks: no shard waits on another), then the manifest rows
/// are rewritten so the new base-file object counts and regions verify.
fn compact_cmd(flags: &HashMap<String, String>) {
    let ix = flags.get("index-file").cloned().unwrap_or_else(|| usage());
    if is_sharded_path(&ix) {
        let (mut manifest, shards) = open_sharded(&ix, flags);
        let started = std::time::Instant::now();
        let compacted: Vec<Option<(usize, u64, fuzzy_geom::Mbr<2>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .enumerate()
                    .map(|(i, overlay)| {
                        let page_size: u32 =
                            get(flags, "page-size").unwrap_or(overlay.base().page_size());
                        scope.spawn(move || {
                            if overlay.is_clean() {
                                return None;
                            }
                            let pending = (overlay.pending_inserts(), overlay.pending_tombstones());
                            let tree = overlay.compact(page_size).unwrap_or_else(|e| {
                                eprintln!("compaction of shard {i} failed: {e}");
                                exit(1)
                            });
                            println!(
                                "  shard {i}: folded +{} -{} into {} pages, {} objects",
                                pending.0,
                                pending.1,
                                tree.page_count(),
                                tree.len()
                            );
                            let region = if tree.len() == 0 {
                                fuzzy_geom::Mbr::empty()
                            } else {
                                tree.root_mbr()
                            };
                            Some((i, tree.len() as u64, region))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("compaction thread panicked")).collect()
            });
        // Compaction changed base-file object counts; rewrite the
        // manifest rows so `ShardedIndex::open` verifies again.
        let mut dirty = 0usize;
        for (i, objects, region) in compacted.into_iter().flatten() {
            dirty += 1;
            manifest.shards[i].objects = objects;
            manifest.shards[i].region = region;
        }
        manifest.save(&ix).unwrap_or_else(|e| {
            eprintln!("cannot rewrite manifest: {e}");
            exit(1)
        });
        println!(
            "compacted {ix}: {dirty} of {} shards dirty, {:?}",
            manifest.shards.len(),
            started.elapsed()
        );
        return;
    }
    let overlay = open_overlay(&ix, flags);
    let page_size: u32 = get(flags, "page-size").unwrap_or(overlay.base().page_size());
    let pending = (overlay.pending_inserts(), overlay.pending_tombstones());
    let started = std::time::Instant::now();
    let tree = overlay.compact(page_size).unwrap_or_else(|e| {
        eprintln!("compaction failed: {e}");
        exit(1)
    });
    println!(
        "compacted {ix}: folded +{} -{} into {} pages x {page_size} bytes, {} objects, \
         height {}, {:?}",
        pending.0,
        pending.1,
        tree.page_count(),
        tree.len(),
        NodeAccess::height(&tree),
        started.elapsed()
    );
}

fn info(path: &str, flags: &HashMap<String, String>) {
    let store = open(path);
    println!("{path}: {} objects", store.len());
    let total_points: u64 = store.summaries().iter().map(|s| s.point_count as u64).sum();
    println!("  total points: {total_points}");
    let mut bbox = fuzzy_geom::Mbr::<2>::empty();
    for s in store.summaries() {
        bbox.expand_mbr(&s.support_mbr);
    }
    println!("  bounding box: {bbox:?}");
    if let Some(ix) = flags.get("index-file") {
        if is_sharded_path(ix) {
            let (manifest, shards) = open_sharded(ix, flags);
            println!(
                "  sharded index {ix}: {} shards ({}), {} objects at build",
                manifest.shards.len(),
                manifest.strategy_name(),
                manifest.object_count()
            );
            for (i, (row, ov)) in manifest.shards.iter().zip(&shards).enumerate() {
                println!(
                    "    shard {i}: {} — {} live (overlay +{} -{}), height {}, region {:?}",
                    row.path,
                    NodeAccess::len(ov),
                    ov.pending_inserts(),
                    ov.pending_tombstones(),
                    NodeAccess::height(ov.base()),
                    row.region,
                );
            }
            return;
        }
        match open_index(ix, flags) {
            CliIndex::Paged(tree) => println!(
                "  paged index {ix}: height {}, {} pages x {} bytes, C_max {}",
                NodeAccess::height(&tree),
                tree.page_count(),
                tree.page_size(),
                tree.config().max_entries
            ),
            CliIndex::Overlay(tree) => println!(
                "  paged index {ix}: height {}, {} pages x {} bytes, C_max {}, \
                 overlay +{} -{} ({} live)",
                NodeAccess::height(tree.base()),
                tree.base().page_count(),
                tree.base().page_size(),
                tree.config().max_entries,
                tree.pending_inserts(),
                tree.pending_tombstones(),
                NodeAccess::len(&tree),
            ),
        }
    } else {
        let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
        println!(
            "  R-tree: height {}, {} leaves, avg fill {:.1}",
            tree.height(),
            tree.leaf_count(),
            tree.avg_leaf_fill()
        );
    }
}

/// Build a persistent paged index over a store's summaries. With
/// `--shards > 1` (or a `.fzsm` output path) the summaries are
/// partitioned and one paged tree is written per shard, described by a
/// checksummed `.fzsm` manifest (see `docs/FORMAT.md`).
fn build_index(path: &str, flags: &HashMap<String, String>) {
    let store = open(path);
    let out = flags.get("out").cloned().unwrap_or_else(|| usage());
    let metric_name = flags.get("metric").map(String::as_str).unwrap_or("l2");
    if flags.contains_key("approx") || out.ends_with(".fzlh") || out.ends_with(".fzvp") {
        build_approx_index(&store, &out, flags);
        return;
    }
    if out.ends_with(".fzmt") || metric_name == "graph" {
        build_mtree_index(&store, &out, metric_name, flags);
        return;
    }
    if metric_name != "l2" {
        eprintln!("unknown metric {metric_name}");
        usage()
    }
    let page_size: u32 = get(flags, "page-size").unwrap_or(fuzzy_index::DEFAULT_PAGE_SIZE);
    let defaults = RTreeConfig::default();
    let config = RTreeConfig {
        max_entries: get(flags, "max-entries").unwrap_or(defaults.max_entries),
        min_fill: get(flags, "min-fill").unwrap_or(defaults.min_fill),
    };
    let shards: usize = get(flags, "shards").unwrap_or(1);
    let started = std::time::Instant::now();
    if shards > 1 || is_sharded_path(&out) {
        let assign: Box<dyn ShardAssign<2>> =
            match flags.get("shard-strategy").map(String::as_str).unwrap_or("str") {
                "str" => Box::new(StrCenterAssign),
                "mass" => Box::new(MassClassAssign),
                other => {
                    eprintln!("unknown shard strategy {other}");
                    usage()
                }
            };
        if !is_sharded_path(&out) {
            eprintln!("--shards needs a .fzsm output path (got {out})");
            exit(1)
        }
        let index = ShardedIndex::build(
            store.summaries().to_vec(),
            shards.max(1),
            assign.as_ref(),
            config,
            &out,
            page_size,
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot build sharded index: {e}");
            exit(1)
        });
        println!(
            "wrote {out}: {} objects across {} shards ({}), {:?}",
            index.len(),
            index.shard_count(),
            index.manifest().strategy_name(),
            started.elapsed()
        );
        for (i, row) in index.manifest().shards.iter().enumerate() {
            println!("  shard {i}: {} objects -> {}", row.objects, row.path);
        }
        return;
    }
    let tree = PagedRTree::bulk_write(store.summaries().to_vec(), config, &out, page_size)
        .unwrap_or_else(|e| {
            eprintln!("cannot build index: {e}");
            exit(1)
        });
    println!(
        "wrote {out}: {} objects in {} pages x {page_size} bytes, height {}, {:?}",
        tree.len(),
        tree.page_count(),
        NodeAccess::height(&tree),
        started.elapsed()
    );
}

/// Build and persist an approximate candidate index: `--approx lsh` to a
/// `.fzlh` multi-probe hash table file, `--approx vptree` to a `.fzvp`
/// vantage-point tree (both L2, see `docs/FORMAT.md`). The backend can
/// also be inferred from the output extension.
fn build_approx_index(store: &FileStore<2>, out: &str, flags: &HashMap<String, String>) {
    let backend = match flags.get("approx").map(String::as_str) {
        Some(b) => b.to_string(),
        None if out.ends_with(".fzlh") => "lsh".into(),
        None => "vptree".into(),
    };
    let fof_neighbors: usize =
        get(flags, "fof-neighbors").unwrap_or(fuzzy_index::LshConfig::default().fof_neighbors);
    let started = std::time::Instant::now();
    match backend.as_str() {
        "lsh" => {
            if !out.ends_with(".fzlh") {
                eprintln!("--approx lsh output path must end in .fzlh (got {out})");
                exit(1)
            }
            let defaults = fuzzy_index::LshConfig::default();
            let config = fuzzy_index::LshConfig {
                tables: get(flags, "tables").unwrap_or(defaults.tables),
                hashes: get(flags, "hashes").unwrap_or(defaults.hashes),
                fof_neighbors,
                ..defaults
            };
            let index = fuzzy_index::LshIndex::build(store.summaries(), config);
            index.save(out).unwrap_or_else(|e| {
                eprintln!("cannot write LSH index: {e}");
                exit(1)
            });
            println!(
                "wrote {out}: {} objects, lsh backend ({} tables x {} hashes), {:?}",
                fuzzy_index::ApproxIndex::len(&index),
                config.tables,
                config.hashes,
                started.elapsed()
            );
        }
        "vptree" => {
            if !out.ends_with(".fzvp") {
                eprintln!("--approx vptree output path must end in .fzvp (got {out})");
                exit(1)
            }
            let defaults = fuzzy_index::VpTreeConfig::default();
            let config = fuzzy_index::VpTreeConfig {
                leaf_size: get(flags, "leaf-size").unwrap_or(defaults.leaf_size),
                fof_neighbors,
            };
            let index = fuzzy_index::VpTree::build(&L2, store.summaries(), config);
            index.save(out).unwrap_or_else(|e| {
                eprintln!("cannot write VP-tree index: {e}");
                exit(1)
            });
            println!(
                "wrote {out}: {} objects, vptree backend (leaf size {}), {:?}",
                fuzzy_index::ApproxIndex::len(&index),
                config.leaf_size,
                started.elapsed()
            );
        }
        other => {
            eprintln!("unknown approx backend {other} (expected lsh or vptree)");
            usage()
        }
    }
}

/// Build and persist a `.fzmt` M-tree over a store under `--metric`
/// (`graph` needs the `--graph` network the objects were generated on).
fn build_mtree_index(
    store: &FileStore<2>,
    out: &str,
    metric_name: &str,
    flags: &HashMap<String, String>,
) {
    if !out.ends_with(".fzmt") {
        eprintln!("M-tree output path must end in .fzmt (got {out})");
        exit(1)
    }
    let fanout = get(flags, "fanout").unwrap_or(MTreeConfig::default().fanout);
    let objects = load_objects(store);
    let started = std::time::Instant::now();
    let tree = match metric_name {
        "l2" => MTree::build(&L2, &objects, MTreeConfig { fanout }),
        "graph" => MTree::build(&load_graph_metric(flags), &objects, MTreeConfig { fanout }),
        other => {
            eprintln!("unknown metric {other}");
            usage()
        }
    };
    tree.save(out).unwrap_or_else(|e| {
        eprintln!("cannot write M-tree: {e}");
        exit(1)
    });
    println!(
        "wrote {out}: {} objects, metric {}, fanout {fanout}, height {}, {:?}",
        NodeAccess::len(&tree),
        tree.metric_name(),
        NodeAccess::height(&tree),
        started.elapsed()
    );
}

fn query_object(store: &FileStore<2>, flags: &HashMap<String, String>) -> FuzzyObject<2> {
    // Query by dataset object id, or a pseudo-random member.
    if let Some(id) = get::<u64>(flags, "query-id") {
        return store
            .probe(fuzzy_core::ObjectId(id))
            .unwrap_or_else(|e| {
                eprintln!("cannot load query object {id}: {e}");
                exit(1)
            })
            .as_ref()
            .clone();
    }
    let seed: u64 = get(flags, "query-seed").unwrap_or(7);
    let ids = store.ids();
    let pick = ids[(seed as usize) % ids.len()];
    store.probe(pick).expect("probe query").as_ref().clone()
}

fn variant(flags: &HashMap<String, String>) -> AknnConfig {
    match flags.get("variant").map(String::as_str).unwrap_or("lb-lp-ub") {
        "basic" => AknnConfig::basic(),
        "lb" => AknnConfig::lb(),
        "lb-lp" => AknnConfig::lb_lp(),
        "lb-lp-ub" => AknnConfig::lb_lp_ub(),
        other => {
            eprintln!("unknown variant {other}");
            usage()
        }
    }
}

/// Run the AKNN against whichever index backend the flags select.
fn run_aknn<A: NodeAccess<2>>(
    tree: &A,
    store: &FileStore<2>,
    q: &FuzzyObject<2>,
    k: usize,
    alpha: f64,
    cfg: &AknnConfig,
) {
    let engine = QueryEngine::new(tree, store);
    let res = engine.aknn(q, k, alpha, cfg).unwrap_or_else(|e| {
        eprintln!("query failed: {e}");
        exit(1)
    });
    println!("{k}NN of {} at α = {alpha}:", q.id());
    for n in &res.neighbors {
        println!("  {n}");
    }
    println!(
        "cost: {} object accesses, {} node accesses ({} from disk), {:?}",
        res.stats.object_accesses,
        res.stats.node_accesses,
        res.stats.node_disk_reads,
        res.stats.wall
    );
}

/// Resolve the `--recall-dial` flag (`exact` or a numeric budget/slack).
fn recall_dial(flags: &HashMap<String, String>) -> fuzzy_index::RecallDial {
    let raw = flags.get("recall-dial").map(String::as_str).unwrap_or("1");
    fuzzy_index::RecallDial::parse(raw).unwrap_or_else(|| {
        eprintln!("bad --recall-dial {raw}: expected 'exact' or a finite value >= 0");
        usage()
    })
}

/// AKNN through the approximate path: a candidate pool from an LSH or
/// VP-tree index, resolved through the exact probe loop — distances stay
/// exact, only recall follows the dial. `--measure-recall true` runs the
/// exact engine alongside and prints the measured recall@k.
fn run_approx_aknn(
    store: &FileStore<2>,
    q: &FuzzyObject<2>,
    k: usize,
    alpha: f64,
    flags: &HashMap<String, String>,
) {
    if !(alpha > 0.0 && alpha <= 1.0) {
        eprintln!("--alpha must lie in (0, 1]; got {alpha}");
        exit(1)
    }
    let t = Threshold::at(alpha);
    let dial = recall_dial(flags);
    let cfg = fuzzy_query::ApproxConfig::at(dial);

    // The trait's `candidates` hook is generic over the metric, so the
    // backend dispatch is static: each arm answers through the same
    // generic closure with its concrete index type.
    let answer = |res: fuzzy_query::AknnResult, backend: &str| {
        println!("{k}NN of {} at α = {alpha} (approx {backend}, dial {}):", q.id(), dial.label());
        for n in &res.neighbors {
            println!("  {n}");
        }
        println!(
            "cost: {} object accesses, {} bound evals, {:?}",
            res.stats.object_accesses, res.stats.bound_evals, res.stats.wall
        );
        if get::<bool>(flags, "measure-recall").unwrap_or(false) {
            let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
            let exact = QueryEngine::new(&tree, store)
                .aknn(q, k, alpha, &AknnConfig::lb_lp_ub())
                .unwrap_or_else(|e| {
                    eprintln!("exact reference failed: {e}");
                    exit(1)
                });
            println!("recall@{k}: {:.4}", fuzzy_query::recall_at_k(&res, &exact));
        }
    };
    let run = |index: &dyn Fn() -> Result<fuzzy_query::AknnResult, fuzzy_query::QueryError>,
               backend: &str| {
        let res = index().unwrap_or_else(|e| {
            eprintln!("query failed: {e}");
            exit(1)
        });
        answer(res, backend);
    };
    match flags.get("index-file") {
        Some(ix) if ix.ends_with(".fzlh") => {
            let index = fuzzy_index::LshIndex::load(ix).unwrap_or_else(|e| {
                eprintln!("cannot open LSH index {ix}: {e}");
                exit(1)
            });
            run(&|| fuzzy_query::approx_aknn(&L2, &index, store, q, k, t, &cfg), "lsh");
        }
        Some(ix) if ix.ends_with(".fzvp") => {
            let index = fuzzy_index::VpTree::load(ix, &L2).unwrap_or_else(|e| {
                eprintln!("cannot open VP-tree index {ix}: {e}");
                exit(1)
            });
            run(&|| fuzzy_query::approx_aknn(&L2, &index, store, q, k, t, &cfg), "vptree");
        }
        Some(ix) => {
            eprintln!("approximate queries need a .fzlh or .fzvp index; got {ix}");
            exit(1)
        }
        None => match flags.get("approx").map(String::as_str).unwrap_or("lsh") {
            "lsh" => {
                let index = fuzzy_index::LshIndex::build(
                    store.summaries(),
                    fuzzy_index::LshConfig::default(),
                );
                run(&|| fuzzy_query::approx_aknn(&L2, &index, store, q, k, t, &cfg), "lsh");
            }
            "vptree" => {
                let index = fuzzy_index::VpTree::build(
                    &L2,
                    store.summaries(),
                    fuzzy_index::VpTreeConfig::default(),
                );
                run(&|| fuzzy_query::approx_aknn(&L2, &index, store, q, k, t, &cfg), "vptree");
            }
            other => {
                eprintln!("unknown approx backend {other} (expected lsh or vptree)");
                usage()
            }
        },
    }
}

fn aknn(path: &str, flags: &HashMap<String, String>) {
    let store = open(path);
    let k: usize = get(flags, "k").unwrap_or(10);
    let alpha: f64 = get(flags, "alpha").unwrap_or(0.5);
    let q = query_object(&store, flags);
    let wants_approx = flags.contains_key("approx")
        || flags.contains_key("recall-dial")
        || flags.get("index-file").is_some_and(|ix| ix.ends_with(".fzlh") || ix.ends_with(".fzvp"));
    if wants_approx {
        run_approx_aknn(&store, &q, k, alpha, flags);
        return;
    }
    let metric_name = flags.get("metric").map(String::as_str).unwrap_or("l2");
    match metric_name {
        "graph" => {
            let metric = load_graph_metric(flags);
            run_metric_aknn(&metric, &store, &q, k, alpha, flags);
            return;
        }
        "l2" => {
            // `--metric l2` against a `.fzmt` index (or with `--brute`)
            // exercises the metric seam under L2; the plain rectangle
            // path below stays the default.
            let wants_metric_path = get::<bool>(flags, "brute").unwrap_or(false)
                || flags.get("index-file").is_some_and(|ix| ix.ends_with(".fzmt"));
            if wants_metric_path {
                run_metric_aknn(&L2, &store, &q, k, alpha, flags);
                return;
            }
        }
        other => {
            eprintln!("unknown metric {other}");
            usage()
        }
    }
    if let Some(addr) = flags.get("server") {
        server_aknn(addr, q.id(), k, alpha, flags);
        return;
    }
    store.reset_stats();
    match flags.get("index-file") {
        Some(ix) if is_sharded_path(ix) => {
            let (_, shards) = open_sharded(ix, flags);
            let engine = ShardedQueryEngine::new(&shards, &store);
            let res = engine.aknn(&q, k, alpha, &variant(flags)).unwrap_or_else(|e| {
                eprintln!("query failed: {e}");
                exit(1)
            });
            println!("{k}NN of {} at α = {alpha} ({} shards):", q.id(), shards.len());
            for n in &res.neighbors {
                println!("  {n}");
            }
            println!(
                "cost: {} object accesses, {} node accesses ({} from disk), {:?}",
                res.stats.object_accesses,
                res.stats.node_accesses,
                res.stats.node_disk_reads,
                res.stats.wall
            );
        }
        Some(ix) => run_aknn(&open_index(ix, flags), &store, &q, k, alpha, &variant(flags)),
        None => {
            let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
            run_aknn(&tree, &store, &q, k, alpha, &variant(flags));
        }
    }
}

/// Run the RKNN against whichever index backend the flags select.
#[allow(clippy::too_many_arguments)]
fn run_rknn<A: NodeAccess<2>>(
    tree: &A,
    store: &FileStore<2>,
    q: &FuzzyObject<2>,
    k: usize,
    start: f64,
    end: f64,
    algo: RknnAlgorithm,
) {
    let engine = QueryEngine::new(tree, store);
    let res = engine.rknn(q, k, start, end, algo, &AknnConfig::lb_lp_ub()).unwrap_or_else(|e| {
        eprintln!("query failed: {e}");
        exit(1)
    });
    println!("range {k}NN of {} over [{start}, {end}] ({}):", q.id(), algo.name());
    for item in &res.items {
        println!("  {item}");
    }
    println!(
        "cost: {} object accesses, {} candidates, {:?}",
        res.stats.object_accesses, res.stats.candidates, res.stats.wall
    );
}

fn rknn(path: &str, flags: &HashMap<String, String>) {
    let store = open(path);
    let k: usize = get(flags, "k").unwrap_or(10);
    let start: f64 = get(flags, "start").unwrap_or(0.4);
    let end: f64 = get(flags, "end").unwrap_or(0.6);
    let algo = match flags.get("algo").map(String::as_str).unwrap_or("rss-icr") {
        "naive" => RknnAlgorithm::Naive,
        "basic" => RknnAlgorithm::Basic,
        "rss" => RknnAlgorithm::Rss,
        "rss-icr" => RknnAlgorithm::RssIcr,
        other => {
            eprintln!("unknown algorithm {other}");
            usage()
        }
    };
    let q = query_object(&store, flags);
    if let Some(addr) = flags.get("server") {
        server_rknn(addr, q.id(), k, start, end, algo, flags);
        return;
    }
    store.reset_stats();
    match flags.get("index-file") {
        Some(ix) if is_sharded_path(ix) => {
            let (_, shards) = open_sharded(ix, flags);
            let engine = ShardedQueryEngine::new(&shards, &store);
            let res =
                engine.rknn(&q, k, start, end, algo, &AknnConfig::lb_lp_ub()).unwrap_or_else(|e| {
                    eprintln!("query failed: {e}");
                    exit(1)
                });
            println!(
                "range {k}NN of {} over [{start}, {end}] ({}, {} shards):",
                q.id(),
                algo.name(),
                shards.len()
            );
            for item in &res.items {
                println!("  {item}");
            }
            println!(
                "cost: {} object accesses, {} candidates, {:?}",
                res.stats.object_accesses, res.stats.candidates, res.stats.wall
            );
        }
        Some(ix) => run_rknn(&open_index(ix, flags), &store, &q, k, start, end, algo),
        None => {
            let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
            run_rknn(&tree, &store, &q, k, start, end, algo);
        }
    }
}

// ---------------------------------------------------------------------
// Resident-server subcommands (see `docs/PROTOCOL.md`).

fn wire_variant(flags: &HashMap<String, String>) -> WireVariant {
    let name = flags.get("variant").map(String::as_str).unwrap_or("lb-lp-ub");
    WireVariant::parse(name).unwrap_or_else(|| {
        eprintln!("unknown variant {name}");
        usage()
    })
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        exit(1)
    })
}

fn call(client: &mut Client, request: &Request) -> Response {
    match client.call(request) {
        Ok(Response::Error { code, message }) => {
            eprintln!("server error ({code:?}): {message}");
            exit(1)
        }
        Ok(Response::Busy) => {
            eprintln!("server busy: request shed by admission control; retry");
            exit(1)
        }
        Ok(resp) => resp,
        Err(e) => {
            eprintln!("request failed: {e}");
            exit(1)
        }
    }
}

/// AKNN through a daemon — prints exactly what the local path prints
/// (the answers are byte-identical; only the cost line's wall differs).
fn server_aknn(
    addr: &str,
    id: fuzzy_core::ObjectId,
    k: usize,
    alpha: f64,
    flags: &HashMap<String, String>,
) {
    let mut client = connect(addr);
    let request = Request::Aknn {
        query: QuerySource::Stored(id),
        k: k as u32,
        alpha,
        variant: wire_variant(flags),
        deadline_ms: get(flags, "deadline-ms").unwrap_or(0),
    };
    match call(&mut client, &request) {
        Response::Aknn { neighbors, stats } => {
            let stats = stats.to_query_stats();
            println!("{k}NN of {id} at α = {alpha}:");
            for n in &neighbors {
                println!("  {n}");
            }
            println!(
                "cost: {} object accesses, {} node accesses ({} from disk), {:?}",
                stats.object_accesses, stats.node_accesses, stats.node_disk_reads, stats.wall
            );
        }
        other => {
            eprintln!("unexpected response: {other:?}");
            exit(1)
        }
    }
}

/// RKNN through a daemon, printed like the local path.
fn server_rknn(
    addr: &str,
    id: fuzzy_core::ObjectId,
    k: usize,
    start: f64,
    end: f64,
    algo: RknnAlgorithm,
    flags: &HashMap<String, String>,
) {
    let mut client = connect(addr);
    let request = Request::Rknn {
        query: QuerySource::Stored(id),
        k: k as u32,
        alpha_start: start,
        alpha_end: end,
        algo,
        variant: wire_variant(flags),
        deadline_ms: get(flags, "deadline-ms").unwrap_or(0),
    };
    match call(&mut client, &request) {
        Response::Rknn { items, stats } => {
            let stats = stats.to_query_stats();
            println!("range {k}NN of {id} over [{start}, {end}] ({}):", algo.name());
            for item in &items {
                println!("  {item}");
            }
            println!(
                "cost: {} object accesses, {} candidates, {:?}",
                stats.object_accesses, stats.candidates, stats.wall
            );
        }
        other => {
            eprintln!("unexpected response: {other:?}");
            exit(1)
        }
    }
}

/// Start the resident daemon and park until a SHUTDOWN frame arrives.
fn serve_cmd(path: &str, flags: &HashMap<String, String>) {
    let store = open(path);
    let index = match flags.get("index-file") {
        Some(ix) => ServeIndex::open(ix, cache_pages(flags)).unwrap_or_else(|e| {
            eprintln!("cannot open index {ix}: {e}");
            exit(1)
        }),
        None => ServeIndex::mem_from_store(&store),
    };
    let listen =
        ListenAddr::parse(flags.get("listen").map(String::as_str).unwrap_or("127.0.0.1:7878"));
    let opts = ServeOptions {
        workers: get(flags, "workers").unwrap_or(0),
        queue_depth: get(flags, "queue-depth").unwrap_or(64),
        cache_pages: cache_pages(flags),
    };
    let handle = serve(store, index, &listen, &opts).unwrap_or_else(|e| {
        eprintln!("cannot bind {listen}: {e}");
        exit(1)
    });
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush(); // scripts wait for this line
    handle.join();
}

/// Drive a daemon with open-loop load and write `BENCH_serve.json`.
fn loadgen_cmd(flags: &HashMap<String, String>) {
    use fuzzy_bench::serve_suite::{self, LoadgenOptions};

    let addr = flags.get("addr").cloned().unwrap_or_else(|| usage());
    // Default query ids: every stored object, as reported by INFO.
    let query_ids = csv_list(flags, "query-ids").unwrap_or_else(|| {
        let mut client = connect(&addr);
        match call(&mut client, &Request::Info) {
            Response::Info { objects, .. } => (0..objects.max(1)).collect(),
            other => {
                eprintln!("unexpected INFO response: {other:?}");
                exit(1)
            }
        }
    });
    let d = LoadgenOptions::default();
    let opts = LoadgenOptions {
        addr,
        connections: get(flags, "connections").unwrap_or(d.connections),
        qps_targets: csv_list(flags, "qps").unwrap_or(d.qps_targets),
        duration_secs: get(flags, "duration").unwrap_or(d.duration_secs),
        k: get(flags, "k").unwrap_or(d.k),
        alpha: get(flags, "alpha").unwrap_or(d.alpha),
        variant: wire_variant(flags),
        deadline_ms: get(flags, "deadline-ms").unwrap_or(d.deadline_ms),
        query_ids,
    };
    eprintln!(
        "loadgen against {}: qps {:?} x {}s over {} connections ...",
        opts.addr, opts.qps_targets, opts.duration_secs, opts.connections
    );
    let report = serve_suite::run(&opts).unwrap_or_else(|e| {
        eprintln!("loadgen failed: {e}");
        exit(1)
    });
    let out = flags.get("out").cloned().unwrap_or_else(|| "BENCH_serve.json".into());
    serve_suite::write_report(std::path::Path::new(&out), &report).unwrap_or_else(|e| {
        eprintln!("cannot write report: {e}");
        exit(1)
    });

    println!(
        "{:>10} {:>10} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "target", "achieved", "ok", "busy", "p50 ms", "p95 ms", "p99 ms", "mean ms"
    );
    for run in report.get("runs").and_then(|r| r.as_arr()).unwrap_or(&[]) {
        let f = |key: &str| run.get(key).and_then(|v| v.as_num()).unwrap_or(f64::NAN);
        println!(
            "{:>10.0} {:>10.1} {:>6.0} {:>6.0} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            f("target_qps"),
            f("achieved_qps"),
            f("ok"),
            f("busy"),
            f("latency_ms_p50"),
            f("latency_ms_p95"),
            f("latency_ms_p99"),
            f("latency_ms_mean"),
        );
    }
    println!("-> {out}");
}

/// Publish a new index epoch on a running daemon.
fn swap_cmd(flags: &HashMap<String, String>) {
    let addr = flags.get("addr").cloned().unwrap_or_else(|| usage());
    let index_path = flags.get("index-file").cloned().unwrap_or_else(|| usage());
    let mut client = connect(&addr);
    match call(&mut client, &Request::Swap { index_path }) {
        Response::Swapped { epoch, objects } => {
            println!("swapped: epoch {epoch}, {objects} objects");
        }
        other => {
            eprintln!("unexpected response: {other:?}");
            exit(1)
        }
    }
}

/// Ask a running daemon to exit.
fn shutdown_cmd(flags: &HashMap<String, String>) {
    let addr = flags.get("addr").cloned().unwrap_or_else(|| usage());
    let mut client = connect(&addr);
    match call(&mut client, &Request::Shutdown) {
        Response::ShutdownAck => println!("server at {addr} is shutting down"),
        other => {
            eprintln!("unexpected response: {other:?}");
            exit(1)
        }
    }
}
