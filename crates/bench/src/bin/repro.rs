//! Regenerate every table and figure of the paper's evaluation (Section 6).
//!
//! ```sh
//! cargo run -p fuzzy-bench --release --bin repro -- all
//! cargo run -p fuzzy-bench --release --bin repro -- fig11b --ppo 100 --queries 5
//! ```
//!
//! Each experiment prints an aligned table and writes
//! `experiments/<id>.csv`. Running-time figures (12, 14, 15b) come from
//! the same runs as their object-access twins (11, 13, 15a): both metrics
//! are columns of the same CSV.
//!
//! Scaling: the paper uses N up to 50 000 objects of 1 000 points on 2010
//! hardware; `--scale` multiplies every N in a sweep and `--ppo` sets
//! points per object, so the full-size reproduction is
//! `--scale 1 --ppo 1000`. Recorded defaults fit a small CI box (see
//! EXPERIMENTS.md).

use fuzzy_analysis::{box_counting_dimension, correlation_dimension, CostModelParams};
use fuzzy_bench::{ms, DatasetSpec, Env, Table};
use fuzzy_core::ObjectSummary;
use fuzzy_datagen::DatasetKind;
use fuzzy_geom::{fit_conservative_line, fit_conservative_line_exact, Point};
use fuzzy_index::{RTree, RTreeConfig};
use fuzzy_query::{AknnConfig, QueryEngine, QueryStats, RknnAlgorithm};
use fuzzy_store::{CachedStore, ObjectStore};
use std::time::Instant;

#[derive(Clone, Copy, Debug)]
struct Opts {
    /// Multiplier on every N in a sweep (AKNN experiments).
    scale: f64,
    /// Multiplier on every N in RKNN sweeps (Basic RKNN is very costly).
    rknn_scale: f64,
    /// Points per object (paper: 1000).
    ppo: usize,
    /// Queries per configuration, averaged.
    queries: usize,
    /// Queries per RKNN configuration.
    rknn_queries: usize,
    /// Dataset seed.
    seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Self { scale: 1.0, rknn_scale: 0.2, ppo: 100, queries: 5, rknn_queries: 3, seed: 2010 }
    }
}

impl Opts {
    fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale).round() as usize).max(50)
    }

    fn rknn_scaled(&self, n: usize) -> usize {
        ((n as f64 * self.rknn_scale).round() as usize).max(50)
    }

    fn spec(&self, kind: DatasetKind, n: usize) -> DatasetSpec {
        DatasetSpec { kind, n, points_per_object: self.ppo, seed: self.seed, radius: None }
    }
}

// Table 2 defaults.
const DEFAULT_N: usize = 50_000;
const DEFAULT_K: usize = 20;
const DEFAULT_ALPHA: f64 = 0.5;
const DEFAULT_L: f64 = 0.2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = String::from("all");
    let mut opts = Opts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                opts.scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--rknn-scale" => {
                opts.rknn_scale = args[i + 1].parse().expect("--rknn-scale takes a float");
                i += 2;
            }
            "--ppo" => {
                opts.ppo = args[i + 1].parse().expect("--ppo takes an integer");
                i += 2;
            }
            "--queries" => {
                opts.queries = args[i + 1].parse().expect("--queries takes an integer");
                opts.rknn_queries = opts.queries.min(opts.rknn_queries);
                i += 2;
            }
            "--rknn-queries" => {
                opts.rknn_queries = args[i + 1].parse().expect("--rknn-queries takes an integer");
                i += 2;
            }
            "--seed" => {
                opts.seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
            name => {
                cmd = name.to_string();
                i += 1;
            }
        }
    }

    let started = Instant::now();
    match cmd.as_str() {
        "table2" => table2(&opts),
        "fig15" => fig15(&opts),
        "fig11a" | "fig12a" => fig11a(&opts),
        "fig11b" | "fig12b" => fig11b(&opts),
        "fig11c" | "fig12c" => fig11c(&opts),
        "fig13a" | "fig14a" => fig13a(&opts),
        "fig13b" | "fig14b" => fig13b(&opts),
        "fig13c" | "fig14c" => fig13c(&opts),
        "sec5" => sec5(&opts),
        "abl-line" => abl_line(&opts),
        "abl-cache" => abl_cache(&opts),
        "abl-samples" => abl_samples(&opts),
        "abl-bulk" => abl_bulk(&opts),
        "all" => {
            table2(&opts);
            fig15(&opts);
            fig11a(&opts);
            fig11b(&opts);
            fig11c(&opts);
            fig13a(&opts);
            fig13b(&opts);
            fig13c(&opts);
            sec5(&opts);
            abl_line(&opts);
            abl_cache(&opts);
            abl_samples(&opts);
            abl_bulk(&opts);
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; known: table2 fig15 fig11a..c fig13a..c \
                 sec5 abl-line abl-cache abl-samples abl-bulk all"
            );
            std::process::exit(2);
        }
    }
    eprintln!("\ntotal: {:?}", started.elapsed());
}

/// Table 2: parameter settings of this run.
fn table2(opts: &Opts) {
    let mut t = Table::new(&["parameter", "paper default", "this run"]);
    t.row(vec!["N (objects)".into(), DEFAULT_N.to_string(), opts.scaled(DEFAULT_N).to_string()]);
    t.row(vec!["k (results)".into(), DEFAULT_K.to_string(), DEFAULT_K.to_string()]);
    t.row(vec!["alpha".into(), DEFAULT_ALPHA.to_string(), DEFAULT_ALPHA.to_string()]);
    t.row(vec!["L (range length)".into(), DEFAULT_L.to_string(), DEFAULT_L.to_string()]);
    t.row(vec!["points/object".into(), "1000".into(), opts.ppo.to_string()]);
    t.row(vec!["queries averaged".into(), "-".into(), opts.queries.to_string()]);
    t.row(vec![
        "N for RKNN sweeps".into(),
        DEFAULT_N.to_string(),
        opts.rknn_scaled(DEFAULT_N).to_string(),
    ]);
    t.emit("table2");
}

fn aknn_row(
    env: &Env,
    queries: &[fuzzy_core::FuzzyObject<2>],
    k: usize,
    alpha: f64,
) -> Vec<QueryStats> {
    AknnConfig::paper_variants().iter().map(|cfg| env.run_aknn(queries, k, alpha, cfg)).collect()
}

const AKNN_HEADER: [&str; 9] = [
    "x",
    "Basic:acc",
    "LB:acc",
    "LB-LP:acc",
    "LB-LP-UB:acc",
    "Basic:ms",
    "LB:ms",
    "LB-LP:ms",
    "LB-LP-UB:ms",
];

fn push_aknn_row(t: &mut Table, x: String, stats: &[QueryStats]) {
    let mut row = vec![x];
    row.extend(stats.iter().map(|s| s.object_accesses.to_string()));
    row.extend(stats.iter().map(ms));
    t.row(row);
}

/// Figure 15: synthetic vs real(cell-like) dataset at the defaults.
fn fig15(opts: &Opts) {
    let mut t = Table::new(&AKNN_HEADER);
    for kind in [DatasetKind::Synthetic, DatasetKind::Cell] {
        let spec = opts.spec(kind, opts.scaled(DEFAULT_N));
        let env = Env::prepare(&spec);
        let queries = spec.queries(opts.queries);
        let stats = aknn_row(&env, &queries, DEFAULT_K, DEFAULT_ALPHA);
        push_aknn_row(&mut t, kind.name().into(), &stats);
    }
    t.emit("fig15");
}

/// Figures 11a/12a: AKNN vs dataset size N.
fn fig11a(opts: &Opts) {
    let mut t = Table::new(&AKNN_HEADER);
    for n in [1_000usize, 5_000, 10_000, 50_000] {
        let spec = opts.spec(DatasetKind::Cell, opts.scaled(n));
        let env = Env::prepare(&spec);
        let queries = spec.queries(opts.queries);
        let stats = aknn_row(&env, &queries, DEFAULT_K, DEFAULT_ALPHA);
        push_aknn_row(&mut t, spec.n.to_string(), &stats);
    }
    t.emit("fig11a");
}

/// Figures 11b/12b: AKNN vs k.
fn fig11b(opts: &Opts) {
    let spec = opts.spec(DatasetKind::Cell, opts.scaled(DEFAULT_N));
    let env = Env::prepare(&spec);
    let queries = spec.queries(opts.queries);
    let mut t = Table::new(&AKNN_HEADER);
    for k in [5usize, 10, 20, 50] {
        let stats = aknn_row(&env, &queries, k, DEFAULT_ALPHA);
        push_aknn_row(&mut t, k.to_string(), &stats);
    }
    t.emit("fig11b");
}

/// Figures 11c/12c: AKNN vs α.
fn fig11c(opts: &Opts) {
    let spec = opts.spec(DatasetKind::Cell, opts.scaled(DEFAULT_N));
    let env = Env::prepare(&spec);
    let queries = spec.queries(opts.queries);
    let mut t = Table::new(&AKNN_HEADER);
    for alpha in [0.3, 0.5, 0.7, 0.9] {
        let stats = aknn_row(&env, &queries, DEFAULT_K, alpha);
        push_aknn_row(&mut t, alpha.to_string(), &stats);
    }
    t.emit("fig11c");
}

const RKNN_HEADER: [&str; 7] =
    ["x", "Basic:acc", "RSS:acc", "RSS-ICR:acc", "Basic:ms", "RSS:ms", "RSS-ICR:ms"];

fn rknn_rows(
    env: &Env,
    queries: &[fuzzy_core::FuzzyObject<2>],
    k: usize,
    range: (f64, f64),
) -> Vec<QueryStats> {
    RknnAlgorithm::paper_variants()
        .iter()
        .map(|algo| env.run_rknn(queries, k, range, *algo, &AknnConfig::lb_lp_ub()))
        .collect()
}

fn push_rknn_row(t: &mut Table, x: String, stats: &[QueryStats]) {
    let mut row = vec![x];
    row.extend(stats.iter().map(|s| s.object_accesses.to_string()));
    row.extend(stats.iter().map(ms));
    t.row(row);
}

fn default_range() -> (f64, f64) {
    (DEFAULT_ALPHA - DEFAULT_L / 2.0, DEFAULT_ALPHA + DEFAULT_L / 2.0)
}

/// Figures 13a/14a: RKNN vs N.
fn fig13a(opts: &Opts) {
    let mut t = Table::new(&RKNN_HEADER);
    for n in [1_000usize, 5_000, 10_000, 50_000] {
        let spec = opts.spec(DatasetKind::Cell, opts.rknn_scaled(n));
        let env = Env::prepare(&spec);
        let queries = spec.queries(opts.rknn_queries);
        let stats = rknn_rows(&env, &queries, DEFAULT_K, default_range());
        push_rknn_row(&mut t, spec.n.to_string(), &stats);
    }
    t.emit("fig13a");
}

/// Figures 13b/14b: RKNN vs k.
fn fig13b(opts: &Opts) {
    let spec = opts.spec(DatasetKind::Cell, opts.rknn_scaled(DEFAULT_N));
    let env = Env::prepare(&spec);
    let queries = spec.queries(opts.rknn_queries);
    let mut t = Table::new(&RKNN_HEADER);
    for k in [5usize, 10, 20, 50] {
        let stats = rknn_rows(&env, &queries, k, default_range());
        push_rknn_row(&mut t, k.to_string(), &stats);
    }
    t.emit("fig13b");
}

/// Figures 13c/14c: RKNN vs range length L.
fn fig13c(opts: &Opts) {
    let spec = opts.spec(DatasetKind::Cell, opts.rknn_scaled(DEFAULT_N));
    let env = Env::prepare(&spec);
    let queries = spec.queries(opts.rknn_queries);
    let mut t = Table::new(&RKNN_HEADER);
    for l in [0.05, 0.1, 0.2, 0.5] {
        let range = (DEFAULT_ALPHA - l / 2.0, DEFAULT_ALPHA + l / 2.0);
        let stats = rknn_rows(&env, &queries, DEFAULT_K, range);
        push_rknn_row(&mut t, l.to_string(), &stats);
    }
    t.emit("fig13c");
}

/// Section 5: analytic object-access estimate (Eq. 8) vs measured Basic
/// AKNN accesses, sweeping α and k on the synthetic dataset.
fn sec5(opts: &Opts) {
    let spec = opts.spec(DatasetKind::Synthetic, opts.scaled(10_000));
    let env = Env::prepare(&spec);
    let queries = spec.queries(opts.queries);

    // Model inputs measured from the data.
    let centers: Vec<Point<2>> =
        env.store.summaries().iter().map(|s: &ObjectSummary<2>| s.support_mbr.center()).collect();
    let d0 = box_counting_dimension(&centers, 8).unwrap_or(2.0);
    let d2 = correlation_dimension(&centers, 8).unwrap_or(2.0);
    let c_avg = env.tree.avg_leaf_fill();
    println!("\nmodel inputs: D0 = {d0:.3}, D2 = {d2:.3}, C_avg = {c_avg:.1}");

    let space = 100.0;
    let mut t = Table::new(&["alpha", "k", "Eq8 estimate", "measured Basic"]);
    for alpha in [0.3, 0.5, 0.7, 0.9] {
        let p = CostModelParams { num_objects: spec.n, k: DEFAULT_K, c_avg, d2, d0 };
        let r = fuzzy_analysis::gaussian_disk_radius(alpha, 0.5 / space, 0.5 / space);
        let est = fuzzy_analysis::eq8_object_accesses(&p, r);
        let measured = env.run_aknn(&queries, DEFAULT_K, alpha, &AknnConfig::basic());
        t.row(vec![
            alpha.to_string(),
            DEFAULT_K.to_string(),
            format!("{est:.1}"),
            measured.object_accesses.to_string(),
        ]);
    }
    for k in [5usize, 20, 50] {
        let p = CostModelParams { num_objects: spec.n, k, c_avg, d2, d0 };
        let r = fuzzy_analysis::gaussian_disk_radius(DEFAULT_ALPHA, 0.5 / space, 0.5 / space);
        let est = fuzzy_analysis::eq8_object_accesses(&p, r);
        let measured = env.run_aknn(&queries, k, DEFAULT_ALPHA, &AknnConfig::basic());
        t.row(vec![
            DEFAULT_ALPHA.to_string(),
            k.to_string(),
            format!("{est:.1}"),
            measured.object_accesses.to_string(),
        ]);
    }
    t.emit("sec5");
}

/// Ablation: conservative line fitting — bisection vs exact hull scan, and
/// tightness vs the trivial constant bound.
fn abl_line(opts: &Opts) {
    let spec = opts.spec(DatasetKind::Cell, opts.scaled(1_000).min(2_000));
    let store = spec.open();
    let mut t = Table::new(&["fit", "mean SSE", "max violation", "fit time (µs/object)"]);

    // Gather boundary samples from real objects.
    let mut sample_sets: Vec<Vec<(f64, f64)>> = Vec::new();
    for s in store.summaries().iter().take(300) {
        let obj = store.probe(s.id).expect("probe");
        let bf = fuzzy_core::boundary::BoundaryFunctions::compute(&obj);
        for dim in 0..2 {
            sample_sets.push(bf.upper_samples(dim));
            sample_sets.push(bf.lower_samples(dim));
        }
    }

    type FitFn<'f> = dyn Fn(&[(f64, f64)]) -> fuzzy_geom::ConservativeLine + 'f;
    let mut eval = |name: &str, fit: &FitFn<'_>| {
        let started = Instant::now();
        let mut sse = 0.0;
        let mut violation: f64 = 0.0;
        for s in &sample_sets {
            let line = fit(s);
            sse += line.sse(s);
            for &(x, y) in s {
                violation = violation.max(y - line.eval(x));
            }
        }
        let dt = started.elapsed().as_secs_f64() * 1e6 / sample_sets.len() as f64;
        t.row(vec![
            name.into(),
            format!("{:.4}", sse / sample_sets.len() as f64),
            format!("{violation:.2e}"),
            format!("{dt:.1}"),
        ]);
    };
    eval("UCH bisection", &|s| fit_conservative_line(s));
    eval("exact hull scan", &|s| fit_conservative_line_exact(s));
    eval("constant max-gap", &|s| {
        let max = s.iter().map(|&(_, y)| y).fold(0.0, f64::max);
        fuzzy_geom::ConservativeLine { m: 0.0, t: max }
    });
    t.emit("abl-line");
}

/// Ablation: how much of RSS's advantage would a plain LRU object cache
/// recover for the Basic RKNN algorithm?
fn abl_cache(opts: &Opts) {
    let spec = opts.spec(DatasetKind::Cell, opts.rknn_scaled(10_000));
    let env = Env::prepare(&spec);
    let queries = spec.queries(opts.rknn_queries);
    let range = default_range();
    let cfg = AknnConfig::lb_lp_ub();

    let basic = env.run_rknn(&queries, DEFAULT_K, range, RknnAlgorithm::Basic, &cfg);
    let rss = env.run_rknn(&queries, DEFAULT_K, range, RknnAlgorithm::Rss, &cfg);

    // Re-run Basic behind an unbounded-ish LRU.
    let cached = CachedStore::new(spec.open(), spec.n);
    let tree = RTree::bulk_load(cached.summaries().to_vec(), RTreeConfig::default());
    let engine = QueryEngine::new(&tree, &cached);
    let mut stats = Vec::new();
    for q in &queries {
        cached.clear();
        cached.reset_stats();
        stats.push(
            engine
                .rknn(q, DEFAULT_K, range.0, range.1, RknnAlgorithm::Basic, &cfg)
                .expect("rknn")
                .stats,
        );
    }
    let basic_cached = QueryStats::mean(&stats);

    let mut t = Table::new(&["algorithm", "object accesses", "ms"]);
    t.row(vec!["Basic RKNN".into(), basic.object_accesses.to_string(), ms(&basic)]);
    t.row(vec![
        "Basic RKNN + LRU".into(),
        basic_cached.object_accesses.to_string(),
        ms(&basic_cached),
    ]);
    t.row(vec!["RSS".into(), rss.object_accesses.to_string(), ms(&rss)]);
    t.emit("abl-cache");
}

/// Ablation: UB sample size n (the paper requires n ≪ |Q_α| but does not
/// study the knob).
fn abl_samples(opts: &Opts) {
    let spec = opts.spec(DatasetKind::Cell, opts.scaled(10_000));
    let env = Env::prepare(&spec);
    let queries = spec.queries(opts.queries);
    let mut t = Table::new(&["n samples", "object accesses", "ms"]);
    for n in [1usize, 4, 16, 64] {
        let cfg = AknnConfig { query_samples: n, ..AknnConfig::lb_lp_ub() };
        let stats = env.run_aknn(&queries, DEFAULT_K, DEFAULT_ALPHA, &cfg);
        t.row(vec![n.to_string(), stats.object_accesses.to_string(), ms(&stats)]);
    }
    t.emit("abl-samples");
}

/// Ablation: STR bulk load vs repeated R* insertion.
fn abl_bulk(opts: &Opts) {
    let spec = opts.spec(DatasetKind::Cell, opts.scaled(10_000));
    let store = spec.open();
    let queries = spec.queries(opts.queries);

    let t_bulk = Instant::now();
    let bulk = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
    let bulk_build = t_bulk.elapsed();
    let t_incr = Instant::now();
    let mut incr: RTree<2> = RTree::new(RTreeConfig::default());
    for s in store.summaries() {
        incr.insert(*s);
    }
    let incr_build = t_incr.elapsed();
    incr.validate().expect("valid incremental tree");

    let mut t =
        Table::new(&["load", "build ms", "height", "leaves", "node acc/query", "obj acc/query"]);
    for (name, tree, build) in [("STR bulk", &bulk, bulk_build), ("R* insert", &incr, incr_build)] {
        let engine = QueryEngine::new(tree, &store);
        let mut stats = Vec::new();
        for q in &queries {
            stats.push(
                engine
                    .aknn(q, DEFAULT_K, DEFAULT_ALPHA, &AknnConfig::lb_lp_ub())
                    .expect("aknn")
                    .stats,
            );
        }
        let mean = QueryStats::mean(&stats);
        t.row(vec![
            name.into(),
            format!("{:.1}", build.as_secs_f64() * 1e3),
            tree.height().to_string(),
            tree.leaf_count().to_string(),
            mean.node_accesses.to_string(),
            mean.object_accesses.to_string(),
        ]);
    }
    t.emit("abl-bulk");
}
