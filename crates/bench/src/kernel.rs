//! Distance-kernel microbench: the `kernel` section of the `fkq bench`
//! report (schema v3).
//!
//! The paper's cost model makes the α-distance kernel the hot path ("the
//! evaluation of α-distance is quadratic with the number of points"), so
//! the bench report carries a dedicated sweep of the kernel itself:
//! **points-per-object × α × algorithm**, measured over deterministic
//! synthetic object pairs. Algorithms:
//!
//! * `brute` — the naive per-pair reference ([`alpha_distance_brute`]);
//! * `auto` — the adaptive production kernel (dense prefix scan /
//!   single-tree / dual-tree, squared distances end to end);
//! * `dual-tree` — the bichromatic closest pair forced over both
//!   kd-trees;
//! * `seeded` — the adaptive kernel seeded with an upper bound 5% above
//!   the true distance, the shape of the AKNN engine's bound-seeded
//!   probes.
//!
//! Every cell cross-checks its distance sum against the brute reference,
//! so the sweep doubles as an end-to-end equivalence test in CI.

use crate::json::Json;
use fuzzy_core::distance::{
    alpha_distance_bounded, alpha_distance_brute, alpha_distance_with, DistanceAlgorithm,
};
use fuzzy_core::{FuzzyObject, Threshold};
use fuzzy_datagen::SyntheticConfig;
use std::time::Instant;

/// Axes of the kernel sweep.
#[derive(Clone, Debug)]
pub struct KernelOptions {
    /// Points-per-object axis.
    pub points_per_object: Vec<usize>,
    /// α axis.
    pub alphas: Vec<f64>,
    /// Number of object pairs evaluated per cell.
    pub pairs: usize,
    /// Generator seed.
    pub seed: u64,
}

impl KernelOptions {
    /// The default full sweep (sub-second).
    pub fn full() -> Self {
        Self {
            points_per_object: vec![30, 120, 480],
            alphas: vec![0.2, 0.5, 0.8],
            pairs: 48,
            seed: 7,
        }
    }

    /// Tiny CI smoke configuration.
    pub fn smoke() -> Self {
        Self { points_per_object: vec![10, 40], alphas: vec![0.5], pairs: 4, seed: 7 }
    }
}

/// Deterministic object pairs from the same generator the query-level
/// sweeps use (`fuzzy_datagen::SyntheticConfig`), confined to a small
/// space so the pairs span near and far geometry. Rebuilt per algorithm
/// pass so each pass measures its own lazy-structure cost.
fn object_pairs(opts: &KernelOptions, ppo: usize) -> Vec<(FuzzyObject<2>, FuzzyObject<2>)> {
    let cfg = SyntheticConfig {
        num_objects: opts.pairs * 2,
        points_per_object: ppo,
        seed: opts.seed,
        space: 4.0,
        ..SyntheticConfig::default()
    };
    let mut objects = cfg.generate();
    (0..opts.pairs).filter_map(|_| objects.next().zip(objects.next())).collect()
}

/// Algorithm axis of the sweep.
const ALGORITHMS: &[&str] = &["brute", "auto", "dual-tree", "seeded"];

/// One pass of one algorithm over every pair; returns (total distance,
/// evaluations). Each algorithm runs on freshly built objects, so the
/// measured cost includes its lazily built support structure (the sorted
/// prefix layout for `auto`/`seeded`, both kd-trees for `dual-tree`) —
/// the same shape as a store probe on the query hot path. `seeds`, when
/// present, carries one precomputed upper bound per pair (timed work then
/// excludes the reference evaluation that produced it).
fn run_algorithm(
    name: &str,
    pairs: &[(FuzzyObject<2>, FuzzyObject<2>)],
    t: Threshold,
    seeds: Option<&[f64]>,
) -> (f64, u64) {
    let mut sum = 0.0;
    let mut evals = 0u64;
    for (i, (a, b)) in pairs.iter().enumerate() {
        let d = match name {
            "brute" => alpha_distance_brute(a, b, t),
            "auto" => alpha_distance_with(DistanceAlgorithm::Auto, a, b, t),
            "dual-tree" => alpha_distance_with(DistanceAlgorithm::DualTree, a, b, t),
            "seeded" => {
                let seed = seeds.expect("seeded pass gets precomputed bounds")[i];
                alpha_distance_bounded(a, b, t, seed)
            }
            other => unreachable!("unknown kernel algorithm {other}"),
        };
        sum += d.expect("cuts are non-empty at α ≤ 1 with kernel points");
        evals += 1;
    }
    (sum, evals)
}

/// Run the kernel sweep; returns the `kernel` array of the report.
///
/// # Panics
/// When an optimized algorithm disagrees with the brute reference beyond
/// floating-point noise — the sweep is also a correctness gate.
pub fn run(opts: &KernelOptions) -> Vec<Json> {
    let mut rows = Vec::new();
    for &ppo in &opts.points_per_object {
        for &alpha in &opts.alphas {
            let t = Threshold::at(alpha);
            let mut reference: Option<f64> = None;
            for &name in ALGORITHMS {
                // Fresh objects per algorithm so each measures its own
                // lazy-structure cost, not a predecessor's cache.
                let fresh = object_pairs(opts, ppo);
                // Seeds for the `seeded` pass: a sound upper bound 5%
                // above the true distance, computed outside the timer.
                let seeds: Option<Vec<f64>> = (name == "seeded").then(|| {
                    fresh
                        .iter()
                        .map(|(a, b)| {
                            alpha_distance_brute(a, b, t).expect("non-empty cut") * 1.05
                                + f64::MIN_POSITIVE
                        })
                        .collect()
                });
                let start = Instant::now();
                let (sum, evals) = run_algorithm(name, &fresh, t, seeds.as_deref());
                let wall = start.elapsed().as_secs_f64();
                match reference {
                    None => reference = Some(sum),
                    Some(want) => assert!(
                        (sum - want).abs() <= 1e-9 * (1.0 + want.abs()),
                        "kernel {name} disagrees with brute at ppo={ppo} α={alpha}: {sum} vs {want}"
                    ),
                }
                rows.push(Json::obj(vec![
                    ("algorithm", Json::str(name)),
                    ("points_per_object", Json::num(ppo as f64)),
                    ("alpha", Json::num(alpha)),
                    ("evals", Json::num(evals as f64)),
                    ("wall_ms_total", Json::num(wall * 1e3)),
                    ("ns_per_eval", Json::num(wall * 1e9 / evals.max(1) as f64)),
                    ("checksum", Json::num(sum)),
                ]))
            }
        }
    }
    rows
}

/// Fields every `kernel` row must carry (name, is_number).
pub const KERNEL_FIELDS: &[(&str, bool)] = &[
    ("algorithm", false),
    ("points_per_object", true),
    ("alpha", true),
    ("evals", true),
    ("wall_ms_total", true),
    ("ns_per_eval", true),
    ("checksum", true),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_consistent_rows() {
        let rows = run(&KernelOptions::smoke());
        // ppo × α × algorithm cells.
        let opts = KernelOptions::smoke();
        assert_eq!(rows.len(), opts.points_per_object.len() * opts.alphas.len() * ALGORITHMS.len());
        for row in &rows {
            for &(field, is_num) in KERNEL_FIELDS {
                let v = row.get(field).unwrap_or_else(|| panic!("missing {field}"));
                match (is_num, v) {
                    (true, Json::Num(n)) => assert!(n.is_finite() && *n >= 0.0),
                    (false, Json::Str(_)) => {}
                    other => panic!("bad field {field}: {other:?}"),
                }
            }
        }
    }
}
