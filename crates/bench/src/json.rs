//! A minimal JSON value model, writer and parser.
//!
//! The build environment has no crates.io access, so `serde_json` is not an
//! option; the bench harness needs exactly (a) emitting machine-readable
//! reports and (b) re-parsing them in CI smoke tests to prove the schema
//! did not rot. Numbers are `f64` (like JavaScript); non-finite values are
//! serialized as `null` because JSON has no representation for them.

use std::collections::HashSet;
use std::fmt;

/// A JSON value. Object keys keep insertion order so reports are stable
/// and diffable run-over-run.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for building an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a numeric value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Member lookup on objects (`None` for other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    v.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict: one value, only trailing whitespace).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired here; the writer
                            // never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // slicing is valid at char boundaries).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            // `"1e999".parse::<f64>()` is `Ok(inf)`: an overflowing literal
            // would otherwise smuggle a non-finite Num into a value model
            // whose writer cannot represent it (it emits `null`), breaking
            // parse→write→parse round-trips. Reject it like any other
            // malformed number. (Bare `NaN`/`Infinity` tokens never reach
            // here — `value()` only dispatches digits and `-` to numbers.)
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            Ok(_) => Err(self.err("number overflows f64")),
            Err(_) => Err(self.err("malformed number")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if !seen.insert(key.clone()) {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let doc = Json::obj(vec![
            ("name", Json::str("bench")),
            ("count", Json::num(42.0)),
            ("ratio", Json::num(0.125)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("items", Json::Arr(vec![Json::num(1.0), Json::str("two")])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(42.0).to_pretty(), "42\n");
        assert_eq!(Json::num(0.5).to_pretty(), "0.5\n");
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).to_pretty(), "null\n");
    }

    #[test]
    fn non_finite_survives_write_parse_write() {
        // NaN/Inf cells degrade to null on the first write; the re-parsed
        // document must round-trip bit-identically from then on.
        let doc = Json::obj(vec![
            ("nan", Json::Num(f64::NAN)),
            ("inf", Json::Num(f64::INFINITY)),
            ("neg_inf", Json::Num(f64::NEG_INFINITY)),
            ("fine", Json::num(1.5)),
        ]);
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("nan"), Some(&Json::Null));
        assert_eq!(parsed.get("inf"), Some(&Json::Null));
        assert_eq!(parsed.get("neg_inf"), Some(&Json::Null));
        assert_eq!(parsed.get("fine"), Some(&Json::Num(1.5)));
        assert_eq!(parsed.to_pretty(), text, "stable after one degradation");
    }

    #[test]
    fn rejects_non_finite_number_tokens() {
        // Bare IEEE spellings are not JSON.
        assert!(Json::parse("NaN").is_err());
        assert!(Json::parse("Infinity").is_err());
        assert!(Json::parse("-Infinity").is_err());
        assert!(Json::parse("[1, NaN]").is_err());
        // Overflowing literals parse to ±inf in Rust; the parser must not
        // let them through as non-finite Nums.
        assert!(Json::parse("1e999").is_err());
        assert!(Json::parse("-1e999").is_err());
        assert!(Json::parse("{\"v\": 1e999}").is_err());
        // Large-but-finite is fine.
        assert_eq!(Json::parse("1e308").unwrap().as_num(), Some(1e308));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = Json::str("a\"b\\c\nd\te\u{1}");
        let parsed = Json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1}x").is_err());
        assert!(Json::parse("{\"a\":1,\"a\":2}").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn lookup_helpers() {
        let doc = Json::parse(r#"{"a": [1, 2], "b": "x"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[0].as_num(), Some(1.0));
        assert!(doc.get("missing").is_none());
    }
}
