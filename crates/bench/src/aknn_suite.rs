//! The `fkq bench` harness: §6-style AKNN throughput sweeps with a
//! machine-readable JSON report.
//!
//! The paper's experiments measure per-query cost (object/node accesses,
//! runtime) as one axis varies — k (Fig. 11/12), α (Fig. 13/14), the
//! pruning variant (§6.2). This harness reruns those sweeps as *batched*
//! workloads through [`fuzzy_query::BatchExecutor`], adding the thread
//! count and the **index backend** as axes, and emits a `BENCH_aknn.json`
//! whose schema is stable across PRs so successive runs are diffable (and
//! CI can smoke-parse it).
//!
//! With the default `paged` backend the index is a real on-disk
//! [`PagedRTree`] read through its buffer pool, so `node_disk_reads_*`
//! reports *measured* I/O: the buffer pool is cleared before every
//! measured batch (every run is cold), and a dedicated `cold_warm` sweep
//! runs the default workload twice — cold, then again against the warm
//! pool — to expose the cache's effect directly.

use crate::json::Json;
use crate::kernel::{self, KernelOptions};
use crate::{DatasetSpec, Env};
use fuzzy_datagen::DatasetKind;
use fuzzy_index::{NodeAccess, PagedRTree, ShardedIndex, StrCenterAssign};
use fuzzy_query::{AknnConfig, BatchExecutor, BatchOutcome, BatchRequest};
use fuzzy_store::{FileStore, ObjectStore};
use std::path::Path;

/// Schema identifier embedded in every report. v3 added per-query latency
/// percentiles (`wall_ms_p50/p95/p99`) to every run and the top-level
/// `kernel` microbench section. v4 adds a `shards` field to every run
/// (`0` = the classic single-tree path) and a `shards` sweep that runs
/// the default workload through the scatter-gather engine at each
/// configured shard count — the shared-τ bound makes per-query object
/// probes at S shards comparable to (and no worse than) one shard. v5
/// adds a `metric` field to every run naming the distance metric the
/// batch ran under (`l2` for all of the rectangle engine's sweeps). v6
/// adds the `approx` sweep — the recall-vs-QPS axis: one exact-baseline
/// row (`approx_backend: "exact"`) plus one row per approximate backend ×
/// recall dial, every row tagged with its measured `recall_at_k` against
/// the exact engine. The dial moves recall only; reported distances stay
/// exact on every row.
pub const SCHEMA: &str = "fuzzy-knn/bench-aknn/v6";

/// Which index backend a bench run queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexBackend {
    /// The in-memory `RTree` (node accesses are logical only).
    Mem,
    /// The disk-resident `PagedRTree` behind an LRU buffer pool.
    Paged,
}

impl IndexBackend {
    /// Name recorded in the report.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Mem => "mem",
            Self::Paged => "paged",
        }
    }
}

/// Sweep axes of one bench invocation.
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Dataset to generate/open.
    pub dataset: DatasetSpec,
    /// Number of queries per measurement batch.
    pub queries: usize,
    /// k used by the variant/α/thread sweeps.
    pub default_k: usize,
    /// α used by the variant/k/thread sweeps.
    pub default_alpha: f64,
    /// k values of the k sweep.
    pub ks: Vec<usize>,
    /// α values of the α sweep.
    pub alphas: Vec<f64>,
    /// Worker counts of the thread sweep.
    pub thread_counts: Vec<usize>,
    /// Shard counts of the `shards` sweep (scatter-gather engine over an
    /// STR-tiled [`ShardedIndex`]); empty skips the sweep.
    pub shard_counts: Vec<usize>,
    /// Index backend the sweeps query.
    pub backend: IndexBackend,
    /// Page size of the paged index file (ignored for `Mem`).
    pub page_size: u32,
    /// Buffer-pool capacity in pages (ignored for `Mem`).
    pub cache_pages: usize,
    /// Axes of the distance-kernel microbench (`kernel` report section).
    pub kernel: KernelOptions,
    /// Fraction of the dataset cycled through the dynamic-update path
    /// (delete + reinsert) before an extra `mutation` sweep measures the
    /// default workload against the mutated index. `0.0` skips the sweep.
    /// The live set is unchanged, so the numbers are directly comparable
    /// to the pristine-index runs — the delta is the cost of querying
    /// through overlay/condensed structures.
    pub mutation_rate: f64,
    /// Workload of the `approx` sweep. Approximate candidate generation
    /// pays off where bound-based pruning struggles — many objects, heavy
    /// support overlap — so the sweep measures its own denser dataset
    /// (larger `n`, radius above the paper's 0.5) instead of the sparse
    /// default workload, where the exact engine is already probe-optimal
    /// and no candidate scheme could beat it. The exact baseline row runs
    /// on this same workload, so every speedup in the sweep is
    /// apples-to-apples.
    pub approx_dataset: DatasetSpec,
    /// Probe-budget ladder of the `approx` sweep's LSH rows (buckets
    /// probed per table); empty skips the LSH rows.
    pub lsh_budgets: Vec<f64>,
    /// Pruning-slack ladder (ε) of the `approx` sweep's VP-tree rows;
    /// empty skips the VP-tree rows. The sweep itself runs whenever
    /// either ladder is nonempty.
    pub vptree_slacks: Vec<f64>,
    /// True for the CI smoke configuration (recorded in the report).
    pub smoke: bool,
}

impl BenchOptions {
    /// The default full configuration (a few seconds of wall clock).
    pub fn full() -> Self {
        Self {
            dataset: DatasetSpec {
                kind: DatasetKind::Synthetic,
                n: 2_000,
                points_per_object: 120,
                seed: 42,
                radius: None,
            },
            queries: 48,
            default_k: 10,
            default_alpha: 0.5,
            ks: vec![1, 5, 10, 20, 50],
            alphas: vec![0.2, 0.5, 0.8],
            thread_counts: vec![1, 2, 4, 8],
            shard_counts: vec![1, 2, 4],
            backend: IndexBackend::Paged,
            page_size: fuzzy_index::DEFAULT_PAGE_SIZE,
            cache_pages: fuzzy_index::DEFAULT_CACHE_PAGES,
            kernel: KernelOptions::full(),
            mutation_rate: 0.0,
            approx_dataset: DatasetSpec {
                kind: DatasetKind::Synthetic,
                n: 20_000,
                points_per_object: 24,
                seed: 42,
                radius: Some(6.0),
            },
            lsh_budgets: vec![1.0, 2.0, 4.0, 8.0],
            vptree_slacks: vec![0.0, 0.5, 1.0, 1.5, 2.0, 3.0],
            smoke: false,
        }
    }

    /// A sub-second configuration for CI: tiny dataset, every sweep still
    /// exercised so the schema cannot rot unnoticed.
    pub fn smoke() -> Self {
        Self {
            dataset: DatasetSpec {
                kind: DatasetKind::Synthetic,
                n: 80,
                points_per_object: 30,
                seed: 42,
                radius: None,
            },
            queries: 4,
            default_k: 3,
            default_alpha: 0.5,
            ks: vec![1, 3],
            alphas: vec![0.5],
            thread_counts: vec![1, 2],
            shard_counts: vec![1, 2],
            backend: IndexBackend::Paged,
            page_size: fuzzy_index::DEFAULT_PAGE_SIZE,
            cache_pages: 64,
            kernel: KernelOptions::smoke(),
            mutation_rate: 0.25,
            approx_dataset: DatasetSpec {
                kind: DatasetKind::Synthetic,
                n: 80,
                points_per_object: 30,
                seed: 42,
                radius: Some(6.0),
            },
            lsh_budgets: vec![1.0, 4.0],
            vptree_slacks: vec![0.0, 1.0],
            smoke: true,
        }
    }
}

/// One measured cell of a sweep, flattened into the report's `runs` array.
/// `cache` records the buffer-pool state the batch started from: `cold`
/// (cleared), `warm` (left over from a previous batch) or `none` (the
/// in-memory backend has no pool). `shards` is the shard count of the
/// scatter-gather path, or `0` for the classic single-tree path.
#[allow(clippy::too_many_arguments)]
fn record(
    sweep: &str,
    cfg: &AknnConfig,
    k: usize,
    alpha: f64,
    threads: usize,
    shards: usize,
    cache: &str,
    outcome: &BatchOutcome,
) -> Json {
    let total = outcome.total_stats();
    let ok = outcome.ok_count().max(1) as f64;
    let batch_secs = outcome.wall.as_secs_f64();
    // Per-query latency distribution (successful queries only). The
    // nearest-rank percentile matches the usual SLO convention: p99 of 48
    // samples is the 48th-ranked latency.
    let mut walls: Vec<f64> = outcome
        .responses
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|r| r.stats().wall.as_secs_f64() * 1e3)
        .collect();
    walls.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if walls.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * walls.len() as f64).ceil() as usize;
        walls[rank.clamp(1, walls.len()) - 1]
    };
    Json::obj(vec![
        ("sweep", Json::str(sweep)),
        ("variant", Json::str(cfg.variant_name())),
        // The distance metric the batch ran under. The suite currently
        // sweeps the rectangle engine, which is the L2 specialization of
        // the Metric seam; the field readies the schema for graph-metric
        // sweeps without another version bump.
        ("metric", Json::str("l2")),
        ("k", Json::num(k as f64)),
        ("alpha", Json::num(alpha)),
        ("threads", Json::num(threads as f64)),
        ("shards", Json::num(shards as f64)),
        ("cache", Json::str(cache)),
        ("queries", Json::num(outcome.responses.len() as f64)),
        ("errors", Json::num(outcome.error_count() as f64)),
        ("wall_ms_batch", Json::num(batch_secs * 1e3)),
        ("wall_ms_mean_query", Json::num(total.wall.as_secs_f64() * 1e3 / ok)),
        ("wall_ms_p50", Json::num(pct(50.0))),
        ("wall_ms_p95", Json::num(pct(95.0))),
        ("wall_ms_p99", Json::num(pct(99.0))),
        ("qps", Json::num(if batch_secs > 0.0 { ok / batch_secs } else { 0.0 })),
        ("object_accesses_total", Json::num(total.object_accesses as f64)),
        ("object_accesses_mean", Json::num(total.object_accesses as f64 / ok)),
        ("node_accesses_total", Json::num(total.node_accesses as f64)),
        ("node_accesses_mean", Json::num(total.node_accesses as f64 / ok)),
        ("node_disk_reads_total", Json::num(total.node_disk_reads as f64)),
        ("node_disk_reads_mean", Json::num(total.node_disk_reads as f64 / ok)),
        ("distance_evals_total", Json::num(total.distance_evals as f64)),
        ("bound_evals_total", Json::num(total.bound_evals as f64)),
    ])
}

/// Fields every entry of `runs` must carry, with their JSON types.
const RUN_FIELDS: &[(&str, bool)] = &[
    // (name, is_number) — false means string.
    ("sweep", false),
    ("variant", false),
    ("metric", false),
    ("k", true),
    ("alpha", true),
    ("threads", true),
    ("shards", true),
    ("cache", false),
    ("queries", true),
    ("errors", true),
    ("wall_ms_batch", true),
    ("wall_ms_mean_query", true),
    ("wall_ms_p50", true),
    ("wall_ms_p95", true),
    ("wall_ms_p99", true),
    ("qps", true),
    ("object_accesses_total", true),
    ("object_accesses_mean", true),
    ("node_accesses_total", true),
    ("node_accesses_mean", true),
    ("node_disk_reads_total", true),
    ("node_disk_reads_mean", true),
    ("distance_evals_total", true),
    ("bound_evals_total", true),
];

/// Run every sweep over one index backend. `clear_cache` resets the
/// backend's buffer pool (no-op for the in-memory tree); `cache_label` is
/// what a post-clear batch should record (`cold` for paged, `none` for
/// mem).
fn sweeps<A: NodeAccess<2> + Sync>(
    tree: &A,
    store: &FileStore<2>,
    queries: &[fuzzy_core::FuzzyObject<2>],
    opts: &BenchOptions,
    clear_cache: &dyn Fn(),
    cache_label: &str,
) -> Vec<Json> {
    let mut runs: Vec<Json> = Vec::new();

    // Returns the outcome together with the *resolved* worker count, so a
    // `--threads 0` (one per CPU) request is recorded as the count that
    // actually ran, not as 0. Every measured batch starts from a cleared
    // buffer pool so `node_disk_reads` is reproducible.
    let batch = |cfg: &AknnConfig, k: usize, alpha: f64, threads: usize| -> (BatchOutcome, usize) {
        clear_cache();
        let requests: Vec<BatchRequest<2>> =
            queries.iter().map(|q| BatchRequest::aknn(q.clone(), k, alpha, *cfg)).collect();
        let executor = BatchExecutor::new(threads);
        (executor.run(tree, store, &requests), executor.threads())
    };

    // Sweep 1 — variant × thread count at the default (k, α): the paper's
    // §6.2 ablation, extended with the concurrency axis.
    for &threads in &opts.thread_counts {
        for cfg in AknnConfig::paper_variants() {
            let (outcome, resolved) = batch(&cfg, opts.default_k, opts.default_alpha, threads);
            runs.push(record(
                "variant_threads",
                &cfg,
                opts.default_k,
                opts.default_alpha,
                resolved,
                0,
                cache_label,
                &outcome,
            ));
        }
    }

    // Sweep 2 — k (Fig. 11/12) with the best variant at the largest
    // configured thread count.
    let best = AknnConfig::lb_lp_ub();
    let max_threads = opts.thread_counts.iter().copied().max().unwrap_or(1);
    for &k in &opts.ks {
        let (outcome, resolved) = batch(&best, k, opts.default_alpha, max_threads);
        runs.push(record("k", &best, k, opts.default_alpha, resolved, 0, cache_label, &outcome));
    }

    // Sweep 3 — α (Fig. 13/14) with the best variant.
    for &alpha in &opts.alphas {
        let (outcome, resolved) = batch(&best, opts.default_k, alpha, max_threads);
        runs.push(record(
            "alpha",
            &best,
            opts.default_k,
            alpha,
            resolved,
            0,
            cache_label,
            &outcome,
        ));
    }

    // Sweep 4 — cold vs warm buffer pool on the default workload (§6 cost
    // accounting made literal: the first run pays the disk, the second is
    // served by the pool). On the in-memory backend both legs report zero
    // disk reads, which is exactly the point of the comparison.
    let (cold, resolved) = batch(&best, opts.default_k, opts.default_alpha, max_threads);
    runs.push(record(
        "cold_warm",
        &best,
        opts.default_k,
        opts.default_alpha,
        resolved,
        0,
        cache_label,
        &cold,
    ));
    let requests: Vec<BatchRequest<2>> = queries
        .iter()
        .map(|q| BatchRequest::aknn(q.clone(), opts.default_k, opts.default_alpha, best))
        .collect();
    let executor = BatchExecutor::new(max_threads);
    let warm = executor.run(tree, store, &requests); // pool left warm by `cold`
    runs.push(record(
        "cold_warm",
        &best,
        opts.default_k,
        opts.default_alpha,
        executor.threads(),
        0,
        "warm",
        &warm,
    ));

    runs
}

/// The extra `mutation` sweep: cycle `rate · n` objects through the
/// dynamic-update path (delete, then reinsert — the live set is
/// unchanged), then measure the default workload against the mutated
/// index. `tree` is the post-mutation index.
fn mutation_sweep<A: NodeAccess<2> + Sync>(
    tree: &A,
    store: &FileStore<2>,
    queries: &[fuzzy_core::FuzzyObject<2>],
    opts: &BenchOptions,
    clear_cache: &dyn Fn(),
    cache_label: &str,
) -> Json {
    let best = AknnConfig::lb_lp_ub();
    let threads = opts.thread_counts.iter().copied().max().unwrap_or(1);
    clear_cache();
    let requests: Vec<BatchRequest<2>> = queries
        .iter()
        .map(|q| BatchRequest::aknn(q.clone(), opts.default_k, opts.default_alpha, best))
        .collect();
    let executor = BatchExecutor::new(threads);
    let outcome = executor.run(tree, store, &requests);
    let mut run = record(
        "mutation",
        &best,
        opts.default_k,
        opts.default_alpha,
        executor.threads(),
        0,
        cache_label,
        &outcome,
    );
    if let Json::Obj(fields) = &mut run {
        fields.push(("mutation_rate".to_string(), Json::num(opts.mutation_rate)));
    }
    run
}

/// Number of objects the `mutation` sweep cycles.
fn mutation_count(opts: &BenchOptions, available: usize) -> usize {
    ((available as f64 * opts.mutation_rate).ceil() as usize).min(available)
}

/// The `shards` sweep: the default workload through the scatter-gather
/// engine over an STR-tiled [`ShardedIndex`] at every configured shard
/// count. Every per-shard best-first search runs force-exact and shares
/// one τ bound, so the S=1 row is the baseline the multi-shard rows must
/// not exceed in total object probes (CI checks exactly that on the
/// committed report). Shard files are always paged, independent of the
/// sweep backend; every batch starts from cold buffer pools.
fn shard_sweep(
    env: &Env,
    queries: &[fuzzy_core::FuzzyObject<2>],
    opts: &BenchOptions,
) -> Vec<Json> {
    let best = AknnConfig::lb_lp_ub();
    let max_threads = opts.thread_counts.iter().copied().max().unwrap_or(1);
    let requests: Vec<BatchRequest<2>> = queries
        .iter()
        .map(|q| BatchRequest::aknn(q.clone(), opts.default_k, opts.default_alpha, best))
        .collect();
    let mut runs = Vec::new();
    for &s in &opts.shard_counts {
        let manifest_path = opts.dataset.path().with_extension(format!("s{s}.fzsm"));
        ShardedIndex::<2>::build(
            env.store.summaries().to_vec(),
            s,
            &StrCenterAssign,
            fuzzy_index::RTreeConfig::default(),
            &manifest_path,
            opts.page_size,
        )
        .expect("build sharded index");
        let (_, shards) = ShardedIndex::<2>::open_overlays(&manifest_path, opts.cache_pages)
            .expect("open sharded index");
        for shard in &shards {
            shard.base().clear_cache();
        }
        let executor = BatchExecutor::new(max_threads);
        let outcome = executor.run_sharded(&shards, &env.store, &requests);
        runs.push(record(
            "shards",
            &best,
            opts.default_k,
            opts.default_alpha,
            executor.threads(),
            s,
            "cold",
            &outcome,
        ));
    }
    runs
}

/// One row of the `approx` sweep from a pile of per-query results: the
/// full v6 field set, plus the sweep's own axes (`approx_backend`,
/// `recall_dial`, `recall_at_k`). Every query runs single-threaded on
/// the in-memory candidate structures, so the mean-query wall clock is
/// directly comparable across rows — that comparison *is* the sweep.
fn record_approx(
    backend: &str,
    dial: &str,
    k: usize,
    alpha: f64,
    results: &[fuzzy_query::AknnResult],
    batch: std::time::Duration,
    recall: f64,
) -> Json {
    let mut total = fuzzy_query::QueryStats::default();
    let mut walls: Vec<f64> = Vec::with_capacity(results.len());
    for r in results {
        total += r.stats;
        walls.push(r.stats.wall.as_secs_f64() * 1e3);
    }
    walls.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if walls.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * walls.len() as f64).ceil() as usize;
        walls[rank.clamp(1, walls.len()) - 1]
    };
    let ok = results.len().max(1) as f64;
    let batch_secs = batch.as_secs_f64();
    Json::obj(vec![
        ("sweep", Json::str("approx")),
        ("variant", Json::str("LB-LP-UB")),
        ("metric", Json::str("l2")),
        ("approx_backend", Json::str(backend)),
        ("recall_dial", Json::str(dial)),
        ("recall_at_k", Json::num(recall)),
        ("k", Json::num(k as f64)),
        ("alpha", Json::num(alpha)),
        ("threads", Json::num(1.0)),
        ("shards", Json::num(0.0)),
        ("cache", Json::str("none")),
        ("queries", Json::num(results.len() as f64)),
        ("errors", Json::num(0.0)),
        ("wall_ms_batch", Json::num(batch_secs * 1e3)),
        ("wall_ms_mean_query", Json::num(total.wall.as_secs_f64() * 1e3 / ok)),
        ("wall_ms_p50", Json::num(pct(50.0))),
        ("wall_ms_p95", Json::num(pct(95.0))),
        ("wall_ms_p99", Json::num(pct(99.0))),
        ("qps", Json::num(if batch_secs > 0.0 { ok / batch_secs } else { 0.0 })),
        ("object_accesses_total", Json::num(total.object_accesses as f64)),
        ("object_accesses_mean", Json::num(total.object_accesses as f64 / ok)),
        ("node_accesses_total", Json::num(total.node_accesses as f64)),
        ("node_accesses_mean", Json::num(total.node_accesses as f64 / ok)),
        ("node_disk_reads_total", Json::num(total.node_disk_reads as f64)),
        ("node_disk_reads_mean", Json::num(total.node_disk_reads as f64 / ok)),
        ("distance_evals_total", Json::num(total.distance_evals as f64)),
        ("bound_evals_total", Json::num(total.bound_evals as f64)),
    ])
}

/// The `approx` sweep — the recall-vs-QPS axis. One single-threaded
/// exact-baseline row through `aknn_exact` (the speedup denominator),
/// then one row per approximate backend × recall dial, each resolving an
/// LSH or VP-tree candidate pool through the exact probe loop and tagged
/// with its measured recall@k against the baseline answers. The dial
/// ladders come from `opts.lsh_budgets` / `opts.vptree_slacks`, each
/// closed with the backend's `exact` endpoint (recall 1.0 by
/// construction, asserted here).
fn approx_sweep(
    env: &Env,
    queries: &[fuzzy_core::FuzzyObject<2>],
    opts: &BenchOptions,
) -> Vec<Json> {
    use fuzzy_core::metric::L2;
    use fuzzy_core::Threshold;
    use fuzzy_index::{LshConfig, LshIndex, RecallDial, VpTree, VpTreeConfig};
    use fuzzy_query::{
        approx_aknn_with_scratch, recall_at_k, AknnResult, ApproxConfig, QueryEngine, QueryScratch,
    };
    use std::time::Instant;

    let k = opts.default_k;
    let alpha = opts.default_alpha;
    let t = Threshold::at(alpha);
    let mut runs = Vec::new();
    let mut scratch = QueryScratch::new();

    // Exact baseline: the engine's own exact search over the in-memory
    // tree, single-threaded — the denominator of every speedup claim.
    let engine = QueryEngine::new(&env.tree, &env.store);
    let best = AknnConfig::lb_lp_ub();
    let started = Instant::now();
    let exacts: Vec<AknnResult> = queries
        .iter()
        .map(|q| {
            engine
                .aknn_exact_with_scratch(q, k, alpha, &best, &mut scratch)
                .expect("exact baseline query")
        })
        .collect();
    runs.push(record_approx("exact", "exact", k, alpha, &exacts, started.elapsed(), 1.0));

    // Shared measurement loop for the backend rows.
    let mut measure = |backend: &str,
                       dial: RecallDial,
                       go: &mut dyn FnMut(
        &fuzzy_core::FuzzyObject<2>,
        &ApproxConfig,
        &mut QueryScratch<2>,
    ) -> AknnResult| {
        let cfg = ApproxConfig::at(dial);
        let started = Instant::now();
        let results: Vec<AknnResult> = queries.iter().map(|q| go(q, &cfg, &mut scratch)).collect();
        let batch = started.elapsed();
        let recall = results.iter().zip(&exacts).map(|(a, e)| recall_at_k(a, e)).sum::<f64>()
            / results.len().max(1) as f64;
        if matches!(dial, RecallDial::Exact) {
            assert_eq!(recall, 1.0, "{backend}: the exact dial must have recall 1.0");
        }
        runs.push(record_approx(backend, &dial.label(), k, alpha, &results, batch, recall));
    };

    if !opts.lsh_budgets.is_empty() {
        let lsh = LshIndex::build(env.store.summaries(), LshConfig::default());
        let dials = opts.lsh_budgets.iter().map(|&b| RecallDial::Budget(b));
        for dial in dials.chain([RecallDial::Exact]) {
            measure("lsh", dial, &mut |q, cfg, scratch| {
                approx_aknn_with_scratch(&L2, &lsh, &env.store, q, k, t, cfg, scratch)
                    .expect("lsh approx query")
            });
        }
    }
    if !opts.vptree_slacks.is_empty() {
        let vp = VpTree::build(&L2, env.store.summaries(), VpTreeConfig::default());
        let dials = opts.vptree_slacks.iter().map(|&e| RecallDial::Budget(e));
        for dial in dials.chain([RecallDial::Exact]) {
            measure("vptree", dial, &mut |q, cfg, scratch| {
                approx_aknn_with_scratch(&L2, &vp, &env.store, q, k, t, cfg, scratch)
                    .expect("vptree approx query")
            });
        }
    }
    runs
}

/// Run every sweep and assemble the report.
pub fn run(opts: &BenchOptions) -> Json {
    let env = Env::prepare(&opts.dataset);
    let queries = opts.dataset.queries(opts.queries);

    let (mut runs, index_meta) = match opts.backend {
        IndexBackend::Mem => {
            let mut runs = sweeps(&env.tree, &env.store, &queries, opts, &|| {}, "none");
            if opts.mutation_rate > 0.0 {
                let m = mutation_count(opts, env.store.len());
                let victims = env.store.summaries()[..m].to_vec();
                let mut mutated = env.tree.clone();
                for s in &victims {
                    assert!(mutated.delete(s.id), "benchmark dataset ids are indexed");
                }
                for s in victims {
                    mutated.insert(s);
                }
                mutated.validate().expect("mutated tree invariants");
                runs.push(mutation_sweep(&mutated, &env.store, &queries, opts, &|| {}, "none"));
            }
            let meta = Json::obj(vec![
                ("backend", Json::str("mem")),
                ("nodes", Json::num(env.tree.node_count() as f64)),
                ("height", Json::num(env.tree.height() as f64)),
            ]);
            (runs, meta)
        }
        IndexBackend::Paged => {
            let index_path = opts.dataset.index_path();
            PagedRTree::write_tree(&env.tree, &index_path, opts.page_size)
                .expect("write index file");
            let paged: PagedRTree<2> =
                PagedRTree::open_with_cache(&index_path, opts.cache_pages).expect("open index");
            let mut runs =
                sweeps(&paged, &env.store, &queries, opts, &|| paged.clear_cache(), "cold");
            if opts.mutation_rate > 0.0 {
                let m = mutation_count(opts, env.store.len());
                let base = std::sync::Arc::new(
                    PagedRTree::open_with_cache(&index_path, opts.cache_pages)
                        .expect("reopen index"),
                );
                let mut overlay =
                    fuzzy_index::OverlayRTree::new(base).expect("wrap index in overlay");
                let victims = env.store.summaries()[..m].to_vec();
                for s in victims {
                    assert!(overlay.delete(s.id), "benchmark dataset ids are indexed");
                    assert!(overlay.insert(s), "reinsert after delete cannot collide");
                }
                runs.push(mutation_sweep(
                    &overlay,
                    &env.store,
                    &queries,
                    opts,
                    &|| overlay.base().clear_cache(),
                    "cold",
                ));
            }
            let meta = Json::obj(vec![
                ("backend", Json::str("paged")),
                ("page_size", Json::num(paged.page_size() as f64)),
                ("pages", Json::num(paged.page_count() as f64)),
                ("height", Json::num(NodeAccess::height(&paged) as f64)),
                ("cache_pages", Json::num(opts.cache_pages as f64)),
            ]);
            (runs, meta)
        }
    };

    if !opts.shard_counts.is_empty() {
        runs.extend(shard_sweep(&env, &queries, opts));
    }
    if !opts.lsh_budgets.is_empty() || !opts.vptree_slacks.is_empty() {
        let approx_env = Env::prepare(&opts.approx_dataset);
        let approx_queries = opts.approx_dataset.queries(opts.queries);
        runs.extend(approx_sweep(&approx_env, &approx_queries, opts));
    }

    let kernel_rows = kernel::run(&opts.kernel);

    let threads_available =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        ("smoke", Json::Bool(opts.smoke)),
        // Thread-sweep context: speedups cap at this machine's parallelism
        // (a 1-CPU CI runner legitimately shows a flat thread axis).
        ("machine", Json::obj(vec![("threads_available", Json::num(threads_available as f64))])),
        ("index", index_meta),
        (
            "dataset",
            Json::obj(vec![
                (
                    "kind",
                    Json::str(match opts.dataset.kind {
                        DatasetKind::Synthetic => "synthetic",
                        DatasetKind::Cell => "cell",
                    }),
                ),
                ("n", Json::num(opts.dataset.n as f64)),
                ("points_per_object", Json::num(opts.dataset.points_per_object as f64)),
                ("seed", Json::num(opts.dataset.seed as f64)),
            ]),
        ),
        (
            "workload",
            Json::obj(vec![
                ("queries", Json::num(opts.queries as f64)),
                ("default_k", Json::num(opts.default_k as f64)),
                ("default_alpha", Json::num(opts.default_alpha)),
                ("mutation_rate", Json::num(opts.mutation_rate)),
                ("ks", Json::Arr(opts.ks.iter().map(|&k| Json::num(k as f64)).collect())),
                ("alphas", Json::Arr(opts.alphas.iter().map(|&a| Json::num(a)).collect())),
                (
                    "thread_counts",
                    Json::Arr(opts.thread_counts.iter().map(|&t| Json::num(t as f64)).collect()),
                ),
                (
                    "shard_counts",
                    Json::Arr(opts.shard_counts.iter().map(|&s| Json::num(s as f64)).collect()),
                ),
                (
                    "lsh_budgets",
                    Json::Arr(opts.lsh_budgets.iter().map(|&b| Json::num(b)).collect()),
                ),
                (
                    "vptree_slacks",
                    Json::Arr(opts.vptree_slacks.iter().map(|&e| Json::num(e)).collect()),
                ),
                (
                    "approx_dataset",
                    Json::obj(vec![
                        (
                            "kind",
                            Json::str(match opts.approx_dataset.kind {
                                DatasetKind::Synthetic => "synthetic",
                                DatasetKind::Cell => "cell",
                            }),
                        ),
                        ("n", Json::num(opts.approx_dataset.n as f64)),
                        (
                            "points_per_object",
                            Json::num(opts.approx_dataset.points_per_object as f64),
                        ),
                        ("seed", Json::num(opts.approx_dataset.seed as f64)),
                        ("radius", opts.approx_dataset.radius.map(Json::num).unwrap_or(Json::Null)),
                    ]),
                ),
            ]),
        ),
        ("runs", Json::Arr(runs)),
        ("kernel", Json::Arr(kernel_rows)),
    ])
}

/// Structural schema check used by the CI smoke job (and re-run on every
/// report `fkq bench` writes). Returns a description of the first
/// violation.
pub fn validate_report(report: &Json) -> Result<(), String> {
    if report.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema field missing or not {SCHEMA:?}"));
    }
    for key in ["dataset", "workload", "machine", "index"] {
        match report.get(key) {
            Some(Json::Obj(_)) => {}
            _ => return Err(format!("{key} must be an object")),
        }
    }
    let runs = report
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or_else(|| "runs must be an array".to_string())?;
    if runs.is_empty() {
        return Err("runs must not be empty".to_string());
    }
    for (i, run) in runs.iter().enumerate() {
        for &(field, is_number) in RUN_FIELDS {
            let value = run.get(field).ok_or_else(|| format!("runs[{i}] missing {field:?}"))?;
            match (is_number, value) {
                (true, Json::Num(n)) if n.is_finite() && *n >= 0.0 => {}
                (false, Json::Str(_)) => {}
                _ => return Err(format!("runs[{i}].{field} has the wrong type: {value:?}")),
            }
        }
        if run.get("errors").and_then(Json::as_num) != Some(0.0) {
            return Err(format!("runs[{i}] recorded query errors"));
        }
        // Every `approx`-sweep row carries the recall axis: which backend
        // produced the pool, which dial setting, and the measured
        // recall@k in [0, 1] against the exact engine.
        if run.get("sweep").and_then(Json::as_str) == Some("approx") {
            match run.get("recall_at_k") {
                Some(Json::Num(r)) if (0.0..=1.0).contains(r) => {}
                other => {
                    return Err(format!("runs[{i}].recall_at_k must be in [0, 1], got {other:?}"))
                }
            }
            for field in ["approx_backend", "recall_dial"] {
                match run.get(field) {
                    Some(Json::Str(_)) => {}
                    _ => return Err(format!("runs[{i}].{field} must be a string")),
                }
            }
        }
    }
    let kernel_rows = report
        .get("kernel")
        .and_then(Json::as_arr)
        .ok_or_else(|| "kernel must be an array".to_string())?;
    if kernel_rows.is_empty() {
        return Err("kernel must not be empty".to_string());
    }
    for (i, row) in kernel_rows.iter().enumerate() {
        for &(field, is_number) in kernel::KERNEL_FIELDS {
            let value = row.get(field).ok_or_else(|| format!("kernel[{i}] missing {field:?}"))?;
            match (is_number, value) {
                (true, Json::Num(n)) if n.is_finite() && *n >= 0.0 => {}
                (false, Json::Str(_)) => {}
                _ => return Err(format!("kernel[{i}].{field} has the wrong type: {value:?}")),
            }
        }
    }
    Ok(())
}

/// Serialize, validate and write a report; returns the rendered text.
pub fn write_report(path: &Path, report: &Json) -> std::io::Result<String> {
    validate_report(report).map_err(std::io::Error::other)?;
    let text = report.to_pretty();
    std::fs::write(path, &text)?;
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_produces_a_valid_report() {
        let _env = crate::dataset_dir_test_lock();
        std::env::set_var("FUZZY_DATASET_DIR", std::env::temp_dir().join("fzkn-bench-suite-test"));
        let report = run(&BenchOptions::smoke());
        validate_report(&report).expect("smoke report must satisfy the schema");
        // The report survives a serialize → parse round trip.
        let reparsed = Json::parse(&report.to_pretty()).unwrap();
        validate_report(&reparsed).unwrap();
        // All five sweeps are present (smoke sets a nonzero mutation
        // rate precisely so the dynamic-update path cannot rot unnoticed).
        let runs = reparsed.get("runs").unwrap().as_arr().unwrap();
        for sweep in ["variant_threads", "k", "alpha", "cold_warm", "mutation", "shards", "approx"]
        {
            assert!(
                runs.iter().any(|r| r.get("sweep").and_then(Json::as_str) == Some(sweep)),
                "missing sweep {sweep}"
            );
        }
        // The approx sweep carries the recall axis: an exact baseline row
        // at recall 1.0 plus both backends' dial ladders, each closed
        // with an exact-dial endpoint that must also hit recall 1.0.
        let approx_rows: Vec<_> = runs
            .iter()
            .filter(|r| r.get("sweep").and_then(Json::as_str) == Some("approx"))
            .collect();
        for backend in ["exact", "lsh", "vptree"] {
            assert!(
                approx_rows
                    .iter()
                    .any(|r| r.get("approx_backend").and_then(Json::as_str) == Some(backend)),
                "missing approx backend {backend}"
            );
        }
        for row in &approx_rows {
            if row.get("recall_dial").and_then(Json::as_str) == Some("exact") {
                assert_eq!(
                    row.get("recall_at_k").and_then(Json::as_num),
                    Some(1.0),
                    "exact dial rows must measure recall 1.0"
                );
            }
        }
        // Every paper variant appears in the variant sweep.
        for variant in ["Basic", "LB", "LB-LP", "LB-LP-UB"] {
            assert!(runs.iter().any(|r| r.get("variant").and_then(Json::as_str) == Some(variant)));
        }
        // The default backend is paged, so I/O is real: cold runs read
        // pages from disk, the warm leg of the cold_warm sweep does not.
        assert_eq!(
            reparsed.get("index").unwrap().get("backend").and_then(Json::as_str),
            Some("paged")
        );
        let leg = |cache: &str| -> f64 {
            runs.iter()
                .find(|r| {
                    r.get("sweep").and_then(Json::as_str) == Some("cold_warm")
                        && r.get("cache").and_then(Json::as_str) == Some(cache)
                })
                .expect("cold_warm leg present")
                .get("node_disk_reads_total")
                .and_then(Json::as_num)
                .unwrap()
        };
        assert!(leg("cold") > 0.0, "cold runs must hit the disk");
        assert_eq!(leg("warm"), 0.0, "warm pool must serve every node");
        // The shared-τ bound keeps scatter-gather probe totals flat in the
        // shard count: the highest-S row must not probe more objects than
        // the S=1 baseline (same criterion CI applies to the full report).
        let shard_probes = |s: f64| -> f64 {
            runs.iter()
                .find(|r| {
                    r.get("sweep").and_then(Json::as_str) == Some("shards")
                        && r.get("shards").and_then(Json::as_num) == Some(s)
                })
                .expect("shards row present")
                .get("object_accesses_total")
                .and_then(Json::as_num)
                .unwrap()
        };
        assert!(
            shard_probes(2.0) <= shard_probes(1.0),
            "τ sharing must keep S=2 probes within the S=1 baseline"
        );
    }

    #[test]
    fn validate_rejects_broken_reports() {
        assert!(validate_report(&Json::Null).is_err());
        assert!(validate_report(&Json::obj(vec![("schema", Json::str("wrong"))])).is_err());
        let no_runs = Json::obj(vec![
            ("schema", Json::str(SCHEMA)),
            ("dataset", Json::Obj(vec![])),
            ("workload", Json::Obj(vec![])),
            ("runs", Json::Arr(vec![])),
        ]);
        assert!(validate_report(&no_runs).is_err());
    }
}
