//! Shared experiment infrastructure for the `repro` and `fkq` binaries.
//!
//! Datasets are generated deterministically and cached as store files
//! under `target/fuzzy-datasets/`, keyed by (kind, N, points-per-object,
//! seed); each experiment then opens the file store, bulk-loads the
//! R-tree, runs a batch of queries per algorithm variant and reports the
//! mean per-query costs as CSV. The [`aknn_suite`] module adds the
//! batched throughput sweeps behind `fkq bench` (JSON report via
//! [`json`]).

#![warn(missing_docs)]

pub mod aknn_suite;
pub mod json;
pub mod kernel;
pub mod serve_suite;

use fuzzy_core::FuzzyObject;
use fuzzy_datagen::{CellConfig, DatasetKind, SyntheticConfig};
use fuzzy_index::{RTree, RTreeConfig};
use fuzzy_query::{AknnConfig, QueryEngine, QueryStats, RknnAlgorithm};
use fuzzy_store::{FileStore, ObjectStore};
use std::path::PathBuf;

/// Dataset axis of an experiment.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Generator family.
    pub kind: DatasetKind,
    /// Number of objects `N`.
    pub n: usize,
    /// Points per object (the paper uses 1 000; the recorded runs scale
    /// this down — see EXPERIMENTS.md).
    pub points_per_object: usize,
    /// Generator seed.
    pub seed: u64,
    /// Object-radius override for the synthetic generator (`None` keeps
    /// the paper's 0.5). Larger radii in the same 100×100 space make
    /// object supports overlap — the adverse regime for bound-based
    /// pruning that the approximate sweep measures against. Ignored by
    /// the cell generator.
    pub radius: Option<f64>,
}

impl DatasetSpec {
    /// Cache file path for this spec.
    pub fn path(&self) -> PathBuf {
        let dir = PathBuf::from(
            std::env::var("FUZZY_DATASET_DIR").unwrap_or_else(|_| "target/fuzzy-datasets".into()),
        );
        let radius = match self.radius {
            Some(r) => format!("-r{r}"),
            None => String::new(),
        };
        dir.join(format!(
            "{}-n{}-p{}-s{:x}{radius}.fzkn",
            match self.kind {
                DatasetKind::Synthetic => "syn",
                DatasetKind::Cell => "cell",
            },
            self.n,
            self.points_per_object,
            self.seed
        ))
    }

    /// Path of the paged index file derived from this spec (sibling of
    /// the dataset file, `.fzpt` extension).
    pub fn index_path(&self) -> PathBuf {
        self.path().with_extension("fzpt")
    }

    /// Open the cached store, generating it on first use.
    pub fn open(&self) -> FileStore<2> {
        let path = self.path();
        if path.exists() {
            if let Ok(store) = FileStore::open(&path) {
                if store.len() == self.n {
                    return store;
                }
            }
        }
        std::fs::create_dir_all(path.parent().expect("parent dir")).expect("mkdir");
        eprintln!("  [gen] {} ...", path.display());
        match self.kind {
            DatasetKind::Synthetic => {
                let cfg = self.synthetic();
                fuzzy_datagen::write_dataset(&path, cfg.generate()).expect("write dataset")
            }
            DatasetKind::Cell => {
                let cfg = self.cell();
                fuzzy_datagen::write_dataset(&path, cfg.generate()).expect("write dataset")
            }
        }
    }

    fn synthetic(&self) -> SyntheticConfig {
        let base = SyntheticConfig::default();
        SyntheticConfig {
            num_objects: self.n,
            points_per_object: self.points_per_object,
            seed: self.seed,
            radius: self.radius.unwrap_or(base.radius),
            ..base
        }
    }

    fn cell(&self) -> CellConfig {
        CellConfig {
            num_objects: self.n,
            points_per_object: self.points_per_object,
            seed: self.seed,
            ..CellConfig::default()
        }
    }

    /// Deterministic query workload drawn from the same distribution.
    pub fn queries(&self, count: usize) -> Vec<FuzzyObject<2>> {
        (0..count as u64)
            .map(|i| match self.kind {
                DatasetKind::Synthetic => self.synthetic().query_object(i + 1),
                DatasetKind::Cell => self.cell().query_object(i + 1),
            })
            .collect()
    }
}

/// A prepared experiment environment: store + index.
pub struct Env {
    /// The opened store.
    pub store: FileStore<2>,
    /// The bulk-loaded index.
    pub tree: RTree<2>,
}

impl Env {
    /// Open/generate the dataset and bulk-load the index.
    pub fn prepare(spec: &DatasetSpec) -> Env {
        let store = spec.open();
        let tree = RTree::bulk_load(store.summaries().to_vec(), RTreeConfig::default());
        Env { store, tree }
    }

    /// Query engine over this environment.
    pub fn engine(&self) -> QueryEngine<'_, RTree<2>, FileStore<2>, 2> {
        QueryEngine::new(&self.tree, &self.store)
    }

    /// Mean AKNN stats over a query batch for one variant.
    pub fn run_aknn(
        &self,
        queries: &[FuzzyObject<2>],
        k: usize,
        alpha: f64,
        cfg: &AknnConfig,
    ) -> QueryStats {
        let engine = self.engine();
        let stats: Vec<QueryStats> =
            queries.iter().map(|q| engine.aknn(q, k, alpha, cfg).expect("aknn").stats).collect();
        QueryStats::mean(&stats)
    }

    /// Mean RKNN stats over a query batch for one algorithm.
    pub fn run_rknn(
        &self,
        queries: &[FuzzyObject<2>],
        k: usize,
        range: (f64, f64),
        algo: RknnAlgorithm,
        cfg: &AknnConfig,
    ) -> QueryStats {
        let engine = self.engine();
        let stats: Vec<QueryStats> = queries
            .iter()
            .map(|q| engine.rknn(q, k, range.0, range.1, algo, cfg).expect("rknn").stats)
            .collect();
        QueryStats::mean(&stats)
    }
}

/// A CSV-ish output table with aligned console rendering.
pub struct Table {
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Render aligned for the console.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to console and persist CSV under `experiments/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("\n== {name} ==");
        print!("{}", self.render());
        let dir = PathBuf::from(
            std::env::var("FUZZY_EXPERIMENT_DIR").unwrap_or_else(|_| "experiments".into()),
        );
        std::fs::create_dir_all(&dir).expect("mkdir experiments");
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv()).expect("write csv");
        println!("  -> {}", path.display());
    }
}

/// Milliseconds with two decimals.
pub fn ms(stats: &QueryStats) -> String {
    format!("{:.2}", stats.wall.as_secs_f64() * 1e3)
}

/// Serializes every test (in this binary) that reads or writes the
/// `FUZZY_DATASET_DIR` process environment variable: concurrent
/// `setenv`/`getenv` from parallel test threads is undefined behavior on
/// glibc. Hold the returned guard for the whole test body.
#[cfg(test)]
pub(crate) fn dataset_dir_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_csv() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,bb\n1,2\n");
        assert!(t.render().contains("bb"));
    }

    #[test]
    fn spec_paths_distinguish_parameters() {
        let _env = crate::dataset_dir_test_lock(); // path() reads the env var
        let a = DatasetSpec {
            kind: DatasetKind::Synthetic,
            n: 100,
            points_per_object: 50,
            seed: 1,
            radius: None,
        };
        let b = DatasetSpec { n: 200, ..a };
        assert_ne!(a.path(), b.path());
        let c = DatasetSpec { kind: DatasetKind::Cell, ..a };
        assert_ne!(a.path(), c.path());
    }

    #[test]
    fn end_to_end_small_experiment() {
        let _env = crate::dataset_dir_test_lock();
        std::env::set_var("FUZZY_DATASET_DIR", std::env::temp_dir().join("fzkn-bench-test"));
        let spec = DatasetSpec {
            kind: DatasetKind::Synthetic,
            n: 60,
            points_per_object: 40,
            seed: 5,
            radius: None,
        };
        let env = Env::prepare(&spec);
        assert_eq!(env.tree.len(), 60);
        let queries = spec.queries(2);
        // The full optimization stack may confirm every result from bounds
        // alone (zero probes); the basic variant always probes.
        let stats = env.run_aknn(&queries, 5, 0.5, &AknnConfig::lb_lp_ub());
        assert!(stats.node_accesses > 0);
        let basic = env.run_aknn(&queries, 5, 0.5, &AknnConfig::basic());
        assert!(basic.object_accesses > 0);
        assert!(stats.object_accesses <= basic.object_accesses);
        let rstats =
            env.run_rknn(&queries, 3, (0.4, 0.6), RknnAlgorithm::RssIcr, &AknnConfig::lb_lp_ub());
        assert!(rstats.object_accesses > 0);
    }
}
