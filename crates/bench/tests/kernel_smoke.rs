//! CI smoke for the distance-kernel microbench (`bench-kernel` job): runs
//! the sweep on a tiny workload, checks the algorithms agree (the sweep
//! panics internally on checksum divergence), and proves the v3 report
//! JSON containing the `kernel` section parses and validates.

use fuzzy_bench::json::Json;
use fuzzy_bench::kernel::{self, KernelOptions, KERNEL_FIELDS};

#[test]
fn kernel_sweep_rows_are_complete_and_reparsable() {
    let rows = kernel::run(&KernelOptions::smoke());
    assert!(!rows.is_empty());
    // Wrap like the report does, round-trip through the serializer, and
    // check every row's fields survive with the right types.
    let doc = Json::obj(vec![("kernel", Json::Arr(rows))]);
    let reparsed = Json::parse(&doc.to_pretty()).expect("kernel section must parse");
    let rows = reparsed.get("kernel").and_then(Json::as_arr).expect("kernel array");
    for row in rows {
        for &(field, is_num) in KERNEL_FIELDS {
            let v = row.get(field).unwrap_or_else(|| panic!("missing {field}"));
            match (is_num, v) {
                (true, Json::Num(n)) => assert!(n.is_finite() && *n >= 0.0, "bad {field}: {n}"),
                (false, Json::Str(s)) => assert!(!s.is_empty()),
                other => panic!("field {field} wrong type: {other:?}"),
            }
        }
    }
    // Every algorithm appears once per (ppo, α) cell.
    let algos: Vec<&str> =
        rows.iter().filter_map(|r| r.get("algorithm").and_then(Json::as_str)).collect();
    for want in ["brute", "auto", "dual-tree", "seeded"] {
        assert!(algos.contains(&want), "missing algorithm {want}");
    }
}

/// The full (non-smoke) sweep, including the 480-points-per-object cells
/// whose brute pass is quadratic — too slow for debug `cargo test`, so it
/// is ignored by default and run by the `kernel-regress` CI job with
/// `--release -- --ignored`. `kernel::run` panics if any optimized
/// algorithm's checksum diverges from the brute oracle.
#[test]
#[ignore = "release-only full sweep; run by the kernel-regress CI job"]
fn full_sweep_checksums_match_the_brute_oracle() {
    let rows = kernel::run(&KernelOptions::full());
    let opts = KernelOptions::full();
    // One row per (algorithm, ppo, α) cell, 4 algorithms.
    assert_eq!(rows.len(), opts.points_per_object.len() * opts.alphas.len() * 4);
}

#[test]
fn kernel_sweep_is_deterministic_in_checksums() {
    let a = kernel::run(&KernelOptions::smoke());
    let b = kernel::run(&KernelOptions::smoke());
    let sums = |rows: &[Json]| -> Vec<f64> {
        rows.iter().filter_map(|r| r.get("checksum").and_then(Json::as_num)).collect()
    };
    assert_eq!(sums(&a), sums(&b), "checksums must be reproducible");
}
