//! End-to-end check of the persisted index path: build an index file with
//! `fkq build-index`, reopen it in a *fresh process* via `fkq
//! aknn/rknn --index-file`, and diff the answers against the in-memory
//! tree the same binary bulk-loads by default. This is the test the CI
//! `paged-roundtrip` job runs.

use std::path::Path;
use std::process::Command;

fn fkq(args: &[&str], dir: &Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_fkq"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn fkq");
    assert!(
        out.status.success(),
        "fkq {args:?} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// Strip the cost line: wall-clock and the disk/cache split legitimately
/// differ between backends; the *answers* may not.
fn answers_only(output: &str) -> String {
    output.lines().filter(|l| !l.starts_with("cost:")).collect::<Vec<_>>().join("\n")
}

#[test]
fn persisted_index_answers_match_in_memory_tree_across_processes() {
    let dir = std::env::temp_dir().join(format!("fzpt-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    fkq(
        &["generate", "--kind", "synthetic", "--n", "300", "--ppo", "40", "--out", "data.fzkn"],
        &dir,
    );
    let built =
        fkq(&["build-index", "data.fzkn", "--out", "data.fzpt", "--page-size", "16384"], &dir);
    assert!(built.contains("300 objects"), "unexpected build-index output: {built}");

    // Several query shapes, each answered by both backends in separate
    // process invocations.
    for seed in ["1", "7", "23"] {
        let aknn_args = ["aknn", "data.fzkn", "--k", "8", "--alpha", "0.6", "--query-seed", seed];
        let mem = fkq(&aknn_args, &dir);
        let paged = fkq(&[&aknn_args[..], &["--index-file", "data.fzpt"]].concat(), &dir);
        assert_eq!(answers_only(&mem), answers_only(&paged), "AKNN answers diverged (seed {seed})");
        // The paged run performed real node I/O.
        let cost = paged.lines().find(|l| l.starts_with("cost:")).expect("cost line");
        assert!(!cost.contains("(0 from disk)"), "paged run read no pages: {cost}");

        let rknn_args = [
            "rknn",
            "data.fzkn",
            "--k",
            "4",
            "--start",
            "0.3",
            "--end",
            "0.8",
            "--algo",
            "rss-icr",
            "--query-seed",
            seed,
        ];
        let mem = fkq(&rknn_args, &dir);
        let paged = fkq(&[&rknn_args[..], &["--index-file", "data.fzpt"]].concat(), &dir);
        assert_eq!(answers_only(&mem), answers_only(&paged), "RKNN answers diverged (seed {seed})");
    }

    // `fkq info` reports the paged geometry.
    let info = fkq(&["info", "data.fzkn", "--index-file", "data.fzpt"], &dir);
    assert!(info.contains("paged index"), "{info}");

    std::fs::remove_dir_all(&dir).ok();
}
