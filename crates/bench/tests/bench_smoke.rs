//! End-to-end smoke test of the bench harness: run the real `fkq bench`
//! binary in smoke mode and assert the emitted report parses and satisfies
//! the schema. This is the test the CI bench job runs so the harness (and
//! its JSON contract) cannot rot silently.

use fuzzy_bench::aknn_suite;
use fuzzy_bench::json::Json;
use std::process::Command;

#[test]
fn fkq_bench_smoke_emits_a_parsable_schema_conformant_report() {
    let dir = std::env::temp_dir().join(format!("fzkn-bench-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_aknn.json");

    let status = Command::new(env!("CARGO_BIN_EXE_fkq"))
        .args(["bench", "--smoke", "true", "--out"])
        .arg(&out)
        .env("FUZZY_DATASET_DIR", &dir)
        .status()
        .expect("spawn fkq");
    assert!(status.success(), "fkq bench --smoke true failed: {status}");

    let text = std::fs::read_to_string(&out).expect("report file written");
    let report = Json::parse(&text).expect("report must be valid JSON");
    aknn_suite::validate_report(&report).expect("report must satisfy the schema");

    // Spot-check the performance surface the ISSUE promises: per-variant /
    // per-thread-count wall clock and node accesses.
    let runs = report.get("runs").unwrap().as_arr().unwrap();
    let vt: Vec<&Json> = runs
        .iter()
        .filter(|r| r.get("sweep").and_then(Json::as_str) == Some("variant_threads"))
        .collect();
    assert_eq!(vt.len(), 8, "4 variants x 2 thread counts in smoke mode");
    for run in vt {
        assert!(run.get("wall_ms_batch").and_then(Json::as_num).unwrap() >= 0.0);
        assert!(run.get("node_accesses_total").and_then(Json::as_num).unwrap() > 0.0);
    }

    std::fs::remove_dir_all(&dir).ok();
}
