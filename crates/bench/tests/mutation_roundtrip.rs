//! End-to-end check of the dynamic-update path across *fresh processes*:
//! `fkq delete`/`insert` accumulate changes in the sidecar delta log,
//! every later `fkq` invocation replays them, and `fkq compact` folds
//! them into the index file. After a delete + reinsert round trip the
//! answers must be identical to the pristine index — before *and* after
//! compaction. This is part of the CI `mutation-determinism` job.

use std::path::Path;
use std::process::Command;

fn fkq(args: &[&str], dir: &Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_fkq"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn fkq");
    assert!(
        out.status.success(),
        "fkq {args:?} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// Strip the cost line: wall-clock and the disk/cache split legitimately
/// differ between runs; the *answers* may not.
fn answers_only(output: &str) -> String {
    output.lines().filter(|l| !l.starts_with("cost:")).collect::<Vec<_>>().join("\n")
}

#[test]
fn insert_delete_compact_round_trip_across_processes() {
    let dir = std::env::temp_dir().join(format!("fz-mutation-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    fkq(
        &["generate", "--kind", "synthetic", "--n", "250", "--ppo", "40", "--out", "data.fzkn"],
        &dir,
    );
    fkq(&["build-index", "data.fzkn", "--out", "data.fzpt", "--page-size", "16384"], &dir);

    // Baseline answers over the pristine index. The `basic` variant
    // reports every distance exactly, so outputs are comparable across
    // differently shaped trees (overlay vs compacted vs pristine).
    let aknn = |extra: &[&str]| {
        let base = [
            "aknn",
            "data.fzkn",
            "--k",
            "6",
            "--alpha",
            "0.6",
            "--variant",
            "basic",
            "--query-id",
            "42",
            "--index-file",
            "data.fzpt",
        ];
        answers_only(&fkq(&[&base[..], extra].concat(), &dir))
    };
    let rknn = |extra: &[&str]| {
        let base = [
            "rknn",
            "data.fzkn",
            "--k",
            "4",
            "--start",
            "0.3",
            "--end",
            "0.8",
            "--query-id",
            "42",
            "--index-file",
            "data.fzpt",
        ];
        answers_only(&fkq(&[&base[..], extra].concat(), &dir))
    };
    let baseline_aknn = aknn(&[]);
    let baseline_rknn = rknn(&[]);
    // Object 42 is its own nearest neighbour at distance 0.
    assert!(baseline_aknn.contains("42"), "{baseline_aknn}");

    // Delete a batch (one process) — the sidecar appears and later
    // processes see the shrunken live set.
    let deleted = fkq(&["delete", "--index-file", "data.fzpt", "--ids", "42,43,44,45"], &dir);
    assert!(deleted.contains("deleted 4"), "{deleted}");
    assert!(deleted.contains("246 live objects"), "{deleted}");
    assert!(dir.join("data.fzpt.fzdl").exists(), "delta sidecar must exist");
    // Double delete is reported, not fatal.
    let again = fkq(&["delete", "--index-file", "data.fzpt", "--ids", "42"], &dir);
    assert!(again.contains("deleted 0"), "{again}");

    let without = aknn(&[]);
    assert_ne!(without, baseline_aknn, "deleting the query's own id must change the answer");
    assert!(
        !without.lines().any(|l| l.trim_start().starts_with("42 ")),
        "deleted object still answered: {without}"
    );
    let info = fkq(&["info", "data.fzkn", "--index-file", "data.fzpt"], &dir);
    assert!(info.contains("overlay +0 -4"), "{info}");

    // Reinsert the same ids from the store (fresh process): the live set
    // is restored, so answers return to baseline while the delta log
    // still routes them through overlay leaves.
    let inserted =
        fkq(&["insert", "data.fzkn", "--index-file", "data.fzpt", "--ids", "42,43,44,45"], &dir);
    assert!(inserted.contains("inserted 4"), "{inserted}");
    assert!(inserted.contains("250 live objects"), "{inserted}");
    assert_eq!(aknn(&[]), baseline_aknn, "restored live set must restore AKNN answers");
    assert_eq!(rknn(&[]), baseline_rknn, "restored live set must restore RKNN answers");

    // Compact (fresh process): sidecar folded into the file and removed;
    // answers unchanged once more.
    let compacted = fkq(&["compact", "--index-file", "data.fzpt"], &dir);
    assert!(compacted.contains("folded +4 -4"), "{compacted}");
    assert!(!dir.join("data.fzpt.fzdl").exists(), "compaction must clear the sidecar");
    assert_eq!(aknn(&[]), baseline_aknn, "compacted index must answer like the pristine one");
    assert_eq!(rknn(&[]), baseline_rknn, "compacted index must answer like the pristine one");
    let info = fkq(&["info", "data.fzkn", "--index-file", "data.fzpt"], &dir);
    assert!(info.contains("paged index") && !info.contains("overlay"), "{info}");

    std::fs::remove_dir_all(&dir).ok();
}
