//! Conservative line fitting (Definition 6): UCH bisection vs the exact
//! hull scan, across boundary-function sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy_geom::{fit_conservative_line, fit_conservative_line_exact};

fn boundary_samples(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut state = seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut xs: Vec<f64> = (0..n).map(|_| rnd()).collect();
    xs.push(0.0);
    xs.push(1.0);
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    let mut y = 0.0;
    let mut out: Vec<(f64, f64)> = xs
        .iter()
        .rev()
        .map(|&x| {
            let p = (x, y);
            y += rnd() * 0.2;
            p
        })
        .collect();
    out.reverse();
    out
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("conservative_line");
    for n in [16usize, 64, 256, 1024] {
        let samples = boundary_samples(n, 0x11AE ^ n as u64);
        group.bench_with_input(BenchmarkId::new("bisection", n), &samples, |b, s| {
            b.iter(|| fit_conservative_line(s))
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &samples, |b, s| {
            b.iter(|| fit_conservative_line_exact(s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
