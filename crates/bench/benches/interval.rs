//! Interval-set algebra costs (RKNN bookkeeping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy_query::{Interval, IntervalSet};

fn random_set(n: usize, seed: u64) -> IntervalSet {
    let mut state = seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut s = IntervalSet::empty();
    for _ in 0..n {
        let lo = rnd() * 0.9;
        let hi = lo + rnd() * 0.1;
        s.push(Interval::left_open(lo, hi.min(1.0)));
    }
    s
}

fn bench_interval_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_set");
    for n in [8usize, 64, 512] {
        let a = random_set(n, 3);
        let b = random_set(n, 19);
        group.bench_with_input(BenchmarkId::new("union", n), &n, |bench, _| {
            bench.iter(|| a.union(&b))
        });
        group.bench_with_input(BenchmarkId::new("intersect", n), &n, |bench, _| {
            bench.iter(|| a.intersect(&b))
        });
        group.bench_with_input(BenchmarkId::new("push", n), &n, |bench, _| {
            bench.iter(|| {
                let mut s = a.clone();
                s.push(Interval::closed(0.45, 0.55));
                s
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interval_ops);
criterion_main!(benches);
