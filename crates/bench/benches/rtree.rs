//! R-tree costs: STR bulk load, incremental insertion, best-first kNN and
//! range search over fuzzy summaries.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use fuzzy_core::ObjectSummary;
use fuzzy_datagen::SyntheticConfig;
use fuzzy_geom::Point;
use fuzzy_index::{RTree, RTreeConfig};

fn summaries(n: usize) -> Vec<ObjectSummary<2>> {
    let cfg = SyntheticConfig {
        num_objects: n,
        points_per_object: 40,
        seed: 77,
        ..SyntheticConfig::default()
    };
    cfg.generate().map(|o| ObjectSummary::from_object(&o)).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_build");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let entries = summaries(n);
        group.bench_with_input(BenchmarkId::new("str_bulk", n), &entries, |b, e| {
            b.iter_batched(
                || e.clone(),
                |e| RTree::bulk_load(e, RTreeConfig::default()),
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("r_star_insert", n), &entries, |b, e| {
            b.iter_batched(
                || e.clone(),
                |e| {
                    let mut t: RTree<2> = RTree::new(RTreeConfig::default());
                    for s in e {
                        t.insert(s);
                    }
                    t
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let entries = summaries(10_000);
    let tree = RTree::bulk_load(entries, RTreeConfig::default());
    let q = Point::xy(50.0, 50.0);
    let mut group = c.benchmark_group("rtree_query");
    for k in [1usize, 20, 100] {
        group.bench_with_input(BenchmarkId::new("knn_by", k), &k, |b, &k| {
            b.iter(|| {
                tree.knn_by(k, |mbr| mbr.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q))
            })
        });
    }
    for radius in [1.0, 5.0, 20.0] {
        group.bench_with_input(BenchmarkId::new("range", radius as u64), &radius, |b, &r| {
            b.iter(|| {
                tree.range_search(
                    r,
                    |mbr| mbr.min_dist_point(&q),
                    |e| e.support_mbr.min_dist_point(&q),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
