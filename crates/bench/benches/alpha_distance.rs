//! `abl-dist`: α-distance evaluation cost — quadratic brute force vs the
//! dual-tree closest pair, across object sizes and thresholds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy_core::distance::{alpha_distance, alpha_distance_brute};
use fuzzy_core::Threshold;
use fuzzy_datagen::SyntheticConfig;

fn bench_alpha_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_distance");
    for n in [100usize, 400, 1000] {
        let cfg = SyntheticConfig {
            num_objects: 2,
            points_per_object: n,
            seed: 9,
            ..SyntheticConfig::default()
        };
        let objs: Vec<_> = cfg.generate().collect();
        let (a, b) = (&objs[0], &objs[1]);
        // Force kd construction out of the measurement.
        let _ = a.kd_tree();
        let _ = b.kd_tree();
        let t = Threshold::at(0.5);
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |bench, _| {
            bench.iter(|| alpha_distance_brute(a, b, t))
        });
        group.bench_with_input(BenchmarkId::new("dual_tree", n), &n, |bench, _| {
            bench.iter(|| alpha_distance(a, b, t))
        });
    }
    group.finish();
}

fn bench_threshold_sensitivity(c: &mut Criterion) {
    let cfg = SyntheticConfig {
        num_objects: 2,
        points_per_object: 1000,
        seed: 11,
        ..SyntheticConfig::default()
    };
    let objs: Vec<_> = cfg.generate().collect();
    let (a, b) = (&objs[0], &objs[1]);
    let _ = (a.kd_tree(), b.kd_tree());
    let mut group = c.benchmark_group("alpha_distance_vs_alpha");
    for alpha in [0.1, 0.5, 0.9] {
        group.bench_with_input(BenchmarkId::new("dual_tree", alpha), &alpha, |bench, &al| {
            bench.iter(|| alpha_distance(a, b, Threshold::at(al)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alpha_distance, bench_threshold_sensitivity);
criterion_main!(benches);
