//! Distance-profile construction: the kd descending sweep vs the brute
//! Pareto frontier (the RKNN refinement workhorse).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy_core::DistanceProfile;
use fuzzy_datagen::CellConfig;

fn bench_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_profile");
    for n in [100usize, 400, 1000] {
        let cfg = CellConfig {
            num_objects: 2,
            points_per_object: n,
            clusters: 0,
            seed: 5,
            ..CellConfig::default()
        };
        let objs: Vec<_> = cfg.generate().collect();
        let (a, q) = (&objs[0], &objs[1]);
        let _ = (a.kd_tree(), q.kd_tree());
        group.bench_with_input(BenchmarkId::new("sweep", n), &n, |b, _| {
            b.iter(|| DistanceProfile::compute(a, q))
        });
        if n <= 400 {
            group.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
                b.iter(|| DistanceProfile::compute_brute(a, q))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_profile);
criterion_main!(benches);
