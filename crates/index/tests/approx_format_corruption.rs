//! Corruption matrices for the approximate-index formats: a `.fzlh` or
//! `.fzvp` file damaged in **any** way — truncated at every byte
//! boundary, any single bit flipped, a stale version stamp, a
//! wrong-dimension header — must surface as a typed [`StoreError`],
//! never a panic and never a silently wrong index. Both formats checksum
//! **every byte before the trailer** (header included), so even the
//! reserved header word is flip-protected. Loaders run through
//! `catch_unwind` so a panic shows up as its own failure, not a test
//! abort.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use fuzzy_core::metric::L2;
use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
use fuzzy_geom::Point;
use fuzzy_index::{LshConfig, LshIndex, VpTree, VpTreeConfig};
use fuzzy_store::format::{fnv1a, Encoder};
use fuzzy_store::StoreError;

fn summary(id: u64, x: f64, y: f64) -> ObjectSummary<2> {
    let pts = vec![Point::new([x, y]), Point::new([x + 0.4, y + 0.3]), Point::new([x - 0.2, y])];
    let mus = vec![1.0, 0.6, 0.3];
    ObjectSummary::from_object(&FuzzyObject::new(ObjectId(id), pts, mus).unwrap())
}

fn grid(n: u64) -> Vec<ObjectSummary<2>> {
    (0..n).map(|i| summary(i, (i % 8) as f64 * 2.0, (i / 8) as f64 * 2.0)).collect()
}

/// Build one real file of each format into a removable dir.
fn build_fixture(tag: &str, kind: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fz-approx-corrupt-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let summaries = grid(24);
    match kind {
        "fzlh" => {
            let path = dir.join("ix.fzlh");
            LshIndex::build(&summaries, LshConfig { tables: 3, hashes: 3, ..Default::default() })
                .save(&path)
                .unwrap();
            path
        }
        _ => {
            let path = dir.join("ix.fzvp");
            VpTree::build(&L2, &summaries, VpTreeConfig::default()).save(&path).unwrap();
            path
        }
    }
}

fn cleanup(path: &Path) {
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

/// Load a (possibly mutated) image through the right loader; a panic is
/// converted into a test failure with the mutation's coordinates.
fn load_result(bytes: &[u8], kind: &str, what: &str) -> Result<(), StoreError> {
    let dir = std::env::temp_dir().join(format!("fz-approx-mut-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("mut.{kind}"));
    std::fs::write(&path, bytes).unwrap();
    let out = catch_unwind(AssertUnwindSafe(|| match kind {
        "fzlh" => LshIndex::<2>::load(&path).map(|_| ()),
        _ => VpTree::<2>::load(&path, &L2).map(|_| ()),
    }));
    match out {
        Err(_) => panic!("{kind} load panicked on {what}"),
        Ok(r) => r,
    }
}

fn load_must_error(bytes: &[u8], kind: &str, what: &str) -> StoreError {
    match load_result(bytes, kind, what) {
        Ok(()) => panic!("{kind} load accepted {what}"),
        Err(e) => e,
    }
}

#[test]
fn truncation_at_every_byte_boundary_is_a_typed_error() {
    for kind in ["fzlh", "fzvp"] {
        let path = build_fixture("trunc", kind);
        let bytes = std::fs::read(&path).unwrap();
        assert!(load_result(&bytes, kind, "the pristine image").is_ok());
        for len in 0..bytes.len() {
            let e = load_must_error(&bytes[..len], kind, &format!("truncation to {len} bytes"));
            // Every truncation error must render (Display is part of the
            // typed contract — the CLI prints these verbatim).
            assert!(!e.to_string().is_empty());
        }
        cleanup(&path);
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    for kind in ["fzlh", "fzvp"] {
        let path = build_fixture("flip", kind);
        let bytes = std::fs::read(&path).unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[byte] ^= 1 << bit;
                load_must_error(&evil, kind, &format!("bit {bit} of byte {byte} flipped"));
            }
        }
        cleanup(&path);
    }
}

/// Rewrite the 12-byte header field region and re-checksum, so only the
/// targeted typed check can reject the image.
fn with_header(bytes: &[u8], version: u16, dims: u16) -> Vec<u8> {
    let mut out = Encoder::with_capacity(bytes.len());
    out.bytes(&bytes[..4]);
    out.u16(version);
    out.u16(dims);
    out.bytes(&bytes[8..bytes.len() - 12]);
    let sum = fnv1a(&out.as_bytes()[..bytes.len() - 12]);
    out.u64(sum);
    out.bytes(&bytes[bytes.len() - 4..]);
    out.into_bytes()
}

#[test]
fn stale_version_is_a_version_mismatch() {
    for kind in ["fzlh", "fzvp"] {
        let path = build_fixture("stale", kind);
        let bytes = std::fs::read(&path).unwrap();
        let stale = with_header(&bytes, 0, 2);
        let e = load_must_error(&stale, kind, "a stale version stamp");
        assert!(
            matches!(e, StoreError::VersionMismatch { found: 0, expected: 1 }),
            "{kind}: want VersionMismatch, got {e}"
        );
        let future = with_header(&bytes, 9, 2);
        let e = load_must_error(&future, kind, "a future version stamp");
        assert!(matches!(e, StoreError::VersionMismatch { found: 9, expected: 1 }));
        cleanup(&path);
    }
}

#[test]
fn wrong_dimension_header_is_a_dimension_mismatch() {
    for kind in ["fzlh", "fzvp"] {
        let path = build_fixture("dims", kind);
        let bytes = std::fs::read(&path).unwrap();
        for dims in [0_u16, 3, 7] {
            let evil = with_header(&bytes, 1, dims);
            let e = load_must_error(&evil, kind, "a wrong-dimension header");
            assert!(
                matches!(e, StoreError::DimensionMismatch { found, expected: 2 } if found == dims),
                "{kind}: want DimensionMismatch({dims}), got {e}"
            );
        }
        cleanup(&path);
    }
}

#[test]
fn garbage_and_degenerate_images_are_rejected() {
    for kind in ["fzlh", "fzvp"] {
        load_must_error(b"", kind, "an empty image");
        load_must_error(b"FZLH", kind, "a bare magic");
        for fill in [0x00u8, 0xFF, 0x5A] {
            load_must_error(&vec![fill; 256], kind, &format!("256 bytes of 0x{fill:02x}"));
        }
    }
}

#[test]
fn cross_format_confusion_is_rejected() {
    // Feeding one format's pristine bytes to the other loader must be a
    // typed magic error, not a decode attempt.
    let lsh_path = build_fixture("cross-l", "fzlh");
    let vp_path = build_fixture("cross-v", "fzvp");
    let lsh_bytes = std::fs::read(&lsh_path).unwrap();
    let vp_bytes = std::fs::read(&vp_path).unwrap();
    let e = load_must_error(&lsh_bytes, "fzvp", "an fzlh image");
    assert!(matches!(e, StoreError::Corrupt { .. }));
    let e = load_must_error(&vp_bytes, "fzlh", "an fzvp image");
    assert!(matches!(e, StoreError::Corrupt { .. }));
    cleanup(&lsh_path);
    cleanup(&vp_path);
}

#[test]
fn metric_mismatch_on_open_is_typed() {
    // A pristine `.fzvp` built under l2 opened under a different metric
    // name must fail by name, not by structure.
    struct FakeMetric;
    impl fuzzy_core::metric::Metric<2> for FakeMetric {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn dist(&self, a: &Point<2>, b: &Point<2>) -> f64 {
            a.dist(b)
        }
    }
    let path = build_fixture("metric", "fzvp");
    let out = catch_unwind(AssertUnwindSafe(|| VpTree::<2>::load(&path, &FakeMetric)));
    match out {
        Err(_) => panic!("load panicked on a metric mismatch"),
        Ok(Ok(_)) => panic!("load accepted a metric mismatch"),
        Ok(Err(e)) => assert!(e.to_string().contains("metric mismatch"), "got {e}"),
    }
    cleanup(&path);
}
