//! The corruption matrix for the v3 **columnar leaf pages** of the paged
//! R-tree: an index file damaged in any way — truncated at every byte
//! boundary, any single bit flipped, a stale format version — must either
//! surface as a typed [`StoreError`] or (for bytes no validator covers,
//! e.g. reserved trailer padding) leave every decoded node identical to
//! the pristine file. Never a panic, never silently different summaries.
//! Mirrors `shard_manifest_corruption.rs` at the page layer.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
use fuzzy_geom::Point;
use fuzzy_index::{paged_header_len, NodeAccess, NodeView, PagedRTree, RTreeConfig, PAGED_VERSION};
use fuzzy_store::format::fnv1a;
use fuzzy_store::StoreError;

fn summaries(n: u64) -> Vec<ObjectSummary<2>> {
    (0..n)
        .map(|i| {
            let (x, y) = ((i % 5) as f64 * 2.0, (i / 5) as f64 * 2.0);
            let obj = FuzzyObject::new(
                ObjectId(i),
                vec![Point::xy(x, y), Point::xy(x + 0.5, y + 0.25), Point::xy(x - 0.25, y)],
                vec![1.0, 0.6, 0.3],
            )
            .unwrap();
            ObjectSummary::from_object(&obj)
        })
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fzpt-v3-corrupt-{}-{name}.fzpt", std::process::id()))
}

/// Small page size keeps the whole-file bit-flip sweep tractable while
/// still yielding a multi-level tree (3-entry leaves).
const PAGE: u32 = 512;
const CFG: RTreeConfig = RTreeConfig { max_entries: 3, min_fill: 0.4 };

fn build_fixture(name: &str) -> (PathBuf, Vec<u8>) {
    let path = tmp(name);
    PagedRTree::bulk_write(summaries(12), CFG, &path, PAGE).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

/// Open the file and decode every **reachable** page (breadth-first from
/// the root), returning a digest of all node contents (ids, entry ids,
/// MBR bits) — the "did anything silently change" oracle.
fn full_scan(path: &PathBuf) -> Result<Vec<u64>, StoreError> {
    let tree = PagedRTree::<2>::open(path)?;
    let mut digest = Vec::new();
    let mut queue = vec![tree.root_id()];
    while let Some(id) = queue.pop() {
        let node = tree.read_node(id)?;
        digest.push(id.index() as u64);
        match node.view() {
            NodeView::Nodes(children) => {
                for c in children {
                    digest.push(c.id.index() as u64);
                    for d in 0..2 {
                        digest.push(c.mbr.lo(d).to_bits());
                        digest.push(c.mbr.hi(d).to_bits());
                    }
                    queue.push(c.id);
                }
            }
            NodeView::Entries(entries) => {
                for e in entries {
                    digest.push(e.id.0);
                    digest.push(e.point_count as u64);
                    for d in 0..2 {
                        digest.push(e.support_mbr.lo(d).to_bits());
                        digest.push(e.support_mbr.hi(d).to_bits());
                        digest.push(e.kernel_mbr.lo(d).to_bits());
                        digest.push(e.kernel_mbr.hi(d).to_bits());
                        digest.push(e.upper_lines[d].m.to_bits());
                        digest.push(e.upper_lines[d].t.to_bits());
                        digest.push(e.lower_lines[d].m.to_bits());
                        digest.push(e.lower_lines[d].t.to_bits());
                        digest.push(e.rep[d].to_bits());
                    }
                }
            }
        }
    }
    Ok(digest)
}

#[test]
fn truncation_at_every_byte_boundary_is_a_typed_error() {
    let (path, bytes) = build_fixture("trunc");
    assert!(full_scan(&path).is_ok(), "fixture must scan clean");
    for len in 0..bytes.len() {
        std::fs::write(&path, &bytes[..len]).unwrap();
        let out = catch_unwind(AssertUnwindSafe(|| full_scan(&path)));
        match out {
            Err(_) => panic!("scan panicked at truncation {len}"),
            Ok(Ok(_)) => panic!("scan accepted truncation to {len} bytes"),
            Ok(Err(e)) => assert!(!e.to_string().is_empty()),
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn every_single_bit_flip_errors_or_changes_nothing() {
    let (path, bytes) = build_fixture("flip");
    let pristine = full_scan(&path).unwrap();
    let mut undetected = 0usize;
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut evil = bytes.clone();
            evil[byte] ^= 1 << bit;
            std::fs::write(&path, &evil).unwrap();
            let out = catch_unwind(AssertUnwindSafe(|| full_scan(&path)));
            match out {
                Err(_) => panic!("scan panicked on bit {bit} of byte {byte}"),
                Ok(Err(_)) => {}
                Ok(Ok(scan)) => {
                    // The only acceptable decode is one indistinguishable
                    // from the pristine file (reserved/padding bytes no
                    // validator covers).
                    assert_eq!(
                        scan, pristine,
                        "bit {bit} of byte {byte} silently changed decoded contents"
                    );
                    undetected += 1;
                }
            }
        }
    }
    // Sanity: the checksums cover essentially the whole file — only a
    // handful of reserved bytes may escape detection.
    assert!(undetected <= 8 * 8, "{undetected} flipped bits decoded clean");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn stale_version_pages_are_version_mismatch() {
    let (path, bytes) = build_fixture("stale");

    // Rewrite the header version to v2 and re-seal the header checksum,
    // so the version check — not the checksum — is what fires: a v2 file
    // must not be parsed with v3 columnar-leaf expectations.
    let mut evil = bytes.clone();
    let stale = PAGED_VERSION - 1;
    evil[4..6].copy_from_slice(&stale.to_le_bytes());
    let hlen = paged_header_len(2);
    let sum = fnv1a(&evil[..hlen - 8]);
    evil[hlen - 8..hlen].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, &evil).unwrap();
    match PagedRTree::<2>::open(&path).unwrap_err() {
        StoreError::VersionMismatch { found, expected } => {
            assert_eq!(found, stale);
            assert_eq!(expected, PAGED_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn damaged_leaf_page_fails_only_that_read() {
    let (path, bytes) = build_fixture("leafonly");
    let tree_clean = PagedRTree::<2>::open(&path).unwrap();
    // Find a leaf id by walking down from the root.
    let mut leaf = tree_clean.root_id();
    loop {
        let node = tree_clean.read_node(leaf).unwrap();
        match node.view() {
            NodeView::Nodes(children) => {
                let next = children[0].id;
                drop(node);
                leaf = next;
            }
            NodeView::Entries(e) => {
                assert!(!e.is_empty(), "fixture has non-empty leaves");
                break;
            }
        }
    }
    let root = tree_clean.root_id();
    assert_ne!(leaf.index(), root.index(), "fixture must be multi-level");
    drop(tree_clean);

    // Flip a byte in the middle of that page's columnar block.
    let mut evil = bytes.clone();
    let off = paged_header_len(2) + leaf.index() as usize * PAGE as usize + PAGE as usize / 2;
    evil[off] ^= 0x10;
    std::fs::write(&path, &evil).unwrap();

    let tree = PagedRTree::<2>::open(&path).unwrap();
    let err = tree.read_node(leaf).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    // Other pages still read fine through the same handle and cache.
    assert!(tree.read_node(root).is_ok());
    std::fs::remove_file(&path).unwrap();
}
