//! The `.fzsm` corruption matrix: a manifest damaged in **any** way —
//! truncated at every byte boundary, any single bit flipped, rows
//! pointing at missing or lying shard files — must surface as a typed
//! [`StoreError`], never a panic and never a silently wrong manifest.
//! The decoder is fed every mutation through `catch_unwind` so a panic
//! shows up as its own failure, not a test abort.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
use fuzzy_geom::Point;
use fuzzy_index::{RTreeConfig, ShardManifest, ShardedIndex, StrCenterAssign};
use fuzzy_store::StoreError;

fn summary(id: u64, x: f64, y: f64) -> ObjectSummary<2> {
    let pts = vec![Point::new([x, y]), Point::new([x + 0.4, y + 0.3]), Point::new([x - 0.2, y])];
    let mus = vec![1.0, 0.6, 0.3];
    ObjectSummary::from_object(&FuzzyObject::new(ObjectId(id), pts, mus).unwrap())
}

fn grid(n: u64) -> Vec<ObjectSummary<2>> {
    (0..n).map(|i| summary(i, (i % 8) as f64 * 2.0, (i / 8) as f64 * 2.0)).collect()
}

/// A fresh directory holding a real 3-shard build over `n` objects;
/// returns the manifest path (everything lives under one removable dir).
fn build_fixture_n(tag: &str, n: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fz-fzsm-corrupt-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("ix.fzsm");
    ShardedIndex::<2>::build(
        grid(n),
        3,
        &StrCenterAssign,
        RTreeConfig { max_entries: 8, min_fill: 0.4 },
        &manifest,
        4096,
    )
    .unwrap();
    manifest
}

fn build_fixture(tag: &str) -> PathBuf {
    build_fixture_n(tag, 30)
}

fn cleanup(manifest: &Path) {
    std::fs::remove_dir_all(manifest.parent().unwrap()).ok();
}

/// Decode a mutated image; a panic is converted into a test failure
/// with the mutation's coordinates.
fn decode_must_error(bytes: &[u8], what: &str) -> StoreError {
    let out = catch_unwind(AssertUnwindSafe(|| ShardManifest::<2>::decode(bytes)));
    match out {
        Err(_) => panic!("decode panicked on {what}"),
        Ok(Ok(_)) => panic!("decode accepted {what}"),
        Ok(Err(e)) => e,
    }
}

#[test]
fn truncation_at_every_byte_boundary_is_a_typed_error() {
    let manifest = build_fixture("trunc");
    let bytes = std::fs::read(&manifest).unwrap();
    assert!(ShardManifest::<2>::decode(&bytes).is_ok(), "fixture must decode clean");

    for len in 0..bytes.len() {
        let e = decode_must_error(&bytes[..len], &format!("truncation to {len} bytes"));
        // Every truncation error must render (Display is part of the
        // typed contract — the CLI prints these verbatim).
        assert!(!e.to_string().is_empty());
    }
    cleanup(&manifest);
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let manifest = build_fixture("flip");
    let bytes = std::fs::read(&manifest).unwrap();

    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut evil = bytes.clone();
            evil[byte] ^= 1 << bit;
            decode_must_error(&evil, &format!("bit {bit} of byte {byte} flipped"));
        }
    }
    cleanup(&manifest);
}

#[test]
fn garbage_and_degenerate_images_are_rejected() {
    // Not even a header.
    decode_must_error(b"", "an empty image");
    decode_must_error(b"FZSM", "a bare magic");
    // A plausible length of uniform noise.
    for fill in [0x00u8, 0xFF, 0x5A] {
        decode_must_error(&vec![fill; 256], &format!("256 bytes of 0x{fill:02x}"));
    }
}

#[test]
fn stale_shard_paths_fail_open_not_panic() {
    let manifest = build_fixture("stale");

    // Remove one shard file: the manifest is pristine, the open must
    // fail with a typed error naming the missing file.
    let loaded = ShardManifest::<2>::load(&manifest).unwrap();
    let victim = manifest.parent().unwrap().join(&loaded.shards[1].path);
    std::fs::remove_file(&victim).unwrap();
    let out = catch_unwind(AssertUnwindSafe(|| ShardedIndex::<2>::open(&manifest)));
    match out {
        Err(_) => panic!("open panicked on a missing shard file"),
        Ok(Ok(_)) => panic!("open accepted a manifest whose shard file is gone"),
        Ok(Err(e)) => assert!(!e.to_string().is_empty()),
    }
    cleanup(&manifest);
}

#[test]
fn lying_row_counts_fail_open() {
    let manifest = build_fixture("liar");

    // Rewrite the manifest claiming one extra object in row 0. The
    // image itself is self-consistent (checksums recomputed by save),
    // so only the cross-check against the shard file can catch it.
    let mut loaded = ShardManifest::<2>::load(&manifest).unwrap();
    loaded.shards[0].objects += 1;
    loaded.save(&manifest).unwrap();
    assert!(
        ShardManifest::<2>::load(&manifest).is_ok(),
        "the lying manifest must be structurally valid — that's the point"
    );

    let out = catch_unwind(AssertUnwindSafe(|| ShardedIndex::<2>::open(&manifest)));
    match out {
        Err(_) => panic!("open panicked on a lying row count"),
        Ok(Ok(_)) => panic!("open trusted a row count the shard file contradicts"),
        Ok(Err(e)) => assert!(!e.to_string().is_empty()),
    }
    cleanup(&manifest);
}

#[test]
fn swapped_shard_files_fail_open() {
    // 31 objects over 3 shards → an 11/10/10 split, so row 0's claimed
    // count contradicts row 1's file.
    let manifest = build_fixture_n("swap", 31);

    // Point row 0 at row 1's file (a stale-path variant where the file
    // exists but belongs to another shard): counts differ → typed error.
    let mut loaded = ShardManifest::<2>::load(&manifest).unwrap();
    assert_ne!(loaded.shards[0].objects, loaded.shards[1].objects);
    let row1 = loaded.shards[1].path.clone();
    loaded.shards[0].path = row1;
    loaded.save(&manifest).unwrap();

    let out = catch_unwind(AssertUnwindSafe(|| ShardedIndex::<2>::open(&manifest)));
    match out {
        Err(_) => panic!("open panicked on a swapped shard path"),
        Ok(Ok(_)) => panic!("open accepted two rows sharing one shard file"),
        Ok(Err(e)) => assert!(!e.to_string().is_empty()),
    }
    cleanup(&manifest);
}
