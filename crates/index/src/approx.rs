//! Shared surface of the approximate candidate-generation backends.
//!
//! The exact engines answer every query from first principles; at scale
//! the interesting trade is *recall for throughput*. This module defines
//! the seam both approximate backends ([`crate::lsh`] and
//! [`crate::vptree`]) implement: a deterministic **candidate generator**
//! over per-object expected centers (the [`ObjectSummary::rep`] points the
//! store already persists), dialed by a [`RecallDial`]. Candidates are
//! *never* an answer by themselves — the query layer resolves the pool
//! through the exact probe loop, so returned distances are always exact
//! and only recall varies with the dial.
//!
//! Both backends also carry build-time **friend-of-a-friend** neighbor
//! lists (the FoF principle: a near neighbor's near neighbors are likely
//! near), which the query layer may expand for a refinement round after
//! the initial pool is resolved.

use fuzzy_core::metric::Metric;
use fuzzy_core::{ObjectId, ObjectSummary};
use fuzzy_geom::{Mbr, Point};
use fuzzy_store::format::{fnv1a, Decoder, Encoder};
use fuzzy_store::StoreError;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Above this many objects the quadratic FoF neighbor-list build is
/// skipped (lists come back empty, refinement becomes a no-op).
pub const FOF_BUILD_CAP: usize = 8192;

/// How far the approximate candidate generation reaches.
///
/// The dial trades recall for work; resolved distances are exact at every
/// position, so `Exact` is a true exact-search fallback, not a "high"
/// setting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RecallDial {
    /// Exhaustive: every indexed object enters the candidate pool, so the
    /// resolved answer equals exact AKNN (recall 1.0) at linear pool cost.
    Exact,
    /// Backend-specific budget `v ≥ 0`: LSH probes `max(1, ⌈v⌉)` buckets
    /// per table; the VP-tree keeps every visited center within
    /// `τ_c · (1 + v)` of the query (ε-slack pruning with `ε = v`).
    Budget(f64),
}

impl RecallDial {
    /// Parse a CLI dial value: `exact` or a non-negative finite number.
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("exact") {
            return Some(Self::Exact);
        }
        let v: f64 = s.parse().ok()?;
        (v.is_finite() && v >= 0.0).then_some(Self::Budget(v))
    }

    /// Stable label for bench rows and log lines.
    pub fn label(&self) -> String {
        match self {
            Self::Exact => "exact".to_string(),
            Self::Budget(v) => format!("{v}"),
        }
    }
}

/// A deterministic approximate candidate generator over expected centers.
///
/// Implementations index one immutable snapshot of per-object balls
/// (center + spread) and answer [`candidates`](Self::candidates) without
/// touching the object store; the query layer owns the exact resolution.
pub trait ApproxIndex<const D: usize> {
    /// Short backend tag (`"lsh"`, `"vptree"`) for bench rows and CLI.
    fn backend_name(&self) -> &'static str;

    /// Name of the metric the index was built under (`"l2"`, `"graph"`).
    fn metric_name(&self) -> &str;

    /// Number of indexed objects.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All indexed ids in ascending order (the `Exact` dial's pool).
    fn ids(&self) -> &[ObjectId];

    /// The indexed ball of `id`: expected center and a sound upper bound
    /// on the object's spread around it (`+∞` when the metric cannot
    /// bound boxes). `None` for ids the index does not hold.
    fn ball_of(&self, id: ObjectId) -> Option<(&Point<D>, f64)>;

    /// Build-time FoF neighbor list of `id` (empty when disabled).
    fn neighbors_of(&self, id: ObjectId) -> &[ObjectId];

    /// Append the deterministic candidate pool for a query centered at
    /// `q_center` to `out`, deduplicated and in ascending id order. `k`
    /// scales backend-internal targets; `dial` sets the reach.
    fn candidates<M: Metric<D> + ?Sized>(
        &self,
        metric: &M,
        q_center: &Point<D>,
        k: usize,
        dial: RecallDial,
        out: &mut Vec<ObjectId>,
    );
}

/// The per-object payload both backends share: id-sorted parallel arrays
/// of centers, spread bounds and FoF neighbor lists, plus the metric name
/// recorded for the open-time pairing check.
pub(crate) struct ApproxBase<const D: usize> {
    pub metric_name: String,
    /// Ascending; parallel to `centers`, `spreads`, `fof`.
    pub ids: Vec<ObjectId>,
    pub centers: Vec<Point<D>>,
    pub spreads: Vec<f64>,
    pub fof: Vec<Vec<ObjectId>>,
}

impl<const D: usize> ApproxBase<D> {
    /// Extract the id-sorted ball arrays from summaries and build the FoF
    /// lists (`fof_neighbors` nearest centers each, ties by id; skipped
    /// above [`FOF_BUILD_CAP`] objects or when `fof_neighbors == 0`).
    pub fn build<M: Metric<D> + ?Sized>(
        metric: &M,
        summaries: &[ObjectSummary<D>],
        fof_neighbors: usize,
    ) -> Self {
        let mut order: Vec<&ObjectSummary<D>> = summaries.iter().collect();
        order.sort_by_key(|s| s.id);
        let ids: Vec<ObjectId> = order.iter().map(|s| s.id).collect();
        let centers: Vec<Point<D>> = order.iter().map(|s| s.rep).collect();
        let spreads: Vec<f64> = order
            .iter()
            .map(|s| {
                let rep_box = Mbr::new(*s.rep.coords(), *s.rep.coords());
                metric.max_box_dist_sq(&rep_box, &s.support_mbr).sqrt()
            })
            .collect();
        let fof = build_fof(metric, &ids, &centers, fof_neighbors);
        Self { metric_name: metric.name().to_string(), ids, centers, spreads, fof }
    }

    /// Position of `id` in the parallel arrays.
    pub fn pos_of(&self, id: ObjectId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }
}

/// Quadratic FoF build: for every object, its `fof_neighbors` nearest
/// *other* centers under `metric`, ties broken by id.
fn build_fof<M: Metric<D> + ?Sized, const D: usize>(
    metric: &M,
    ids: &[ObjectId],
    centers: &[Point<D>],
    fof_neighbors: usize,
) -> Vec<Vec<ObjectId>> {
    let n = ids.len();
    if fof_neighbors == 0 || n > FOF_BUILD_CAP {
        return vec![Vec::new(); n];
    }
    let mut fof = Vec::with_capacity(n);
    let mut near: Vec<(f64, ObjectId)> = Vec::with_capacity(n.saturating_sub(1));
    for i in 0..n {
        near.clear();
        for j in 0..n {
            if i != j {
                near.push((metric.dist(&centers[i], &centers[j]), ids[j]));
            }
        }
        let keep = fof_neighbors.min(near.len());
        if keep > 0 && keep < near.len() {
            near.select_nth_unstable_by(keep - 1, |a, b| {
                a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1))
            });
        }
        let mut list: Vec<(f64, ObjectId)> = near[..keep].to_vec();
        list.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        fof.push(list.into_iter().map(|(_, id)| id).collect());
    }
    fof
}

/// SplitMix64 step: the deterministic seed stream both backends draw
/// their randomized structure from.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f64 in `[0, 1)` from one SplitMix64 draw.
pub(crate) fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub(crate) fn encode_base<const D: usize>(body: &mut Encoder, base: &ApproxBase<D>) {
    let name = base.metric_name.as_bytes();
    body.u32(name.len() as u32);
    body.bytes(name);
    body.u64(base.ids.len() as u64);
    for i in 0..base.ids.len() {
        body.u64(base.ids[i].0);
        for &c in base.centers[i].coords() {
            body.f64(c);
        }
        body.f64(base.spreads[i]);
    }
    for list in &base.fof {
        body.u32(list.len() as u32);
        for id in list {
            body.u64(id.0);
        }
    }
}

pub(crate) fn decode_base<const D: usize>(
    d: &mut Decoder<'_>,
) -> Result<ApproxBase<D>, StoreError> {
    let corrupt = |reason: &str| StoreError::Corrupt { reason: reason.to_string() };
    let name_len = d.u32()? as usize;
    let metric_name = std::str::from_utf8(d.bytes(name_len)?)
        .map_err(|_| corrupt("metric name is not utf-8"))?
        .to_string();
    let n = d.u64()? as usize;
    let mut ids = Vec::with_capacity(n.min(1 << 20));
    let mut centers = Vec::with_capacity(n.min(1 << 20));
    let mut spreads = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        ids.push(ObjectId(d.u64()?));
        let mut coords = [0.0_f64; D];
        for c in coords.iter_mut() {
            *c = d.f64()?;
        }
        centers.push(Point::new(coords));
        spreads.push(d.f64()?);
    }
    if !ids.windows(2).all(|w| w[0] < w[1]) {
        return Err(corrupt("approx item ids not strictly ascending"));
    }
    let mut fof = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let len = d.u32()? as usize;
        let mut list = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            let id = ObjectId(d.u64()?);
            if ids.binary_search(&id).is_err() {
                return Err(corrupt("fof neighbor id not in index"));
            }
            list.push(id);
        }
        fof.push(list);
    }
    Ok(ApproxBase { metric_name, ids, centers, spreads, fof })
}

/// Write `body` as a checksummed approx-index file: magic + version +
/// dims + reserved header, body, then `fnv1a` over **every byte before
/// the trailer** (header included, so header corruption — including the
/// reserved word — is always detected) and a trailing magic.
pub(crate) fn write_approx_file(
    path: impl AsRef<Path>,
    magic: [u8; 4],
    version: u16,
    dims: u16,
    body: &[u8],
) -> Result<(), StoreError> {
    let mut out = Encoder::with_capacity(16 + body.len() + 12);
    out.bytes(&magic);
    out.u16(version);
    out.u16(dims);
    out.u64(0); // reserved
    out.bytes(body);
    let sum = fnv1a(&out.as_bytes()[..16 + body.len()]);
    out.u64(sum);
    out.bytes(&magic);
    let mut file = fs::File::create(path)?;
    file.write_all(out.as_bytes())?;
    file.sync_all()?;
    Ok(())
}

/// Read and envelope-check an approx-index file; returns the body bytes.
/// Checks run magic → version → dims → checksum so stale-version and
/// wrong-dimension files report their typed errors even though both
/// fields are also covered by the checksum.
pub(crate) fn read_approx_file(
    path: impl AsRef<Path>,
    magic: [u8; 4],
    version: u16,
    dims: u16,
    what: &str,
) -> Result<Vec<u8>, StoreError> {
    let bytes = fs::read(path)?;
    let corrupt = |reason: String| StoreError::Corrupt { reason };
    if bytes.len() < 16 + 12 {
        return Err(corrupt(format!("{what} file shorter than header + trailer")));
    }
    if bytes[..4] != magic || bytes[bytes.len() - 4..] != magic {
        return Err(corrupt(format!("bad {what} magic")));
    }
    let mut head = Decoder::new(&bytes[4..16]);
    let found_version = head.u16()?;
    if found_version != version {
        return Err(StoreError::VersionMismatch { found: found_version, expected: version });
    }
    let found_dims = head.u16()?;
    if found_dims != dims {
        return Err(StoreError::DimensionMismatch { found: found_dims, expected: dims });
    }
    let mut tail = Decoder::new(&bytes[bytes.len() - 12..bytes.len() - 4]);
    if tail.u64()? != fnv1a(&bytes[..bytes.len() - 12]) {
        return Err(corrupt(format!("{what} checksum mismatch")));
    }
    Ok(bytes[16..bytes.len() - 12].to_vec())
}
