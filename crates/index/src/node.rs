//! Arena-based node storage and the core `RTree` type.

use crate::IndexStats;
use fuzzy_core::ObjectSummary;
use fuzzy_geom::Mbr;

/// Index of a node in the tree arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw arena index — equal to the page number in a paged index file,
    /// since serialization writes nodes in arena order.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RTreeConfig {
    /// Maximum entries/children per node (`C_max` in the paper's §5).
    pub max_entries: usize,
    /// Minimum fill fraction enforced by splits (R* uses 0.4).
    pub min_fill: f64,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self { max_entries: 64, min_fill: 0.4 }
    }
}

impl RTreeConfig {
    /// Minimum number of entries per node implied by `min_fill`.
    pub fn min_entries(&self) -> usize {
        ((self.max_entries as f64 * self.min_fill).floor() as usize).max(1)
    }
}

#[derive(Clone, Debug)]
pub(crate) enum Node<const D: usize> {
    Internal {
        mbr: Mbr<D>,
        children: Vec<NodeId>,
    },
    Leaf {
        mbr: Mbr<D>,
        entries: Vec<ObjectSummary<D>>,
    },
    /// An arena slot released by [`RTree::delete`]'s condense step, waiting
    /// on the free list for reuse by a later split. Never reachable from
    /// the root ([`RTree::validate`] enforces this).
    Free,
}

/// The MBR of a [`Node::Free`] slot — queried only by diagnostics that
/// sweep the whole arena, never by traversals.
static FREE_MBR_PANIC: &str = "free arena slot has no MBR";

impl<const D: usize> Node<D> {
    pub(crate) fn mbr(&self) -> &Mbr<D> {
        match self {
            Node::Internal { mbr, .. } | Node::Leaf { mbr, .. } => mbr,
            Node::Free => panic!("{FREE_MBR_PANIC}"),
        }
    }

    pub(crate) fn fanout(&self) -> usize {
        match self {
            Node::Internal { children, .. } => children.len(),
            Node::Leaf { entries, .. } => entries.len(),
            Node::Free => 0,
        }
    }
}

/// What lies beneath a node: either child nodes or object summaries.
#[derive(Debug)]
pub enum Children<'a, const D: usize> {
    /// Internal node: child node ids (pair each with its MBR via
    /// [`RTree::node_mbr`]).
    Nodes(&'a [NodeId]),
    /// Leaf node: the object summaries it stores.
    Entries(&'a [ObjectSummary<D>]),
}

/// The R-tree proper. Nodes live in an arena; the root is re-assigned on
/// growth and shrink. All read paths are `&self` and thread-safe; mutation
/// (`insert`/`delete`/`update`) takes `&mut self` — share mutable trees
/// across threads through `fuzzy_query`'s epoch/snapshot scheme.
#[derive(Debug)]
pub struct RTree<const D: usize> {
    pub(crate) nodes: Vec<Node<D>>,
    /// Arena slots released by `delete`, reused by the next `alloc`.
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    pub(crate) height: usize,
    pub(crate) len: usize,
    pub(crate) config: RTreeConfig,
    pub(crate) stats: IndexStats,
}

/// Cloning snapshots the tree *structure*; the node-access counters start
/// fresh in the clone (they instrument reads of one tree instance, not the
/// lineage). This is what the epoch/snapshot publisher in `fuzzy_query`
/// relies on: a writer clones the master tree and hands the frozen copy to
/// readers.
impl<const D: usize> Clone for RTree<D> {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            root: self.root,
            height: self.height,
            len: self.len,
            config: self.config,
            stats: IndexStats::default(),
        }
    }
}

impl<const D: usize> RTree<D> {
    /// An empty tree (a single empty leaf as root).
    pub fn new(config: RTreeConfig) -> Self {
        let root = Node::Leaf { mbr: Mbr::empty(), entries: Vec::new() };
        Self {
            nodes: vec![root],
            free: Vec::new(),
            root: NodeId(0),
            height: 1,
            len: 0,
            config,
            stats: IndexStats::default(),
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The configuration in force.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// Root node id.
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// MBR of a node (free — reading a parent's child pointers already
    /// loaded these, matching the paper's I/O model where an index node
    /// stores its children's rectangles).
    pub fn node_mbr(&self, id: NodeId) -> &Mbr<D> {
        self.nodes[id.0 as usize].mbr()
    }

    /// Expand a node, returning what is beneath it. Counts **one node
    /// access** — this is the instrumentation point for all traversals.
    pub fn expand(&self, id: NodeId) -> Children<'_, D> {
        self.stats.record_node_access();
        match &self.nodes[id.0 as usize] {
            Node::Internal { children, .. } => Children::Nodes(children),
            Node::Leaf { entries, .. } => Children::Entries(entries),
            Node::Free => unreachable!("expand of a freed node {}", id.0),
        }
    }

    /// Node-access counters.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Number of arena slots (live internal + leaf nodes plus freed slots
    /// awaiting reuse) — also the page count of a [`crate::PagedRTree`]
    /// serialization of this tree, which writes freed slots as empty,
    /// unreferenced pages to keep node ids equal to page numbers.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live leaf nodes (diagnostics and the §5 cost model's
    /// `C_avg`).
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Average leaf fill `C_avg = C_max · U_avg` used by Equation 7/8.
    pub fn avg_leaf_fill(&self) -> f64 {
        let leaves = self.leaf_count();
        if leaves == 0 {
            0.0
        } else {
            self.len as f64 / leaves as f64
        }
    }

    /// Iterate over all stored summaries (test/diagnostic use; does not
    /// count node accesses).
    pub fn iter_entries(&self) -> impl Iterator<Item = &ObjectSummary<D>> + '_ {
        self.nodes.iter().flat_map(|n| match n {
            Node::Leaf { entries, .. } => entries.as_slice().iter(),
            Node::Internal { .. } | Node::Free => [].iter(),
        })
    }

    /// Is `id` stored in some leaf? Linear in the number of leaves (the
    /// tree has no id directory); used by the id-safe mutation API.
    pub fn contains_id(&self, id: fuzzy_core::ObjectId) -> bool {
        self.iter_entries().any(|e| e.id == id)
    }

    pub(crate) fn alloc(&mut self, node: Node<D>) -> NodeId {
        if let Some(id) = self.free.pop() {
            debug_assert!(matches!(self.nodes[id.0 as usize], Node::Free));
            self.nodes[id.0 as usize] = node;
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Release one arena slot onto the free list. The caller must have
    /// already unlinked it from its parent.
    pub(crate) fn dealloc(&mut self, id: NodeId) {
        debug_assert!(!matches!(self.nodes[id.0 as usize], Node::Free), "double free");
        self.nodes[id.0 as usize] = Node::Free;
        self.free.push(id);
    }

    /// Recompute `node`'s MBR as the tight union of what it actually holds
    /// (child rectangles or entry support MBRs). Mutation paths call this
    /// bottom-up so the [`crate::validate`] tight-MBR invariant holds after
    /// every insert/delete.
    pub(crate) fn recompute_mbr(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        let tight = match &self.nodes[idx] {
            Node::Internal { children, .. } => children
                .iter()
                .fold(Mbr::empty(), |acc, &c| acc.union(self.nodes[c.0 as usize].mbr())),
            Node::Leaf { entries, .. } => {
                entries.iter().fold(Mbr::empty(), |acc, e| acc.union(&e.support_mbr))
            }
            Node::Free => return,
        };
        match &mut self.nodes[idx] {
            Node::Internal { mbr, .. } | Node::Leaf { mbr, .. } => *mbr = tight,
            Node::Free => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_shape() {
        let t: RTree<2> = RTree::new(RTreeConfig::default());
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(matches!(t.expand(t.root_id()), Children::Entries(e) if e.is_empty()));
        assert_eq!(t.stats().node_accesses(), 1);
        t.stats().reset();
        assert_eq!(t.stats().node_accesses(), 0);
    }

    #[test]
    fn config_min_entries() {
        let c = RTreeConfig { max_entries: 10, min_fill: 0.4 };
        assert_eq!(c.min_entries(), 4);
        let tiny = RTreeConfig { max_entries: 2, min_fill: 0.1 };
        assert_eq!(tiny.min_entries(), 1);
    }
}
