//! The [`MutableIndex`] abstraction: one mutation interface over every
//! backend that supports dynamic maintenance.
//!
//! [`crate::NodeAccess`] unifies the *read* side of the in-memory
//! [`RTree`] and the disk-resident [`crate::PagedRTree`]; `MutableIndex`
//! does the same for the *write* side — implemented by [`RTree`] (direct
//! tree surgery) and by [`crate::OverlayRTree`] (a delta overlay over an
//! immutable index file). `fuzzy_query`'s epoch engine is generic over
//! this trait, so one writer API serves both deployments.
//!
//! All three operations are **id-safe**: inserting an id that is already
//! live reports `Ok(false)` instead of corrupting the index with a
//! duplicate, and deleting an unknown id reports `Ok(false)` instead of
//! failing. The `Result` is for backends whose duplicate check reads a
//! backing medium (the overlay consults the base file's id set).

use crate::access::NodeAccess;
use crate::node::RTree;
use fuzzy_core::{ObjectId, ObjectSummary};
use fuzzy_store::StoreError;

/// Uniform dynamic-maintenance interface over mutable index backends.
pub trait MutableIndex<const D: usize>: NodeAccess<D> {
    /// Insert `entry` unless its id is already live. Returns `Ok(true)`
    /// when the entry was inserted, `Ok(false)` on a duplicate id.
    fn insert_summary(&mut self, entry: ObjectSummary<D>) -> Result<bool, StoreError>;

    /// Delete the entry with `id`. Returns `Ok(true)` when it existed.
    fn delete_id(&mut self, id: ObjectId) -> Result<bool, StoreError>;

    /// Replace the summary of `entry.id` (or plain-insert an unknown id).
    /// Returns `Ok(true)` when an existing entry was replaced.
    fn update_summary(&mut self, entry: ObjectSummary<D>) -> Result<bool, StoreError> {
        let existed = self.delete_id(entry.id)?;
        let inserted = self.insert_summary(entry)?;
        debug_assert!(inserted, "id was just deleted, insert cannot collide");
        Ok(existed)
    }
}

impl<const D: usize> MutableIndex<D> for RTree<D> {
    fn insert_summary(&mut self, entry: ObjectSummary<D>) -> Result<bool, StoreError> {
        if self.contains_id(entry.id) {
            return Ok(false);
        }
        self.insert(entry);
        Ok(true)
    }

    fn delete_id(&mut self, id: ObjectId) -> Result<bool, StoreError> {
        Ok(self.delete(id))
    }
}
