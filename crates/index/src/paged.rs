//! A disk-resident, paged R-tree: `PagedRTree`.
//!
//! The in-memory [`RTree`] caps datasets by RAM and only *simulates* I/O
//! through its node-access counter. `PagedRTree` stores the same tree in a
//! single index file of fixed-size pages — one node per page, each
//! checksummed — and reads it back through an LRU buffer pool
//! ([`fuzzy_store::PageCache`]), so node accesses are real positioned
//! reads and the per-query disk/cache split is measured, not simulated.
//!
//! The byte-level layout (normative spec: `docs/FORMAT.md`):
//!
//! ```text
//! [ header     ] magic "FZPT" | version | dims | page size | tree shape
//!                | root MBR | FNV-1a checksum
//! [ node pages ] page i = node i: kind u8, count u32, payload
//!                (internal: child id + child MBR per entry; leaf: a
//!                **columnar summary block** — ids, point counts, then one
//!                contiguous f64 column per summary field), zero padding,
//!                trailing FNV-1a checksum
//! [ page table ] count + one u64 byte offset per page + FNV-1a checksum
//! [ trailer    ] page-table offset | page count | magic "FZPT"
//! ```
//!
//! Leaf pages are decoded **once** when they enter the buffer pool; every
//! subsequent probe borrows the decoded entries straight from the cached
//! page (`Arc`-guarded [`NodeRead`]) — no per-read record decoding.
//!
//! Writing goes through [`PagedRTree::bulk_write`], which reuses the STR
//! packing of [`RTree::bulk_load`] (`crates/index/src/bulk.rs`) and dumps
//! the arena page by page: node ids equal page numbers, so the two
//! backends share tree *structure* exactly — the foundation of the
//! byte-identical-answers guarantee tested in
//! `crates/query/tests/batch_determinism.rs`.

use crate::access::{ChildRef, DecodedNode, NodeAccess, NodeRead};
use crate::node::{Node, NodeId, RTree, RTreeConfig};
use fuzzy_core::ObjectSummary;
use fuzzy_geom::Mbr;
use fuzzy_store::format::{fnv1a, Decoder, Encoder};
use fuzzy_store::pagecache::{PageCache, PageCacheStats};
use fuzzy_store::StoreError;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Index-file magic ("FuZzy Paged Tree").
pub const PAGED_MAGIC: [u8; 4] = *b"FZPT";
/// Index-file format version understood by this build. Version 3 switched
/// leaf pages from per-entry summary records to a columnar block layout
/// (`encode_leaf_entries`): one contiguous column per summary field, so
/// a page decode is a handful of sequential column sweeps instead of an
/// interleaved field-by-field walk, and the buffer pool caches the decoded
/// entries for zero-copy borrowing by every later probe.
pub const PAGED_VERSION: u16 = 3;
/// Trailer length in bytes: page-table offset, page count, reserved, magic.
pub const PAGED_TRAILER_LEN: usize = 8 + 8 + 4 + 4;
/// Per-page overhead: kind byte, 3 reserved bytes, entry count, checksum.
pub const PAGE_OVERHEAD: usize = 8 + 8;
/// Default page size (holds a 64-entry 2-D leaf with room to spare).
pub const DEFAULT_PAGE_SIZE: u32 = 16 * 1024;
/// Smallest accepted page size.
pub const MIN_PAGE_SIZE: u32 = 256;
/// Default buffer-pool capacity in pages.
pub const DEFAULT_CACHE_PAGES: usize = 1024;

/// Fixed-size part of the header, before the root MBR.
const HEADER_FIXED_LEN: usize = 4 + 2 + 2 + 4 + 4 + 8 + 8 + 8 + 8 + 8;

/// Total header length for dimensionality `d` (fixed fields, `2·d` f64
/// root-MBR bounds, FNV-1a checksum).
pub const fn paged_header_len(d: usize) -> usize {
    HEADER_FIXED_LEN + 16 * d + 8
}

fn corrupt(reason: impl Into<String>) -> StoreError {
    StoreError::Corrupt { reason: reason.into() }
}

/// Per-entry cost of the columnar leaf block: id (u64), point count (u32)
/// and `9·D` f64 column cells (support lo/hi, kernel lo/hi, upper and
/// lower conservative-line `m`/`t`, rep coordinate — per dimension).
pub const fn leaf_entry_len(d: usize) -> usize {
    8 + 4 + 9 * d * 8
}

/// Largest payload any node of this tree can need, in bytes.
fn max_node_payload<const D: usize>(max_entries: usize) -> usize {
    let internal = max_entries * (8 + 16 * D);
    let leaf = max_entries * leaf_entry_len(D);
    internal.max(leaf)
}

/// Encode `entries` as the v3 columnar leaf block: all ids, all point
/// counts, then one contiguous `n×f64` column per summary field in a fixed
/// order (normative spec: `docs/FORMAT.md`). Grouping by field turns the
/// decode into sequential column sweeps and keeps equal-typed values
/// adjacent on disk.
fn encode_leaf_entries<const D: usize>(page: &mut Encoder, entries: &[ObjectSummary<D>]) {
    for e in entries {
        page.u64(e.id.0);
    }
    for e in entries {
        page.u32(e.point_count);
    }
    for d in 0..D {
        for e in entries {
            page.f64(e.support_mbr.lo(d));
        }
        for e in entries {
            page.f64(e.support_mbr.hi(d));
        }
    }
    for d in 0..D {
        for e in entries {
            page.f64(e.kernel_mbr.lo(d));
        }
        for e in entries {
            page.f64(e.kernel_mbr.hi(d));
        }
    }
    for d in 0..D {
        for e in entries {
            page.f64(e.upper_lines[d].m);
        }
        for e in entries {
            page.f64(e.upper_lines[d].t);
        }
    }
    for d in 0..D {
        for e in entries {
            page.f64(e.lower_lines[d].m);
        }
        for e in entries {
            page.f64(e.lower_lines[d].t);
        }
    }
    for d in 0..D {
        for e in entries {
            page.f64(e.rep[d]);
        }
    }
}

/// Decode a v3 columnar leaf block of `count` entries (inverse of
/// [`encode_leaf_entries`]); MBR columns are validated the same way
/// [`decode_mbr`] validates internal-node rectangles.
fn decode_leaf_entries<const D: usize>(
    d: &mut Decoder<'_>,
    count: usize,
) -> Result<Vec<ObjectSummary<D>>, StoreError> {
    use fuzzy_geom::{ConservativeLine, Point};
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        ids.push(fuzzy_core::ObjectId(d.u64()?));
    }
    let mut counts = Vec::with_capacity(count);
    for _ in 0..count {
        counts.push(d.u32()?);
    }
    let mut column = |d: &mut Decoder<'_>| -> Result<Vec<f64>, StoreError> {
        let mut col = Vec::with_capacity(count);
        for _ in 0..count {
            col.push(d.f64()?);
        }
        Ok(col)
    };
    let read_mbr_cols =
        |d: &mut Decoder<'_>,
         column: &mut dyn FnMut(&mut Decoder<'_>) -> Result<Vec<f64>, StoreError>|
         -> Result<Vec<Mbr<D>>, StoreError> {
            let mut lo = Vec::with_capacity(D);
            let mut hi = Vec::with_capacity(D);
            for _ in 0..D {
                lo.push(column(d)?);
                hi.push(column(d)?);
            }
            (0..count)
                .map(|j| {
                    let mut l = [0.0; D];
                    let mut h = [0.0; D];
                    for dim in 0..D {
                        l[dim] = lo[dim][j];
                        h[dim] = hi[dim][j];
                    }
                    if (0..D).all(|i| l[i] <= h[i]) {
                        Ok(Mbr::new(l, h))
                    } else {
                        Err(corrupt("inverted MBR in leaf summary block"))
                    }
                })
                .collect()
        };
    let support = read_mbr_cols(d, &mut column)?;
    let kernel = read_mbr_cols(d, &mut column)?;
    let read_lines = |d: &mut Decoder<'_>| -> Result<Vec<[ConservativeLine; D]>, StoreError> {
        let mut cols = Vec::with_capacity(D);
        for _ in 0..D {
            cols.push((column(d)?, column(d)?));
        }
        Ok((0..count)
            .map(|j| {
                let mut lines = [ConservativeLine::ZERO; D];
                for (dim, (m, t)) in cols.iter().enumerate() {
                    lines[dim] = ConservativeLine { m: m[j], t: t[j] };
                }
                lines
            })
            .collect())
    };
    let upper = read_lines(d)?;
    let lower = read_lines(d)?;
    let mut rep_cols = Vec::with_capacity(D);
    for _ in 0..D {
        rep_cols.push(column(d)?);
    }
    Ok((0..count)
        .map(|j| {
            let mut rep = [0.0; D];
            for dim in 0..D {
                rep[dim] = rep_cols[dim][j];
            }
            ObjectSummary {
                id: ids[j],
                support_mbr: support[j],
                kernel_mbr: kernel[j],
                upper_lines: upper[j],
                lower_lines: lower[j],
                rep: Point::new(rep),
                point_count: counts[j],
            }
        })
        .collect())
}

/// Encode an MBR as `D × (lo, hi)` f64 pairs.
fn encode_mbr<const D: usize>(e: &mut Encoder, mbr: &Mbr<D>) {
    for i in 0..D {
        e.f64(mbr.lo(i));
        e.f64(mbr.hi(i));
    }
}

/// Decode an MBR; the all-inverted sentinel decodes as [`Mbr::empty`]
/// (only the root of an empty tree legitimately stores it).
fn decode_mbr<const D: usize>(d: &mut Decoder<'_>) -> Result<Mbr<D>, StoreError> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for i in 0..D {
        lo[i] = d.f64()?;
        hi[i] = d.f64()?;
    }
    if (0..D).all(|i| lo[i] <= hi[i]) {
        Ok(Mbr::new(lo, hi))
    } else if (0..D).all(|i| lo[i] == f64::INFINITY && hi[i] == f64::NEG_INFINITY) {
        Ok(Mbr::empty())
    } else {
        Err(corrupt("inverted MBR in node page"))
    }
}

/// The disk-resident R-tree. All read paths are `&self` and thread-safe:
/// pages are fetched with positioned reads and shared through the buffer
/// pool, exactly like [`fuzzy_store::FileStore`] probes objects.
///
/// ```
/// use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
/// use fuzzy_geom::Point;
/// use fuzzy_index::{NodeAccess, PagedRTree, RTreeConfig};
///
/// let summaries: Vec<ObjectSummary<2>> = (0..100)
///     .map(|i| {
///         let (x, y) = ((i % 10) as f64, (i / 10) as f64);
///         let obj = FuzzyObject::new(
///             ObjectId(i),
///             vec![Point::xy(x, y), Point::xy(x + 0.4, y + 0.4)],
///             vec![1.0, 0.5],
///         )
///         .unwrap();
///         ObjectSummary::from_object(&obj)
///     })
///     .collect();
///
/// let path = std::env::temp_dir().join(format!("fzpt-doc-{}.fzpt", std::process::id()));
/// // Build with STR packing and persist; returns the opened tree.
/// let cfg = RTreeConfig { max_entries: 16, min_fill: 0.4 };
/// let tree = PagedRTree::bulk_write(summaries, cfg, &path, 4096).unwrap();
/// assert_eq!(tree.len(), 100);
/// assert!(tree.height() >= 2);
///
/// // Every node read goes through the buffer pool and reports provenance.
/// let root = tree.read_node(tree.root_id()).unwrap();
/// assert!(root.disk_read); // cold pool: first read hits the file
/// assert!(!tree.read_node(tree.root_id()).unwrap().disk_read); // now cached
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub struct PagedRTree<const D: usize> {
    file: File,
    path: PathBuf,
    page_size: u32,
    page_offsets: Vec<u64>,
    root: NodeId,
    root_mbr: Mbr<D>,
    height: usize,
    len: usize,
    config: RTreeConfig,
    cache: PageCache<DecodedNode<D>>,
}

impl<const D: usize> PagedRTree<D> {
    /// Bulk-load `entries` with STR packing ([`RTree::bulk_load`]), write
    /// the result to `path` and open it. `page_size` must fit the largest
    /// node implied by `config.max_entries` ([`StoreError::PageOverflow`]
    /// otherwise).
    pub fn bulk_write(
        entries: Vec<ObjectSummary<D>>,
        config: RTreeConfig,
        path: impl AsRef<Path>,
        page_size: u32,
    ) -> Result<Self, StoreError> {
        let tree = RTree::bulk_load(entries, config);
        Self::write_tree(&tree, &path, page_size)?;
        Self::open(path)
    }

    /// Serialize an existing in-memory tree to `path` (any tree works,
    /// including insert-built ones). Node ids become page numbers.
    pub fn write_tree(
        tree: &RTree<D>,
        path: impl AsRef<Path>,
        page_size: u32,
    ) -> Result<(), StoreError> {
        if page_size < MIN_PAGE_SIZE {
            return Err(corrupt(format!("page size {page_size} below minimum {MIN_PAGE_SIZE}")));
        }
        let needed = (max_node_payload::<D>(tree.config().max_entries) + PAGE_OVERHEAD) as u64;
        if needed > page_size as u64 {
            return Err(StoreError::PageOverflow { needed, page_size });
        }

        let file = File::create(path.as_ref())?;
        let mut out = BufWriter::new(file);

        // Header.
        let mut header = Encoder::with_capacity(paged_header_len(D));
        header.bytes(&PAGED_MAGIC);
        header.u16(PAGED_VERSION);
        header.u16(D as u16);
        header.u32(page_size);
        header.u32(tree.config().max_entries as u32);
        header.u64(tree.node_count() as u64);
        header.u64(tree.root_id().0 as u64);
        header.u64(tree.height() as u64);
        header.u64(tree.len() as u64);
        header.f64(tree.config().min_fill);
        encode_mbr(&mut header, tree.node_mbr(tree.root_id()));
        let sum = fnv1a(header.as_bytes());
        header.u64(sum);
        debug_assert_eq!(header.len(), paged_header_len(D));
        out.write_all(header.as_bytes())?;

        // Node pages, arena order (node id == page number).
        let mut offsets = Vec::with_capacity(tree.node_count());
        let mut offset = paged_header_len(D) as u64;
        for node in &tree.nodes {
            let mut page = Encoder::with_capacity(page_size as usize);
            match node {
                Node::Internal { children, .. } => {
                    page.bytes(&[1, 0, 0, 0]);
                    page.u32(children.len() as u32);
                    for &child in children {
                        page.u64(child.0 as u64);
                        encode_mbr(&mut page, tree.node_mbr(child));
                    }
                }
                Node::Leaf { entries, .. } => {
                    page.bytes(&[0, 0, 0, 0]);
                    page.u32(entries.len() as u32);
                    encode_leaf_entries(&mut page, entries);
                }
                // Freed arena slots keep node id == page number; they are
                // unreferenced, so an empty leaf page is never read back.
                Node::Free => {
                    page.bytes(&[0, 0, 0, 0]);
                    page.u32(0);
                }
            }
            if page.len() + 8 > page_size as usize {
                return Err(StoreError::PageOverflow {
                    needed: (page.len() + 8) as u64,
                    page_size,
                });
            }
            page.bytes(&vec![0u8; page_size as usize - 8 - page.len()]);
            let sum = fnv1a(page.as_bytes());
            page.u64(sum);
            out.write_all(page.as_bytes())?;
            offsets.push(offset);
            offset += page_size as u64;
        }

        // Page table + trailer.
        let table_off = offset;
        let mut tail = Encoder::with_capacity(8 + offsets.len() * 8 + 8 + PAGED_TRAILER_LEN);
        tail.u64(offsets.len() as u64);
        for &o in &offsets {
            tail.u64(o);
        }
        let sum = fnv1a(tail.as_bytes());
        tail.u64(sum);
        tail.u64(table_off);
        tail.u64(offsets.len() as u64);
        tail.u32(0); // reserved
        tail.bytes(&PAGED_MAGIC);
        out.write_all(tail.as_bytes())?;
        out.flush()?;
        Ok(())
    }

    /// Open an index file with the default buffer-pool capacity
    /// ([`DEFAULT_CACHE_PAGES`]).
    ///
    /// ```no_run
    /// use fuzzy_index::{NodeAccess, PagedRTree};
    ///
    /// let tree: PagedRTree<2> = PagedRTree::open("dataset.fzpt").unwrap();
    /// println!("{} objects, height {}", tree.len(), tree.height());
    /// ```
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with_cache(path, DEFAULT_CACHE_PAGES)
    }

    /// Open an index file with an explicit buffer-pool capacity in pages
    /// (minimum 1 — capacity 1 still answers every query, it just reads
    /// every node from disk).
    pub fn open_with_cache(path: impl AsRef<Path>, cache_pages: usize) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let total = file.metadata()?.len();
        let header_len = paged_header_len(D);
        if total < (header_len + PAGED_TRAILER_LEN) as u64 {
            return Err(corrupt("file shorter than header + trailer"));
        }

        // Header.
        let mut head = vec![0u8; header_len];
        file.read_exact_at(&mut head, 0)?;
        if head[..4] != PAGED_MAGIC {
            return Err(corrupt("bad magic in index header"));
        }
        let (payload, sum_bytes) = head.split_at(header_len - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        let mut d = Decoder::new(&payload[4..]);
        let version = d.u16()?;
        if version != PAGED_VERSION {
            return Err(StoreError::VersionMismatch { found: version, expected: PAGED_VERSION });
        }
        let dims = d.u16()?;
        if dims as usize != D {
            return Err(StoreError::DimensionMismatch { found: dims, expected: D as u16 });
        }
        if stored != fnv1a(payload) {
            return Err(corrupt("index header checksum mismatch"));
        }
        let page_size = d.u32()?;
        let max_entries = d.u32()? as usize;
        let page_count = d.u64()?;
        let root_page = d.u64()?;
        let height = d.u64()? as usize;
        let len = d.u64()? as usize;
        let min_fill = d.f64()?;
        let root_mbr = decode_mbr::<D>(&mut d)?;
        if page_size < MIN_PAGE_SIZE || page_count == 0 || page_count > u32::MAX as u64 {
            return Err(corrupt(format!(
                "implausible geometry: page size {page_size}, {page_count} pages"
            )));
        }
        if root_page >= page_count || height == 0 || max_entries == 0 {
            return Err(corrupt(format!(
                "implausible tree shape: root page {root_page} of {page_count}, height {height}"
            )));
        }

        // Trailer.
        let mut tail = [0u8; PAGED_TRAILER_LEN];
        file.read_exact_at(&mut tail, total - PAGED_TRAILER_LEN as u64)?;
        if tail[PAGED_TRAILER_LEN - 4..] != PAGED_MAGIC {
            return Err(corrupt("bad magic in index trailer"));
        }
        let mut t = Decoder::new(&tail);
        let table_off = t.u64()?;
        let trailer_count = t.u64()?;
        if trailer_count != page_count {
            return Err(corrupt(format!(
                "trailer says {trailer_count} pages, header says {page_count}"
            )));
        }
        let table_len = 8 + page_count as usize * 8 + 8;
        // Checked arithmetic: a bit-rotted table_off near u64::MAX must
        // surface as Corrupt, not as a debug-build overflow panic.
        let table_end = table_off
            .checked_add(table_len as u64)
            .and_then(|v| v.checked_add(PAGED_TRAILER_LEN as u64));
        if table_off < header_len as u64 || table_end != Some(total) {
            return Err(corrupt("page table offset inconsistent with file size"));
        }

        // Page table.
        let mut table = vec![0u8; table_len];
        file.read_exact_at(&mut table, table_off)?;
        let (payload, sum_bytes) = table.split_at(table_len - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        if stored != fnv1a(payload) {
            return Err(corrupt("page table checksum mismatch"));
        }
        let mut pt = Decoder::new(payload);
        let count = pt.u64()?;
        if count != page_count {
            return Err(corrupt(format!("page table lists {count} pages, expected {page_count}")));
        }
        let mut page_offsets = Vec::with_capacity(page_count as usize);
        for i in 0..page_count {
            let off = pt.u64()?;
            let in_bounds = off >= header_len as u64
                && off.checked_add(page_size as u64).is_some_and(|end| end <= table_off);
            if !in_bounds {
                return Err(corrupt(format!("page {i} offset {off} outside the page region")));
            }
            page_offsets.push(off);
        }

        Ok(Self {
            file,
            path,
            page_size,
            page_offsets,
            root: NodeId(root_page as u32),
            root_mbr,
            height,
            len,
            config: RTreeConfig { max_entries, min_fill },
            cache: PageCache::new(cache_pages),
        })
    }

    /// Read and decode one page from disk (bypasses the buffer pool).
    fn load_page(&self, id: NodeId) -> Result<DecodedNode<D>, StoreError> {
        let offset = self.page_offsets[id.0 as usize];
        let mut buf = vec![0u8; self.page_size as usize];
        self.file.read_exact_at(&mut buf, offset)?;
        let (payload, sum_bytes) = buf.split_at(self.page_size as usize - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        if stored != fnv1a(payload) {
            return Err(corrupt(format!("page {} checksum mismatch", id.0)));
        }
        let mut d = Decoder::new(payload);
        let kind = d.bytes(4)?[0];
        let count = d.u32()? as usize;
        if count > self.config.max_entries {
            return Err(corrupt(format!(
                "page {} declares {count} entries, node capacity is {}",
                id.0, self.config.max_entries
            )));
        }
        match kind {
            1 => {
                let mut children = Vec::with_capacity(count);
                for _ in 0..count {
                    let child = d.u64()?;
                    if child >= self.page_offsets.len() as u64 {
                        return Err(corrupt(format!(
                            "page {} references child page {child} of {}",
                            id.0,
                            self.page_offsets.len()
                        )));
                    }
                    let mbr = decode_mbr::<D>(&mut d)?;
                    children.push(ChildRef { id: NodeId(child as u32), mbr });
                }
                Ok(DecodedNode::Internal(children))
            }
            0 => Ok(DecodedNode::Leaf(decode_leaf_entries::<D>(&mut d, count)?)),
            other => Err(corrupt(format!("page {} has unknown node kind {other}", id.0))),
        }
    }

    /// Path of the backing index file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Number of node pages in the file.
    pub fn page_count(&self) -> usize {
        self.page_offsets.len()
    }

    /// The tree configuration recorded at write time.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// Buffer-pool hit/miss/eviction counters.
    pub fn cache_stats(&self) -> PageCacheStats {
        self.cache.stats()
    }

    /// Zero the buffer-pool counters (resident pages stay).
    pub fn reset_cache_stats(&self) {
        self.cache.reset_stats();
    }

    /// Drop every resident page, forcing subsequent reads cold.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

impl<const D: usize> NodeAccess<D> for PagedRTree<D> {
    fn root_id(&self) -> NodeId {
        self.root
    }

    fn root_mbr(&self) -> Mbr<D> {
        self.root_mbr
    }

    fn read_node(&self, id: NodeId) -> Result<NodeRead<'_, D>, StoreError> {
        if id.0 as usize >= self.page_offsets.len() {
            return Err(corrupt(format!(
                "node {} out of range ({} pages)",
                id.0,
                self.page_offsets.len()
            )));
        }
        let page = self.cache.get_or_load(id.0 as u64, || self.load_page(id))?;
        Ok(NodeRead::from_page(page.value, page.disk_read))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn height(&self) -> usize {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access;
    use fuzzy_core::{FuzzyObject, ObjectId};
    use fuzzy_geom::Point;

    fn grid_summaries(n: usize) -> Vec<ObjectSummary<2>> {
        (0..n)
            .map(|i| {
                let x = (i % 40) as f64 * 1.5;
                let y = (i / 40) as f64 * 1.5;
                let obj = FuzzyObject::new(
                    ObjectId(i as u64),
                    vec![Point::xy(x, y), Point::xy(x + 0.5, y + 0.5)],
                    vec![1.0, 0.5],
                )
                .unwrap();
                ObjectSummary::from_object(&obj)
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fzpt-test-{}-{name}.fzpt", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_shape_and_entries() {
        let path = tmp("roundtrip");
        let cfg = RTreeConfig { max_entries: 16, min_fill: 0.4 };
        let mem = RTree::bulk_load(grid_summaries(500), cfg);
        let paged = PagedRTree::bulk_write(grid_summaries(500), cfg, &path, 4096).unwrap();
        assert_eq!(NodeAccess::len(&paged), 500);
        assert_eq!(NodeAccess::height(&paged), mem.height());
        assert_eq!(paged.page_count(), mem.node_count());
        assert_eq!(NodeAccess::root_id(&paged), mem.root_id());
        assert_eq!(paged.root_mbr(), *mem.node_mbr(mem.root_id()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn generic_searches_agree_across_backends() {
        let path = tmp("agree");
        let cfg = RTreeConfig { max_entries: 8, min_fill: 0.4 };
        let mem = RTree::bulk_load(grid_summaries(300), cfg);
        let paged = PagedRTree::bulk_write(grid_summaries(300), cfg, &path, 4096).unwrap();
        let q = Point::xy(17.0, 4.0);
        for k in [1usize, 7, 40] {
            let a = access::knn_by(
                &mem,
                k,
                |m| m.min_dist_point(&q),
                |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&q),
            )
            .unwrap();
            let b = access::knn_by(
                &paged,
                k,
                |m| m.min_dist_point(&q),
                |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&q),
            )
            .unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.entry.id, y.entry.id, "k={k}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "k={k}");
            }
        }
        for radius in [0.0, 5.0, 100.0] {
            let a = access::range_search(
                &mem,
                radius,
                |m| m.min_dist_point(&q),
                |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&q),
            )
            .unwrap();
            let b = access::range_search(
                &paged,
                radius,
                |m| m.min_dist_point(&q),
                |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&q),
            )
            .unwrap();
            assert_eq!(a.hits.len(), b.hits.len(), "radius {radius}");
            assert_eq!(a.node_accesses, b.node_accesses, "same logical I/O");
            assert_eq!(a.node_disk_reads, 0, "arena never reads disk");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn buffer_pool_accounting_cold_then_warm() {
        let path = tmp("coldwarm");
        let cfg = RTreeConfig { max_entries: 8, min_fill: 0.4 };
        let paged = PagedRTree::bulk_write(grid_summaries(300), cfg, &path, 4096).unwrap();
        let q = Point::xy(3.0, 3.0);
        let search = || {
            access::range_search(
                &paged,
                8.0,
                |m| m.min_dist_point(&q),
                |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&q),
            )
            .unwrap()
        };
        let cold = search();
        assert!(cold.node_disk_reads > 0, "cold pool must read pages");
        assert_eq!(cold.node_disk_reads, cold.node_accesses, "everything cold");
        let warm = search();
        assert_eq!(warm.node_accesses, cold.node_accesses);
        assert_eq!(warm.node_disk_reads, 0, "warm pool serves everything");
        paged.clear_cache();
        let recold = search();
        assert_eq!(recold.node_disk_reads, cold.node_disk_reads);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn capacity_one_pool_answers_correctly() {
        let path = tmp("cap1");
        let cfg = RTreeConfig { max_entries: 8, min_fill: 0.4 };
        {
            let tree = RTree::bulk_load(grid_summaries(300), cfg);
            PagedRTree::write_tree(&tree, &path, 4096).unwrap();
        }
        let paged: PagedRTree<2> = PagedRTree::open_with_cache(&path, 1).unwrap();
        let q = Point::xy(11.0, 7.0);
        let hits = access::knn_by(
            &paged,
            10,
            |m| m.min_dist_point(&q),
            |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&q),
        )
        .unwrap();
        assert_eq!(hits.len(), 10);
        // Oracle: same query on the in-memory tree.
        let mem = RTree::bulk_load(grid_summaries(300), cfg);
        let want = mem.knn_by(10, |m| m.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q));
        for (a, b) in hits.iter().zip(&want) {
            assert_eq!(a.entry.id, b.entry.id);
        }
        let stats = paged.cache_stats();
        assert!(stats.evictions > 0, "capacity 1 must evict");
        assert!(stats.misses > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_tree_roundtrips() {
        let path = tmp("empty");
        let paged =
            PagedRTree::bulk_write(Vec::new(), RTreeConfig::default(), &path, 16 * 1024).unwrap();
        assert!(NodeAccess::is_empty(&paged));
        assert_eq!(NodeAccess::height(&paged), 1);
        assert!(paged.root_mbr().is_empty());
        let hits = access::knn_by(
            &paged,
            3,
            |m| m.min_dist_point(&Point::xy(0.0, 0.0)),
            |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&Point::xy(0.0, 0.0)),
        )
        .unwrap();
        assert!(hits.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn page_overflow_is_a_typed_error() {
        let path = tmp("overflow");
        let cfg = RTreeConfig { max_entries: 64, min_fill: 0.4 };
        let err = PagedRTree::bulk_write(grid_summaries(100), cfg, &path, 4096).unwrap_err();
        assert!(matches!(err, StoreError::PageOverflow { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected_not_panicking() {
        let path = tmp("corrupt");
        let cfg = RTreeConfig { max_entries: 8, min_fill: 0.4 };
        PagedRTree::bulk_write(grid_summaries(200), cfg, &path, 4096).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bytes = pristine.clone();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(PagedRTree::<2>::open(&path).unwrap_err(), StoreError::Corrupt { .. }));

        // Version mismatch (fix the header checksum so the version check
        // is what fires).
        let mut bytes = pristine.clone();
        bytes[4] = 0xFE;
        let sum = fnv1a(&bytes[..paged_header_len(2) - 8]);
        bytes[paged_header_len(2) - 8..paged_header_len(2)].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            PagedRTree::<2>::open(&path).unwrap_err(),
            StoreError::VersionMismatch { found: 0xFE, expected: PAGED_VERSION }
        ));

        // Wrong dimensionality.
        std::fs::write(&path, &pristine).unwrap();
        assert!(matches!(
            PagedRTree::<3>::open(&path).unwrap_err(),
            // The 3-D header is longer, so either check may fire first.
            StoreError::DimensionMismatch { .. } | StoreError::Corrupt { .. }
        ));

        // Truncation (short page region / missing trailer).
        let mut bytes = pristine.clone();
        bytes.truncate(bytes.len() - 100);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(PagedRTree::<2>::open(&path).unwrap_err(), StoreError::Corrupt { .. }));

        // Bit flip inside a node page: open succeeds (pages are lazy) but
        // reading the damaged node returns a checksum error.
        let mut bytes = pristine.clone();
        let flip_at = paged_header_len(2) + 4096 / 2;
        bytes[flip_at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let tree = PagedRTree::<2>::open(&path).unwrap();
        let err = tree.read_node(NodeId(0)).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");

        // table_off bit-rotted to near u64::MAX: must be Corrupt, not an
        // arithmetic-overflow panic.
        let mut bytes = pristine.clone();
        let off_pos = bytes.len() - PAGED_TRAILER_LEN;
        bytes[off_pos..off_pos + 8].copy_from_slice(&0xFFFF_FFFF_FFFF_FF00u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(PagedRTree::<2>::open(&path).unwrap_err(), StoreError::Corrupt { .. }));

        // Garbage file.
        std::fs::write(&path, b"not an index at all").unwrap();
        assert!(PagedRTree::<2>::open(&path).is_err());

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn insert_built_trees_serialize_too() {
        let path = tmp("insert");
        let mut tree: RTree<2> = RTree::new(RTreeConfig { max_entries: 8, min_fill: 0.4 });
        for s in grid_summaries(150) {
            tree.insert(s);
        }
        tree.validate().unwrap();
        PagedRTree::write_tree(&tree, &path, 4096).unwrap();
        let paged: PagedRTree<2> = PagedRTree::open(&path).unwrap();
        assert_eq!(NodeAccess::len(&paged), 150);
        let q = Point::xy(20.0, 2.0);
        let a = tree.knn_by(5, |m| m.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q));
        let b = access::knn_by(
            &paged,
            5,
            |m| m.min_dist_point(&q),
            |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&q),
        )
        .unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.entry.id, y.entry.id);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
