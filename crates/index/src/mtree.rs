//! An M-tree over fuzzy object summaries: the general-metric counterpart
//! of the [`crate::RTree`].
//!
//! The R-tree's pruning machinery scores coordinate rectangles, which is
//! only meaningful for metrics that can bound box-to-box distances (L2
//! overrides [`Metric::min_box_dist_sq`] with the exact `MinDist` of
//! Eq. 1; the generic default is the sound-but-useless `0`). A metric
//! like graph shortest-path distance has no rectangle geometry at all —
//! for those the classic M-tree (Ciaccia, Patella, Zezula, VLDB '97)
//! organizes data by **covering balls** instead: every node carries a
//! *router* point and a *covering radius* `r` such that every object in
//! the subtree lies within distance `r` of the router (measured to the
//! farthest support point, not just the representative). The triangle
//! inequality then gives the node lower bound the best-first search
//! prunes with — see `fuzzy_query::metric_search`.
//!
//! Design choices:
//!
//! * **Deterministic bulk build.** Nodes are packed top-down by a
//!   farthest-first partition of the representative points: the first
//!   item seeds group 0, each further seed is the item maximizing its
//!   minimum distance to the chosen seeds (ties to the lowest input
//!   index), and every item joins its nearest seed (ties to the lowest
//!   seed). No randomness, no insertion-order sensitivity — two builds
//!   over the same objects and metric are identical, which the
//!   determinism suite pins.
//! * **Leaves store [`ObjectSummary`] entries** (same payload as the
//!   R-tree) plus one *spread* per entry: the metric distance from the
//!   entry's representative to its farthest support point. An entry ball
//!   `(rep, spread)` contains the whole object, so entry-level bounds
//!   need no coordinate geometry either.
//! * **Coordinate MBRs are maintained per node anyway**, so the tree
//!   implements [`NodeAccess`] and every rectangle-based query (the L2
//!   AKNN engine, `knn_by`, `range_search`) runs against it unchanged —
//!   the M-tree is a strict superset of the R-tree interface, not a
//!   parallel world.
//! * **`.fzmt` persistence** reuses the store's checksummed-header
//!   conventions (`docs/FORMAT.md`): FZMT magic, version, dims, one
//!   FNV-1a checksum over the body. The metric *name* is recorded and
//!   verified on load — an index built under `graph` cannot silently
//!   serve `l2` queries.

use crate::access::{NodeAccess, NodeRead};
use crate::node::{Children, NodeId};
use fuzzy_core::metric::Metric;
use fuzzy_core::{FuzzyObject, ObjectSummary};
use fuzzy_geom::{Mbr, Point};
use fuzzy_store::format::{decode_summary, encode_summary, fnv1a, summary_len, Decoder, Encoder};
use fuzzy_store::StoreError;
use std::fs;
use std::io::Write;
use std::path::Path;

/// File magic of the persisted M-tree.
pub const MTREE_MAGIC: [u8; 4] = *b"FZMT";
/// `.fzmt` format version understood by this build.
pub const MTREE_VERSION: u16 = 1;

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct MTreeConfig {
    /// Maximum children per internal node / entries per leaf.
    pub fanout: usize,
}

impl Default for MTreeConfig {
    fn default() -> Self {
        Self { fanout: 16 }
    }
}

/// Payload of one M-tree node.
#[derive(Clone, Debug)]
enum MNodeKind<const D: usize> {
    /// Entries with their per-entry spreads (parallel vectors).
    Leaf { entries: Vec<ObjectSummary<D>>, spreads: Vec<f64> },
    /// Child node ids (their balls and rectangles live in the arena).
    Internal { children: Vec<NodeId> },
}

/// One node: the covering ball plus the coordinate rectangle.
#[derive(Clone, Debug)]
struct MNode<const D: usize> {
    router: Point<D>,
    cover_radius: f64,
    mbr: Mbr<D>,
    kind: MNodeKind<D>,
}

/// A metric-space index over fuzzy objects; see the module docs.
#[derive(Clone, Debug)]
pub struct MTree<const D: usize> {
    nodes: Vec<MNode<D>>,
    root: NodeId,
    height: usize,
    len: usize,
    metric_name: String,
    fanout: usize,
}

/// One item of the bulk build: a summary index plus its routing point
/// and the radius of its own ball (entry spread or child cover radius).
struct BuildItem<const D: usize> {
    index: usize,
    rep: Point<D>,
}

impl<const D: usize> MTree<D> {
    /// Bulk-build from objects under `metric`. Deterministic: same
    /// objects + same metric ⇒ identical tree (see module docs).
    pub fn build<M: Metric<D>>(
        metric: &M,
        objects: &[FuzzyObject<D>],
        config: MTreeConfig,
    ) -> Self {
        let fanout = config.fanout.max(2);
        let mut summaries = Vec::with_capacity(objects.len());
        let mut spreads = Vec::with_capacity(objects.len());
        for obj in objects {
            let s = ObjectSummary::from_object(obj);
            let spread =
                obj.points().iter().map(|p| metric.dist(&s.rep, p)).fold(0.0_f64, f64::max);
            summaries.push(s);
            spreads.push(spread);
        }
        let mut tree = Self {
            nodes: Vec::new(),
            root: NodeId(0),
            height: 1,
            len: objects.len(),
            metric_name: metric.name().to_string(),
            fanout,
        };
        if summaries.is_empty() {
            tree.nodes.push(MNode {
                router: Point::origin(),
                cover_radius: 0.0,
                mbr: Mbr::empty(),
                kind: MNodeKind::Leaf { entries: Vec::new(), spreads: Vec::new() },
            });
            return tree;
        }
        let items: Vec<BuildItem<D>> =
            summaries.iter().enumerate().map(|(i, s)| BuildItem { index: i, rep: s.rep }).collect();
        let (root, height) = tree.build_rec(metric, items, &summaries, &spreads);
        tree.root = root;
        tree.height = height;
        tree
    }

    /// Recursive top-down packing; returns (node id, subtree height).
    fn build_rec<M: Metric<D>>(
        &mut self,
        metric: &M,
        items: Vec<BuildItem<D>>,
        summaries: &[ObjectSummary<D>],
        spreads: &[f64],
    ) -> (NodeId, usize) {
        if items.len() <= self.fanout {
            return (self.push_leaf(metric, &items, summaries, spreads), 1);
        }
        let groups = partition(metric, &items, self.fanout);
        let mut child_ids = Vec::with_capacity(groups.len());
        let mut height = 0usize;
        for group in groups {
            let (id, h) = self.build_rec(metric, group, summaries, spreads);
            child_ids.push(id);
            height = height.max(h);
        }
        // Router = first child's router; cover radius bounds every child
        // ball from it (triangle inequality through the child routers).
        let router = self.nodes[child_ids[0].0 as usize].router;
        let mut cover = 0.0_f64;
        let mut mbr = Mbr::empty();
        for &c in &child_ids {
            let child = &self.nodes[c.0 as usize];
            cover = cover.max(metric.dist(&router, &child.router) + child.cover_radius);
            mbr.expand_mbr(&child.mbr);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(MNode {
            router,
            cover_radius: cover,
            mbr,
            kind: MNodeKind::Internal { children: child_ids },
        });
        (id, height + 1)
    }

    fn push_leaf<M: Metric<D>>(
        &mut self,
        metric: &M,
        items: &[BuildItem<D>],
        summaries: &[ObjectSummary<D>],
        spreads: &[f64],
    ) -> NodeId {
        let router = items[0].rep;
        let mut entries = Vec::with_capacity(items.len());
        let mut entry_spreads = Vec::with_capacity(items.len());
        let mut cover = 0.0_f64;
        let mut mbr = Mbr::empty();
        for item in items {
            let s = summaries[item.index];
            let spread = spreads[item.index];
            cover = cover.max(metric.dist(&router, &s.rep) + spread);
            mbr.expand_mbr(&s.support_mbr);
            entries.push(s);
            entry_spreads.push(spread);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(MNode {
            router,
            cover_radius: cover,
            mbr,
            kind: MNodeKind::Leaf { entries, spreads: entry_spreads },
        });
        id
    }

    /// Name of the metric the tree was built under.
    pub fn metric_name(&self) -> &str {
        &self.metric_name
    }

    /// Configured fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The routing point of a node's covering ball.
    pub fn router(&self, id: NodeId) -> &Point<D> {
        &self.nodes[id.0 as usize].router
    }

    /// The node's covering radius: every support point of every object in
    /// the subtree lies within this metric distance of the router.
    pub fn cover_radius(&self, id: NodeId) -> f64 {
        self.nodes[id.0 as usize].cover_radius
    }

    /// Per-entry spreads of a leaf (`None` for internal nodes): entry `i`
    /// of the leaf's summaries lies entirely within `spreads[i]` of its
    /// own representative point.
    pub fn leaf_spreads(&self, id: NodeId) -> Option<&[f64]> {
        match &self.nodes[id.0 as usize].kind {
            MNodeKind::Leaf { spreads, .. } => Some(spreads),
            MNodeKind::Internal { .. } => None,
        }
    }

    /// Checks the covering invariant on every node: child balls (and leaf
    /// entry balls) nest inside their parent ball under `metric`, up to a
    /// relative tolerance for accumulated rounding. Returns the number of
    /// nodes checked.
    pub fn validate<M: Metric<D>>(&self, metric: &M) -> Result<usize, String> {
        const TOL: f64 = 1.0 + 1e-9;
        for (i, node) in self.nodes.iter().enumerate() {
            match &node.kind {
                MNodeKind::Leaf { entries, spreads } => {
                    if entries.len() != spreads.len() {
                        return Err(format!("node {i}: entry/spread length mismatch"));
                    }
                    for (e, &sp) in entries.iter().zip(spreads) {
                        let reach = metric.dist(&node.router, &e.rep) + sp;
                        if reach > node.cover_radius * TOL {
                            return Err(format!(
                                "node {i}: entry {} escapes the ball ({reach} > {})",
                                e.id, node.cover_radius
                            ));
                        }
                    }
                }
                MNodeKind::Internal { children } => {
                    for &c in children {
                        let child = &self.nodes[c.0 as usize];
                        let reach = metric.dist(&node.router, &child.router) + child.cover_radius;
                        if reach > node.cover_radius * TOL {
                            return Err(format!(
                                "node {i}: child {} escapes the ball ({reach} > {})",
                                c.0, node.cover_radius
                            ));
                        }
                    }
                }
            }
        }
        Ok(self.nodes.len())
    }

    /// Persist as a `.fzmt` file (layout in `docs/FORMAT.md`).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let mut body = Encoder::with_capacity(64 + self.nodes.len() * (24 + summary_len(D)));
        let name = self.metric_name.as_bytes();
        body.u32(name.len() as u32);
        body.bytes(name);
        body.u32(self.root.0);
        body.u32(self.height as u32);
        body.u64(self.len as u64);
        body.u32(self.fanout as u32);
        body.u64(self.nodes.len() as u64);
        for node in &self.nodes {
            for &c in node.router.coords() {
                body.f64(c);
            }
            body.f64(node.cover_radius);
            for d in 0..D {
                body.f64(node.mbr.lo(d));
            }
            for d in 0..D {
                body.f64(node.mbr.hi(d));
            }
            match &node.kind {
                MNodeKind::Leaf { entries, spreads } => {
                    body.u16(0);
                    body.u32(entries.len() as u32);
                    for (e, &sp) in entries.iter().zip(spreads) {
                        encode_summary(&mut body, e);
                        body.f64(sp);
                    }
                }
                MNodeKind::Internal { children } => {
                    body.u16(1);
                    body.u32(children.len() as u32);
                    for c in children {
                        body.u32(c.0);
                    }
                }
            }
        }
        let body = body.into_bytes();
        let mut out = Encoder::with_capacity(16 + body.len() + 12);
        out.bytes(&MTREE_MAGIC);
        out.u16(MTREE_VERSION);
        out.u16(D as u16);
        out.u64(0); // reserved
        out.bytes(&body);
        out.u64(fnv1a(&body));
        out.bytes(&MTREE_MAGIC);
        let mut file = fs::File::create(path)?;
        file.write_all(out.as_bytes())?;
        file.sync_all()?;
        Ok(())
    }

    /// The metric name a `.fzmt` file records, after the full envelope
    /// check (magic, version, dimensionality, checksum). Lets a caller
    /// type a metric mismatch *before* committing to a load — the server
    /// uses this to answer a SWAP to a foreign-metric index with a
    /// protocol error instead of a generic open failure.
    pub fn stored_metric_name(path: impl AsRef<Path>) -> Result<String, StoreError> {
        let bytes = fs::read(path)?;
        let corrupt = |reason: &str| StoreError::Corrupt { reason: reason.to_string() };
        if bytes.len() < 16 + 12 {
            return Err(corrupt("fzmt file shorter than header + trailer"));
        }
        if bytes[..4] != MTREE_MAGIC || bytes[bytes.len() - 4..] != MTREE_MAGIC {
            return Err(corrupt("bad fzmt magic"));
        }
        let mut head = Decoder::new(&bytes[4..16]);
        let version = head.u16()?;
        if version != MTREE_VERSION {
            return Err(StoreError::VersionMismatch { found: version, expected: MTREE_VERSION });
        }
        let dims = head.u16()?;
        if dims as usize != D {
            return Err(StoreError::DimensionMismatch { found: dims, expected: D as u16 });
        }
        let body = &bytes[16..bytes.len() - 12];
        let mut tail = Decoder::new(&bytes[bytes.len() - 12..bytes.len() - 4]);
        if tail.u64()? != fnv1a(body) {
            return Err(corrupt("fzmt body checksum mismatch"));
        }
        let mut d = Decoder::new(body);
        let name_len = d.u32()? as usize;
        Ok(std::str::from_utf8(d.bytes(name_len)?)
            .map_err(|_| corrupt("metric name is not utf-8"))?
            .to_string())
    }

    /// Load a `.fzmt` file, verifying magic, version, dimensionality,
    /// checksum and that it was built under `metric` (by name).
    pub fn load<M: Metric<D>>(path: impl AsRef<Path>, metric: &M) -> Result<Self, StoreError> {
        let bytes = fs::read(path)?;
        let corrupt = |reason: &str| StoreError::Corrupt { reason: reason.to_string() };
        if bytes.len() < 16 + 12 {
            return Err(corrupt("fzmt file shorter than header + trailer"));
        }
        if bytes[..4] != MTREE_MAGIC || bytes[bytes.len() - 4..] != MTREE_MAGIC {
            return Err(corrupt("bad fzmt magic"));
        }
        let mut head = Decoder::new(&bytes[4..16]);
        let version = head.u16()?;
        if version != MTREE_VERSION {
            return Err(StoreError::VersionMismatch { found: version, expected: MTREE_VERSION });
        }
        let dims = head.u16()?;
        if dims as usize != D {
            return Err(StoreError::DimensionMismatch { found: dims, expected: D as u16 });
        }
        let body = &bytes[16..bytes.len() - 12];
        let mut tail = Decoder::new(&bytes[bytes.len() - 12..bytes.len() - 4]);
        if tail.u64()? != fnv1a(body) {
            return Err(corrupt("fzmt body checksum mismatch"));
        }
        let mut d = Decoder::new(body);
        let name_len = d.u32()? as usize;
        let name = std::str::from_utf8(d.bytes(name_len)?)
            .map_err(|_| corrupt("metric name is not utf-8"))?
            .to_string();
        if name != metric.name() {
            return Err(StoreError::Corrupt {
                reason: format!(
                    "metric mismatch: index built under '{name}', opened under '{}'",
                    metric.name()
                ),
            });
        }
        let root = NodeId(d.u32()?);
        let height = d.u32()? as usize;
        let len = d.u64()? as usize;
        let fanout = d.u32()? as usize;
        let node_count = d.u64()? as usize;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let mut coords = [0.0_f64; D];
            for c in coords.iter_mut() {
                *c = d.f64()?;
            }
            let router = Point::new(coords);
            let cover_radius = d.f64()?;
            let mut lo = [0.0_f64; D];
            let mut hi = [0.0_f64; D];
            for v in lo.iter_mut() {
                *v = d.f64()?;
            }
            for v in hi.iter_mut() {
                *v = d.f64()?;
            }
            let mbr = Mbr::new(lo, hi);
            let kind = match d.u16()? {
                0 => {
                    let n = d.u32()? as usize;
                    let mut entries = Vec::with_capacity(n);
                    let mut spreads = Vec::with_capacity(n);
                    for _ in 0..n {
                        entries.push(decode_summary(&mut d)?);
                        spreads.push(d.f64()?);
                    }
                    MNodeKind::Leaf { entries, spreads }
                }
                1 => {
                    let n = d.u32()? as usize;
                    let mut children = Vec::with_capacity(n);
                    for _ in 0..n {
                        let c = d.u32()?;
                        if c as usize >= node_count {
                            return Err(corrupt("child id out of range"));
                        }
                        children.push(NodeId(c));
                    }
                    MNodeKind::Internal { children }
                }
                _ => return Err(corrupt("unknown fzmt node kind")),
            };
            nodes.push(MNode { router, cover_radius, mbr, kind });
        }
        if root.0 as usize >= nodes.len() {
            return Err(corrupt("root id out of range"));
        }
        Ok(Self { nodes, root, height, len, metric_name: name, fanout })
    }
}

impl<const D: usize> NodeAccess<D> for MTree<D> {
    fn root_id(&self) -> NodeId {
        self.root
    }

    fn root_mbr(&self) -> Mbr<D> {
        self.nodes[self.root.0 as usize].mbr
    }

    fn read_node(&self, id: NodeId) -> Result<NodeRead<'_, D>, StoreError> {
        let node = &self.nodes[id.0 as usize];
        let children = match &node.kind {
            MNodeKind::Leaf { entries, .. } => Children::Entries(entries),
            MNodeKind::Internal { children } => Children::Nodes(children),
        };
        Ok(NodeRead::from_memory(children, |c| self.nodes[c.0 as usize].mbr))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn height(&self) -> usize {
        self.height
    }
}

/// Farthest-first partition of `items` into at most `fanout` groups (at
/// least 2 — callers only partition oversized sets). Fully deterministic;
/// every tie breaks toward the lowest input position.
fn partition<M: Metric<D>, const D: usize>(
    metric: &M,
    items: &[BuildItem<D>],
    fanout: usize,
) -> Vec<Vec<BuildItem<D>>> {
    let groups = fanout.min(items.len().div_ceil(fanout)).max(2);
    // Seed selection: position 0, then iteratively the item farthest from
    // its nearest chosen seed (strict > keeps the lowest position on ties).
    let mut seed_pos = Vec::with_capacity(groups);
    seed_pos.push(0usize);
    let mut min_dist: Vec<f64> =
        items.iter().map(|it| metric.dist(&items[0].rep, &it.rep)).collect();
    while seed_pos.len() < groups {
        let mut best = usize::MAX;
        let mut best_d = f64::NEG_INFINITY;
        for (pos, &d) in min_dist.iter().enumerate() {
            if !seed_pos.contains(&pos) && d > best_d {
                best = pos;
                best_d = d;
            }
        }
        if best == usize::MAX {
            break; // fewer distinct items than groups
        }
        seed_pos.push(best);
        for (pos, d) in min_dist.iter_mut().enumerate() {
            let nd = metric.dist(&items[best].rep, &items[pos].rep);
            if nd < *d {
                *d = nd;
            }
        }
    }
    // Assignment: nearest seed, ties to the lowest seed index. Seed items
    // are pinned to their own groups — under a metric with many co-located
    // points (graph distance between objects on one vertex is 0) a plain
    // nearest-seed rule would merge tied seeds into group 0, and in the
    // degenerate all-identical case make no progress at all. Pinning
    // guarantees every group is non-empty, so each recursive subproblem
    // is strictly smaller and the build terminates.
    let mut out: Vec<Vec<BuildItem<D>>> = (0..seed_pos.len()).map(|_| Vec::new()).collect();
    for (pos, item) in items.iter().enumerate() {
        let carried = BuildItem { index: item.index, rep: items[pos].rep };
        if let Some(g) = seed_pos.iter().position(|&sp| sp == pos) {
            out[g].push(carried);
            continue;
        }
        let mut best_g = 0usize;
        let mut best_d = f64::INFINITY;
        for (g, &sp) in seed_pos.iter().enumerate() {
            let d = metric.dist(&items[sp].rep, &item.rep);
            if d < best_d {
                best_g = g;
                best_d = d;
            }
        }
        out[best_g].push(carried);
    }
    out.retain(|g| !g.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::metric::L2;
    use fuzzy_core::ObjectId;

    fn blob(id: u64, cx: f64, cy: f64) -> FuzzyObject<2> {
        let mut pts = Vec::new();
        let mut mus = Vec::new();
        let mut s = id.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        pts.push(Point::new([cx, cy]));
        mus.push(1.0);
        for _ in 0..15 {
            pts.push(Point::new([cx + rng() * 2.0 - 1.0, cy + rng() * 2.0 - 1.0]));
            mus.push(0.1 + rng() * 0.9);
        }
        FuzzyObject::new(ObjectId(id), pts, mus).unwrap()
    }

    fn dataset(n: u64) -> Vec<FuzzyObject<2>> {
        (0..n).map(|i| blob(i, (i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0)).collect()
    }

    #[test]
    fn build_covers_every_object_and_is_deterministic() {
        let objects = dataset(100);
        let t1 = MTree::build(&L2, &objects, MTreeConfig::default());
        let t2 = MTree::build(&L2, &objects, MTreeConfig::default());
        assert_eq!(t1.len, 100);
        assert!(t1.height >= 2);
        assert_eq!(t1.validate(&L2), Ok(t1.nodes.len()));
        // Bit-identical rebuild.
        assert_eq!(t1.nodes.len(), t2.nodes.len());
        for (a, b) in t1.nodes.iter().zip(&t2.nodes) {
            assert_eq!(a.router, b.router);
            assert_eq!(a.cover_radius.to_bits(), b.cover_radius.to_bits());
        }
    }

    #[test]
    fn node_access_entries_partition_the_dataset() {
        let objects = dataset(64);
        let tree = MTree::build(&L2, &objects, MTreeConfig { fanout: 4 });
        let mut seen = Vec::new();
        let mut stack = vec![tree.root_id()];
        while let Some(id) = stack.pop() {
            match tree.read_node(id).unwrap().view() {
                crate::access::NodeView::Nodes(kids) => {
                    stack.extend(kids.iter().map(|c| c.id));
                }
                crate::access::NodeView::Entries(entries) => {
                    seen.extend(entries.iter().map(|e| e.id.0));
                }
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn save_load_roundtrip_is_bitwise() {
        let objects = dataset(40);
        let tree = MTree::build(&L2, &objects, MTreeConfig::default());
        let dir = std::env::temp_dir().join("fzmt_roundtrip_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fzmt");
        tree.save(&path).unwrap();
        let back = MTree::<2>::load(&path, &L2).unwrap();
        assert_eq!(back.len, tree.len);
        assert_eq!(back.height, tree.height);
        assert_eq!(back.nodes.len(), tree.nodes.len());
        for (a, b) in tree.nodes.iter().zip(&back.nodes) {
            assert_eq!(a.router, b.router);
            assert_eq!(a.cover_radius.to_bits(), b.cover_radius.to_bits());
            assert_eq!(a.mbr, b.mbr);
        }
        // Wrong-metric open is rejected.
        struct FakeMetric;
        impl Metric<2> for FakeMetric {
            fn name(&self) -> &'static str {
                "fake"
            }
            fn dist(&self, a: &Point<2>, b: &Point<2>) -> f64 {
                a.dist(b)
            }
        }
        assert!(matches!(MTree::<2>::load(&path, &FakeMetric), Err(StoreError::Corrupt { .. })));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_file_is_rejected() {
        let objects = dataset(10);
        let tree = MTree::build(&L2, &objects, MTreeConfig::default());
        let dir = std::env::temp_dir().join("fzmt_corrupt_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fzmt");
        tree.save(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(MTree::<2>::load(&path, &L2), Err(StoreError::Corrupt { .. })));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn identical_representatives_terminate() {
        // Every rep at the same point: all pairwise distances are 0, the
        // worst case for farthest-first seeding. The build must still
        // terminate (seed pinning) and cover everything.
        let objects: Vec<_> = (0..50)
            .map(|i| {
                FuzzyObject::new(ObjectId(i), vec![Point::new([1.0, 2.0])], vec![1.0]).unwrap()
            })
            .collect();
        let tree = MTree::build(&L2, &objects, MTreeConfig { fanout: 4 });
        assert_eq!(NodeAccess::len(&tree), 50);
        assert!(tree.validate(&L2).is_ok());
    }

    #[test]
    fn empty_build_is_valid() {
        let tree = MTree::<2>::build(&L2, &[], MTreeConfig::default());
        assert_eq!(NodeAccess::len(&tree), 0);
        assert!(NodeAccess::is_empty(&tree));
        assert_eq!(tree.validate(&L2), Ok(1));
    }
}
