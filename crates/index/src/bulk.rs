//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! STR packs entries into fully filled leaves by recursively slicing the
//! space into slabs along each dimension, then builds the upper levels by
//! re-packing node rectangles the same way. It yields near-optimal space
//! utilisation and is how the experiment datasets are indexed.

use crate::node::{Node, NodeId, RTree, RTreeConfig};
use fuzzy_core::ObjectSummary;
use fuzzy_geom::{Mbr, Point};

impl<const D: usize> RTree<D> {
    /// Build a tree containing `entries` using STR packing.
    ///
    /// ```
    /// use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
    /// use fuzzy_geom::Point;
    /// use fuzzy_index::{RTree, RTreeConfig};
    ///
    /// // Summaries of 100 small fuzzy objects on a 10×10 grid.
    /// let summaries: Vec<ObjectSummary<2>> = (0..100)
    ///     .map(|i| {
    ///         let (x, y) = ((i % 10) as f64, (i / 10) as f64);
    ///         let obj = FuzzyObject::new(
    ///             ObjectId(i),
    ///             vec![Point::xy(x, y), Point::xy(x + 0.4, y + 0.4)],
    ///             vec![1.0, 0.5],
    ///         )
    ///         .unwrap();
    ///         ObjectSummary::from_object(&obj)
    ///     })
    ///     .collect();
    ///
    /// let tree = RTree::bulk_load(summaries, RTreeConfig { max_entries: 16, min_fill: 0.4 });
    /// assert_eq!(tree.len(), 100);
    /// assert!(tree.height() >= 2); // 100 entries cannot fit one 16-entry leaf
    /// tree.validate().unwrap();
    /// ```
    pub fn bulk_load(mut entries: Vec<ObjectSummary<D>>, config: RTreeConfig) -> Self {
        let mut tree = RTree::new(config);
        if entries.is_empty() {
            return tree;
        }
        tree.len = entries.len();
        tree.nodes.clear();

        // Pack leaves.
        let cap = config.max_entries;
        let mut leaves: Vec<NodeId> = Vec::with_capacity(entries.len() / cap + 1);
        let mut groups: Vec<Vec<ObjectSummary<D>>> = Vec::new();
        str_tile(&mut entries, 0, cap, &mut |group| groups.push(group.to_vec()));
        for group in groups {
            let mbr = group.iter().fold(Mbr::empty(), |acc, s| acc.union(&s.support_mbr));
            let id = tree.alloc(Node::Leaf { mbr, entries: group });
            leaves.push(id);
        }

        // Pack upper levels until a single root remains.
        let mut level = leaves;
        let mut height = 1;
        while level.len() > 1 {
            #[derive(Clone)]
            struct Item<const D: usize> {
                id: NodeId,
                mbr: Mbr<D>,
            }
            let mut items: Vec<Item<D>> =
                level.iter().map(|&id| Item { id, mbr: *tree.node_mbr(id) }).collect();
            let mut parent_groups: Vec<Vec<Item<D>>> = Vec::new();
            str_tile_by(&mut items, 0, cap, &|it: &Item<D>| it.mbr.center(), &mut |group| {
                parent_groups.push(group.to_vec())
            });
            let mut parents = Vec::with_capacity(parent_groups.len());
            for group in parent_groups {
                let mbr = group.iter().fold(Mbr::empty(), |acc, it| acc.union(&it.mbr));
                let children = group.iter().map(|it| it.id).collect();
                parents.push(tree.alloc(Node::Internal { mbr, children }));
            }
            level = parents;
            height += 1;
        }
        tree.root = level[0];
        tree.height = height;
        tree
    }
}

/// Tile object summaries (center of the support MBR is the sort key).
fn str_tile<const D: usize>(
    items: &mut [ObjectSummary<D>],
    dim: usize,
    cap: usize,
    emit: &mut impl FnMut(&[ObjectSummary<D>]),
) {
    str_tile_by(items, dim, cap, &|s: &ObjectSummary<D>| s.support_mbr.center(), emit)
}

/// Generic recursive STR tiling: sort by the center's `dim` coordinate,
/// split into `ceil(P^(1/(D-dim)))` slabs (`P` = number of final groups),
/// recurse on the next dimension; the last dimension chunks sequentially.
fn str_tile_by<T: Clone, const D: usize>(
    items: &mut [T],
    dim: usize,
    cap: usize,
    center: &impl Fn(&T) -> Point<D>,
    emit: &mut impl FnMut(&[T]),
) {
    let n = items.len();
    if n <= cap {
        if n > 0 {
            emit(items);
        }
        return;
    }
    if dim + 1 == D {
        items.sort_by(|a, b| center(a)[dim].total_cmp(&center(b)[dim]));
        for (start, end) in even_partition(n, n.div_ceil(cap)) {
            emit(&items[start..end]);
        }
        return;
    }
    items.sort_by(|a, b| center(a)[dim].total_cmp(&center(b)[dim]));
    let groups = n.div_ceil(cap);
    let dims_left = D - dim;
    let slabs = (groups as f64).powf(1.0 / dims_left as f64).ceil() as usize;
    for (start, end) in even_partition(n, slabs.max(1)) {
        str_tile_by(&mut items[start..end], dim + 1, cap, center, emit);
    }
}

/// Split `0..n` into `parts` contiguous ranges whose sizes differ by at most
/// one. Even sizing (rather than `chunks(cap)`) keeps every STR group above
/// the R-tree minimum fill — a remainder chunk of 1 would violate it.
/// Also used by the shard partitioners in [`crate::shard`].
pub(crate) fn even_partition(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::{FuzzyObject, ObjectId};

    pub(crate) fn grid_summaries(n: usize) -> Vec<ObjectSummary<2>> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64;
                let y = (i / 100) as f64;
                let obj = FuzzyObject::new(
                    ObjectId(i as u64),
                    vec![Point::xy(x, y), Point::xy(x + 0.5, y + 0.5)],
                    vec![1.0, 0.5],
                )
                .unwrap();
                ObjectSummary::from_object(&obj)
            })
            .collect()
    }

    #[test]
    fn bulk_load_preserves_all_entries() {
        let summaries = grid_summaries(1000);
        let tree = RTree::bulk_load(summaries, RTreeConfig { max_entries: 16, min_fill: 0.4 });
        assert_eq!(tree.len(), 1000);
        let mut ids: Vec<u64> = tree.iter_entries().map(|s| s.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..1000u64).collect::<Vec<_>>());
        tree.validate().unwrap();
    }

    #[test]
    fn bulk_load_small_inputs() {
        for n in [0usize, 1, 2, 15, 16, 17] {
            let tree =
                RTree::bulk_load(grid_summaries(n), RTreeConfig { max_entries: 16, min_fill: 0.4 });
            assert_eq!(tree.len(), n);
            tree.validate().unwrap();
            if n <= 16 {
                assert_eq!(tree.height(), 1, "n={n} should fit in the root leaf");
            }
        }
    }

    #[test]
    fn bulk_load_heights_are_logarithmic() {
        let tree =
            RTree::bulk_load(grid_summaries(5000), RTreeConfig { max_entries: 10, min_fill: 0.4 });
        // ceil(log_10(500 leaves)) + 1 ≈ 4; allow some slack but not a chain.
        assert!(tree.height() <= 5, "height {} too tall", tree.height());
        tree.validate().unwrap();
    }

    #[test]
    fn leaves_are_spatially_coherent() {
        // STR should produce far smaller total leaf area than random
        // grouping; check against a generous bound.
        let summaries = grid_summaries(2000);
        let tree = RTree::bulk_load(summaries, RTreeConfig { max_entries: 20, min_fill: 0.4 });
        let mut total_area = 0.0;
        let mut leaf_count = 0;
        for n in &tree.nodes {
            if let Node::Leaf { mbr, entries } = n {
                if !entries.is_empty() {
                    total_area += mbr.area();
                    leaf_count += 1;
                }
            }
        }
        // 2000 unit-ish objects in a 100x20 region -> per-leaf area should
        // be bounded by a small multiple of (region area / leaf count).
        let region_area = 100.0 * 20.0;
        assert!(
            total_area < 4.0 * region_area,
            "leaves too loose: total {total_area}, {leaf_count} leaves"
        );
    }
}
