//! Dynamic deletion and update: R\*-style condense-and-reinsert.
//!
//! `delete` removes one entry by object id, re-tightens every MBR on the
//! path, dissolves nodes that fall below the minimum fill (their surviving
//! entries are reinserted through the ordinary insert machinery, so the
//! balance and fill invariants of [`crate::validate`] hold after every
//! mutation), and shrinks the root when it degenerates to a single child.
//! `update` is delete + insert in one call.
//!
//! The tree keeps no id→leaf directory, so locating an entry is a
//! depth-first sweep (O(n) worst case). That matches the paper's setting —
//! its experiments never mutate — and keeps pages byte-identical to the
//! bulk-loaded layout; a directory is a straightforward future addition if
//! point deletes ever dominate a workload.

use crate::node::{Node, NodeId, RTree};
use fuzzy_core::{ObjectId, ObjectSummary};

impl<const D: usize> RTree<D> {
    /// Remove the entry with object id `id`. Returns `true` when the entry
    /// existed. All structural invariants hold on return.
    ///
    /// ```
    /// use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
    /// use fuzzy_geom::Point;
    /// use fuzzy_index::{RTree, RTreeConfig};
    ///
    /// let summaries: Vec<ObjectSummary<2>> = (0..50)
    ///     .map(|i| {
    ///         let obj = FuzzyObject::new(
    ///             ObjectId(i),
    ///             vec![Point::xy(i as f64, 0.0), Point::xy(i as f64 + 0.4, 0.4)],
    ///             vec![1.0, 0.5],
    ///         )
    ///         .unwrap();
    ///         ObjectSummary::from_object(&obj)
    ///     })
    ///     .collect();
    /// let mut tree = RTree::bulk_load(summaries, RTreeConfig { max_entries: 8, min_fill: 0.4 });
    /// assert!(tree.delete(ObjectId(17)));
    /// assert!(!tree.delete(ObjectId(17))); // already gone
    /// assert_eq!(tree.len(), 49);
    /// tree.validate().unwrap();
    /// ```
    pub fn delete(&mut self, id: ObjectId) -> bool {
        let root = self.root;
        let mut orphans: Vec<ObjectSummary<D>> = Vec::new();
        if !self.delete_rec(root, id, &mut orphans) {
            return false;
        }
        self.len -= 1;
        // Condense may have dissolved whole subtrees; their surviving
        // entries re-enter through the ordinary insert path (no length
        // change — they never left the logical object set).
        for entry in orphans {
            self.insert_entry(&entry);
        }
        self.shrink_root();
        true
    }

    /// Replace the summary of `entry.id` (delete + insert). Returns `true`
    /// when an old entry was replaced, `false` when this was a plain
    /// insert of a previously unknown id.
    pub fn update(&mut self, entry: ObjectSummary<D>) -> bool {
        let existed = self.delete(entry.id);
        self.insert(entry);
        existed
    }

    /// Recursive delete; `true` once the entry was found and removed.
    /// On the found path every node re-tightens its MBR and dissolves
    /// underfull children into `orphans`.
    fn delete_rec(
        &mut self,
        node: NodeId,
        id: ObjectId,
        orphans: &mut Vec<ObjectSummary<D>>,
    ) -> bool {
        let idx = node.0 as usize;
        match &mut self.nodes[idx] {
            Node::Leaf { entries, .. } => {
                let Some(pos) = entries.iter().position(|e| e.id == id) else {
                    return false;
                };
                entries.remove(pos);
                self.recompute_mbr(node);
                true
            }
            Node::Internal { children, .. } => {
                let children_snapshot = children.clone();
                for (i, &child) in children_snapshot.iter().enumerate() {
                    if !self.delete_rec(child, id, orphans) {
                        continue;
                    }
                    // The child may now be underfull: dissolve it and queue
                    // its remaining entries for reinsertion.
                    if self.nodes[child.0 as usize].fanout() < self.config.min_entries() {
                        self.collect_entries(child, orphans);
                        self.dealloc_subtree(child);
                        if let Node::Internal { children, .. } = &mut self.nodes[idx] {
                            children.remove(i);
                        }
                    }
                    self.recompute_mbr(node);
                    return true;
                }
                false
            }
            Node::Free => unreachable!("delete descended into a freed node {}", node.0),
        }
    }

    /// Collapse a degenerate root: an internal root with a single child
    /// hands the root role to that child (repeatedly — reinsertion after a
    /// massive condense can leave a chain), and an internal root with no
    /// children at all becomes the canonical empty leaf.
    fn shrink_root(&mut self) {
        loop {
            match &self.nodes[self.root.0 as usize] {
                Node::Internal { children, .. } if children.len() == 1 => {
                    let child = children[0];
                    let old = self.root;
                    self.root = child;
                    self.height -= 1;
                    self.dealloc(old);
                }
                Node::Internal { children, .. } if children.is_empty() => {
                    debug_assert_eq!(self.len, 0, "childless root with live entries");
                    self.nodes[self.root.0 as usize] =
                        Node::Leaf { mbr: fuzzy_geom::Mbr::empty(), entries: Vec::new() };
                    self.height = 1;
                    break;
                }
                _ => break,
            }
        }
    }

    /// Gather every entry stored beneath `node` (inclusive).
    fn collect_entries(&self, node: NodeId, out: &mut Vec<ObjectSummary<D>>) {
        match &self.nodes[node.0 as usize] {
            Node::Leaf { entries, .. } => out.extend(entries.iter().copied()),
            Node::Internal { children, .. } => {
                for &c in children {
                    self.collect_entries(c, out);
                }
            }
            Node::Free => unreachable!("collect_entries on a freed node"),
        }
    }

    /// Return `node` and every descendant to the free list.
    fn dealloc_subtree(&mut self, node: NodeId) {
        if let Node::Internal { children, .. } = &self.nodes[node.0 as usize] {
            for c in children.clone() {
                self.dealloc_subtree(c);
            }
        }
        self.dealloc(node);
    }
}

#[cfg(test)]
mod tests {
    use crate::node::{RTree, RTreeConfig};
    use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
    use fuzzy_geom::Point;

    fn summary(id: u64, x: f64, y: f64) -> ObjectSummary<2> {
        let obj = FuzzyObject::new(
            ObjectId(id),
            vec![Point::xy(x, y), Point::xy(x + 0.3, y + 0.3)],
            vec![1.0, 0.5],
        )
        .unwrap();
        ObjectSummary::from_object(&obj)
    }

    fn grid(n: u64) -> Vec<ObjectSummary<2>> {
        (0..n).map(|i| summary(i, (i % 25) as f64 * 2.0, (i / 25) as f64 * 2.0)).collect()
    }

    #[test]
    fn delete_every_entry_one_by_one() {
        let mut tree = RTree::bulk_load(grid(300), RTreeConfig { max_entries: 8, min_fill: 0.4 });
        // Mixed order: front, back, middle.
        let mut ids: Vec<u64> = (0..300).collect();
        ids.sort_by_key(|i| (i % 7, *i));
        for (step, id) in ids.into_iter().enumerate() {
            assert!(tree.delete(ObjectId(id)), "id {id} must be present");
            tree.validate().unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        // The empty tree is fully reusable.
        tree.insert(summary(999, 1.0, 1.0));
        assert_eq!(tree.len(), 1);
        tree.validate().unwrap();
    }

    #[test]
    fn delete_missing_id_is_a_noop() {
        let mut tree = RTree::bulk_load(grid(50), RTreeConfig { max_entries: 8, min_fill: 0.4 });
        assert!(!tree.delete(ObjectId(12345)));
        assert_eq!(tree.len(), 50);
        tree.validate().unwrap();
    }

    #[test]
    fn delete_tightens_mbrs() {
        let mut tree = RTree::bulk_load(grid(200), RTreeConfig { max_entries: 8, min_fill: 0.4 });
        // Remove the spatial extremes; validate()'s LooseMbr check proves
        // every ancestor rectangle shrank to the survivors.
        for id in [0u64, 24, 175, 199] {
            assert!(tree.delete(ObjectId(id)));
            tree.validate().unwrap();
        }
    }

    #[test]
    fn underflow_reinserts_preserve_the_live_set() {
        // Small fanout with min_entries = 3 makes underflow constant;
        // interleave inserts and deletes and compare the surviving id set
        // to an oracle.
        let mut tree: RTree<2> = RTree::new(RTreeConfig { max_entries: 8, min_fill: 0.4 });
        let mut live = std::collections::BTreeSet::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut next_id = 0u64;
        for step in 0..600 {
            if live.is_empty() || rnd() % 3 != 0 {
                let id = next_id;
                next_id += 1;
                tree.insert(summary(id, (rnd() % 97) as f64, (rnd() % 89) as f64));
                live.insert(id);
            } else {
                let victim = *live.iter().nth(rnd() as usize % live.len()).unwrap();
                assert!(tree.delete(ObjectId(victim)));
                live.remove(&victim);
            }
            if step % 23 == 0 {
                tree.validate().unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
        }
        tree.validate().unwrap();
        let mut got: Vec<u64> = tree.iter_entries().map(|e| e.id.0).collect();
        got.sort_unstable();
        assert_eq!(got, live.iter().copied().collect::<Vec<_>>());
        assert_eq!(tree.len(), live.len());
    }

    #[test]
    fn update_replaces_in_place() {
        let mut tree = RTree::bulk_load(grid(100), RTreeConfig { max_entries: 8, min_fill: 0.4 });
        assert!(tree.update(summary(42, 500.0, 500.0)));
        assert_eq!(tree.len(), 100);
        tree.validate().unwrap();
        let moved = tree.iter_entries().find(|e| e.id.0 == 42).unwrap();
        assert!(moved.support_mbr.lo(0) >= 500.0);
        // Updating an unknown id degrades to insert.
        assert!(!tree.update(summary(7777, 1.0, 1.0)));
        assert_eq!(tree.len(), 101);
        tree.validate().unwrap();
    }

    #[test]
    fn freed_slots_are_reused_by_later_splits() {
        let mut tree = RTree::bulk_load(grid(200), RTreeConfig { max_entries: 4, min_fill: 0.4 });
        for id in 0..80u64 {
            assert!(tree.delete(ObjectId(id)));
        }
        let freed = tree.free.len();
        assert!(freed > 0, "dissolved leaves must land on the free list");
        let before = tree.node_count();
        for id in 1000..1080u64 {
            tree.insert(summary(id, (id % 31) as f64, (id % 17) as f64));
        }
        tree.validate().unwrap();
        // `alloc` only grows the arena once the free list is drained.
        if tree.node_count() > before {
            assert!(tree.free.is_empty(), "arena grew while free slots remained");
        } else {
            assert!(tree.free.len() < freed, "splits must have reused freed slots");
        }
    }
}
