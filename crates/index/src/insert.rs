//! Incremental insertion: R*-style ChooseSubtree and topological split
//! (without forced reinsertion — a documented simplification; the
//! experiments bulk-load, insertion exists for index maintenance and the
//! `abl-bulk` ablation).

use crate::node::{Node, NodeId, RTree};
use fuzzy_core::ObjectSummary;
use fuzzy_geom::Mbr;

/// Lexicographic `total_cmp` over a ChooseSubtree key. `PartialOrd` on an
/// `(f64, f64, f64)` tuple silently mis-compares once a component is NaN
/// (degenerate zero-area MBRs can produce `∞ − ∞` in the growth terms);
/// `total_cmp` gives every key a deterministic rank, with NaN ordered
/// after `+∞` so a poisoned candidate never wins.
fn key_lt(a: &[f64; 3], b: &[f64; 3]) -> bool {
    for i in 0..3 {
        match a[i].total_cmp(&b[i]) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    false
}

impl<const D: usize> RTree<D> {
    /// Insert one object summary.
    ///
    /// The caller is responsible for id uniqueness ([`RTree::validate`]
    /// rejects duplicate ids); use [`RTree::update`] to replace an
    /// existing object's summary in one step.
    pub fn insert(&mut self, entry: ObjectSummary<D>) {
        self.insert_entry(&entry);
        self.len += 1;
    }

    /// The tree surgery of [`RTree::insert`] without the length
    /// bookkeeping — `delete`'s condense step reinserts orphaned entries
    /// through this (they never left the logical object set).
    pub(crate) fn insert_entry(&mut self, entry: &ObjectSummary<D>) {
        let root = self.root;
        if let Some((left, right)) = self.insert_rec(root, entry, self.height) {
            // Root split: grow the tree.
            let mbr = self.node_mbr(left).union(self.node_mbr(right));
            let new_root = self.alloc(Node::Internal { mbr, children: vec![left, right] });
            self.root = new_root;
            self.height += 1;
        }
    }

    /// Recursive insert; returns the pair of node ids when `node` split.
    fn insert_rec(
        &mut self,
        node: NodeId,
        entry: &ObjectSummary<D>,
        level: usize,
    ) -> Option<(NodeId, NodeId)> {
        let idx = node.0 as usize;
        match &mut self.nodes[idx] {
            Node::Leaf { mbr, entries } => {
                *mbr = if entries.is_empty() {
                    entry.support_mbr
                } else {
                    mbr.union(&entry.support_mbr)
                };
                entries.push(*entry);
                if entries.len() > self.config.max_entries {
                    return Some(self.split_leaf(node));
                }
                None
            }
            Node::Internal { children, .. } => {
                let children_snapshot = children.clone();
                let child = self.choose_subtree(&children_snapshot, &entry.support_mbr, level - 1);
                let split = self.insert_rec(child, entry, level - 1);
                let mut grown = None;
                if let Some((l, r)) = split {
                    debug_assert_eq!(l, child, "a split keeps the original id as its left half");
                    // Replace the split child with its two halves *in
                    // place*. `retain` + two `push`es would move the pair
                    // to the back of the child list, perturbing the
                    // deterministic sibling order of untouched nodes.
                    if let Node::Internal { children, .. } = &mut self.nodes[idx] {
                        let pos = children
                            .iter()
                            .position(|&c| c == child)
                            .expect("chosen subtree is a child of this node");
                        children[pos] = l;
                        children.insert(pos + 1, r);
                        if children.len() > self.config.max_entries {
                            grown = Some(self.split_internal(node));
                        }
                    }
                }
                // Recompute this node's MBR tight from its actual children
                // instead of keeping the pre-descent union: after a split
                // both halves carry freshly tightened rectangles, and after
                // deletes descendants may be tighter than the stale bound.
                // (When this node itself split, `split_internal` already
                // computed tight MBRs for both halves.)
                if grown.is_none() {
                    self.recompute_mbr(node);
                }
                grown
            }
            Node::Free => unreachable!("insert descended into a freed node {}", node.0),
        }
    }

    /// R* ChooseSubtree: at the level just above leaves minimise overlap
    /// enlargement; higher up minimise area enlargement (ties: smaller
    /// area). Keys are ranked by `total_cmp`, so NaN growth terms from
    /// degenerate geometry cannot poison the comparison.
    fn choose_subtree(&self, children: &[NodeId], new: &Mbr<D>, child_level: usize) -> NodeId {
        debug_assert!(!children.is_empty());
        let leaf_level = child_level == 1;
        let mut best = children[0];
        let mut best_key = [f64::INFINITY, f64::INFINITY, f64::INFINITY];
        for &c in children {
            let mbr = self.node_mbr(c);
            let enlarged = mbr.union(new);
            let area_growth = enlarged.area() - mbr.area();
            let overlap_growth = if leaf_level {
                // Overlap of the enlarged rectangle with the siblings, minus
                // the current overlap.
                let mut before = 0.0;
                let mut after = 0.0;
                for &o in children {
                    if o == c {
                        continue;
                    }
                    let other = self.node_mbr(o);
                    before += mbr.overlap(other);
                    after += enlarged.overlap(other);
                }
                after - before
            } else {
                0.0
            };
            let key = [overlap_growth, area_growth, mbr.area()];
            if key_lt(&key, &best_key) {
                best_key = key;
                best = c;
            }
        }
        best
    }

    fn split_leaf(&mut self, node: NodeId) -> (NodeId, NodeId) {
        let idx = node.0 as usize;
        let entries = match &mut self.nodes[idx] {
            Node::Leaf { entries, .. } => std::mem::take(entries),
            Node::Internal { .. } | Node::Free => unreachable!("split_leaf on non-leaf node"),
        };
        let (a, b) =
            split_groups(entries, |e: &ObjectSummary<D>| e.support_mbr, self.config.min_entries());
        let mbr_a = group_mbr(a.iter().map(|e| e.support_mbr));
        let mbr_b = group_mbr(b.iter().map(|e| e.support_mbr));
        self.nodes[idx] = Node::Leaf { mbr: mbr_a, entries: a };
        let right = self.alloc(Node::Leaf { mbr: mbr_b, entries: b });
        (node, right)
    }

    fn split_internal(&mut self, node: NodeId) -> (NodeId, NodeId) {
        let idx = node.0 as usize;
        let children = match &mut self.nodes[idx] {
            Node::Internal { children, .. } => std::mem::take(children),
            Node::Leaf { .. } | Node::Free => unreachable!("split_internal on non-internal node"),
        };
        let mbrs: Vec<(NodeId, Mbr<D>)> =
            children.into_iter().map(|c| (c, *self.node_mbr(c))).collect();
        let (a, b) = split_groups(mbrs, |(_, m): &(NodeId, Mbr<D>)| *m, self.config.min_entries());
        let mbr_a = group_mbr(a.iter().map(|(_, m)| *m));
        let mbr_b = group_mbr(b.iter().map(|(_, m)| *m));
        self.nodes[idx] =
            Node::Internal { mbr: mbr_a, children: a.into_iter().map(|(c, _)| c).collect() };
        let right = self.alloc(Node::Internal {
            mbr: mbr_b,
            children: b.into_iter().map(|(c, _)| c).collect(),
        });
        (node, right)
    }
}

fn group_mbr<const D: usize>(mbrs: impl Iterator<Item = Mbr<D>>) -> Mbr<D> {
    mbrs.fold(Mbr::empty(), |acc, m| acc.union(&m))
}

/// R* topological split: choose the axis minimising the summed margins of
/// all candidate distributions, then the distribution minimising overlap
/// (ties: total area).
fn split_groups<T, const D: usize>(
    mut items: Vec<T>,
    mbr_of: impl Fn(&T) -> Mbr<D>,
    min_entries: usize,
) -> (Vec<T>, Vec<T>) {
    let n = items.len();
    debug_assert!(n >= 2);
    let m = min_entries.min(n / 2).max(1);

    // Pick the split axis by minimum total margin over all distributions
    // (sorting by lower bound; the full R* also tries upper bounds — the
    // lower-bound sort is the commonly used approximation).
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..D {
        items.sort_by(|a, b| mbr_of(a).lo(axis).total_cmp(&mbr_of(b).lo(axis)));
        let (pre, suf) = prefix_suffix_mbrs(&items, &mbr_of);
        let mut margin = 0.0;
        for split in m..=(n - m) {
            margin += pre[split - 1].margin() + suf[split].margin();
        }
        if margin < best_margin {
            best_margin = margin;
            best_axis = axis;
        }
    }

    items.sort_by(|a, b| mbr_of(a).lo(best_axis).total_cmp(&mbr_of(b).lo(best_axis)));
    let (pre, suf) = prefix_suffix_mbrs(&items, &mbr_of);
    let mut best_split = m;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for split in m..=(n - m) {
        let (left, right) = (&pre[split - 1], &suf[split]);
        // Tie-break on balance: collinear/duplicate data makes overlap and
        // area identical for every distribution, and always picking the
        // extreme split would degenerate the tree into a chain.
        let imbalance = (split as f64 - n as f64 / 2.0).abs();
        let key = (left.overlap(right), left.area() + right.area(), imbalance);
        if key < best_key {
            best_key = key;
            best_split = split;
        }
    }
    let tail = items.split_off(best_split);
    (items, tail)
}

fn prefix_suffix_mbrs<T, const D: usize>(
    items: &[T],
    mbr_of: &impl Fn(&T) -> Mbr<D>,
) -> (Vec<Mbr<D>>, Vec<Mbr<D>>) {
    let n = items.len();
    let mut pre = Vec::with_capacity(n);
    let mut acc = Mbr::empty();
    for it in items {
        acc = acc.union(&mbr_of(it));
        pre.push(acc);
    }
    let mut suf = vec![Mbr::empty(); n + 1];
    let mut acc = Mbr::empty();
    for i in (0..n).rev() {
        acc = acc.union(&mbr_of(&items[i]));
        suf[i] = acc;
    }
    (pre, suf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::RTreeConfig;
    use fuzzy_core::{FuzzyObject, ObjectId};
    use fuzzy_geom::Point;

    fn summary(id: u64, x: f64, y: f64) -> ObjectSummary<2> {
        let obj = FuzzyObject::new(
            ObjectId(id),
            vec![Point::xy(x, y), Point::xy(x + 0.3, y + 0.3)],
            vec![1.0, 0.5],
        )
        .unwrap();
        ObjectSummary::from_object(&obj)
    }

    #[test]
    fn incremental_inserts_preserve_invariants() {
        let mut tree: RTree<2> = RTree::new(RTreeConfig { max_entries: 8, min_fill: 0.4 });
        let mut state = 0x12345u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..500u64 {
            tree.insert(summary(i, rnd() * 100.0, rnd() * 100.0));
            if i % 97 == 0 {
                tree.validate().unwrap();
            }
        }
        assert_eq!(tree.len(), 500);
        tree.validate().unwrap();
        assert!(tree.height() >= 3);
        let mut ids: Vec<u64> = tree.iter_entries().map(|s| s.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..500u64).collect::<Vec<_>>());
    }

    #[test]
    fn clustered_inserts_stay_balanced() {
        let mut tree: RTree<2> = RTree::new(RTreeConfig { max_entries: 4, min_fill: 0.4 });
        // Pathological: all entries on a line.
        for i in 0..200u64 {
            tree.insert(summary(i, i as f64 * 0.1, 0.0));
        }
        tree.validate().unwrap();
        // Height of a node-capacity-4 tree over 200 entries: >= log_4(50).
        assert!(tree.height() <= 8, "degenerate height {}", tree.height());
    }

    #[test]
    fn split_groups_respects_min_entries() {
        let items: Vec<ObjectSummary<2>> = (0..10).map(|i| summary(i, i as f64, 0.0)).collect();
        let (a, b) = split_groups(items, |e| e.support_mbr, 4);
        assert!(a.len() >= 4 && b.len() >= 4);
        assert_eq!(a.len() + b.len(), 10);
    }

    /// `a` must appear within `b` in order (splits may *insert* a new
    /// sibling next to the split child, but never reorder survivors).
    fn is_subsequence(a: &[crate::NodeId], b: &[crate::NodeId]) -> bool {
        let mut it = b.iter();
        a.iter().all(|x| it.any(|y| y == x))
    }

    #[test]
    fn split_preserves_sibling_order() {
        // Regression: the split path used `retain` + two `push`es, which
        // moved the split child (and its new sibling) to the back of the
        // parent's child list, perturbing the deterministic order of
        // untouched siblings.
        let mut tree: RTree<2> = RTree::new(RTreeConfig { max_entries: 4, min_fill: 0.4 });
        let mut next = 0u64;
        for i in 0..30 {
            tree.insert(summary(next, (i % 10) as f64 * 8.0, (i / 10) as f64 * 8.0));
            next += 1;
        }
        assert!(tree.height() >= 2);
        // Hammer one cluster so its subtree splits repeatedly; after every
        // insert the previous sibling order of every surviving internal
        // node must be a subsequence of its new order.
        for round in 0..60u64 {
            let before: Vec<(crate::NodeId, Vec<crate::NodeId>)> = tree
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(i, n)| match n {
                    Node::Internal { children, .. } => {
                        Some((crate::NodeId(i as u32), children.clone()))
                    }
                    _ => None,
                })
                .collect();
            tree.insert(summary(next, 4.0 + (round % 3) as f64 * 0.1, 4.0));
            next += 1;
            for (id, old_children) in &before {
                if let Node::Internal { children, .. } = &tree.nodes[id.0 as usize] {
                    // When the node *itself* split, its children were
                    // re-partitioned spatially (some moved to the new
                    // sibling) — skip those. A node that kept every child
                    // must keep them in order, with at most one new
                    // sibling inserted next to its split child; the old
                    // `retain` + `push` code moved the split pair to the
                    // back instead.
                    if old_children.iter().all(|c| children.contains(c)) {
                        assert!(
                            is_subsequence(old_children, children),
                            "round {round}: node {} reordered {old_children:?} -> {children:?}",
                            id.0
                        );
                        if children.len() == old_children.len() + 1 {
                            let added =
                                children.iter().find(|c| !old_children.contains(c)).unwrap();
                            let pos = children.iter().position(|c| c == added).unwrap();
                            assert!(pos > 0, "new sibling sits right of its split child");
                        }
                    }
                }
            }
            tree.validate().unwrap();
        }
    }

    #[test]
    fn degenerate_geometry_stays_valid() {
        // Zero-area summaries at one position plus huge-coordinate
        // outliers: `enlarged.area() - mbr.area()` degenerates to
        // `inf - inf = NaN` once a node's MBR area overflows. The
        // total_cmp key keeps ChooseSubtree deterministic (NaN ranks after
        // +inf, so a poisoned candidate never wins) and the tree valid.
        fn point_summary(id: u64, x: f64, y: f64) -> ObjectSummary<2> {
            let obj = FuzzyObject::new(ObjectId(id), vec![Point::xy(x, y)], vec![1.0]).unwrap();
            ObjectSummary::from_object(&obj)
        }
        let mut tree: RTree<2> = RTree::new(RTreeConfig { max_entries: 4, min_fill: 0.4 });
        for i in 0..30u64 {
            tree.insert(point_summary(i, 0.0, 0.0));
        }
        // Spread outliers so node areas overflow f64 (1e160^2 = inf).
        for (j, i) in (30u64..50).enumerate() {
            let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
            tree.insert(point_summary(i, sign * 1e160, sign * 1e160));
        }
        for i in 50u64..80 {
            tree.insert(point_summary(i, (i - 50) as f64, 0.0));
        }
        assert_eq!(tree.len(), 80);
        tree.validate().unwrap();
        let mut ids: Vec<u64> = tree.iter_entries().map(|s| s.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..80u64).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_positions_split_fine() {
        let mut tree: RTree<2> = RTree::new(RTreeConfig { max_entries: 4, min_fill: 0.4 });
        for i in 0..50u64 {
            tree.insert(summary(i, 5.0, 5.0));
        }
        assert_eq!(tree.len(), 50);
        tree.validate().unwrap();
    }
}
