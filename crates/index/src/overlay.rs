//! A write overlay over the immutable paged index file: `OverlayRTree`.
//!
//! [`crate::PagedRTree`] is a read-only structure — its `.fzpt` file is
//! immutable until compaction (every page is checksummed and node ids are
//! page numbers, so in-place surgery would invalidate the layout).
//! `OverlayRTree` gives that file a write story:
//!
//! * **Inserts** accumulate in memory and are exposed to every
//!   [`NodeAccess`] read as *delta leaves* hanging off a virtual root
//!   (ids from the top of the `u32` range, so they can never collide with
//!   base page numbers).
//! * **Deletes** tombstone base ids; leaf reads filter tombstoned entries
//!   out before the query processor sees them. Base node MBRs may become
//!   loose — harmless for correctness, since traversals only use them as
//!   lower bounds — until compaction re-tightens everything.
//! * **Persistence**: the pending state round-trips through a checksummed
//!   sidecar delta log ([`fuzzy_store::DeltaLog`], `<index>.fzdl`), so a
//!   fresh process opening the same index file sees the same live set.
//! * **[`OverlayRTree::compact`]** folds base + overlay into a freshly
//!   STR-bulk-loaded index file (written to a temp path and atomically
//!   renamed over the original) and clears the sidecar.
//!
//! The query stack is generic over `NodeAccess`, so AKNN/RKNN/join/batch
//! run unmodified over an overlay; `fuzzy_query`'s epoch engine makes the
//! mutation path safe to share with concurrent readers.

use crate::access::{ChildRef, DecodedNode, NodeAccess, NodeRead, NodeView};
use crate::mutate::MutableIndex;
use crate::node::{NodeId, RTree, RTreeConfig};
use crate::paged::PagedRTree;
use fuzzy_core::{ObjectId, ObjectSummary};
use fuzzy_geom::Mbr;
use fuzzy_store::overlay::DeltaLog;
use fuzzy_store::StoreError;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Virtual node id of the overlay's root.
const VIRTUAL_ROOT: NodeId = NodeId(u32::MAX);
/// Delta leaf `i` lives at `DELTA_TOP - i`.
const DELTA_TOP: u32 = u32::MAX - 1;

/// Sidecar path of an index file's delta log: the index path with `.fzdl`
/// appended (`data.fzpt` → `data.fzpt.fzdl`).
pub fn delta_path_for(index: impl AsRef<Path>) -> PathBuf {
    let mut os = index.as_ref().as_os_str().to_owned();
    os.push(".fzdl");
    PathBuf::from(os)
}

fn corrupt(reason: impl Into<String>) -> StoreError {
    StoreError::Corrupt { reason: reason.into() }
}

/// A dynamic view over an immutable [`PagedRTree`]: base pages plus an
/// in-memory delta of inserted summaries and tombstoned ids.
///
/// Reads (`&self`, via [`NodeAccess`]) are thread-safe exactly like the
/// base tree's; mutation takes `&mut self`. Clones share the base file
/// handle (`Arc`) but copy the delta — which is what `fuzzy_query`'s
/// epoch publisher relies on to hand frozen snapshots to readers.
#[derive(Clone, Debug)]
pub struct OverlayRTree<const D: usize> {
    base: Arc<PagedRTree<D>>,
    /// Every object id stored in the base file (one leaf sweep at open).
    base_ids: HashSet<u64>,
    /// Summaries inserted since the last compaction, insertion order.
    inserted: Vec<ObjectSummary<D>>,
    /// Base ids deleted since the last compaction.
    tombstones: HashSet<u64>,
    /// Inserted summaries chunked into ready-made delta leaf nodes.
    delta_leaves: Vec<Arc<DecodedNode<D>>>,
    /// Virtual root: base root + delta leaves as children.
    root_node: Arc<DecodedNode<D>>,
    root_mbr: Mbr<D>,
    live_len: usize,
}

impl<const D: usize> OverlayRTree<D> {
    /// Wrap an open base tree with an empty delta.
    pub fn new(base: Arc<PagedRTree<D>>) -> Result<Self, StoreError> {
        Self::with_delta(base, DeltaLog::default())
    }

    /// Open an index file together with its sidecar delta log (a missing
    /// sidecar is the empty delta).
    pub fn open(index_path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with_cache(&index_path, crate::paged::DEFAULT_CACHE_PAGES)
    }

    /// [`OverlayRTree::open`] with an explicit buffer-pool capacity.
    pub fn open_with_cache(
        index_path: impl AsRef<Path>,
        cache_pages: usize,
    ) -> Result<Self, StoreError> {
        let base = Arc::new(PagedRTree::open_with_cache(&index_path, cache_pages)?);
        let delta = DeltaLog::load(delta_path_for(&index_path))?;
        Self::with_delta(base, delta)
    }

    /// Wrap an open base tree, replaying a delta log. Rejects logs that
    /// are inconsistent with the base (tombstones for unknown ids,
    /// inserts colliding with live ids).
    pub fn with_delta(base: Arc<PagedRTree<D>>, delta: DeltaLog<D>) -> Result<Self, StoreError> {
        let base_ids = Self::sweep_base_ids(&base)?;
        let mut out = Self {
            base,
            base_ids,
            inserted: Vec::new(),
            tombstones: HashSet::new(),
            delta_leaves: Vec::new(),
            root_node: Arc::new(DecodedNode::Internal(Vec::new())),
            root_mbr: Mbr::empty(),
            live_len: 0,
        };
        for &id in &delta.tombstones {
            if !out.base_ids.contains(&id) {
                return Err(corrupt(format!(
                    "delta log tombstones id {id} which the index file does not store"
                )));
            }
            if !out.tombstones.insert(id) {
                return Err(corrupt(format!("delta log tombstones id {id} twice")));
            }
        }
        for s in &delta.inserted {
            let id = s.id.0;
            let in_inserted = out.inserted.iter().any(|e| e.id.0 == id);
            if in_inserted || (out.base_ids.contains(&id) && !out.tombstones.contains(&id)) {
                return Err(corrupt(format!("delta log inserts id {id} which is already live")));
            }
            out.inserted.push(*s);
        }
        out.live_len = out.base.len() - out.tombstones.len() + out.inserted.len();
        out.rebuild_virtual();
        Ok(out)
    }

    /// One sweep over the base file's leaves, collecting every stored id.
    fn sweep_base_ids(base: &PagedRTree<D>) -> Result<HashSet<u64>, StoreError> {
        let mut ids = HashSet::with_capacity(base.len());
        let mut stack = vec![NodeAccess::root_id(base)];
        while let Some(id) = stack.pop() {
            let read = base.read_node(id)?;
            match read.view() {
                NodeView::Nodes(kids) => stack.extend(kids.iter().map(|c| c.id)),
                NodeView::Entries(entries) => {
                    for e in entries {
                        if !ids.insert(e.id.0) {
                            return Err(corrupt(format!("index file stores id {} twice", e.id.0)));
                        }
                    }
                }
            }
        }
        if ids.len() != base.len() {
            return Err(corrupt(format!(
                "index header says {} objects, leaves store {}",
                base.len(),
                ids.len()
            )));
        }
        Ok(ids)
    }

    /// Rechunk every inserted summary into delta leaves and rebuild the
    /// virtual root from scratch. Needed when existing chunks changed
    /// shape (a delete from `inserted` shifts everything after it); the
    /// common append path uses [`Self::append_virtual`] instead.
    fn rebuild_virtual(&mut self) {
        let cap = self.chunk_cap();
        self.delta_leaves.clear();
        let mut children = Vec::with_capacity(1 + self.inserted.len() / cap);
        children.push(ChildRef {
            id: NodeAccess::root_id(self.base.as_ref()),
            mbr: self.base.root_mbr(),
        });
        let mut mbr = self.base.root_mbr();
        for (i, chunk) in self.inserted.chunks(cap).enumerate() {
            let chunk_mbr = chunk.iter().fold(Mbr::empty(), |acc, e| acc.union(&e.support_mbr));
            children.push(ChildRef { id: self.delta_leaf_id(i), mbr: chunk_mbr });
            mbr = mbr.union(&chunk_mbr);
            self.delta_leaves.push(Arc::new(DecodedNode::Leaf(chunk.to_vec())));
        }
        self.root_node = Arc::new(DecodedNode::Internal(children));
        self.root_mbr = mbr;
    }

    /// Incrementally account for the just-appended last element of
    /// `inserted`: only the final delta chunk is re-materialized, so a
    /// batch of `m` inserts costs O(m) total instead of the O(m²) a full
    /// rechunk per append would.
    fn append_virtual(&mut self) {
        let cap = self.chunk_cap();
        let entry = *self.inserted.last().expect("append_virtual after a push");
        let last_chunk = self.inserted.chunks(cap).next_back().expect("non-empty");
        let chunk_index = (self.inserted.len() - 1) / cap;
        let chunk_mbr = last_chunk.iter().fold(Mbr::empty(), |acc, e| acc.union(&e.support_mbr));
        let leaf = Arc::new(DecodedNode::Leaf(last_chunk.to_vec()));
        let child = ChildRef { id: self.delta_leaf_id(chunk_index), mbr: chunk_mbr };
        let mut children = match self.root_node.as_ref() {
            DecodedNode::Internal(children) => children.clone(),
            DecodedNode::Leaf(_) => unreachable!("virtual root is always internal"),
        };
        if chunk_index < self.delta_leaves.len() {
            self.delta_leaves[chunk_index] = leaf;
            children[1 + chunk_index] = child; // children[0] is the base root
        } else {
            self.delta_leaves.push(leaf);
            children.push(child);
        }
        self.root_node = Arc::new(DecodedNode::Internal(children));
        self.root_mbr = self.root_mbr.union(&entry.support_mbr);
    }

    fn chunk_cap(&self) -> usize {
        self.base.config().max_entries.max(1)
    }

    fn delta_leaf_id(&self, chunk_index: usize) -> NodeId {
        let id = NodeId(DELTA_TOP - chunk_index as u32);
        assert!((id.0 as usize) > self.base.page_count(), "delta leaves collide with base pages");
        id
    }

    /// Is `id` in the live set (base minus tombstones, plus inserts)?
    pub fn contains_id(&self, id: ObjectId) -> bool {
        self.inserted.iter().any(|e| e.id == id)
            || (self.base_ids.contains(&id.0) && !self.tombstones.contains(&id.0))
    }

    /// Insert a summary unless its id is already live. Returns `true`
    /// when inserted.
    pub fn insert(&mut self, entry: ObjectSummary<D>) -> bool {
        if self.contains_id(entry.id) {
            return false;
        }
        // A tombstoned base id being re-inserted keeps its tombstone: the
        // stale base copy must stay hidden behind the new summary.
        self.inserted.push(entry);
        self.live_len += 1;
        self.append_virtual();
        true
    }

    /// Delete the entry with `id` from the live set. Returns `true` when
    /// it existed.
    pub fn delete(&mut self, id: ObjectId) -> bool {
        if let Some(pos) = self.inserted.iter().position(|e| e.id == id) {
            // Removal shifts every later pending insert: rechunk.
            self.inserted.remove(pos);
            self.live_len -= 1;
            self.rebuild_virtual();
            true
        } else if self.base_ids.contains(&id.0) && self.tombstones.insert(id.0) {
            // Tombstones only filter base leaf reads; the delta leaves and
            // the (conservative) root MBR are untouched.
            self.live_len -= 1;
            true
        } else {
            false
        }
    }

    /// Replace the summary of `entry.id` (delete + insert). Returns
    /// `true` when an existing entry was replaced.
    pub fn update(&mut self, entry: ObjectSummary<D>) -> bool {
        let existed = self.delete(entry.id);
        let inserted = self.insert(entry);
        debug_assert!(inserted);
        existed
    }

    /// The current pending state as a delta log (tombstones ascending).
    pub fn delta(&self) -> DeltaLog<D> {
        let mut tombstones: Vec<u64> = self.tombstones.iter().copied().collect();
        tombstones.sort_unstable();
        DeltaLog { inserted: self.inserted.clone(), tombstones }
    }

    /// True when no mutations are pending (reads pass straight through to
    /// base pages).
    pub fn is_clean(&self) -> bool {
        self.inserted.is_empty() && self.tombstones.is_empty()
    }

    /// Number of pending inserts.
    pub fn pending_inserts(&self) -> usize {
        self.inserted.len()
    }

    /// Number of pending tombstones.
    pub fn pending_tombstones(&self) -> usize {
        self.tombstones.len()
    }

    /// The wrapped base tree.
    pub fn base(&self) -> &PagedRTree<D> {
        &self.base
    }

    /// Persist the pending state to the base file's sidecar
    /// (`<index>.fzdl`). An empty delta removes the sidecar instead, so a
    /// clean index has no stray companion file.
    pub fn save_delta(&self) -> Result<(), StoreError> {
        let path = delta_path_for(self.base.path());
        let delta = self.delta();
        if delta.is_empty() {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
            return Ok(());
        }
        delta.save(path)
    }

    /// The live object set: base summaries in leaf-page order with
    /// tombstones filtered out, then the pending inserts in insertion
    /// order. This is the input order compaction feeds the bulk loader.
    pub fn live_summaries(&self) -> Result<Vec<ObjectSummary<D>>, StoreError> {
        let mut out = Vec::with_capacity(self.live_len);
        for page in 0..self.base.page_count() {
            let read = self.base.read_node(NodeId(page as u32))?;
            if let NodeView::Entries(entries) = read.view() {
                out.extend(entries.iter().filter(|e| !self.tombstones.contains(&e.id.0)).copied());
            }
        }
        out.extend(self.inserted.iter().copied());
        debug_assert_eq!(out.len(), self.live_len);
        Ok(out)
    }

    /// Fold base + overlay into a freshly bulk-loaded index file and
    /// reopen it: the live set is STR-packed ([`RTree::bulk_load`]),
    /// written to `<index>.compact.tmp`, atomically renamed over the
    /// index path, and the sidecar delta log is removed. Consumes the
    /// overlay; the returned tree reads the rewritten file.
    pub fn compact(self, page_size: u32) -> Result<PagedRTree<D>, StoreError> {
        let live = self.live_summaries()?;
        let path = self.base.path().to_path_buf();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".compact.tmp");
        let tmp = PathBuf::from(tmp);
        let fresh = RTree::bulk_load(live, self.base.config());
        PagedRTree::write_tree(&fresh, &tmp, page_size)?;
        std::fs::rename(&tmp, &path)?;
        match std::fs::remove_file(delta_path_for(&path)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        drop(self.base); // release the old file handle before reopening
        PagedRTree::open(&path)
    }

    /// The base tree's configuration (delta leaves chunk at its
    /// `max_entries`).
    pub fn config(&self) -> RTreeConfig {
        self.base.config()
    }
}

impl<const D: usize> NodeAccess<D> for OverlayRTree<D> {
    fn root_id(&self) -> NodeId {
        VIRTUAL_ROOT
    }

    fn root_mbr(&self) -> Mbr<D> {
        self.root_mbr
    }

    fn read_node(&self, id: NodeId) -> Result<NodeRead<'_, D>, StoreError> {
        if id == VIRTUAL_ROOT {
            return Ok(NodeRead::from_page(Arc::clone(&self.root_node), false));
        }
        if id.0 > DELTA_TOP - self.delta_leaves.len() as u32 && id.0 <= DELTA_TOP {
            let chunk = (DELTA_TOP - id.0) as usize;
            return Ok(NodeRead::from_page(Arc::clone(&self.delta_leaves[chunk]), false));
        }
        let read = self.base.read_node(id)?;
        // Leaf pages are filtered through the tombstone set before the
        // query processor sees them; untouched pages pass through.
        let filtered: Option<Vec<ObjectSummary<D>>> = match read.view() {
            NodeView::Entries(entries)
                if !self.tombstones.is_empty()
                    && entries.iter().any(|e| self.tombstones.contains(&e.id.0)) =>
            {
                Some(
                    entries
                        .iter()
                        .filter(|e| !self.tombstones.contains(&e.id.0))
                        .copied()
                        .collect(),
                )
            }
            _ => None,
        };
        match filtered {
            Some(entries) => {
                Ok(NodeRead::from_page(Arc::new(DecodedNode::Leaf(entries)), read.disk_read))
            }
            None => Ok(read),
        }
    }

    fn len(&self) -> usize {
        self.live_len
    }

    /// Base height plus the virtual root level. Overlay "leaves" are not
    /// all at one depth (delta leaves hang directly off the virtual
    /// root); best-first traversals do not care.
    fn height(&self) -> usize {
        NodeAccess::height(self.base.as_ref()) + 1
    }
}

impl<const D: usize> MutableIndex<D> for OverlayRTree<D> {
    fn insert_summary(&mut self, entry: ObjectSummary<D>) -> Result<bool, StoreError> {
        Ok(self.insert(entry))
    }

    fn delete_id(&mut self, id: ObjectId) -> Result<bool, StoreError> {
        Ok(self.delete(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access;
    use fuzzy_core::FuzzyObject;
    use fuzzy_geom::Point;

    fn summary(id: u64, x: f64, y: f64) -> ObjectSummary<2> {
        let obj = FuzzyObject::new(
            ObjectId(id),
            vec![Point::xy(x, y), Point::xy(x + 0.5, y + 0.5)],
            vec![1.0, 0.5],
        )
        .unwrap();
        ObjectSummary::from_object(&obj)
    }

    /// Grid with per-id jitter: overlay and freshly bulk-loaded trees have
    /// different shapes, so exact distance ties would legitimately resolve
    /// differently; tie-free geometry keeps answer comparisons exact.
    fn grid(n: u64) -> Vec<ObjectSummary<2>> {
        (0..n)
            .map(|i| {
                let x = (i % 20) as f64 * 1.5 + i as f64 * 1.1e-3;
                let y = (i / 20) as f64 * 1.5 + i as f64 * 0.7e-3;
                summary(i, x, y)
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fz-overlay-{}-{name}.fzpt", std::process::id()))
    }

    fn knn_ids<A: NodeAccess<2>>(tree: &A, q: Point<2>, k: usize) -> Vec<u64> {
        access::knn_by(
            tree,
            k,
            |m| m.min_dist_point(&q),
            |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&q),
        )
        .unwrap()
        .into_iter()
        .map(|h| h.entry.id.0)
        .collect()
    }

    #[test]
    fn overlay_tracks_the_live_set() {
        let path = tmp("live");
        let cfg = RTreeConfig { max_entries: 8, min_fill: 0.4 };
        let base = Arc::new(PagedRTree::bulk_write(grid(150), cfg, &path, 4096).unwrap());
        let mut ov = OverlayRTree::new(Arc::clone(&base)).unwrap();
        assert_eq!(NodeAccess::len(&ov), 150);
        assert!(ov.is_clean());

        assert!(ov.delete(ObjectId(10)));
        assert!(!ov.delete(ObjectId(10)), "double delete");
        assert!(ov.insert(summary(500, 3.0, 3.0)));
        assert!(!ov.insert(summary(500, 3.0, 3.0)), "duplicate insert");
        assert!(!ov.insert(summary(12, 0.0, 0.0)), "id 12 still live in base");
        assert_eq!(NodeAccess::len(&ov), 150);
        assert!(ov.contains_id(ObjectId(500)));
        assert!(!ov.contains_id(ObjectId(10)));

        // Re-inserting a tombstoned base id shadows the stale base copy.
        assert!(ov.insert(summary(10, 99.0, 99.0)));
        let live = ov.live_summaries().unwrap();
        let copies: Vec<&ObjectSummary<2>> = live.iter().filter(|e| e.id.0 == 10).collect();
        assert_eq!(copies.len(), 1);
        assert!(copies[0].support_mbr.lo(0) >= 99.0, "new summary wins");

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn searches_match_a_fresh_tree_over_the_same_live_set() {
        let path = tmp("search");
        let cfg = RTreeConfig { max_entries: 8, min_fill: 0.4 };
        let base = Arc::new(PagedRTree::bulk_write(grid(200), cfg, &path, 4096).unwrap());
        let mut ov = OverlayRTree::new(base).unwrap();
        for id in (0..200).step_by(3) {
            assert!(ov.delete(ObjectId(id)));
        }
        for i in 0..40u64 {
            let (x, y) = ((i % 7) as f64 * 2.0 + i as f64 * 1.3e-3, 30.0 + i as f64);
            assert!(ov.insert(summary(1000 + i, x, y)));
        }
        let fresh = RTree::bulk_load(ov.live_summaries().unwrap(), cfg);
        fresh.validate().unwrap();
        for q in [Point::xy(0.0, 0.0), Point::xy(14.0, 36.0), Point::xy(100.0, -5.0)] {
            for k in [1usize, 5, 23] {
                assert_eq!(knn_ids(&ov, q, k), knn_ids(&fresh, q, k), "q={q:?} k={k}");
            }
            for radius in [0.0, 4.0, 50.0] {
                let a = access::range_search(
                    &ov,
                    radius,
                    |m| m.min_dist_point(&q),
                    |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&q),
                )
                .unwrap();
                let mut a: Vec<u64> = a.hits.into_iter().map(|h| h.entry.id.0).collect();
                a.sort_unstable();
                let b = access::range_search(
                    &fresh,
                    radius,
                    |m| m.min_dist_point(&q),
                    |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&q),
                )
                .unwrap();
                let mut b: Vec<u64> = b.hits.into_iter().map(|h| h.entry.id.0).collect();
                b.sort_unstable();
                assert_eq!(a, b, "q={q:?} radius={radius}");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn delta_roundtrip_and_compact() {
        let path = tmp("compact");
        let cfg = RTreeConfig { max_entries: 8, min_fill: 0.4 };
        {
            let base = Arc::new(PagedRTree::bulk_write(grid(120), cfg, &path, 4096).unwrap());
            let mut ov = OverlayRTree::new(base).unwrap();
            for id in [5u64, 50, 119] {
                assert!(ov.delete(ObjectId(id)));
            }
            for i in 0..10u64 {
                assert!(ov.insert(summary(2000 + i, i as f64, -4.0)));
            }
            ov.save_delta().unwrap();
        }
        // A fresh open sees the sidecar.
        let ov: OverlayRTree<2> = OverlayRTree::open(&path).unwrap();
        assert_eq!(NodeAccess::len(&ov), 127);
        assert_eq!(ov.pending_inserts(), 10);
        assert_eq!(ov.pending_tombstones(), 3);
        let want = {
            let mut ids: Vec<u64> = ov.live_summaries().unwrap().iter().map(|e| e.id.0).collect();
            ids.sort_unstable();
            ids
        };
        // Compaction folds the delta into the file and removes the sidecar.
        let compacted = ov.compact(4096).unwrap();
        assert_eq!(NodeAccess::len(&compacted), 127);
        assert!(!delta_path_for(&path).exists());
        let reopened: OverlayRTree<2> = OverlayRTree::open(&path).unwrap();
        assert!(reopened.is_clean());
        let mut got: Vec<u64> = reopened.live_summaries().unwrap().iter().map(|e| e.id.0).collect();
        got.sort_unstable();
        assert_eq!(got, want);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn incremental_virtual_maintenance_matches_full_rebuild() {
        // insert() maintains the delta leaves incrementally (only the
        // tail chunk is re-materialized) and tombstones skip the rebuild
        // entirely; the result must be indistinguishable from an overlay
        // rebuilt from scratch off the same delta log.
        let path = tmp("incremental");
        let cfg = RTreeConfig { max_entries: 8, min_fill: 0.4 };
        let base = Arc::new(PagedRTree::bulk_write(grid(100), cfg, &path, 4096).unwrap());
        let mut ov = OverlayRTree::new(Arc::clone(&base)).unwrap();
        let mut state = 0xABCDu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..60u64 {
            match rnd() % 3 {
                0 => {
                    ov.delete(ObjectId(rnd() % 100));
                }
                1 => {
                    ov.delete(ObjectId(1000 + rnd() % 60));
                }
                _ => {
                    ov.insert(summary(1000 + i, (i % 9) as f64, 50.0 + i as f64 * 0.1));
                }
            }
        }
        let rebuilt = OverlayRTree::with_delta(Arc::clone(&base), ov.delta()).unwrap();
        assert_eq!(NodeAccess::len(&ov), NodeAccess::len(&rebuilt));
        assert_eq!(ov.root_mbr(), rebuilt.root_mbr());
        assert_eq!(ov.delta_leaves.len(), rebuilt.delta_leaves.len());
        for (a, b) in ov.delta_leaves.iter().zip(&rebuilt.delta_leaves) {
            match (a.as_ref(), b.as_ref()) {
                (DecodedNode::Leaf(x), DecodedNode::Leaf(y)) => {
                    assert_eq!(x.len(), y.len());
                    for (ea, eb) in x.iter().zip(y) {
                        assert_eq!(ea.id, eb.id);
                    }
                }
                _ => panic!("delta chunks must be leaves"),
            }
        }
        for q in [Point::xy(3.0, 52.0), Point::xy(20.0, 10.0)] {
            assert_eq!(knn_ids(&ov, q, 9), knn_ids(&rebuilt, q, 9), "q={q:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn inconsistent_delta_logs_are_rejected() {
        let path = tmp("reject");
        let cfg = RTreeConfig { max_entries: 8, min_fill: 0.4 };
        let base = Arc::new(PagedRTree::bulk_write(grid(30), cfg, &path, 4096).unwrap());
        // Tombstone for an id the file does not store.
        let bad = DeltaLog::<2> { inserted: vec![], tombstones: vec![999] };
        assert!(matches!(
            OverlayRTree::with_delta(Arc::clone(&base), bad).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        // Insert colliding with a live base id.
        let bad = DeltaLog::<2> { inserted: vec![summary(3, 0.0, 0.0)], tombstones: vec![] };
        assert!(matches!(
            OverlayRTree::with_delta(Arc::clone(&base), bad).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_base_supports_pure_insert_workloads() {
        let path = tmp("emptybase");
        let base = Arc::new(
            PagedRTree::bulk_write(Vec::new(), RTreeConfig::default(), &path, 16 * 1024).unwrap(),
        );
        let mut ov = OverlayRTree::new(base).unwrap();
        assert!(NodeAccess::is_empty(&ov));
        for i in 0..100u64 {
            assert!(ov.insert(summary(i, (i % 10) as f64, (i / 10) as f64)));
        }
        assert_eq!(NodeAccess::len(&ov), 100);
        assert_eq!(knn_ids(&ov, Point::xy(0.0, 0.0), 1), vec![0]);
        std::fs::remove_file(&path).unwrap();
    }
}
