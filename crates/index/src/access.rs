//! The [`NodeAccess`] abstraction: one navigation interface over both the
//! in-memory [`RTree`] and the disk-resident [`crate::PagedRTree`].
//!
//! The paper's cost model (§6) charges queries by *node accesses* because
//! the index is assumed to live on secondary storage. `NodeAccess` makes
//! that assumption explicit: a single `read_node` primitive hands back a
//! node's children — child rectangles for internal nodes, object summaries
//! for leaves — together with the read's provenance (backing medium vs
//! buffer pool), so query processors can charge exact per-query I/O
//! regardless of which backend they run on. The query crate
//! (`fuzzy-query`) is generic over this trait; the determinism suite
//! proves both backends return byte-identical answers.
//!
//! ```
//! use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
//! use fuzzy_geom::Point;
//! use fuzzy_index::{knn_by, NodeAccess, RTree, RTreeConfig};
//!
//! // A generic nearest-entry helper that works on *any* index backend.
//! fn nearest_id<A: NodeAccess<2>>(index: &A, q: Point<2>) -> Option<ObjectId> {
//!     let hits = knn_by(
//!         index,
//!         1,
//!         |mbr| mbr.min_dist_point(&q),
//!         |e: &ObjectSummary<2>| e.support_mbr.min_dist_point(&q),
//!     )
//!     .unwrap();
//!     hits.first().map(|h| h.entry.id)
//! }
//!
//! let summaries: Vec<ObjectSummary<2>> = (0..32)
//!     .map(|i| {
//!         let obj = FuzzyObject::new(
//!             ObjectId(i),
//!             vec![Point::xy(i as f64, 0.0), Point::xy(i as f64 + 0.2, 0.2)],
//!             vec![1.0, 0.5],
//!         )
//!         .unwrap();
//!         ObjectSummary::from_object(&obj)
//!     })
//!     .collect();
//! let tree = RTree::bulk_load(summaries, RTreeConfig::default());
//! assert_eq!(nearest_id(&tree, Point::xy(10.1, 0.0)), Some(ObjectId(10)));
//! ```

use crate::node::{Children, NodeId, RTree};
use crate::query::{EntryHit, RangeResult};
use fuzzy_core::ObjectSummary;
use fuzzy_geom::Mbr;
use fuzzy_store::StoreError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A child pointer as stored inside its parent node: the paper's I/O model
/// keeps every child's rectangle *in the parent page*, so scoring a child
/// never costs a node access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChildRef<const D: usize> {
    /// The child node.
    pub id: NodeId,
    /// The child's minimum bounding rectangle.
    pub mbr: Mbr<D>,
}

/// What a node holds, borrowed from whichever backing the read came from.
#[derive(Clone, Copy, Debug)]
pub enum NodeView<'a, const D: usize> {
    /// Internal node: child pointers with their rectangles.
    Nodes(&'a [ChildRef<D>]),
    /// Leaf node: the object summaries it stores.
    Entries(&'a [ObjectSummary<D>]),
}

/// A fully decoded node, as cached by the paged backend's buffer pool.
#[derive(Clone, Debug)]
pub enum DecodedNode<const D: usize> {
    /// Internal node payload.
    Internal(Vec<ChildRef<D>>),
    /// Leaf node payload.
    Leaf(Vec<ObjectSummary<D>>),
}

impl<const D: usize> DecodedNode<D> {
    /// Borrow the node contents.
    pub fn view(&self) -> NodeView<'_, D> {
        match self {
            Self::Internal(children) => NodeView::Nodes(children),
            Self::Leaf(entries) => NodeView::Entries(entries),
        }
    }
}

#[derive(Debug)]
enum ReadKind<'t, const D: usize> {
    /// Internal node of the in-memory tree (child MBRs gathered from the
    /// arena into an owned buffer).
    MemInternal(Vec<ChildRef<D>>),
    /// Leaf of the in-memory tree, borrowed straight from the arena.
    MemLeaf(&'t [ObjectSummary<D>]),
    /// A buffer-pool page; the `Arc` keeps it alive while borrowed.
    Paged(Arc<DecodedNode<D>>),
}

/// One node read: the children plus the read's provenance. Holding the
/// guard keeps the underlying page resident; drop it when done.
#[derive(Debug)]
pub struct NodeRead<'t, const D: usize> {
    kind: ReadKind<'t, D>,
    /// True when serving this node touched the backing medium; false for
    /// in-memory arenas and buffer-pool hits. This is the node-level
    /// analogue of `fuzzy_store::TracedProbe::disk_read`.
    pub disk_read: bool,
}

impl<'t, const D: usize> NodeRead<'t, D> {
    /// A read served from the in-memory arena.
    pub fn from_memory(children: Children<'t, D>, child_mbrs: impl Fn(NodeId) -> Mbr<D>) -> Self {
        let kind = match children {
            Children::Nodes(ids) => ReadKind::MemInternal(
                ids.iter().map(|&id| ChildRef { id, mbr: child_mbrs(id) }).collect(),
            ),
            Children::Entries(entries) => ReadKind::MemLeaf(entries),
        };
        Self { kind, disk_read: false }
    }

    /// A read served by a buffer pool.
    pub fn from_page(page: Arc<DecodedNode<D>>, disk_read: bool) -> Self {
        Self { kind: ReadKind::Paged(page), disk_read }
    }

    /// Borrow the node contents.
    pub fn view(&self) -> NodeView<'_, D> {
        match &self.kind {
            ReadKind::MemInternal(children) => NodeView::Nodes(children),
            ReadKind::MemLeaf(entries) => NodeView::Entries(entries),
            ReadKind::Paged(node) => node.view(),
        }
    }
}

/// Uniform navigation over an R-tree, independent of where its nodes live.
///
/// Implementors: [`RTree`] (arena in memory, reads never fail and never
/// touch a backing medium) and [`crate::PagedRTree`] (fixed-size pages in
/// an index file behind an LRU buffer pool). Query processors that only
/// use this trait — all of `fuzzy-query` — run unmodified against either.
pub trait NodeAccess<const D: usize> {
    /// Root node id.
    fn root_id(&self) -> NodeId;

    /// Root rectangle (available without a node access: parents store
    /// child rectangles, and the root's is kept in the tree header).
    fn root_mbr(&self) -> Mbr<D>;

    /// Read one node. This is **the** node access of the paper's cost
    /// model: every call counts one logical access, and the returned
    /// [`NodeRead::disk_read`] flag reports whether it reached the
    /// backing medium.
    fn read_node(&self, id: NodeId) -> Result<NodeRead<'_, D>, StoreError>;

    /// Number of indexed objects.
    fn len(&self) -> usize;

    /// True when no objects are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree height (1 = the root is a leaf).
    fn height(&self) -> usize;
}

/// Shared-ownership delegation: a shard forest is naturally a
/// `Vec<Arc<Tree>>` (clones of a sharded index share file handles), and
/// query code generic over `A: NodeAccess<D>` should accept the `Arc`s
/// directly.
impl<A: NodeAccess<D> + ?Sized, const D: usize> NodeAccess<D> for Arc<A> {
    fn root_id(&self) -> NodeId {
        (**self).root_id()
    }

    fn root_mbr(&self) -> Mbr<D> {
        (**self).root_mbr()
    }

    fn read_node(&self, id: NodeId) -> Result<NodeRead<'_, D>, StoreError> {
        (**self).read_node(id)
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn height(&self) -> usize {
        (**self).height()
    }
}

impl<const D: usize> NodeAccess<D> for RTree<D> {
    fn root_id(&self) -> NodeId {
        RTree::root_id(self)
    }

    fn root_mbr(&self) -> Mbr<D> {
        *self.node_mbr(RTree::root_id(self))
    }

    fn read_node(&self, id: NodeId) -> Result<NodeRead<'_, D>, StoreError> {
        Ok(NodeRead::from_memory(self.expand(id), |child| *self.node_mbr(child)))
    }

    fn len(&self) -> usize {
        RTree::len(self)
    }

    fn height(&self) -> usize {
        RTree::height(self)
    }
}

/// Max-heap adapter turning [`BinaryHeap`] into a min-heap on `f64` keys
/// (ordered by `total_cmp`, reversed). Shared by every best-first
/// traversal in the workspace — the generic searches here and the AKNN
/// engine in `fuzzy-query` — so tie-breaking and NaN policy cannot
/// silently diverge between backends.
pub struct MinKey<T> {
    /// The ordering key (smaller pops first).
    pub key: f64,
    /// The carried payload.
    pub item: T,
}

impl<T> PartialEq for MinKey<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for MinKey<T> {}
impl<T> PartialOrd for MinKey<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for MinKey<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.total_cmp(&self.key) // reversed: BinaryHeap is a max-heap
    }
}

/// Generic best-first k-nearest-entries search over any [`NodeAccess`]
/// backend.
///
/// `node_key` must lower-bound `entry_key` for every entry in a node's
/// subtree (the usual `MinDist` property, Eq. 1); under that contract the
/// traversal is provably correct and expands the minimum number of nodes
/// (Hjaltason & Samet, ref. \[11\] of the paper).
pub fn knn_by<A: NodeAccess<D> + ?Sized, const D: usize>(
    tree: &A,
    k: usize,
    node_key: impl Fn(&Mbr<D>) -> f64,
    entry_key: impl Fn(&ObjectSummary<D>) -> f64,
) -> Result<Vec<EntryHit<D>>, StoreError> {
    enum Item<const D: usize> {
        Node(NodeId),
        Entry(ObjectSummary<D>),
    }
    let mut heap: BinaryHeap<MinKey<Item<D>>> = BinaryHeap::new();
    heap.push(MinKey { key: node_key(&tree.root_mbr()), item: Item::Node(tree.root_id()) });
    let mut out = Vec::with_capacity(k);
    while let Some(MinKey { item, key }) = heap.pop() {
        match item {
            Item::Entry(e) => {
                out.push(EntryHit { entry: e, score: key });
                if out.len() == k {
                    break;
                }
            }
            Item::Node(id) => {
                let read = tree.read_node(id)?;
                match read.view() {
                    NodeView::Nodes(kids) => {
                        for c in kids {
                            heap.push(MinKey { key: node_key(&c.mbr), item: Item::Node(c.id) });
                        }
                    }
                    NodeView::Entries(entries) => {
                        for e in entries {
                            heap.push(MinKey { key: entry_key(e), item: Item::Entry(*e) });
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Generic range search over any [`NodeAccess`] backend: collect every
/// entry whose `entry_key` is at most `radius`, pruning subtrees whose
/// `node_key` exceeds it. With `node_key = MinDist` this is the search of
/// Algorithm 4 (RSS candidate collection).
pub fn range_search<A: NodeAccess<D> + ?Sized, const D: usize>(
    tree: &A,
    radius: f64,
    node_key: impl Fn(&Mbr<D>) -> f64,
    entry_key: impl Fn(&ObjectSummary<D>) -> f64,
) -> Result<RangeResult<D>, StoreError> {
    let mut result = RangeResult::default();
    let mut stack = vec![(tree.root_id(), tree.root_mbr())];
    while let Some((id, mbr)) = stack.pop() {
        if node_key(&mbr) > radius {
            continue;
        }
        let read = tree.read_node(id)?;
        result.node_accesses += 1;
        result.node_disk_reads += read.disk_read as u64;
        match read.view() {
            NodeView::Nodes(kids) => stack.extend(kids.iter().map(|c| (c.id, c.mbr))),
            NodeView::Entries(entries) => {
                for e in entries {
                    let score = entry_key(e);
                    if score <= radius {
                        result.hits.push(EntryHit { entry: *e, score });
                    }
                }
            }
        }
    }
    Ok(result)
}
