//! Structural invariant checking, used by tests and debug assertions.

use crate::node::{Node, NodeId, RTree};
use std::collections::HashSet;
use std::fmt;

/// A violated R-tree invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// A child's MBR is not contained in its parent's.
    ChildNotContained {
        /// Parent node id.
        parent: u32,
        /// Index of the offending child.
        child_index: usize,
    },
    /// A node's MBR is not the tight union of its children.
    LooseMbr {
        /// Node id with the loose MBR.
        node: u32,
    },
    /// A non-root node violates the fanout bounds.
    BadFanout {
        /// Node id.
        node: u32,
        /// Observed fanout.
        fanout: usize,
        /// Allowed range.
        min: usize,
        /// Allowed maximum.
        max: usize,
    },
    /// Leaves are not all at the same depth.
    UnevenDepth {
        /// Depth found.
        found: usize,
        /// Depth expected (height).
        expected: usize,
    },
    /// An entry id occurs in more than one leaf.
    DuplicateEntry {
        /// The duplicated object id.
        id: u64,
    },
    /// `len()` does not match the number of stored entries.
    WrongLen {
        /// Stored entry count.
        stored: usize,
        /// `len()` value.
        reported: usize,
    },
    /// A node is referenced by two parents (arena corruption).
    SharedNode {
        /// The shared node id.
        node: u32,
    },
    /// A freed arena slot is reachable from the root (dangling child
    /// pointer left behind by `delete`'s condense step).
    FreeNodeReachable {
        /// The freed node id.
        node: u32,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ValidationError {}

impl<const D: usize> RTree<D> {
    /// Check every structural invariant; `Ok(())` for a well-formed tree.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let mut seen_nodes: HashSet<u32> = HashSet::new();
        let mut seen_entries: HashSet<u64> = HashSet::new();
        let mut entry_count = 0usize;
        self.validate_rec(self.root, 1, &mut seen_nodes, &mut seen_entries, &mut entry_count)?;
        if entry_count != self.len() {
            return Err(ValidationError::WrongLen { stored: entry_count, reported: self.len() });
        }
        Ok(())
    }

    fn validate_rec(
        &self,
        id: NodeId,
        depth: usize,
        seen_nodes: &mut HashSet<u32>,
        seen_entries: &mut HashSet<u64>,
        entry_count: &mut usize,
    ) -> Result<(), ValidationError> {
        if !seen_nodes.insert(id.0) {
            return Err(ValidationError::SharedNode { node: id.0 });
        }
        let node = &self.nodes[id.0 as usize];
        let is_root = id == self.root;
        let max = self.config.max_entries;
        match node {
            Node::Free => return Err(ValidationError::FreeNodeReachable { node: id.0 }),
            Node::Leaf { mbr, entries } => {
                if depth != self.height {
                    return Err(ValidationError::UnevenDepth {
                        found: depth,
                        expected: self.height,
                    });
                }
                // Root leaf may hold 0..=max entries; other leaves must
                // respect the minimum fill.
                let min = if is_root { 0 } else { self.config.min_entries() };
                if entries.len() > max || entries.len() < min {
                    return Err(ValidationError::BadFanout {
                        node: id.0,
                        fanout: entries.len(),
                        min,
                        max,
                    });
                }
                let mut tight = fuzzy_geom::Mbr::empty();
                for (i, e) in entries.iter().enumerate() {
                    if !mbr.contains_mbr(&e.support_mbr) {
                        return Err(ValidationError::ChildNotContained {
                            parent: id.0,
                            child_index: i,
                        });
                    }
                    tight = tight.union(&e.support_mbr);
                    if !seen_entries.insert(e.id.0) {
                        return Err(ValidationError::DuplicateEntry { id: e.id.0 });
                    }
                }
                *entry_count += entries.len();
                if !entries.is_empty() && tight != *mbr {
                    return Err(ValidationError::LooseMbr { node: id.0 });
                }
            }
            Node::Internal { mbr, children } => {
                // An internal root needs at least two children; other
                // internal nodes respect the minimum fill.
                let min = if is_root { 2 } else { self.config.min_entries() };
                if children.len() > max || children.len() < min {
                    return Err(ValidationError::BadFanout {
                        node: id.0,
                        fanout: children.len(),
                        min,
                        max,
                    });
                }
                let mut tight = fuzzy_geom::Mbr::empty();
                for (i, &c) in children.iter().enumerate() {
                    let child_mbr = self.node_mbr(c);
                    if !mbr.contains_mbr(child_mbr) {
                        return Err(ValidationError::ChildNotContained {
                            parent: id.0,
                            child_index: i,
                        });
                    }
                    tight = tight.union(child_mbr);
                    self.validate_rec(c, depth + 1, seen_nodes, seen_entries, entry_count)?;
                }
                if tight != *mbr {
                    return Err(ValidationError::LooseMbr { node: id.0 });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::RTreeConfig;
    use fuzzy_core::{FuzzyObject, ObjectId, ObjectSummary};
    use fuzzy_geom::Point;

    fn summary(id: u64, x: f64, y: f64) -> ObjectSummary<2> {
        let obj = FuzzyObject::new(ObjectId(id), vec![Point::xy(x, y)], vec![1.0]).unwrap();
        ObjectSummary::from_object(&obj)
    }

    #[test]
    fn valid_trees_pass() {
        let entries: Vec<_> = (0..200).map(|i| summary(i, i as f64, (i % 7) as f64)).collect();
        let tree = RTree::bulk_load(entries, RTreeConfig { max_entries: 8, min_fill: 0.4 });
        tree.validate().unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let entries: Vec<_> = (0..50).map(|i| summary(i, i as f64, 0.0)).collect();
        let mut tree = RTree::bulk_load(entries, RTreeConfig { max_entries: 8, min_fill: 0.4 });
        // Shrink the root MBR so children poke out.
        let root = tree.root;
        match &mut tree.nodes[root.0 as usize] {
            Node::Internal { mbr, .. } | Node::Leaf { mbr, .. } => {
                *mbr = fuzzy_geom::Mbr::new([0.0, 0.0], [1.0, 1.0]);
            }
            Node::Free => unreachable!(),
        }
        assert!(tree.validate().is_err());
    }

    #[test]
    fn wrong_len_detected() {
        let entries: Vec<_> = (0..20).map(|i| summary(i, i as f64, 0.0)).collect();
        let mut tree = RTree::bulk_load(entries, RTreeConfig::default());
        tree.len = 19;
        assert_eq!(
            tree.validate().unwrap_err(),
            ValidationError::WrongLen { stored: 20, reported: 19 }
        );
    }
}
