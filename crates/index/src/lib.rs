//! R-tree indexes over fuzzy object summaries, in-memory and on-disk.
//!
//! The paper (Section 3.1) indexes fuzzy objects by the MBR of their
//! support; leaf entries additionally carry the kernel MBR, the optimal
//! conservative lines and the representative point (Sections 3.2/3.4), all
//! bundled in [`fuzzy_core::ObjectSummary`]. Objects themselves stay in
//! the object store; the index comes in two backends behind one
//! navigation interface:
//!
//! * [`RTree`] — the arena-based in-memory tree (fast, bounded by RAM,
//!   node accesses are counted but simulated);
//! * [`PagedRTree`] — the same tree serialized into fixed-size pages of a
//!   single index file, read back through an LRU buffer pool, so node
//!   accesses are real positioned reads with a measured disk/cache split
//!   (the paper's §6 cost model made literal);
//! * [`NodeAccess`] — the trait both implement; the query processor in
//!   `fuzzy-query` is generic over it and returns byte-identical answers
//!   on either backend;
//! * [`MTree`] — the covering-ball index for general metrics (graph
//!   shortest-path distance has no rectangle geometry to prune with); it
//!   also maintains coordinate MBRs and implements [`NodeAccess`], so the
//!   rectangle-based machinery keeps working against it under L2;
//! * [`ApproxIndex`] — the approximate candidate-generation family over
//!   per-object expected centers ([`LshIndex`], [`VpTree`]), dialed by
//!   [`RecallDial`] and always resolved through the exact probe loop.
//!
//! We could not reuse an off-the-shelf R-tree because the evaluation needs
//! (a) fuzzy summaries as leaf payloads and (b) node-access accounting —
//! both of which this implementation provides:
//!
//! * [`RTree::bulk_load`] — Sort-Tile-Recursive packing (the default way
//!   datasets are indexed in the experiments); [`PagedRTree::bulk_write`]
//!   reuses it to build index files.
//! * [`RTree::insert`] / [`RTree::delete`] / [`RTree::update`] — R*-style
//!   incremental maintenance: ChooseSubtree + topological split on the way
//!   in, condense-and-reinsert with MBR tightening on the way out.
//! * [`OverlayRTree`] — the write story for the immutable index file: an
//!   in-memory delta overlay (inserted/tombstoned summaries consulted by
//!   every `NodeAccess` read) over a [`PagedRTree`], persisted as a
//!   sidecar delta log and folded back into the file by
//!   [`OverlayRTree::compact`].
//! * [`MutableIndex`] — the mutation trait both dynamic backends
//!   implement; `fuzzy_query`'s epoch engine is generic over it.
//! * [`RTree::expand`] / [`NodeAccess::read_node`] — the navigation
//!   primitives used by the query processor's best-first search; every
//!   call counts one node access.
//! * [`knn_by`] / [`range_search`] — backend-generic queries
//!   parameterised by arbitrary node/entry scoring, used by tests and by
//!   the RSS candidate collection (Algorithm 4).
//! * [`RTree::validate`] — structural invariant checker used by tests.

#![warn(missing_docs)]

pub mod access;
pub mod approx;
pub mod bulk;
pub mod delete;
pub mod insert;
pub mod lsh;
pub mod mtree;
pub mod mutate;
pub mod node;
pub mod overlay;
pub mod paged;
pub mod query;
pub mod shard;
pub mod validate;
pub mod vptree;

pub use access::{
    knn_by, range_search, ChildRef, DecodedNode, MinKey, NodeAccess, NodeRead, NodeView,
};
pub use approx::{ApproxIndex, RecallDial, FOF_BUILD_CAP};
pub use lsh::{LshConfig, LshIndex, LSH_MAGIC, LSH_VERSION};
pub use mtree::{MTree, MTreeConfig, MTREE_MAGIC, MTREE_VERSION};
pub use mutate::MutableIndex;
pub use node::{Children, NodeId, RTree, RTreeConfig};
pub use overlay::{delta_path_for, OverlayRTree};
pub use paged::{
    leaf_entry_len, paged_header_len, PagedRTree, DEFAULT_CACHE_PAGES, DEFAULT_PAGE_SIZE,
    PAGED_VERSION,
};
pub use query::{EntryHit, RangeResult};
pub use shard::{
    MassClassAssign, ShardAssign, ShardManifest, ShardMeta, ShardedIndex, StrCenterAssign,
};
pub use validate::ValidationError;
pub use vptree::{VpTree, VpTreeConfig, VPTREE_MAGIC, VPTREE_VERSION};

use std::sync::atomic::{AtomicU64, Ordering};

/// Node-access counters (one per tree).
#[derive(Debug, Default)]
pub struct IndexStats {
    node_accesses: AtomicU64,
}

impl IndexStats {
    pub(crate) fn record_node_access(&self) {
        self.node_accesses.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of node expansions since the last reset.
    pub fn node_accesses(&self) -> u64 {
        self.node_accesses.load(Ordering::Relaxed)
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.node_accesses.store(0, Ordering::Relaxed);
    }
}
