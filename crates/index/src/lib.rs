//! An instrumented R-tree over fuzzy object summaries.
//!
//! The paper (Section 3.1) indexes fuzzy objects by the MBR of their
//! support; leaf entries additionally carry the kernel MBR, the optimal
//! conservative lines and the representative point (Sections 3.2/3.4), all
//! bundled in [`fuzzy_core::ObjectSummary`]. Objects themselves stay on
//! disk; the tree is memory-resident.
//!
//! We could not reuse an off-the-shelf R-tree because the evaluation needs
//! (a) fuzzy summaries as leaf payloads and (b) node-access accounting —
//! both of which this implementation provides:
//!
//! * [`RTree::bulk_load`] — Sort-Tile-Recursive packing (the default way
//!   datasets are indexed in the experiments).
//! * [`RTree::insert`] — R*-style ChooseSubtree + topological split for
//!   incremental maintenance (exercised by the `abl-bulk` ablation).
//! * [`RTree::expand`] — the navigation primitive used by the query
//!   processor's best-first search; every expansion counts one node access.
//! * [`RTree::knn_by`] / [`RTree::range_search`] — self-contained queries
//!   parameterised by arbitrary node/entry scoring, used by tests and by
//!   the RSS candidate collection (Algorithm 4).
//! * [`RTree::validate`] — structural invariant checker used by tests.

#![warn(missing_docs)]

pub mod bulk;
pub mod insert;
pub mod node;
pub mod query;
pub mod validate;

pub use node::{Children, NodeId, RTree, RTreeConfig};
pub use query::{EntryHit, RangeResult};
pub use validate::ValidationError;

use std::sync::atomic::{AtomicU64, Ordering};

/// Node-access counters (one per tree).
#[derive(Debug, Default)]
pub struct IndexStats {
    node_accesses: AtomicU64,
}

impl IndexStats {
    pub(crate) fn record_node_access(&self) {
        self.node_accesses.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of node expansions since the last reset.
    pub fn node_accesses(&self) -> u64 {
        self.node_accesses.load(Ordering::Relaxed)
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.node_accesses.store(0, Ordering::Relaxed);
    }
}
