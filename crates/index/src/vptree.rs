//! Bulk-loaded vantage-point tree over per-object expected centers.
//!
//! The metric-generic twin of [`crate::lsh`]: a VP-tree needs nothing but
//! the [`Metric`] distance itself, so it rides the PR 9 seam — build it
//! under `l2` or `graph` alike and the `.fzvp` loader enforces the
//! pairing by name, exactly like `.fzmt`. The tree is implicit: one
//! permutation of the id-sorted base arrays plus a parallel radius
//! column, where the subtree of range `[lo, hi)` has its vantage at
//! `order[lo]`, the inner half (distance ≤ radius) at
//! `[lo+1, mid)` and the outer half (distance ≥ radius) at `[mid, hi)`
//! with `mid = lo + 1 + (hi - lo - 1) / 2` — no node structs, no child
//! pointers.
//!
//! Candidate generation is center-kNN with **ε-slack pruning**: the
//! search tracks τ_c, the k-th nearest center distance seen so far, and
//! discards a subtree only when its triangle-inequality bound exceeds
//! `τ_c · (1 + ε)`; every visited center within that slack of the final
//! τ_c joins the pool. `ε` is the [`RecallDial`]: 0 keeps the pool tight
//! around the center-nearest objects, larger values sweep in near misses
//! whose α-distance may beat their center rank, and `Exact` bypasses the
//! tree entirely.

use crate::approx::{
    decode_base, encode_base, read_approx_file, write_approx_file, ApproxBase, ApproxIndex,
    RecallDial,
};
use fuzzy_core::metric::Metric;
use fuzzy_core::{ObjectId, ObjectSummary};
use fuzzy_geom::Point;
use fuzzy_store::format::{Decoder, Encoder};
use fuzzy_store::StoreError;
use std::path::Path;

/// Magic framing a `.fzvp` file.
pub const VPTREE_MAGIC: [u8; 4] = *b"FZVP";
/// Current `.fzvp` format version.
pub const VPTREE_VERSION: u16 = 1;

/// Build-time knobs for [`VpTree`].
#[derive(Clone, Copy, Debug)]
pub struct VpTreeConfig {
    /// Ranges at or below this size stay unsplit (scanned linearly).
    pub leaf_size: usize,
    /// FoF neighbors recorded per object (0 disables).
    pub fof_neighbors: usize,
}

impl Default for VpTreeConfig {
    fn default() -> Self {
        Self { leaf_size: 8, fof_neighbors: 8 }
    }
}

/// A deterministic bulk-loaded VP-tree over expected centers.
pub struct VpTree<const D: usize> {
    base: ApproxBase<D>,
    leaf_size: usize,
    /// Permutation of base positions in VP layout.
    order: Vec<u32>,
    /// Parallel to `order`: split radius at internal roots, 0 elsewhere.
    radius: Vec<f64>,
}

impl<const D: usize> VpTree<D> {
    /// Bulk-build from summaries under `metric`. Deterministic: the
    /// vantage of every range is its lowest base position, and the
    /// distance partition sorts with position tie-breaks.
    pub fn build<M: Metric<D> + ?Sized>(
        metric: &M,
        summaries: &[ObjectSummary<D>],
        config: VpTreeConfig,
    ) -> Self {
        let leaf_size = config.leaf_size.max(1);
        let base = ApproxBase::build(metric, summaries, config.fof_neighbors);
        let n = base.ids.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut radius = vec![0.0_f64; n];
        // Explicit stack of ranges to split; recursion depth is data-
        // dependent and this keeps it off the call stack.
        let mut ranges = vec![(0_usize, n)];
        let mut dists: Vec<(f64, u32)> = Vec::with_capacity(n);
        while let Some((lo, hi)) = ranges.pop() {
            if hi - lo <= leaf_size {
                continue;
            }
            // Deterministic vantage: the smallest base position in range.
            let vp_idx = (lo..hi).min_by_key(|&i| order[i]).expect("range is non-empty");
            order.swap(lo, vp_idx);
            let vantage = base.centers[order[lo] as usize];
            dists.clear();
            dists.extend(
                order[lo + 1..hi]
                    .iter()
                    .map(|&pos| (metric.dist(&vantage, &base.centers[pos as usize]), pos)),
            );
            dists.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            for (slot, &(_, pos)) in order[lo + 1..hi].iter_mut().zip(&dists) {
                *slot = pos;
            }
            let mid = lo + 1 + (hi - lo - 1) / 2;
            radius[lo] = dists[mid - lo - 1].0;
            ranges.push((lo + 1, mid));
            ranges.push((mid, hi));
        }
        Self { base, leaf_size, order, radius }
    }

    /// Leaf-range size the tree was built with.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Persist as a `.fzvp` file (layout in `docs/FORMAT.md`).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let mut body = Encoder::with_capacity(64 + self.base.ids.len() * (28 + D * 8));
        encode_base(&mut body, &self.base);
        body.u32(self.leaf_size as u32);
        for &o in &self.order {
            body.u32(o);
        }
        for &r in &self.radius {
            body.f64(r);
        }
        write_approx_file(path, VPTREE_MAGIC, VPTREE_VERSION, D as u16, body.as_bytes())
    }

    /// Load a `.fzvp` file, verifying magic, version, dimensionality,
    /// the whole-file checksum, that it was built under `metric` (by
    /// name) and that the layout column is a permutation.
    pub fn load<M: Metric<D> + ?Sized>(
        path: impl AsRef<Path>,
        metric: &M,
    ) -> Result<Self, StoreError> {
        let body = read_approx_file(path, VPTREE_MAGIC, VPTREE_VERSION, D as u16, "fzvp")?;
        let corrupt = |reason: &str| StoreError::Corrupt { reason: reason.to_string() };
        let mut d = Decoder::new(&body);
        let base = decode_base::<D>(&mut d)?;
        if base.metric_name != metric.name() {
            return Err(StoreError::Corrupt {
                reason: format!(
                    "metric mismatch: index built under '{}', opened under '{}'",
                    base.metric_name,
                    metric.name()
                ),
            });
        }
        let n = base.ids.len();
        let leaf_size = d.u32()? as usize;
        if leaf_size == 0 {
            return Err(corrupt("fzvp leaf size must be positive"));
        }
        let mut order = Vec::with_capacity(n.min(1 << 20));
        let mut seen = vec![false; n];
        for _ in 0..n {
            let o = d.u32()?;
            if o as usize >= n || std::mem::replace(&mut seen[o as usize], true) {
                return Err(corrupt("fzvp layout is not a permutation"));
            }
            order.push(o);
        }
        let mut radius = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            radius.push(d.f64()?);
        }
        Ok(Self { base, leaf_size, order, radius })
    }

    /// Collect `(center distance, position)` for every visited entry of
    /// the ε-slack search, tracking τ_c in `topk` (sorted, ≤ k entries).
    #[allow(clippy::too_many_arguments)]
    fn visit<M: Metric<D> + ?Sized>(
        &self,
        metric: &M,
        q: &Point<D>,
        k: usize,
        eps: f64,
        lo: usize,
        hi: usize,
        topk: &mut Vec<f64>,
        visited: &mut Vec<(f64, u32)>,
    ) {
        let slack = |topk: &Vec<f64>| {
            if topk.len() < k {
                f64::INFINITY
            } else {
                topk[k - 1] * (1.0 + eps)
            }
        };
        let touch = |pos: u32, topk: &mut Vec<f64>, visited: &mut Vec<(f64, u32)>| {
            let d = metric.dist(q, &self.base.centers[pos as usize]);
            visited.push((d, pos));
            if topk.len() < k || d < topk[k - 1] {
                let at = topk.partition_point(|&t| t < d);
                topk.insert(at, d);
                topk.truncate(k);
            }
            d
        };
        if hi - lo <= self.leaf_size {
            for &pos in &self.order[lo..hi] {
                touch(pos, topk, visited);
            }
            return;
        }
        let d = touch(self.order[lo], topk, visited);
        let r = self.radius[lo];
        let mid = lo + 1 + (hi - lo - 1) / 2;
        // Inner holds distances ≤ r, outer ≥ r; visit the likelier side
        // first so τ_c tightens before the other side's bound check.
        let inner_lb = (d - r).max(0.0);
        let outer_lb = (r - d).max(0.0);
        if d <= r {
            if inner_lb <= slack(topk) {
                self.visit(metric, q, k, eps, lo + 1, mid, topk, visited);
            }
            if outer_lb <= slack(topk) {
                self.visit(metric, q, k, eps, mid, hi, topk, visited);
            }
        } else {
            if outer_lb <= slack(topk) {
                self.visit(metric, q, k, eps, mid, hi, topk, visited);
            }
            if inner_lb <= slack(topk) {
                self.visit(metric, q, k, eps, lo + 1, mid, topk, visited);
            }
        }
    }
}

impl<const D: usize> ApproxIndex<D> for VpTree<D> {
    fn backend_name(&self) -> &'static str {
        "vptree"
    }

    fn metric_name(&self) -> &str {
        &self.base.metric_name
    }

    fn len(&self) -> usize {
        self.base.ids.len()
    }

    fn ids(&self) -> &[ObjectId] {
        &self.base.ids
    }

    fn ball_of(&self, id: ObjectId) -> Option<(&Point<D>, f64)> {
        let pos = self.base.pos_of(id)?;
        Some((&self.base.centers[pos], self.base.spreads[pos]))
    }

    fn neighbors_of(&self, id: ObjectId) -> &[ObjectId] {
        self.base.pos_of(id).map(|p| self.base.fof[p].as_slice()).unwrap_or(&[])
    }

    fn candidates<M: Metric<D> + ?Sized>(
        &self,
        metric: &M,
        q_center: &Point<D>,
        k: usize,
        dial: RecallDial,
        out: &mut Vec<ObjectId>,
    ) {
        let eps = match dial {
            RecallDial::Exact => {
                out.extend_from_slice(&self.base.ids);
                return;
            }
            RecallDial::Budget(v) => v,
        };
        if self.base.ids.is_empty() {
            return;
        }
        let k = k.max(1);
        let mut topk: Vec<f64> = Vec::with_capacity(k + 1);
        let mut visited: Vec<(f64, u32)> = Vec::new();
        self.visit(metric, q_center, k, eps, 0, self.order.len(), &mut topk, &mut visited);
        let cut = if topk.len() < k { f64::INFINITY } else { topk[k - 1] * (1.0 + eps) };
        let mut pool: Vec<u32> =
            visited.into_iter().filter(|&(d, _)| d <= cut).map(|(_, pos)| pos).collect();
        pool.sort_unstable();
        out.extend(pool.into_iter().map(|pos| self.base.ids[pos as usize]));
    }
}
