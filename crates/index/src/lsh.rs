//! Multi-probe LSH over per-object expected centers.
//!
//! Classic E2LSH bucketing specialised to the summary layer: `L`
//! independent tables, each hashing a center through `H` seeded random
//! projections quantised to cells of data-derived width; a table key is
//! the mixed tuple of cell indices. Queries probe the home bucket first,
//! then perturbed buckets in **query-directed multi-probe order** (Lv et
//! al.): single-step cell perturbations ranked by the query projection's
//! distance to the crossed boundary, combined in increasing total score.
//! The [`RecallDial`] budget is the number of buckets probed per table,
//! and because the probe sequence is deterministic and prefix-nested, the
//! candidate pool at budget `b` is a subset of the pool at `b + 1` — the
//! property the recall-monotonicity suite pins.
//!
//! The geometry is Euclidean: `.fzlh` records metric name `l2` and the
//! loader rejects anything else. Like every candidate backend, LSH never
//! answers a query by itself — pools resolve through the exact probe
//! loop, so the dial moves recall, never correctness of returned
//! distances.

use crate::approx::{
    decode_base, encode_base, read_approx_file, unit_f64, write_approx_file, ApproxBase,
    ApproxIndex, RecallDial,
};
use fuzzy_core::metric::{Metric, L2};
use fuzzy_core::{ObjectId, ObjectSummary};
use fuzzy_geom::Point;
use fuzzy_store::format::{Decoder, Encoder};
use fuzzy_store::StoreError;
use std::collections::HashMap;
use std::path::Path;

/// Magic framing a `.fzlh` file.
pub const LSH_MAGIC: [u8; 4] = *b"FZLH";
/// Current `.fzlh` format version.
pub const LSH_VERSION: u16 = 1;

/// Build-time knobs for [`LshIndex`].
#[derive(Clone, Copy, Debug)]
pub struct LshConfig {
    /// Independent hash tables (`L`). More tables, more recall per probe.
    pub tables: usize,
    /// Projections per table (`H`). More hashes, finer buckets.
    pub hashes: usize,
    /// Seed for the projection/offset stream; same seed, same index.
    pub seed: u64,
    /// FoF neighbors recorded per object (0 disables).
    pub fof_neighbors: usize,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self { tables: 8, hashes: 4, seed: 0x1A5B_5EED, fof_neighbors: 8 }
    }
}

/// One seeded projection: `cell = ⌊(⟨normal, p⟩ + offset) / width⌋`.
struct Projection<const D: usize> {
    normal: [f64; D],
    offset: f64,
    width: f64,
}

impl<const D: usize> Projection<D> {
    fn project(&self, p: &Point<D>) -> f64 {
        let mut dot = self.offset;
        for (i, &c) in self.normal.iter().enumerate() {
            dot += c * p[i];
        }
        dot
    }

    fn cell(&self, p: &Point<D>) -> i64 {
        (self.project(p) / self.width).floor() as i64
    }
}

/// One table: `H` projections plus its bucket directory (keys sorted
/// ascending; `offsets` CSR-indexes `members`, which hold positions into
/// the base arrays).
struct LshTable<const D: usize> {
    projections: Vec<Projection<D>>,
    keys: Vec<u64>,
    offsets: Vec<u32>,
    members: Vec<u32>,
}

impl<const D: usize> LshTable<D> {
    fn bucket(&self, key: u64) -> &[u32] {
        match self.keys.binary_search(&key) {
            Ok(i) => &self.members[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            Err(_) => &[],
        }
    }
}

/// Mix `H` cell indices into one bucket key (order-sensitive FNV-style
/// fold, so cell tuples collide only by accident, not by permutation).
fn mix_cells(cells: &[i64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325_u64 ^ (cells.len() as u64);
    for &c in cells {
        h ^= c as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
        h ^= h >> 29;
    }
    h
}

/// A deterministic multi-probe LSH index over expected centers.
pub struct LshIndex<const D: usize> {
    base: ApproxBase<D>,
    seed: u64,
    hashes: usize,
    tables: Vec<LshTable<D>>,
}

impl<const D: usize> LshIndex<D> {
    /// Bulk-build from summaries under [`LshConfig`]. Euclidean only:
    /// the index records metric name `l2`. Deterministic for a fixed
    /// (summaries, config) pair.
    pub fn build(summaries: &[ObjectSummary<D>], config: LshConfig) -> Self {
        let tables = config.tables.max(1);
        let hashes = config.hashes.max(1);
        let base = ApproxBase::build(&L2, summaries, config.fof_neighbors);
        let n = base.ids.len();
        // Per-projection cell count targeting ~8 members per bucket. The
        // H projections of a D-dimensional space have only min(H, D)
        // independent directions — beyond that, extra projections refine
        // cell *shapes* but not the occupied-key count — so the target is
        // c^min(H,D) ≈ n/8, clamped to at least 2 cells so the dial has
        // room.
        let effective = hashes.min(D).max(1);
        let cells_per_hash =
            (((n as f64 / 8.0).max(1.0)).powf(1.0 / effective as f64).round() as i64).max(2) as f64;
        let mut state = config.seed ^ 0x5A17_1E57_ED00_F00D;
        let built = (0..tables)
            .map(|_| {
                let projections = (0..hashes)
                    .map(|_| {
                        let mut normal = [0.0_f64; D];
                        let mut norm_sq = 0.0;
                        for c in normal.iter_mut() {
                            *c = 2.0 * unit_f64(&mut state) - 1.0;
                            norm_sq += *c * *c;
                        }
                        if norm_sq <= f64::MIN_POSITIVE {
                            normal[0] = 1.0;
                            norm_sq = 1.0;
                        }
                        let inv = 1.0 / norm_sq.sqrt();
                        for c in normal.iter_mut() {
                            *c *= inv;
                        }
                        let offset_u = unit_f64(&mut state);
                        (normal, offset_u)
                    })
                    .collect::<Vec<_>>();
                let projections = projections
                    .into_iter()
                    .map(|(normal, offset_u)| {
                        // Data-derived width: the projection range split into
                        // the target cell count (degenerate range → unit).
                        let mut lo = f64::INFINITY;
                        let mut hi = f64::NEG_INFINITY;
                        let probe = Projection { normal, offset: 0.0, width: 1.0 };
                        for c in &base.centers {
                            let v = probe.project(c);
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        let range = if hi > lo { hi - lo } else { 1.0 };
                        let width = range / cells_per_hash;
                        Projection { normal, offset: offset_u * width, width }
                    })
                    .collect::<Vec<_>>();
                let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
                let mut cells = vec![0_i64; hashes];
                for (pos, center) in base.centers.iter().enumerate() {
                    for (ci, p) in cells.iter_mut().zip(&projections) {
                        *ci = p.cell(center);
                    }
                    buckets.entry(mix_cells(&cells)).or_default().push(pos as u32);
                }
                let mut keys: Vec<u64> = buckets.keys().copied().collect();
                keys.sort_unstable();
                let mut offsets = Vec::with_capacity(keys.len() + 1);
                let mut members = Vec::with_capacity(n);
                offsets.push(0_u32);
                for key in &keys {
                    members.extend_from_slice(&buckets[key]);
                    offsets.push(members.len() as u32);
                }
                LshTable { projections, keys, offsets, members }
            })
            .collect();
        Self { base, seed: config.seed, hashes, tables: built }
    }

    /// Number of hash tables.
    pub fn tables(&self) -> usize {
        self.tables.len()
    }

    /// Projections per table.
    pub fn hashes(&self) -> usize {
        self.hashes
    }

    /// Build seed recorded in the file.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The deterministic per-table probe sequence for `q`: bucket keys in
    /// query-directed multi-probe order, starting at the home bucket.
    /// Exposed for tests; `candidates` consumes a `budget`-long prefix,
    /// which is what makes pools nested across budgets.
    fn probe_keys(&self, table: &LshTable<D>, q: &Point<D>, budget: usize, out: &mut Vec<u64>) {
        out.clear();
        let h = table.projections.len();
        let mut home = vec![0_i64; h];
        // Perturbation atoms: (score, hash index, ±1), score = distance
        // from the query projection to the crossed cell boundary.
        let mut atoms: Vec<(f64, usize, i64)> = Vec::with_capacity(2 * h);
        for (i, p) in table.projections.iter().enumerate() {
            let v = p.project(q);
            let cell = (v / p.width).floor() as i64;
            home[i] = cell;
            let d_lo = v - cell as f64 * p.width;
            atoms.push((d_lo, i, -1));
            atoms.push((p.width - d_lo, i, 1));
        }
        atoms.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| (a.1, a.2).cmp(&(b.1, b.2))));
        out.push(mix_cells(&home));
        if budget <= 1 {
            return;
        }
        // Generate perturbation sets (sorted atom-index vectors) in
        // increasing total score via the shift/expand heap; sets that
        // perturb the same hash twice are skipped.
        let score = |set: &[usize]| set.iter().map(|&i| atoms[i].0).sum::<f64>();
        let valid = |set: &[usize]| {
            let mut seen = vec![false; h];
            set.iter().all(|&i| !std::mem::replace(&mut seen[atoms[i].1], true))
        };
        let mut heap: std::collections::BinaryHeap<crate::MinKey<Vec<usize>>> =
            std::collections::BinaryHeap::new();
        heap.push(crate::MinKey { key: atoms[0].0, item: vec![0] });
        let mut cells = vec![0_i64; h];
        while out.len() < budget {
            let Some(crate::MinKey { item: set, .. }) = heap.pop() else { break };
            let last = *set.last().expect("sets are non-empty");
            if last + 1 < atoms.len() {
                let mut shifted = set.clone();
                *shifted.last_mut().expect("non-empty") = last + 1;
                heap.push(crate::MinKey { key: score(&shifted), item: shifted });
                let mut expanded = set.clone();
                expanded.push(last + 1);
                heap.push(crate::MinKey { key: score(&expanded), item: expanded });
            }
            if !valid(&set) {
                continue;
            }
            cells.copy_from_slice(&home);
            for &i in &set {
                cells[atoms[i].1] += atoms[i].2;
            }
            out.push(mix_cells(&cells));
        }
    }

    /// Persist as a `.fzlh` file (layout in `docs/FORMAT.md`).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let mut body = Encoder::with_capacity(64 + self.base.ids.len() * (16 + D * 8));
        encode_base(&mut body, &self.base);
        body.u64(self.seed);
        body.u32(self.tables.len() as u32);
        body.u32(self.hashes as u32);
        for table in &self.tables {
            for p in &table.projections {
                for &c in &p.normal {
                    body.f64(c);
                }
                body.f64(p.offset);
                body.f64(p.width);
            }
            body.u64(table.keys.len() as u64);
            for &k in &table.keys {
                body.u64(k);
            }
            for &o in &table.offsets {
                body.u32(o);
            }
            body.u64(table.members.len() as u64);
            for &m in &table.members {
                body.u32(m);
            }
        }
        write_approx_file(path, LSH_MAGIC, LSH_VERSION, D as u16, body.as_bytes())
    }

    /// Load a `.fzlh` file, verifying magic, version, dimensionality and
    /// the whole-file checksum, then every structural invariant (metric
    /// is `l2`, CSR offsets monotone, member positions in range).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let body = read_approx_file(path, LSH_MAGIC, LSH_VERSION, D as u16, "fzlh")?;
        let corrupt = |reason: &str| StoreError::Corrupt { reason: reason.to_string() };
        let mut d = Decoder::new(&body);
        let base = decode_base::<D>(&mut d)?;
        if base.metric_name != "l2" {
            return Err(StoreError::Corrupt {
                reason: format!("fzlh is l2-only, file records metric '{}'", base.metric_name),
            });
        }
        let n = base.ids.len();
        let seed = d.u64()?;
        let tables = d.u32()? as usize;
        let hashes = d.u32()? as usize;
        if tables == 0 || hashes == 0 {
            return Err(corrupt("fzlh table/hash counts must be positive"));
        }
        let mut built = Vec::with_capacity(tables);
        for _ in 0..tables {
            let mut projections = Vec::with_capacity(hashes);
            for _ in 0..hashes {
                let mut normal = [0.0_f64; D];
                for c in normal.iter_mut() {
                    *c = d.f64()?;
                }
                let offset = d.f64()?;
                let width = d.f64()?;
                if !(width.is_finite() && width > 0.0) {
                    return Err(corrupt("fzlh projection width must be positive"));
                }
                projections.push(Projection { normal, offset, width });
            }
            let key_count = d.u64()? as usize;
            let mut keys = Vec::with_capacity(key_count.min(1 << 20));
            for _ in 0..key_count {
                keys.push(d.u64()?);
            }
            if !keys.windows(2).all(|w| w[0] < w[1]) {
                return Err(corrupt("fzlh bucket keys not strictly ascending"));
            }
            let mut offsets = Vec::with_capacity(key_count + 1);
            for _ in 0..=key_count {
                offsets.push(d.u32()?);
            }
            if offsets.first() != Some(&0) || !offsets.windows(2).all(|w| w[0] <= w[1]) {
                return Err(corrupt("fzlh bucket offsets not monotone from zero"));
            }
            let member_count = d.u64()? as usize;
            if offsets.last().copied() != Some(member_count as u32) || member_count != n {
                return Err(corrupt("fzlh bucket membership does not cover the index"));
            }
            let mut members = Vec::with_capacity(member_count.min(1 << 20));
            for _ in 0..member_count {
                let m = d.u32()?;
                if m as usize >= n {
                    return Err(corrupt("fzlh bucket member out of range"));
                }
                members.push(m);
            }
            built.push(LshTable { projections, keys, offsets, members });
        }
        Ok(Self { base, seed, hashes, tables: built })
    }
}

impl<const D: usize> ApproxIndex<D> for LshIndex<D> {
    fn backend_name(&self) -> &'static str {
        "lsh"
    }

    fn metric_name(&self) -> &str {
        &self.base.metric_name
    }

    fn len(&self) -> usize {
        self.base.ids.len()
    }

    fn ids(&self) -> &[ObjectId] {
        &self.base.ids
    }

    fn ball_of(&self, id: ObjectId) -> Option<(&Point<D>, f64)> {
        let pos = self.base.pos_of(id)?;
        Some((&self.base.centers[pos], self.base.spreads[pos]))
    }

    fn neighbors_of(&self, id: ObjectId) -> &[ObjectId] {
        self.base.pos_of(id).map(|p| self.base.fof[p].as_slice()).unwrap_or(&[])
    }

    fn candidates<M: Metric<D> + ?Sized>(
        &self,
        _metric: &M,
        q_center: &Point<D>,
        _k: usize,
        dial: RecallDial,
        out: &mut Vec<ObjectId>,
    ) {
        let budget = match dial {
            RecallDial::Exact => {
                out.extend_from_slice(&self.base.ids);
                return;
            }
            RecallDial::Budget(v) => (v.ceil() as usize).max(1),
        };
        let mut hit = vec![false; self.base.ids.len()];
        let mut keys = Vec::with_capacity(budget);
        for table in &self.tables {
            self.probe_keys(table, q_center, budget, &mut keys);
            for &key in &keys {
                for &pos in table.bucket(key) {
                    hit[pos as usize] = true;
                }
            }
        }
        out.extend(hit.iter().enumerate().filter(|(_, &h)| h).map(|(pos, _)| self.base.ids[pos]));
    }
}
