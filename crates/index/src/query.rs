//! Self-contained queries over the tree: generic best-first kNN and range
//! search. The AKNN/RKNN processors in `fuzzy-query` drive the tree through
//! [`RTree::expand`] directly (they interleave object probes with index
//! descent); the methods here serve the RSS candidate collection, tests,
//! and standalone use of the index.

use crate::node::{Children, NodeId, RTree};
use fuzzy_core::ObjectSummary;
use fuzzy_geom::Mbr;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A matched entry together with the score that admitted it.
#[derive(Clone, Debug)]
pub struct EntryHit<const D: usize> {
    /// The stored summary.
    pub entry: ObjectSummary<D>,
    /// The score assigned by the query (distance/lower bound).
    pub score: f64,
}

/// Result of a range search.
#[derive(Clone, Debug, Default)]
pub struct RangeResult<const D: usize> {
    /// Matching entries with their scores, unordered.
    pub hits: Vec<EntryHit<D>>,
    /// Nodes expanded while answering (subset of the tree counter).
    pub node_accesses: u64,
}

/// Max-heap adapter turning `BinaryHeap` into a min-heap on f64 keys.
struct MinKey<T> {
    key: f64,
    item: T,
}

impl<T> PartialEq for MinKey<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for MinKey<T> {}
impl<T> PartialOrd for MinKey<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for MinKey<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.total_cmp(&self.key) // reversed: BinaryHeap is a max-heap
    }
}

impl<const D: usize> RTree<D> {
    /// Generic best-first k-nearest-entries search.
    ///
    /// `node_key` must lower-bound `entry_key` for every entry in the
    /// node's subtree (the usual `MinDist` property, Eq. 1); under that
    /// contract the traversal is provably correct and expands the minimum
    /// number of nodes (Hjaltason & Samet, ref. \[11\] of the paper).
    pub fn knn_by(
        &self,
        k: usize,
        node_key: impl Fn(&Mbr<D>) -> f64,
        entry_key: impl Fn(&ObjectSummary<D>) -> f64,
    ) -> Vec<EntryHit<D>> {
        enum Item<'a, const D: usize> {
            Node(NodeId),
            Entry(&'a ObjectSummary<D>),
        }
        let mut heap: BinaryHeap<MinKey<Item<'_, D>>> = BinaryHeap::new();
        heap.push(MinKey { key: node_key(self.node_mbr(self.root)), item: Item::Node(self.root) });
        let mut out = Vec::with_capacity(k);
        while let Some(MinKey { item, key }) = heap.pop() {
            match item {
                Item::Entry(e) => {
                    out.push(EntryHit { entry: *e, score: key });
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(id) => match self.expand(id) {
                    Children::Nodes(kids) => {
                        for &c in kids {
                            heap.push(MinKey {
                                key: node_key(self.node_mbr(c)),
                                item: Item::Node(c),
                            });
                        }
                    }
                    Children::Entries(entries) => {
                        for e in entries {
                            heap.push(MinKey { key: entry_key(e), item: Item::Entry(e) });
                        }
                    }
                },
            }
        }
        out
    }

    /// Collect every entry whose `entry_key` is at most `radius`, pruning
    /// subtrees whose `node_key` exceeds it. With `node_key = MinDist` this
    /// is the range search of Algorithm 4 (RSS candidate collection).
    pub fn range_search(
        &self,
        radius: f64,
        node_key: impl Fn(&Mbr<D>) -> f64,
        entry_key: impl Fn(&ObjectSummary<D>) -> f64,
    ) -> RangeResult<D> {
        let mut result = RangeResult::default();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if node_key(self.node_mbr(id)) > radius {
                continue;
            }
            result.node_accesses += 1;
            match self.expand(id) {
                Children::Nodes(kids) => stack.extend_from_slice(kids),
                Children::Entries(entries) => {
                    for e in entries {
                        let score = entry_key(e);
                        if score <= radius {
                            result.hits.push(EntryHit { entry: *e, score });
                        }
                    }
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::RTreeConfig;
    use fuzzy_core::{FuzzyObject, ObjectId};
    use fuzzy_geom::Point;

    fn build(n: usize, cap: usize) -> RTree<2> {
        let summaries: Vec<ObjectSummary<2>> = (0..n)
            .map(|i| {
                let x = (i % 50) as f64 * 2.0;
                let y = (i / 50) as f64 * 2.0;
                let obj = FuzzyObject::new(
                    ObjectId(i as u64),
                    vec![Point::xy(x, y), Point::xy(x + 0.4, y + 0.4)],
                    vec![1.0, 0.6],
                )
                .unwrap();
                ObjectSummary::from_object(&obj)
            })
            .collect();
        RTree::bulk_load(summaries, RTreeConfig { max_entries: cap, min_fill: 0.4 })
    }

    #[test]
    fn knn_matches_linear_scan() {
        let tree = build(800, 16);
        let q = Point::xy(37.3, 11.8);
        for k in [1usize, 5, 20, 100] {
            let hits =
                tree.knn_by(k, |mbr| mbr.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q));
            assert_eq!(hits.len(), k);
            // Linear scan oracle.
            let mut all: Vec<f64> =
                tree.iter_entries().map(|e| e.support_mbr.min_dist_point(&q)).collect();
            all.sort_by(f64::total_cmp);
            for (i, h) in hits.iter().enumerate() {
                assert!(
                    (h.score - all[i]).abs() < 1e-12,
                    "k={k} rank {i}: {} vs {}",
                    h.score,
                    all[i]
                );
            }
            // Scores are non-decreasing.
            for w in hits.windows(2) {
                assert!(w[0].score <= w[1].score + 1e-12);
            }
        }
    }

    #[test]
    fn knn_with_k_larger_than_tree() {
        let tree = build(10, 4);
        let q = Point::xy(0.0, 0.0);
        let hits =
            tree.knn_by(50, |mbr| mbr.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q));
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn range_search_matches_linear_scan() {
        let tree = build(800, 16);
        let q = Point::xy(50.0, 10.0);
        for radius in [0.0, 3.0, 10.0, 1000.0] {
            tree.stats().reset();
            let res = tree.range_search(
                radius,
                |mbr| mbr.min_dist_point(&q),
                |e| e.support_mbr.min_dist_point(&q),
            );
            let want =
                tree.iter_entries().filter(|e| e.support_mbr.min_dist_point(&q) <= radius).count();
            assert_eq!(res.hits.len(), want, "radius {radius}");
            assert_eq!(res.node_accesses, tree.stats().node_accesses());
        }
    }

    #[test]
    fn best_first_expands_fewer_nodes_than_full_scan() {
        let tree = build(2500, 16);
        let q = Point::xy(2.0, 2.0);
        tree.stats().reset();
        let _ = tree.knn_by(5, |mbr| mbr.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q));
        let expanded = tree.stats().node_accesses();
        let total_nodes = tree.nodes.len() as u64;
        assert!(
            expanded * 4 < total_nodes,
            "best-first expanded {expanded} of {total_nodes} nodes"
        );
    }

    #[test]
    fn empty_tree_queries() {
        let tree: RTree<2> = RTree::new(RTreeConfig::default());
        let q = Point::xy(0.0, 0.0);
        assert!(tree
            .knn_by(3, |m| m.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q))
            .is_empty());
        let res =
            tree.range_search(10.0, |m| m.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q));
        assert!(res.hits.is_empty());
    }
}
