//! Self-contained queries over the tree: best-first kNN and range search.
//!
//! The traversals themselves are implemented once, generically over any
//! [`crate::NodeAccess`] backend, in [`crate::access`] — the AKNN/RKNN
//! processors in `fuzzy-query` call those generic versions so they run
//! unmodified against the in-memory [`RTree`] and the disk-resident
//! [`crate::PagedRTree`]. The inherent methods here are infallible
//! conveniences over the in-memory tree, kept for tests and standalone
//! use of the index.

use crate::access;
use crate::node::RTree;
use fuzzy_core::ObjectSummary;
use fuzzy_geom::Mbr;

/// A matched entry together with the score that admitted it.
#[derive(Clone, Debug)]
pub struct EntryHit<const D: usize> {
    /// The stored summary.
    pub entry: ObjectSummary<D>,
    /// The score assigned by the query (distance/lower bound).
    pub score: f64,
}

/// Result of a range search.
#[derive(Clone, Debug, Default)]
pub struct RangeResult<const D: usize> {
    /// Matching entries with their scores, unordered.
    pub hits: Vec<EntryHit<D>>,
    /// Nodes expanded while answering (subset of the tree counter).
    pub node_accesses: u64,
    /// Node reads that touched the backing medium (always 0 for the
    /// in-memory tree; for a paged tree, the buffer-pool misses).
    pub node_disk_reads: u64,
}

impl<const D: usize> RTree<D> {
    /// Generic best-first k-nearest-entries search.
    ///
    /// `node_key` must lower-bound `entry_key` for every entry in the
    /// node's subtree (the usual `MinDist` property, Eq. 1); under that
    /// contract the traversal is provably correct and expands the minimum
    /// number of nodes (Hjaltason & Samet, ref. \[11\] of the paper).
    pub fn knn_by(
        &self,
        k: usize,
        node_key: impl Fn(&Mbr<D>) -> f64,
        entry_key: impl Fn(&ObjectSummary<D>) -> f64,
    ) -> Vec<EntryHit<D>> {
        access::knn_by(self, k, node_key, entry_key).expect("in-memory node reads cannot fail")
    }

    /// Collect every entry whose `entry_key` is at most `radius`, pruning
    /// subtrees whose `node_key` exceeds it. With `node_key = MinDist` this
    /// is the range search of Algorithm 4 (RSS candidate collection).
    pub fn range_search(
        &self,
        radius: f64,
        node_key: impl Fn(&Mbr<D>) -> f64,
        entry_key: impl Fn(&ObjectSummary<D>) -> f64,
    ) -> RangeResult<D> {
        access::range_search(self, radius, node_key, entry_key)
            .expect("in-memory node reads cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Children, RTreeConfig};
    use fuzzy_core::{FuzzyObject, ObjectId};
    use fuzzy_geom::Point;

    fn build(n: usize, cap: usize) -> RTree<2> {
        let summaries: Vec<ObjectSummary<2>> = (0..n)
            .map(|i| {
                let x = (i % 50) as f64 * 2.0;
                let y = (i / 50) as f64 * 2.0;
                let obj = FuzzyObject::new(
                    ObjectId(i as u64),
                    vec![Point::xy(x, y), Point::xy(x + 0.4, y + 0.4)],
                    vec![1.0, 0.6],
                )
                .unwrap();
                ObjectSummary::from_object(&obj)
            })
            .collect();
        RTree::bulk_load(summaries, RTreeConfig { max_entries: cap, min_fill: 0.4 })
    }

    #[test]
    fn knn_matches_linear_scan() {
        let tree = build(800, 16);
        let q = Point::xy(37.3, 11.8);
        for k in [1usize, 5, 20, 100] {
            let hits =
                tree.knn_by(k, |mbr| mbr.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q));
            assert_eq!(hits.len(), k);
            // Linear scan oracle.
            let mut all: Vec<f64> =
                tree.iter_entries().map(|e| e.support_mbr.min_dist_point(&q)).collect();
            all.sort_by(f64::total_cmp);
            for (i, h) in hits.iter().enumerate() {
                assert!(
                    (h.score - all[i]).abs() < 1e-12,
                    "k={k} rank {i}: {} vs {}",
                    h.score,
                    all[i]
                );
            }
            // Scores are non-decreasing.
            for w in hits.windows(2) {
                assert!(w[0].score <= w[1].score + 1e-12);
            }
        }
    }

    #[test]
    fn knn_with_k_larger_than_tree() {
        let tree = build(10, 4);
        let q = Point::xy(0.0, 0.0);
        let hits =
            tree.knn_by(50, |mbr| mbr.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q));
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn range_search_matches_linear_scan() {
        let tree = build(800, 16);
        let q = Point::xy(50.0, 10.0);
        for radius in [0.0, 3.0, 10.0, 1000.0] {
            tree.stats().reset();
            let res = tree.range_search(
                radius,
                |mbr| mbr.min_dist_point(&q),
                |e| e.support_mbr.min_dist_point(&q),
            );
            let want =
                tree.iter_entries().filter(|e| e.support_mbr.min_dist_point(&q) <= radius).count();
            assert_eq!(res.hits.len(), want, "radius {radius}");
            assert_eq!(res.node_accesses, tree.stats().node_accesses());
            // The arena never touches a backing medium.
            assert_eq!(res.node_disk_reads, 0);
        }
    }

    #[test]
    fn best_first_expands_fewer_nodes_than_full_scan() {
        let tree = build(2500, 16);
        let q = Point::xy(2.0, 2.0);
        tree.stats().reset();
        let _ = tree.knn_by(5, |mbr| mbr.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q));
        let expanded = tree.stats().node_accesses();
        let total_nodes = tree.node_count() as u64;
        assert!(
            expanded * 4 < total_nodes,
            "best-first expanded {expanded} of {total_nodes} nodes"
        );
    }

    #[test]
    fn empty_tree_queries() {
        let tree: RTree<2> = RTree::new(RTreeConfig::default());
        let q = Point::xy(0.0, 0.0);
        assert!(tree
            .knn_by(3, |m| m.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q))
            .is_empty());
        let res =
            tree.range_search(10.0, |m| m.min_dist_point(&q), |e| e.support_mbr.min_dist_point(&q));
        assert!(res.hits.is_empty());
    }

    #[test]
    fn trait_view_agrees_with_inherent_expand() {
        use crate::access::{NodeAccess, NodeView};
        let tree = build(200, 8);
        let read = tree.read_node(NodeAccess::root_id(&tree)).unwrap();
        assert!(!read.disk_read);
        match (read.view(), tree.expand(tree.root_id())) {
            (NodeView::Nodes(refs), Children::Nodes(ids)) => {
                assert_eq!(refs.len(), ids.len());
                for (r, &id) in refs.iter().zip(ids) {
                    assert_eq!(r.id, id);
                    assert_eq!(r.mbr, *tree.node_mbr(id));
                }
            }
            (NodeView::Entries(a), Children::Entries(b)) => assert_eq!(a.len(), b.len()),
            _ => panic!("trait and inherent views disagree on node kind"),
        }
    }
}
